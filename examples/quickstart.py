#!/usr/bin/env python3
"""Quickstart: profile an application, enforce its kernel view, read the log.

This walks the full FACE-CHANGE lifecycle on the simulated VM:

1. boot a QEMU-platform guest and profile ``top``'s kernel footprint;
2. save the kernel view configuration to disk (JSON);
3. boot a KVM-platform guest, enable FACE-CHANGE and load the view;
4. run the same workload under the minimized view;
5. inspect the recovery log (expect only the benign kvm-clock chain the
   paper describes in Section III-B3).

Run:  python examples/quickstart.py
"""

import tempfile
from pathlib import Path

from repro import boot_machine
from repro.core import FaceChange, KernelViewConfig, Profiler
from repro.core.provenance import DEFAULT_BENIGN_RECOVERIES
from repro.kernel.objects import Compute, Syscall
from repro.kernel.runtime import Platform

Sys = Syscall


def top_workload(iterations=15):
    """A task-manager-like workload: procfs reads + tty output."""

    def driver():
        tty = yield Sys("open", path="/dev/tty1")
        for _ in range(iterations):
            fd = yield Sys("open", path="/proc/stat")
            yield Sys("read", fd=fd, count=2048)
            yield Sys("close", fd=fd)
            yield Sys("write", fd=tty, count=512)
            yield Compute(450_000)
            yield Sys("nanosleep", cycles=100_000)

    return driver


def main():
    # -- 1. profiling phase (QEMU) -----------------------------------------
    print("== profiling phase (QEMU platform) ==")
    qemu = boot_machine(platform=Platform.QEMU)
    profiler = Profiler(qemu)
    profiler.track("top")
    profiler.install()
    task = qemu.spawn("top", top_workload())
    qemu.run(until=lambda: task.finished, max_cycles=40_000_000_000)
    config = profiler.export("top")
    print(f"profiled kernel view for 'top': {config.size / 1024:.0f} KB "
          f"across {len(config.profile)} code ranges")

    # -- 2. the configuration file travels between sessions -----------------
    path = Path(tempfile.mkdtemp()) / "top.view.json"
    config.save(path)
    print(f"saved kernel view configuration to {path}")

    # -- 3/4. runtime phase (KVM) -------------------------------------------
    print("\n== runtime phase (KVM platform) ==")
    kvm = boot_machine(platform=Platform.KVM)
    fc = FaceChange(kvm)
    fc.enable()
    fc.load_view(KernelViewConfig.load(path))
    task = kvm.spawn("top", top_workload())
    kvm.run(until=lambda: task.finished, max_cycles=80_000_000_000)
    assert task.finished
    stats = fc.stats
    print(f"workload finished under its minimized view: "
          f"{stats.context_switch_traps} context-switch traps, "
          f"{stats.view_switches} view switches, "
          f"{stats.recoveries} code recoveries")

    # -- 5. the recovery log -------------------------------------------------
    print("\n== recovery log ==")
    print(fc.log.report() or "(empty)")
    anomalous = fc.log.anomalous(benign=DEFAULT_BENIGN_RECOVERIES)
    print(f"\nanomalous (non-benign, non-interrupt) recoveries: "
          f"{len(anomalous)}  -> the view held")


if __name__ == "__main__":
    main()
