#!/usr/bin/env python3
"""Minimizing a production web server: Apache under FACE-CHANGE.

Profiles the Apache workload, enforces its kernel view, and then runs a
small httperf-style load sweep (the paper's Figure 7 experiment) to show
that the minimized kernel view is free until the CPU saturates.

Run:  python examples/server_minimization.py
"""

from repro.analysis.similarity import profile_applications
from repro.bench.httperf import run_httperf_sweep


def main():
    print("profiling apache under its request workload...")
    config = profile_applications(apps=["apache"], scale=5)["apache"]
    print(f"apache kernel view: {config.size / 1024:.0f} KB, "
          f"{len(config.profile)} ranges across segments "
          f"{sorted(config.profile.segments)}\n")

    print("httperf sweep: 5..60 req/s, baseline vs FACE-CHANGE "
          "(paper Figure 7)")
    points = run_httperf_sweep(config, rates=[5, 15, 25, 35, 45, 55, 60],
                               connections=50)
    print(f"{'rate':>6}{'baseline rps':>14}{'face-change rps':>17}{'ratio':>8}")
    for p in points:
        print(f"{p.rate:>6}{p.baseline_throughput:>14.2f}"
              f"{p.facechange_throughput:>17.2f}{p.ratio:>8.3f}")
    knee = [p.rate for p in points if p.ratio < 0.98]
    if knee:
        print(f"\nthroughput degrades from ~{knee[0]} req/s "
              "(paper: ~55 req/s on their hardware)")
    else:
        print("\nno degradation in the measured range")


if __name__ == "__main__":
    main()
