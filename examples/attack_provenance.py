#!/usr/bin/env python3
"""Case study I (paper Figure 4): Injectso's UDP payload inside ``top``.

A hot-patching tool injects a shared object into the running ``top``
process; the payload is a parasite UDP server.  ``top``'s kernel view
contains no networking code, so every kernel function the payload pulls
in is recovered -- and the recovery log *is* the attack provenance:
``socket``/``bind``/``recvfrom`` map to the exact kernel chains the
paper prints.

Run:  python examples/attack_provenance.py
"""

from repro import boot_machine
from repro.analysis.similarity import profile_applications
from repro.core import FaceChange
from repro.core.provenance import DEFAULT_BENIGN_RECOVERIES
from repro.kernel.runtime import Platform
from repro.malware import ALL_ATTACKS


def main():
    print("profiling 'top' in an independent session...")
    config = profile_applications(apps=["top"], scale=5)["top"]
    print(f"top's kernel view: {config.size / 1024:.0f} KB\n")

    attack = next(a for a in ALL_ATTACKS if a.name == "Injectso")
    print(f"attack: {attack.name} -- {attack.infection_method}")
    print(f"payload: {attack.payload}; host: {attack.host_app}\n")

    machine = boot_machine(platform=Platform.KVM)
    fc = FaceChange(machine)
    fc.enable()
    fc.load_view(config, comm="top")
    handle = attack.launch(machine, scale=4)
    machine.run(until=lambda: handle.finished, max_cycles=120_000_000_000)

    events = fc.log.anomalous(benign=DEFAULT_BENIGN_RECOVERIES)
    print(f"kernel code recovery log: {len(events)} anomalous recoveries\n")
    print("-- recovered kernel functions (the payload's attack pattern) --")
    for event in events:
        print(f"  {event.rip:#010x} {event.recovered}")
    print()

    # group like the paper's Figure 4: socket / bind / recvfrom chains
    names = [e.function_name for e in events]
    groups = {
        "socket:": ["inet_create", "sk_alloc", "apparmor_socket_create"],
        "bind:": [
            "sys_bind", "security_socket_bind", "apparmor_socket_bind",
            "inet_bind", "inet_addr_type", "lock_sock_nested",
            "udp_v4_get_port", "udp_lib_get_port", "udp_lib_lport_inuse",
            "release_sock",
        ],
        "recvfrom:": [
            "sys_recvfrom", "sock_recvmsg", "security_socket_recvmsg",
            "apparmor_socket_recvmsg", "sock_common_recvmsg", "udp_recvmsg",
            "__skb_recv_datagram", "prepare_to_wait_exclusive",
        ],
    }
    print("-- mapped to the payload's libc calls (paper Figure 4) --")
    for label, fns in groups.items():
        hit = [fn for fn in fns if fn in names]
        print(f"  {label:<10} {', '.join(hit)}")

    print("\nfirst recovery with its provenance backtrace:")
    print(events[0].format())


if __name__ == "__main__":
    main()
