#!/usr/bin/env python3
"""The Section II quantitative study: per-application kernel footprints.

Profiles all twelve Table I applications in independent sessions and
prints the similarity matrix -- view sizes on the diagonal, overlap
bytes above, similarity indices (Equation 1) below.

Run:  python examples/similarity_study.py
"""

from repro.analysis.similarity import SimilarityMatrix, profile_applications


def main():
    print("profiling 12 applications in independent sessions...")
    configs = profile_applications(scale=5)
    matrix = SimilarityMatrix.build(configs)

    print()
    print(matrix.format_table())
    print()

    (lo_pair, lo) = matrix.min_similarity()
    (hi_pair, hi) = matrix.max_similarity()
    print(f"most dissimilar: {lo_pair[0]} vs {lo_pair[1]}  "
          f"S = {lo * 100:.1f}%   (paper: top vs firefox, 33.6%)")
    print(f"most similar:    {hi_pair[0]} vs {hi_pair[1]}  "
          f"S = {hi * 100:.1f}%   (paper: eog vs totem, 86.5%)")

    union = 0
    merged = None
    for config in configs.values():
        if merged is None:
            merged = config.profile.copy()
        else:
            merged.update(config.profile)
    union = merged.size
    biggest = max(configs.values(), key=lambda c: c.size)
    print(f"\nunion (system-wide minimized) kernel: {union / 1024:.0f} KB; "
          f"largest single view ({biggest.app}): {biggest.size / 1024:.0f} KB")
    print("=> per-application views expose "
          f"{(1 - biggest.size / union) * 100:.0f}%+ less kernel code than "
          "whole-system minimization, per process")


if __name__ == "__main__":
    main()
