#!/usr/bin/env python3
"""Case study IV (paper Figure 5): detecting the KBeast kernel rootkit.

KBeast hooks the ``read``/``getdents`` syscall-table entries to sniff
keystrokes into a hidden file, and unlinks itself from the kernel module
list.  With bash's kernel view enforced, the rootkit's hooks call kernel
functions outside that view; the recoveries' backtraces contain UNKNOWN
frames -- addresses in kernel heap that no VMI-visible module owns --
revealing exactly where the hijack took place.

Run:  python examples/rootkit_detection.py
"""

from repro import boot_machine
from repro.analysis.similarity import profile_applications
from repro.core import FaceChange
from repro.kernel.runtime import Platform
from repro.malware import ALL_ATTACKS


def main():
    print("profiling 'bash' in an independent (clean) session...")
    config = profile_applications(apps=["bash"], scale=5)["bash"]
    print(f"bash's kernel view: {config.size / 1024:.0f} KB\n")

    attack = next(a for a in ALL_ATTACKS if a.name == "KBeast")
    machine = boot_machine(platform=Platform.KVM)
    fc = FaceChange(machine)
    fc.enable()
    fc.load_view(config, comm="bash")

    print("insmod kbeast (the rootkit hides itself from the module list),")
    print("then running bash under its kernel view...\n")
    handle = attack.launch(machine, scale=4)
    machine.run(until=lambda: handle.finished, max_cycles=160_000_000_000)

    visible = [m.name for m in machine.introspector.read_module_list()]
    print(f"guest module list (VMI): {visible}   <- no kbeast")
    print(f"keystrokes sniffed by the rootkit: "
          f"{machine.runtime.kbeast_state['sniffed']}\n")

    print("-- recovery log (paper Figure 5) --")
    for event in fc.log.events:
        if event.in_interrupt:
            continue
        print(event.format())
        print()

    unknown = [
        frame
        for event in fc.log.events
        for frame in event.backtrace
        if frame.is_unknown
    ]
    print(f"UNKNOWN backtrace frames: {len(unknown)} "
          f"(kernel-heap addresses owned by no VMI-visible module)")
    for frame in unknown[:4]:
        print(f"  {frame}")

    # the Section V integration sketch: attribute the UNKNOWN addresses
    from repro.core import HiddenCodeScanner
    print("\n-- hidden-code scan of the kernel heap --")
    print(HiddenCodeScanner(machine).report())
    print("\nverdict: hidden kernel-level hijack detected via per-app "
          "kernel view violation")


if __name__ == "__main__":
    main()
