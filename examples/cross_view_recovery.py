#!/usr/bin/env python3
"""The cross-view recovery bug and its fix (paper Figure 3).

A process blocks deep inside ``sys_poll -> do_sys_poll -> do_poll``
under a full kernel view; a customized view lacking those functions is
then hot-plugged for it.  When the process resumes, its stack still
references the missing code:

* returns to even addresses land on ``0f 0b`` (UD2) -> trap -> lazy
  recovery;
* returns to odd addresses would land on ``0b 0f`` -- which the CPU
  silently misdecodes as ``or`` instructions -- so the first recovery's
  backtrace *instantly* recovers those callers.

The demo runs the scenario twice: with instant recovery (clean), and
with it disabled (silent corruption, the bug the paper fixed).

Run:  python examples/cross_view_recovery.py
"""

from repro import boot_machine
from repro.core import FaceChange
from repro.core.kernel_view import KernelViewConfig
from repro.core.rangelist import BASE_KERNEL, KernelProfile
from repro.kernel.objects import Compute, Syscall, TaskState
from repro.kernel.runtime import Platform

Sys = Syscall
EXCLUDED = ("sys_poll", "do_sys_poll", "do_poll", "pipe_poll")


def view_without(machine, excluded):
    profile = KernelProfile()
    for symbol in machine.image.symbols.values():
        if symbol.name in excluded:
            continue
        if symbol.module is None:
            profile.add(BASE_KERNEL, symbol.address, symbol.address + symbol.size)
        else:
            base = machine.image.modules[symbol.module].base
            rel = symbol.address - base
            profile.add(symbol.module, rel, rel + symbol.size)
    return KernelViewConfig(app="poller", profile=profile)


def poller(results):
    def writer(fds):
        def child():
            yield Compute(2_500_000)
            yield Sys("write", fd=fds[1], count=64)
        return child

    def driver():
        r, w = yield Sys("pipe")
        pid = yield Sys("fork", child=writer([r, w]), comm="writer")
        results["poll"] = yield Sys("poll", fds=[r], timeout_cycles=50_000_000)
        results["read"] = yield Sys("read", fd=r, count=64)
        yield Sys("waitpid", pid=pid)
    return driver


def run(instant: bool):
    machine = boot_machine(platform=Platform.KVM)
    fc = FaceChange(machine)
    fc.enable()
    fc.recovery.instant_recovery_enabled = instant
    fc.switcher.defer_to_resume = False
    results = {}
    task = machine.spawn("poller", poller(results))
    machine.run(
        until=lambda: task.state is TaskState.BLOCKED,
        max_cycles=4_000_000_000,
        step_budget=2_000,
    )
    print(f"  poller blocked in the kernel "
          f"(stack: syscall_call -> sys_poll -> ... -> schedule)")
    fc.load_view(view_without(machine, EXCLUDED), comm="poller")
    print(f"  hot-plugged a view lacking {', '.join(EXCLUDED)}")
    try:
        machine.run(
            until=lambda: task.finished,
            max_cycles=machine.cycles + 40_000_000_000,
        )
    except Exception as exc:  # runaway misdecoded execution
        print(f"  guest crashed: {exc}")
    return machine, fc, task


def main():
    print("== with instant recovery (the paper's fix) ==")
    machine, fc, task = run(instant=True)
    print(f"  finished: {task.finished}; "
          f"silently misdecoded instructions: "
          f"{machine.vcpu.corruption_executed}")
    print("\n  recovery log:")
    for event in fc.log.events:
        if event.in_interrupt:
            continue
        print("  " + event.format().replace("\n", "\n  "))
        print()

    print("== without instant recovery (the bug) ==")
    machine2, fc2, task2 = run(instant=False)
    print(f"  finished: {task2.finished}; "
          f"silently misdecoded instructions: "
          f"{machine2.vcpu.corruption_executed}   <- corruption!")


if __name__ == "__main__":
    main()
