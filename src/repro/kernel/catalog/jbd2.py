"""The jbd2 journalling layer (loadable module, loaded before ext4)."""

from __future__ import annotations

from repro.kernel.catalog._dsl import C, W, kfunc
from repro.kernel.registry import REGISTRY

MODULE_NAME = "jbd2"

FUNCTIONS = [
    kfunc("jbd2_journal_start", W(64), C("kmalloc")),
    kfunc("jbd2_journal_stop", W(76)),
    kfunc("__jbd2_log_start_commit", W(58), C("__wake_up_sync")),
    kfunc("jbd2_journal_dirty_metadata", W(88)),
    kfunc(
        "jbd2_journal_commit_transaction",
        W(196),
        C("submit_bh"),
        C("submit_bh"),
    ),
]

_ = REGISTRY
