"""Virtual file system: open/read/write/close, stat, poll/select, dirs.

Per-file-type behaviour is routed through dispatch slots (``vfs.read_op``
etc.), mirroring Linux ``file_operations`` tables.  This is what makes
kernel footprints application-specific: a ``read`` on procfs and a
``read`` on ext4 reach disjoint kernel code, the key observation of the
paper's Section II.
"""

from __future__ import annotations

from repro.kernel.catalog._dsl import A, C, Cnd, D, W, Wh, kfunc
from repro.kernel.registry import REGISTRY

FUNCTIONS = [
    # fd plumbing
    kfunc("fget_light", W(30)),
    kfunc("fput", W(28)),
    kfunc("get_unused_fd", W(34)),
    kfunc("getname", W(38), C("kmalloc"), C("copy_from_user")),
    kfunc("putname", W(18), C("kfree")),
    # open/close
    kfunc("sys_open", W(42), C("do_sys_open")),
    kfunc(
        "do_sys_open",
        W(62),
        C("getname"),
        C("get_unused_fd"),
        C("do_filp_open"),
        A("vfs.install_fd"),
        C("putname"),
    ),
    kfunc("filp_open", W(30), C("do_filp_open")),
    kfunc(
        "do_filp_open",
        W(118),
        C("path_init"),
        C("link_path_walk"),
        D("vfs.open_op"),
        W(26),
    ),
    kfunc("path_init", W(40)),
    kfunc(
        "link_path_walk",
        W(140),
        C("d_lookup"),
        C("inode_permission"),
        D("vfs.lookup_op"),
        C("dput"),
        W(36),
    ),
    kfunc("d_lookup", W(52)),
    kfunc("dput", W(30)),
    kfunc("generic_permission", W(40)),
    kfunc("inode_permission", W(30), C("generic_permission"), C("security_inode_permission")),
    kfunc("generic_file_open", W(32)),
    kfunc("sys_close", W(28), C("filp_close"), A("vfs.close_fd")),
    kfunc("filp_close", W(38), D("vfs.release_op"), C("fput")),
    # read
    kfunc("sys_read", W(40), C("fget_light"), C("vfs_read"), C("fput")),
    kfunc(
        "vfs_read",
        W(58),
        C("rw_verify_area"),
        C("security_file_permission"),
        D("vfs.read_op"),
        W(18),
    ),
    kfunc("rw_verify_area", W(30)),
    kfunc("do_sync_read", W(48), D("vfs.aio_read_op")),
    kfunc("sys_pread64", W(42), C("fget_light"), C("vfs_read"), C("fput")),
    kfunc("sys_pwrite64", W(42), C("fget_light"), C("vfs_write"), C("fput")),
    kfunc(
        "sys_readv",
        W(38),
        C("fget_light"),
        C("rw_verify_area"),
        C("security_file_permission"),
        D("vfs.aio_read_op"),
        C("fput"),
    ),
    kfunc(
        "generic_file_aio_read",
        W(128),
        C("find_get_page"),
        Cnd("vfs.need_readpage", [C("page_cache_alloc"), D("vfs.readpage_op")]),
        A("vfs.file_read"),
        C("copy_to_user"),
        W(34),
    ),
    kfunc("mpage_readpage", W(70), C("add_to_page_cache_lru"), D("vfs.get_block_op"), C("submit_bio")),
    # write
    kfunc("sys_write", W(40), C("fget_light"), C("vfs_write"), C("fput")),
    kfunc(
        "vfs_write",
        W(58),
        C("rw_verify_area"),
        C("security_file_permission"),
        D("vfs.write_op"),
        W(18),
    ),
    kfunc("do_sync_write", W(48), D("vfs.aio_write_op")),
    kfunc("generic_file_aio_write", W(62), C("__generic_file_aio_write")),
    kfunc(
        "__generic_file_aio_write",
        W(118),
        C("file_update_time"),
        C("generic_perform_write"),
        W(32),
    ),
    kfunc("file_update_time", W(42), C("__mark_inode_dirty")),
    kfunc("__mark_inode_dirty", W(56), D("vfs.dirty_inode_op")),
    kfunc("generic_dirty_inode", W(14)),
    kfunc(
        "generic_perform_write",
        W(124),
        C("find_get_page"),
        D("vfs.write_begin_op"),
        C("iov_iter_copy_from_user"),
        A("vfs.file_write"),
        D("vfs.write_end_op"),
        C("mark_page_accessed"),
    ),
    kfunc("iov_iter_copy_from_user", W(38), C("copy_from_user")),
    kfunc("mark_page_accessed", W(28)),
    kfunc("generic_write_end", W(36)),
    # block layer
    kfunc("submit_bh", W(54), C("submit_bio")),
    kfunc("submit_bio", W(66), C("generic_make_request")),
    kfunc("generic_make_request", W(88), C("blk_queue_bio"), A("blk.io")),
    kfunc("blk_queue_bio", W(64), C("elv_merge")),
    kfunc("elv_merge", W(48)),
    # fsync
    kfunc("sys_fsync", W(30), C("fget_light"), C("vfs_fsync"), C("fput")),
    kfunc("vfs_fsync", W(48), D("vfs.fsync_op")),
    # stat & friends
    kfunc(
        "vfs_stat",
        W(52),
        C("getname"),
        C("path_init"),
        C("link_path_walk"),
        C("cp_new_stat64"),
        C("putname"),
    ),
    kfunc("sys_stat64", W(36), C("vfs_stat")),
    kfunc("sys_fstat64", W(30), C("fget_light"), C("cp_new_stat64"), C("fput")),
    kfunc("cp_new_stat64", W(46), C("copy_to_user")),
    kfunc("sys_lseek", W(28), C("fget_light"), A("vfs.lseek"), C("fput")),
    kfunc("sys_getdents64", W(38), C("fget_light"), C("vfs_readdir"), C("fput")),
    kfunc(
        "vfs_readdir",
        W(52),
        C("security_file_permission"),
        D("vfs.readdir_op"),
    ),
    # poll/select
    kfunc("sys_poll", W(58), C("do_sys_poll")),
    kfunc(
        "do_sys_poll",
        W(106),
        C("poll_initwait"),
        C("do_poll"),
        C("poll_freewait"),
        C("copy_to_user"),
        W(20),
    ),
    kfunc("poll_initwait", W(30)),
    kfunc("poll_freewait", W(24)),
    kfunc(
        "do_poll",
        W(64),
        Wh(
            "poll.wait_loop",
            [
                A("poll.rescan_init"),
                Wh(
                    "poll.more_fds",
                    [
                        A("poll.next_fd"),
                        Cnd("poll.fd_pollable", [D("vfs.poll_op")]),
                    ],
                ),
                Cnd("poll.should_block", [A("poll.block"), C("schedule_timeout")]),
            ],
        ),
        W(18),
    ),
    kfunc("sys_select", W(46), C("core_sys_select")),
    kfunc("core_sys_select", W(84), C("do_select"), C("copy_to_user")),
    kfunc(
        "do_select",
        W(116),
        C("poll_initwait"),
        Wh(
            "poll.wait_loop",
            [
                A("poll.rescan_init"),
                Wh(
                    "poll.more_fds",
                    [
                        A("poll.next_fd"),
                        Cnd("poll.fd_pollable", [D("vfs.poll_op")]),
                    ],
                ),
                Cnd("poll.should_block", [A("poll.block"), C("schedule_timeout")]),
            ],
        ),
        C("poll_freewait"),
        W(24),
    ),
    # misc fd syscalls
    kfunc("sys_dup2", W(28), A("vfs.dup2")),
    kfunc("sys_fcntl64", W(36), A("vfs.fcntl")),
    kfunc("sys_ioctl", W(38), C("fget_light"), D("vfs.ioctl_op"), C("fput")),
    kfunc(
        "sys_writev",
        W(38),
        C("fget_light"),
        C("do_readv_writev"),
        C("fput"),
    ),
    kfunc(
        "do_readv_writev",
        W(74),
        C("rw_verify_area"),
        C("security_file_permission"),
        D("vfs.aio_write_op"),
    ),
    kfunc(
        "sys_sendfile64",
        W(44),
        C("fget_light"),
        C("do_sendfile"),
        C("fput"),
    ),
    kfunc("do_sendfile", W(76), C("do_splice_direct")),
    kfunc(
        "do_splice_direct",
        W(98),
        C("generic_file_splice_read"),
        C("sock_sendmsg"),
    ),
    kfunc("generic_file_splice_read", W(86), A("vfs.file_read")),
    # namespace ops
    kfunc(
        "sys_unlink",
        W(38),
        C("getname"),
        C("link_path_walk"),
        D("vfs.unlink_op"),
        C("putname"),
    ),
    kfunc(
        "sys_rename",
        W(46),
        C("getname"),
        C("link_path_walk"),
        D("vfs.rename_op"),
        C("putname"),
    ),
    kfunc(
        "sys_mkdir",
        W(38),
        C("getname"),
        C("link_path_walk"),
        D("vfs.mkdir_op"),
        C("putname"),
    ),
    kfunc(
        "sys_chdir",
        W(34),
        C("getname"),
        C("link_path_walk"),
        A("vfs.chdir"),
        C("putname"),
    ),
    kfunc("sys_getcwd", W(32), C("copy_to_user")),
]


# --- semantics: fd table ----------------------------------------------------


@REGISTRY.act("vfs.install_fd")
def _install_fd(rt) -> None:
    rt.fs.do_open(rt)


@REGISTRY.act("vfs.lseek")
def _lseek(rt) -> None:
    rt.fs.do_lseek(rt)


@REGISTRY.act("vfs.dup2")
def _dup2(rt) -> None:
    rt.fs.do_dup2(rt)


@REGISTRY.act("vfs.fcntl")
def _fcntl(rt) -> None:
    rt.fs.do_fcntl(rt)


@REGISTRY.act("vfs.chdir")
def _chdir(rt) -> None:
    rt.ret(0)


@REGISTRY.act("vfs.close_fd")
def _close_fd(rt) -> None:
    rt.fs.do_close_fd(rt)


@REGISTRY.act("vfs.file_read")
def _file_read(rt) -> None:
    rt.fs.do_file_read(rt)


@REGISTRY.act("vfs.file_write")
def _file_write(rt) -> None:
    rt.fs.do_file_write(rt)


@REGISTRY.act("blk.io")
def _blk_io(rt) -> None:
    rt.fs.block_ios += 1


@REGISTRY.pred("vfs.need_readpage")
def _need_readpage(rt) -> bool:
    return rt.fs.need_readpage(rt)


# --- semantics: per-type dispatch -------------------------------------------


@REGISTRY.slot("vfs.open_op")
def _open_op(rt) -> str:
    return rt.fs.open_op(rt)


@REGISTRY.slot("vfs.lookup_op")
def _lookup_op(rt) -> str:
    return rt.fs.lookup_op(rt)


@REGISTRY.slot("vfs.release_op")
def _release_op(rt) -> str:
    return rt.fs.release_op(rt)


@REGISTRY.slot("vfs.read_op")
def _read_op(rt) -> str:
    return rt.fs.read_op(rt)


@REGISTRY.slot("vfs.write_op")
def _write_op(rt) -> str:
    return rt.fs.write_op(rt)


@REGISTRY.slot("vfs.aio_read_op")
def _aio_read_op(rt) -> str:
    return rt.fs.aio_read_op(rt)


@REGISTRY.slot("vfs.aio_write_op")
def _aio_write_op(rt) -> str:
    return rt.fs.aio_write_op(rt)


@REGISTRY.slot("vfs.readpage_op")
def _readpage_op(rt) -> str:
    return "ext4_readpage"


@REGISTRY.slot("vfs.get_block_op")
def _get_block_op(rt) -> str:
    return "ext4_get_block"


@REGISTRY.slot("vfs.dirty_inode_op")
def _dirty_inode_op(rt) -> str:
    return rt.fs.dirty_inode_op(rt)


@REGISTRY.slot("vfs.write_begin_op")
def _write_begin_op(rt) -> str:
    return rt.fs.write_begin_op(rt)


@REGISTRY.slot("vfs.write_end_op")
def _write_end_op(rt) -> str:
    return rt.fs.write_end_op(rt)


@REGISTRY.slot("vfs.fsync_op")
def _fsync_op(rt) -> str:
    return "ext4_sync_file"


@REGISTRY.slot("vfs.readdir_op")
def _readdir_op(rt) -> str:
    return rt.fs.readdir_op(rt)


@REGISTRY.slot("vfs.ioctl_op")
def _ioctl_op(rt) -> str:
    return rt.fs.ioctl_op(rt)


@REGISTRY.slot("vfs.unlink_op")
def _unlink_op(rt) -> str:
    return "ext4_unlink"


@REGISTRY.slot("vfs.rename_op")
def _rename_op(rt) -> str:
    return "ext4_rename"


@REGISTRY.slot("vfs.mkdir_op")
def _mkdir_op(rt) -> str:
    return "ext4_mkdir"


@REGISTRY.slot("vfs.poll_op")
def _poll_op(rt) -> str:
    return rt.fs.poll_op(rt)


# --- semantics: poll/select scan machinery -----------------------------------


@REGISTRY.pred("poll.wait_loop")
def _poll_wait_loop(rt) -> bool:
    return rt.fs.poll_wait_loop(rt)


@REGISTRY.act("poll.rescan_init")
def _poll_rescan_init(rt) -> None:
    rt.fs.poll_rescan_init(rt)


@REGISTRY.pred("poll.more_fds")
def _poll_more_fds(rt) -> bool:
    return rt.fs.poll_more_fds(rt)


@REGISTRY.act("poll.next_fd")
def _poll_next_fd(rt) -> None:
    rt.fs.poll_next_fd(rt)


@REGISTRY.pred("poll.fd_pollable")
def _poll_fd_pollable(rt) -> bool:
    return rt.fs.poll_fd_pollable(rt)


@REGISTRY.act("poll.record")
def _poll_record(rt) -> None:
    rt.fs.poll_record(rt)


@REGISTRY.pred("poll.should_block")
def _poll_should_block(rt) -> bool:
    return rt.fs.poll_should_block(rt)


@REGISTRY.act("poll.block")
def _poll_block(rt) -> None:
    rt.fs.poll_block(rt)
