"""Miscellaneous: character devices and module loading/unloading.

``sys_init_module`` is how kernel modules -- including the rootkits of
the security evaluation -- enter the guest at run time.
"""

from __future__ import annotations

from repro.kernel.catalog._dsl import A, C, W, kfunc
from repro.kernel.registry import REGISTRY

FUNCTIONS = [
    kfunc("chrdev_open", W(46), C("kmalloc")),
    kfunc("chrdev_read", W(48), A("vfs.file_read"), C("copy_to_user")),
    kfunc("chrdev_write", W(48), C("copy_from_user"), A("vfs.file_write")),
    kfunc("chrdev_ioctl", W(52), A("dev.ioctl")),
    kfunc("chrdev_poll", W(30), A("poll.record")),
    kfunc("chrdev_release", W(26)),
    kfunc(
        "sys_init_module",
        W(74),
        C("security_kernel_module"),
        C("copy_from_user"),
        C("kmalloc"),
        A("module.load"),
        C("printk"),
    ),
    kfunc("sys_delete_module", W(52), A("module.unload"), C("kfree")),
    kfunc("sys_ni_syscall", W(10), A("sys.enosys")),
]


@REGISTRY.act("sys.enosys")
def _enosys(rt) -> None:
    rt.ret(-38)  # -ENOSYS


@REGISTRY.act("dev.ioctl")
def _dev_ioctl(rt) -> None:
    rt.ret(0)


@REGISTRY.act("module.load")
def _module_load(rt) -> None:
    rt.modules_api.load(rt)


@REGISTRY.act("module.unload")
def _module_unload(rt) -> None:
    rt.modules_api.unload(rt)
