"""The ext4 file system (loadable module).

The write path reproduces the paper's Figure 5 chain exactly:
``do_sync_write -> ext4_file_write -> generic_file_aio_write ->
__generic_file_aio_write -> file_update_time -> __mark_inode_dirty ->
ext4_dirty_inode -> __ext4_journal_stop -> __jbd2_log_start_commit``.
"""

from __future__ import annotations

from repro.kernel.catalog._dsl import A, C, W, kfunc
from repro.kernel.registry import REGISTRY

MODULE_NAME = "ext4"

FUNCTIONS = [
    kfunc("ext4_file_open", W(44), C("generic_file_open")),
    kfunc("ext4_lookup", W(76), C("ext4_find_entry")),
    kfunc("ext4_find_entry", W(108), C("ext4_getblk")),
    kfunc("ext4_getblk", W(64), C("ext4_get_blocks"), C("submit_bh")),
    kfunc("ext4_get_blocks", W(118)),
    kfunc("ext4_get_block", W(48), C("ext4_get_blocks")),
    kfunc("ext4_readpage", W(66), C("mpage_readpage")),
    kfunc("ext4_file_write", W(58), C("generic_file_aio_write")),
    kfunc(
        "ext4_dirty_inode",
        W(52),
        C("ext4_journal_start"),
        C("__ext4_journal_stop"),
    ),
    kfunc("ext4_journal_start", W(38), C("jbd2_journal_start")),
    kfunc(
        "__ext4_journal_stop",
        W(48),
        C("jbd2_journal_stop"),
        C("__jbd2_log_start_commit"),
    ),
    kfunc("ext4_da_write_begin", W(84), C("ext4_get_blocks")),
    kfunc("ext4_da_write_end", W(56), C("generic_write_end")),
    kfunc(
        "ext4_sync_file",
        W(64),
        C("jbd2_journal_commit_transaction"),
    ),
    kfunc("ext4_readdir", W(94), C("ext4_getblk")),
    kfunc(
        "ext4_unlink",
        W(86),
        C("ext4_find_entry"),
        C("ext4_journal_start"),
        C("jbd2_journal_dirty_metadata"),
        C("__ext4_journal_stop"),
    ),
    kfunc(
        "ext4_rename",
        W(104),
        C("ext4_find_entry"),
        C("ext4_journal_start"),
        C("jbd2_journal_dirty_metadata"),
        C("__ext4_journal_stop"),
    ),
    kfunc(
        "ext4_mkdir",
        W(92),
        C("ext4_journal_start"),
        C("ext4_get_blocks"),
        C("__ext4_journal_stop"),
    ),
    kfunc("ext4_release_file", W(36)),
    kfunc("ext4_ioctl", W(46), A("dev.ioctl")),
]

_ = REGISTRY
