"""Shorthand DSL for defining catalog kernel functions.

A kernel function is a :class:`repro.isa.assembler.FunctionBody`; these
aliases keep the subsystem catalogs readable::

    kfunc("vfs_read", W(120), C("rw_verify_area"), D("file.read_op"), W(40))

``W`` is filler "computation" measured in bytes of real encoded
instructions; ``C`` a direct call; ``D`` an indirect dispatch through a
named slot; ``A`` a semantic action; ``Cnd``/``Wh`` predicate-guarded
conditional/loop bodies.
"""

from __future__ import annotations

from repro.isa.assembler import (
    Act,
    Call,
    Cond,
    CtxSwitch,
    Dispatch,
    FunctionBody,
    Halt,
    Iret,
    Jump,
    Ret,
    Stmt,
    While,
    Work,
)

#: Multiplier applied to every ``W`` size so kernel functions (and hence
#: profiled kernel-view sizes) land in the paper's hundreds-of-KB range.
WORK_SCALE = 28


def W(nbytes: int) -> Work:  # noqa: N802 - DSL shorthand
    """Scaled filler work."""
    return Work(nbytes * WORK_SCALE)


C = Call
D = Dispatch
A = Act
Cnd = Cond
Wh = While
J = Jump

__all__ = [
    "A",
    "C",
    "Cnd",
    "CtxSwitch",
    "D",
    "FunctionBody",
    "Halt",
    "Iret",
    "J",
    "Ret",
    "W",
    "Wh",
    "kfunc",
]


def kfunc(name: str, *stmts: Stmt, frame: bool = True) -> FunctionBody:
    """Define a kernel function body."""
    return FunctionBody(name, list(stmts), frame=frame)
