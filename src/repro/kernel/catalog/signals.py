"""Signals: registration, queueing, delivery frames, sigreturn.

The Cymothoa case study (paper case study II) relies on this subsystem:
the parasite registers a SIGALRM handler and drives its backdoor from
the timer, so its kernel evidence is ``sys_rt_sigaction``/``sys_setitimer``
plus the delivery path appearing in a kernel view that never used them.
"""

from __future__ import annotations

from repro.kernel.catalog._dsl import A, C, Cnd, W, Wh, kfunc
from repro.kernel.registry import REGISTRY

FUNCTIONS = [
    kfunc("sys_rt_sigaction", W(44), C("copy_from_user"), C("do_sigaction")),
    kfunc("sys_signal", W(30), C("do_sigaction")),
    kfunc("do_sigaction", W(56), A("signal.sigaction")),
    kfunc("sys_kill", W(38), C("group_send_sig_info")),
    kfunc(
        "group_send_sig_info",
        W(48),
        C("security_task_kill"),
        A("signal.stage_kill"),
        C("send_signal"),
    ),
    kfunc("send_signal", W(64), A("signal.queue"), C("complete_signal")),
    kfunc("complete_signal", W(44), C("signal_wake_up")),
    kfunc("signal_wake_up", W(30), C("try_to_wake_up")),
    kfunc("do_notify_resume", W(28), C("do_signal")),
    kfunc(
        "do_signal",
        W(66),
        C("get_signal_to_deliver"),
        Cnd(
            "signal.has_handler",
            [C("setup_frame"), A("signal.push_handler")],
        ),
        Cnd("signal.is_fatal", [A("signal.default_fatal"), C("do_group_exit")]),
        W(12),
    ),
    kfunc("get_signal_to_deliver", W(58), A("signal.dequeue")),
    kfunc("setup_frame", W(76), C("copy_to_user")),
    kfunc(
        "sys_sigreturn",
        W(36),
        A("signal.sigreturn"),
        C("restore_sigcontext"),
    ),
    kfunc("restore_sigcontext", W(42), C("copy_from_user")),
    kfunc("sys_pause", W(26), A("signal.pause"), Wh("signal.pause_wait", [C("schedule")])),
]


# --- semantics -------------------------------------------------------------


@REGISTRY.pred("signal.pending")
def _pending(rt) -> bool:
    return rt.signals.pending(rt.current)


@REGISTRY.act("signal.sigaction")
def _sigaction(rt) -> None:
    rt.signals.do_sigaction(rt)


@REGISTRY.act("signal.stage_kill")
def _stage_kill(rt) -> None:
    rt.signals.stage_kill(rt)


@REGISTRY.act("signal.queue")
def _queue(rt) -> None:
    rt.signals.queue_staged(rt)


@REGISTRY.act("signal.dequeue")
def _dequeue(rt) -> None:
    rt.signals.dequeue(rt)


@REGISTRY.pred("signal.has_handler")
def _has_handler(rt) -> bool:
    return rt.signals.delivering_has_handler(rt)


@REGISTRY.act("signal.push_handler")
def _push_handler(rt) -> None:
    rt.signals.push_handler(rt)


@REGISTRY.pred("signal.is_fatal")
def _is_fatal(rt) -> bool:
    return rt.signals.delivering_is_fatal(rt)


@REGISTRY.act("signal.default_fatal")
def _default_fatal(rt) -> None:
    rt.signals.mark_fatal(rt)


@REGISTRY.act("signal.sigreturn")
def _sigreturn(rt) -> None:
    rt.signals.do_sigreturn(rt)


@REGISTRY.act("signal.pause")
def _pause(rt) -> None:
    rt.signals.do_pause(rt)


@REGISTRY.pred("signal.pause_wait")
def _pause_wait(rt) -> bool:
    return rt.signals.pause_wait(rt)
