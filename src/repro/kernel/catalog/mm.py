"""Memory management: slab allocation, brk/mmap, VMA handling."""

from __future__ import annotations

from repro.kernel.catalog._dsl import A, C, Cnd, W, kfunc
from repro.kernel.registry import REGISTRY

FUNCTIONS = [
    kfunc("kmalloc", W(52), C("__kmalloc")),
    kfunc(
        "__kmalloc",
        W(78),
        Cnd("mm.need_refill", [C("cache_alloc_refill")]),
        W(18),
    ),
    kfunc("cache_alloc_refill", W(116), C("alloc_pages")),
    kfunc("alloc_pages", W(92), C("get_page_from_freelist")),
    kfunc("get_page_from_freelist", W(138)),
    kfunc("kfree", W(48)),
    kfunc("sys_brk", W(48), C("do_brk")),
    kfunc("do_brk", W(88), C("find_vma"), C("vma_merge")),
    kfunc("find_vma", W(42), C("rb_next"), W(8)),
    kfunc("vma_merge", W(70), C("rb_insert_color")),
    kfunc("sys_mmap", W(56), C("do_mmap_pgoff")),
    kfunc(
        "do_mmap_pgoff",
        W(146),
        C("get_unmapped_area"),
        C("find_vma"),
        C("vma_merge"),
        C("kmalloc"),
        Cnd("mm.populate", [C("handle_mm_fault")]),
    ),
    kfunc("get_unmapped_area", W(58)),
    kfunc("sys_munmap", W(38), C("do_munmap")),
    kfunc("do_munmap", W(90), C("find_vma"), C("rb_erase"), C("kfree")),
    kfunc("handle_mm_fault", W(122), C("alloc_pages"), W(28)),
    kfunc("do_page_fault", W(86), C("find_vma"), C("handle_mm_fault")),
    # page cache
    kfunc("find_get_page", W(44), C("radix_tree_lookup")),
    kfunc(
        "add_to_page_cache_lru",
        W(56),
        C("radix_tree_insert"),
        C("lru_cache_add"),
    ),
    kfunc("lru_cache_add", W(36)),
    kfunc("page_cache_alloc", W(30), C("alloc_pages")),
]


# --- semantics -------------------------------------------------------------

_REFILL_PERIOD = 8


@REGISTRY.pred("mm.need_refill")
def _need_refill(rt) -> bool:
    # Every Nth slab allocation goes to the page allocator, approximating
    # slab-cache hit behaviour without modelling real freelists.
    rt.mm_alloc_counter += 1
    return rt.mm_alloc_counter % _REFILL_PERIOD == 0


@REGISTRY.pred("mm.populate")
def _populate(rt) -> bool:
    return bool(rt.arg("populate", True))


@REGISTRY.act("mm.noop")
def _noop(rt) -> None:  # pragma: no cover - placeholder action
    return None


_ = A
