"""TTY layer: line discipline, console output, ptys, keyboard input.

``top``/``bash``/``gvim`` spend their kernel time here; the KBeast case
study sniffs keystrokes flowing through the keyboard -> line-discipline
path while the bash kernel view is enforced.
"""

from __future__ import annotations

from repro.kernel.catalog._dsl import A, C, D, W, Wh, kfunc
from repro.kernel.registry import REGISTRY

FUNCTIONS = [
    kfunc("tty_open", W(54), C("tty_init_dev")),
    kfunc("tty_init_dev", W(46), C("kmalloc")),
    kfunc("tty_read", W(46), C("n_tty_read")),
    kfunc(
        "n_tty_read",
        W(112),
        Wh(
            "tty.read_wait",
            [
                C("prepare_to_wait"),
                A("tty.read_block"),
                C("schedule_timeout"),
                C("finish_wait"),
            ],
        ),
        A("tty.do_read"),
        C("copy_to_user"),
    ),
    kfunc("tty_write", W(46), C("n_tty_write")),
    kfunc(
        "n_tty_write",
        W(94),
        C("copy_from_user"),
        A("tty.do_write"),
        D("tty.out_op"),
    ),
    kfunc("con_write", W(84), C("do_con_write")),
    kfunc("do_con_write", W(106)),
    kfunc("pty_write", W(48), A("tty.pty_forward"), C("__wake_up_sync")),
    kfunc("tty_poll", W(38), A("poll.record")),
    kfunc("tty_ioctl", W(66), A("tty.ioctl")),
    kfunc("tty_release", W(38), C("kfree")),
    # keyboard input path (interrupt context)
    kfunc("atkbd_interrupt", W(58), C("kbd_event")),
    kfunc("kbd_event", W(76), C("tty_insert_flip_char")),
    kfunc("tty_insert_flip_char", W(36), A("tty.input"), C("flush_to_ldisc")),
    kfunc("flush_to_ldisc", W(54), C("n_tty_receive_buf")),
    kfunc("n_tty_receive_buf", W(88), A("tty.cook"), C("__wake_up_sync")),
]


# --- semantics -------------------------------------------------------------


@REGISTRY.pred("tty.read_wait")
def _tty_read_wait(rt) -> bool:
    return rt.tty.read_wait(rt)


@REGISTRY.act("tty.read_block")
def _tty_read_block(rt) -> None:
    rt.tty.read_block(rt)


@REGISTRY.act("tty.do_read")
def _tty_do_read(rt) -> None:
    rt.tty.do_read(rt)


@REGISTRY.act("tty.do_write")
def _tty_do_write(rt) -> None:
    rt.tty.do_write(rt)


@REGISTRY.slot("tty.out_op")
def _tty_out_op(rt) -> str:
    return rt.tty.out_op(rt)


@REGISTRY.act("tty.pty_forward")
def _tty_pty_forward(rt) -> None:
    rt.tty.pty_forward(rt)


@REGISTRY.act("tty.ioctl")
def _tty_ioctl(rt) -> None:
    rt.ret(0)


@REGISTRY.act("tty.input")
def _tty_input(rt) -> None:
    rt.tty.on_input(rt)


@REGISTRY.act("tty.cook")
def _tty_cook(rt) -> None:
    rt.tty.cook(rt)
