"""procfs: the memory-backed file system that ``top`` lives on.

The paper's motivating contrast -- ``top`` reads statistics from procfs
and writes to the tty, while Apache needs the network stack -- depends on
these paths being disjoint from ext4's.
"""

from __future__ import annotations

from repro.kernel.catalog._dsl import A, C, W, kfunc
from repro.kernel.registry import REGISTRY

FUNCTIONS = [
    kfunc("proc_root_lookup", W(56), C("proc_pid_lookup")),
    kfunc("proc_pid_lookup", W(72)),
    kfunc("proc_reg_open", W(48), C("single_open")),
    kfunc("single_open", W(38), C("kmalloc")),
    kfunc("proc_reg_read", W(42), C("seq_read")),
    kfunc(
        "seq_read",
        W(96),
        A("vfs.file_read"),
        C("seq_printf"),
        C("copy_to_user"),
    ),
    kfunc("seq_printf", W(30), C("vsnprintf")),
    kfunc("proc_reg_release", W(28), C("single_release")),
    kfunc("single_release", W(20), C("kfree")),
    kfunc("proc_pid_readdir", W(78), C("proc_fill_cache")),
    kfunc("proc_fill_cache", W(62)),
]

_ = REGISTRY
_ = A
