"""Anonymous pipes: the subsystem behind the paper's Figure 3 example.

``pipe_poll`` / ``sys_poll`` / ``do_sys_poll`` are the functions involved
in the cross-view recovery bug the paper describes, and the Pipe-based
Context Switching UnixBench subtest (the one workload FACE-CHANGE visibly
slows down, Figure 6) lives entirely on this path.
"""

from __future__ import annotations

from repro.kernel.catalog._dsl import A, C, W, Wh, kfunc
from repro.kernel.registry import REGISTRY

FUNCTIONS = [
    kfunc("sys_pipe", W(30), C("do_pipe")),
    kfunc(
        "do_pipe",
        W(66),
        C("get_unused_fd"),
        C("get_unused_fd"),
        C("kmalloc"),
        A("pipe.create"),
    ),
    kfunc(
        "pipe_read",
        W(64),
        C("mutex_lock"),
        Wh(
            "pipe.read_wait",
            [
                A("pipe.read_block"),
                C("mutex_unlock"),
                C("schedule"),
                C("mutex_lock"),
            ],
        ),
        A("pipe.do_read"),
        C("__wake_up_sync"),
        C("mutex_unlock"),
        C("copy_to_user"),
    ),
    kfunc(
        "pipe_write",
        W(60),
        C("mutex_lock"),
        C("copy_from_user"),
        Wh(
            "pipe.write_wait",
            [
                A("pipe.write_block"),
                C("mutex_unlock"),
                C("schedule"),
                C("mutex_lock"),
            ],
        ),
        A("pipe.do_write"),
        C("__wake_up_sync"),
        C("mutex_unlock"),
    ),
    kfunc("pipe_poll", W(52), A("poll.record")),
    kfunc(
        "pipe_release",
        W(42),
        A("pipe.release"),
        C("__wake_up_sync"),
        C("kfree"),
    ),
]


# --- semantics -------------------------------------------------------------


@REGISTRY.act("pipe.create")
def _pipe_create(rt) -> None:
    rt.fs.pipe_create(rt)


@REGISTRY.pred("pipe.read_wait")
def _pipe_read_wait(rt) -> bool:
    return rt.fs.pipe_read_wait(rt)


@REGISTRY.act("pipe.read_block")
def _pipe_read_block(rt) -> None:
    rt.fs.pipe_read_block(rt)


@REGISTRY.act("pipe.do_read")
def _pipe_do_read(rt) -> None:
    rt.fs.pipe_do_read(rt)


@REGISTRY.pred("pipe.write_wait")
def _pipe_write_wait(rt) -> bool:
    return rt.fs.pipe_write_wait(rt)


@REGISTRY.act("pipe.write_block")
def _pipe_write_block(rt) -> None:
    rt.fs.pipe_write_block(rt)


@REGISTRY.act("pipe.do_write")
def _pipe_do_write(rt) -> None:
    rt.fs.pipe_do_write(rt)


@REGISTRY.act("pipe.release")
def _pipe_release(rt) -> None:
    rt.fs.pipe_release(rt)
