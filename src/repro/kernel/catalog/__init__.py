"""Aggregated kernel function catalog.

``BASE_FUNCTIONS`` defines the base kernel text in layout order;
``MODULES`` maps module name to its function list (load order matters:
jbd2 must precede ext4 because ext4 links against it directly).
"""

from __future__ import annotations

from typing import Dict, List

from repro.isa.assembler import FunctionBody
from repro.kernel.catalog import (
    e1000,
    epoll,
    entry,
    ext4,
    jbd2,
    ktime,
    lib,
    misc,
    mm,
    net,
    pipefs,
    process,
    procfs,
    sched,
    security,
    signals,
    tty,
    vfs,
)

#: Base kernel text, in layout order.
BASE_FUNCTIONS: List[FunctionBody] = (
    entry.FUNCTIONS
    + lib.FUNCTIONS
    + sched.FUNCTIONS
    + ktime.FUNCTIONS
    + mm.FUNCTIONS
    + vfs.FUNCTIONS
    + epoll.FUNCTIONS
    + pipefs.FUNCTIONS
    + procfs.FUNCTIONS
    + security.FUNCTIONS
    + net.FUNCTIONS
    + tty.FUNCTIONS
    + signals.FUNCTIONS
    + process.FUNCTIONS
    + misc.FUNCTIONS
)

#: Loadable modules shipped with the guest, in load order.
MODULES: Dict[str, List[FunctionBody]] = {
    jbd2.MODULE_NAME: jbd2.FUNCTIONS,
    ext4.MODULE_NAME: ext4.FUNCTIONS,
    e1000.MODULE_NAME: e1000.FUNCTIONS,
}

__all__ = ["BASE_FUNCTIONS", "MODULES"]
