"""Entry/exit paths: syscall entry, interrupt entry, idle, fork return.

``syscall_call`` dispatches through the syscall-table slot (the indirect
``call *sys_call_table(,%eax,4)`` the paper's Figure 3 shows), and the
return path funnels through ``resume_userspace`` -- the address
FACE-CHANGE traps to perform the deferred kernel-view switch.
"""

from __future__ import annotations

from repro.kernel.catalog._dsl import A, C, Cnd, D, Halt, Iret, J, W, Wh, kfunc
from repro.kernel.registry import REGISTRY

FUNCTIONS = [
    kfunc(
        "syscall_call",
        D("syscall_table"),
        W(6),
        J("resume_userspace"),
    ),
    kfunc(
        "resume_userspace",
        Cnd("signal.pending", [C("do_notify_resume")]),
        Cnd("sched.need_resched", [C("schedule")]),
        W(4),
        Iret(),
    ),
    kfunc(
        "irq_entry",
        A("irq.enter"),
        C("do_IRQ"),
        Cnd("irq.softirq_pending", [C("__do_softirq")]),
        A("irq.exit"),
        Cnd("irq.return_to_user", [J("resume_userspace")]),
        Iret(),
    ),
    kfunc(
        "do_IRQ",
        W(28),
        C("handle_irq_event"),
        W(8),
    ),
    kfunc(
        "handle_irq_event",
        W(24),
        D("irq.vector"),
        W(6),
    ),
    kfunc(
        "__do_softirq",
        W(44),
        Wh(
            "irq.softirq_pending",
            [
                Cnd("softirq.timer", [A("softirq.take_timer"), C("run_timer_softirq")]),
                Cnd("softirq.net_rx", [A("softirq.take_net"), C("net_rx_action")]),
            ],
        ),
        W(10),
    ),
    kfunc(
        "ret_from_fork",
        A("task.finish_fork"),
        W(6),
        J("resume_userspace"),
    ),
    kfunc(
        "cpu_idle",
        Wh(
            "sched.idle_forever",
            [
                Cnd("sched.need_resched", [C("schedule")]),
                Halt(),
                W(4),
            ],
        ),
    ),
]


# --- semantics -------------------------------------------------------------


@REGISTRY.pred("irq.softirq_pending")
def _softirq_pending(rt) -> bool:
    return bool(rt.softirq_pending) and not rt.in_interrupt_handler


@REGISTRY.pred("softirq.timer")
def _softirq_timer(rt) -> bool:
    return "timer" in rt.softirq_pending


@REGISTRY.pred("softirq.net_rx")
def _softirq_net_rx(rt) -> bool:
    return "net_rx" in rt.softirq_pending


@REGISTRY.act("softirq.take_timer")
def _take_timer(rt) -> None:
    rt.softirq_pending.discard("timer")


@REGISTRY.act("softirq.take_net")
def _take_net(rt) -> None:
    rt.softirq_pending.discard("net_rx")


@REGISTRY.act("irq.enter")
def _irq_enter(rt) -> None:
    rt.irq_enter()


@REGISTRY.act("irq.exit")
def _irq_exit(rt) -> None:
    rt.irq_exit()


@REGISTRY.pred("irq.return_to_user")
def _irq_return_to_user(rt) -> bool:
    return rt.irq_returns_to_user()


@REGISTRY.slot("irq.vector")
def _irq_vector(rt) -> str:
    return rt.current_irq_handler()


@REGISTRY.slot("syscall_table")
def _syscall_table(rt) -> str:
    return rt.syscall_handler_symbol()


@REGISTRY.pred("sched.idle_forever")
def _idle_forever(rt) -> bool:
    return True


@REGISTRY.act("task.finish_fork")
def _finish_fork(rt) -> None:
    rt.finish_fork()
