"""Networking: sockets, UDP/TCP/UNIX/packet families, RX/TX paths.

The UDP receive chain (``sys_recvfrom -> sock_recvmsg ->
security_socket_recvmsg -> ... -> udp_recvmsg -> __skb_recv_datagram ->
prepare_to_wait_exclusive``) and the bind chain are reproduced
function-for-function from the paper's Figure 4, because the Injectso
case study's detection evidence is exactly this sequence appearing in
``top``'s recovery log.
"""

from __future__ import annotations

from repro.kernel.catalog._dsl import A, C, Cnd, D, W, Wh, kfunc
from repro.kernel.registry import REGISTRY

FUNCTIONS = [
    # socket creation
    kfunc("sys_socket", W(48), C("sock_create"), C("sock_map_fd")),
    kfunc(
        "sock_create",
        W(58),
        C("security_socket_create"),
        D("net.create_op"),
        W(18),
    ),
    kfunc(
        "inet_create",
        W(108),
        C("sk_alloc"),
        Cnd("net.is_stream", [C("tcp_v4_init_sock")]),
        A("net.create"),
    ),
    kfunc("tcp_v4_init_sock", W(66)),
    kfunc("packet_create", W(78), C("sk_alloc"), A("net.create")),
    kfunc("unix_create", W(68), C("sk_alloc"), A("net.create")),
    kfunc("sk_alloc", W(56), C("kmalloc")),
    kfunc("sock_map_fd", W(48), C("get_unused_fd"), A("net.install_fd")),
    kfunc("sockfd_lookup", W(28), C("fget_light")),
    # bind / listen / accept / connect
    kfunc(
        "sys_bind",
        W(38),
        C("sockfd_lookup"),
        C("security_socket_bind"),
        D("net.bind_op"),
        W(12),
    ),
    kfunc(
        "inet_bind",
        W(88),
        C("inet_addr_type"),
        C("lock_sock_nested"),
        D("net.get_port_op"),
        C("release_sock"),
    ),
    kfunc("inet_addr_type", W(52)),
    kfunc("lock_sock_nested", W(30)),
    kfunc("release_sock", W(32)),
    kfunc("udp_v4_get_port", W(28), C("udp_lib_get_port")),
    kfunc("udp_lib_get_port", W(68), C("udp_lib_lport_inuse"), A("net.bind")),
    kfunc("udp_lib_lport_inuse", W(48)),
    kfunc("inet_csk_get_port", W(76), A("net.bind")),
    kfunc("packet_bind", W(54), A("net.bind"), A("net.tap_enable")),
    kfunc("unix_bind", W(58), A("net.bind")),
    kfunc(
        "sys_listen",
        W(30),
        C("sockfd_lookup"),
        C("security_socket_listen"),
        C("inet_listen"),
    ),
    kfunc("inet_listen", W(56), A("net.listen")),
    kfunc(
        "sys_accept",
        W(46),
        C("sockfd_lookup"),
        C("security_socket_accept"),
        C("inet_csk_accept"),
        C("sock_map_fd"),
    ),
    kfunc(
        "inet_csk_accept",
        W(66),
        C("lock_sock_nested"),
        Wh(
            "net.accept_wait",
            [A("net.accept_block"), C("schedule_timeout")],
        ),
        A("net.do_accept"),
        C("release_sock"),
    ),
    kfunc(
        "sys_connect",
        W(38),
        C("sockfd_lookup"),
        C("security_socket_connect"),
        D("net.connect_op"),
    ),
    kfunc(
        "inet_stream_connect",
        W(64),
        C("lock_sock_nested"),
        C("tcp_v4_connect"),
        A("net.connect"),
        C("release_sock"),
    ),
    kfunc("tcp_v4_connect", W(112), C("ip_route_output"), C("tcp_connect")),
    kfunc("tcp_connect", W(84), C("tcp_transmit_skb")),
    kfunc("ip4_datagram_connect", W(56), C("ip_route_output"), A("net.connect")),
    kfunc("unix_stream_connect", W(74), A("net.connect")),
    kfunc("ip_route_output", W(84), C("fib_lookup")),
    kfunc("fib_lookup", W(66)),
    # send
    kfunc("sys_sendto", W(46), C("sockfd_lookup"), C("sock_sendmsg")),
    kfunc("sock_sendmsg", W(38), C("security_socket_sendmsg"), D("net.sendmsg_op")),
    kfunc(
        "tcp_sendmsg",
        W(142),
        C("lock_sock_nested"),
        C("sk_stream_alloc_skb"),
        C("tcp_push"),
        A("net.send"),
        C("release_sock"),
    ),
    kfunc("sk_stream_alloc_skb", W(46), C("__alloc_skb")),
    kfunc("__alloc_skb", W(58), C("kmalloc")),
    kfunc("tcp_push", W(38), C("tcp_transmit_skb")),
    kfunc("tcp_transmit_skb", W(104), C("ip_queue_xmit")),
    kfunc("ip_queue_xmit", W(92), C("ip_route_output"), C("dev_queue_xmit")),
    kfunc("dev_queue_xmit", W(74), D("net.xmit_op")),
    kfunc("loopback_xmit", W(38), C("netif_rx")),
    kfunc("netif_rx", W(42), A("net.backlog_enqueue"), A("net.raise_rx_softirq")),
    kfunc(
        "udp_sendmsg",
        W(122),
        Cnd("net.needs_autobind", [C("inet_autobind")]),
        C("ip_route_output"),
        C("__alloc_skb"),
        C("udp_push_pending_frames"),
        A("net.send"),
    ),
    kfunc("inet_autobind", W(36), C("lock_sock_nested"), C("udp_v4_get_port"), C("release_sock"), A("net.autobind")),
    kfunc("udp_push_pending_frames", W(54), C("ip_queue_xmit")),
    kfunc(
        "unix_stream_sendmsg",
        W(86),
        C("__alloc_skb"),
        A("net.send_local"),
        C("__wake_up_sync"),
    ),
    kfunc("packet_sendmsg", W(72), C("__alloc_skb"), C("dev_queue_xmit"), A("net.send")),
    # receive
    kfunc("sys_recvfrom", W(46), C("sockfd_lookup"), C("sock_recvmsg")),
    kfunc("sock_recvmsg", W(38), C("security_socket_recvmsg"), D("net.recvmsg_op")),
    kfunc("sock_common_recvmsg", W(28), C("udp_recvmsg")),
    kfunc(
        "udp_recvmsg",
        W(94),
        C("__skb_recv_datagram"),
        A("net.recv"),
        C("copy_to_user"),
    ),
    kfunc(
        "__skb_recv_datagram",
        W(68),
        Wh(
            "net.rx_wait",
            [
                C("prepare_to_wait_exclusive"),
                A("net.rx_block"),
                C("schedule_timeout"),
                C("finish_wait"),
            ],
        ),
        W(14),
    ),
    kfunc(
        "tcp_recvmsg",
        W(134),
        C("lock_sock_nested"),
        Wh("net.rx_wait", [C("sk_wait_data")]),
        A("net.recv"),
        C("copy_to_user"),
        C("release_sock"),
    ),
    kfunc(
        "sk_wait_data",
        W(48),
        C("prepare_to_wait"),
        A("net.rx_block"),
        C("schedule_timeout"),
        C("finish_wait"),
    ),
    kfunc(
        "packet_recvmsg",
        W(74),
        C("__skb_recv_datagram"),
        A("net.recv"),
        C("copy_to_user"),
    ),
    kfunc(
        "unix_stream_recvmsg",
        W(82),
        Wh(
            "net.rx_wait",
            [
                C("prepare_to_wait"),
                A("net.rx_block"),
                C("schedule_timeout"),
                C("finish_wait"),
            ],
        ),
        A("net.recv"),
    ),
    # socket misc
    kfunc("sys_setsockopt", W(36), C("sockfd_lookup"), A("net.setsockopt")),
    kfunc("sys_getsockopt", W(32), C("sockfd_lookup"), A("net.getsockopt")),
    kfunc("sys_shutdown", W(28), C("sockfd_lookup"), A("net.shutdown")),
    kfunc("sock_close", W(36), D("net.release_op"), W(10)),
    kfunc("inet_release", W(52), A("net.release")),
    kfunc("packet_release", W(44), A("net.release"), A("net.tap_disable")),
    kfunc("unix_release", W(46), A("net.release")),
    kfunc("sock_ioctl", W(38), A("net.ioctl")),
    kfunc("sock_poll", W(34), D("net.poll_proto_op")),
    kfunc("tcp_poll", W(58), A("poll.record")),
    kfunc("datagram_poll", W(48), A("poll.record")),
    kfunc("unix_poll", W(42), A("poll.record")),
    kfunc("sock_aio_read", W(44), C("sock_recvmsg")),
    kfunc("sock_aio_write", W(44), C("sock_sendmsg")),
    # RX softirq + protocol demux
    kfunc(
        "net_rx_action",
        W(54),
        Wh("net.backlog_nonempty", [C("process_backlog")]),
    ),
    kfunc("process_backlog", W(44), A("net.backlog_pop"), C("netif_receive_skb")),
    kfunc(
        "netif_receive_skb",
        W(64),
        Cnd("net.tap_active", [C("packet_rcv")]),
        C("ip_rcv"),
    ),
    kfunc("packet_rcv", W(72), C("skb_clone"), A("net.tap_deliver"), C("sock_def_readable")),
    kfunc("skb_clone", W(38), C("kmalloc")),
    kfunc("ip_rcv", W(74), C("ip_local_deliver")),
    kfunc("ip_local_deliver", W(46), D("net.proto_rcv_op")),
    kfunc("udp_rcv", W(82), C("udp_queue_rcv_skb")),
    kfunc("udp_queue_rcv_skb", W(54), A("net.deliver"), C("sock_def_readable")),
    kfunc(
        "tcp_v4_rcv",
        W(118),
        Cnd("net.pkt_is_syn", [C("tcp_v4_conn_request")]),
        Cnd("net.pkt_is_data", [C("tcp_rcv_established")]),
    ),
    kfunc("tcp_v4_conn_request", W(86), A("net.enqueue_accept"), C("sock_def_readable")),
    kfunc("tcp_rcv_established", W(104), A("net.deliver"), C("sock_def_readable")),
    kfunc("sock_def_readable", W(28), C("__wake_up_sync")),
]


# --- semantics -------------------------------------------------------------


@REGISTRY.slot("net.create_op")
def _create_op(rt) -> str:
    return rt.net.create_op(rt)


@REGISTRY.pred("net.is_stream")
def _is_stream(rt) -> bool:
    return rt.arg("stype", "stream") == "stream"


@REGISTRY.act("net.create")
def _create(rt) -> None:
    rt.net.do_create(rt)


@REGISTRY.act("net.install_fd")
def _install_fd(rt) -> None:
    rt.net.do_install_fd(rt)


@REGISTRY.slot("net.bind_op")
def _bind_op(rt) -> str:
    return rt.net.bind_op(rt)


@REGISTRY.slot("net.get_port_op")
def _get_port_op(rt) -> str:
    return rt.net.get_port_op(rt)


@REGISTRY.act("net.bind")
def _bind(rt) -> None:
    rt.net.do_bind(rt)


@REGISTRY.pred("net.needs_autobind")
def _needs_autobind(rt) -> bool:
    sock = rt.net._sock(rt)
    return sock is not None and sock.bound_port is None


@REGISTRY.act("net.autobind")
def _autobind(rt) -> None:
    rt.net.do_autobind(rt)


@REGISTRY.act("net.tap_enable")
def _tap_enable(rt) -> None:
    rt.net.do_tap_enable(rt)


@REGISTRY.act("net.tap_disable")
def _tap_disable(rt) -> None:
    rt.net.do_tap_disable(rt)


@REGISTRY.act("net.listen")
def _listen(rt) -> None:
    rt.net.do_listen(rt)


@REGISTRY.pred("net.accept_wait")
def _accept_wait(rt) -> bool:
    return rt.net.accept_wait(rt)


@REGISTRY.act("net.accept_block")
def _accept_block(rt) -> None:
    rt.net.accept_block(rt)


@REGISTRY.act("net.do_accept")
def _do_accept(rt) -> None:
    rt.net.do_accept(rt)


@REGISTRY.slot("net.connect_op")
def _connect_op(rt) -> str:
    return rt.net.connect_op(rt)


@REGISTRY.act("net.connect")
def _connect(rt) -> None:
    rt.net.do_connect(rt)


@REGISTRY.slot("net.sendmsg_op")
def _sendmsg_op(rt) -> str:
    return rt.net.sendmsg_op(rt)


@REGISTRY.act("net.send")
def _send(rt) -> None:
    rt.net.do_send(rt)


@REGISTRY.act("net.send_local")
def _send_local(rt) -> None:
    rt.net.do_send_local(rt)


@REGISTRY.slot("net.recvmsg_op")
def _recvmsg_op(rt) -> str:
    return rt.net.recvmsg_op(rt)


@REGISTRY.pred("net.rx_wait")
def _rx_wait(rt) -> bool:
    return rt.net.rx_wait(rt)


@REGISTRY.act("net.rx_block")
def _rx_block(rt) -> None:
    rt.net.rx_block(rt)


@REGISTRY.act("net.recv")
def _recv(rt) -> None:
    rt.net.do_recv(rt)


@REGISTRY.act("net.setsockopt")
def _setsockopt(rt) -> None:
    rt.ret(0)


@REGISTRY.act("net.getsockopt")
def _getsockopt(rt) -> None:
    rt.ret(0)


@REGISTRY.act("net.shutdown")
def _shutdown(rt) -> None:
    rt.net.do_shutdown(rt)


@REGISTRY.slot("net.release_op")
def _release_op(rt) -> str:
    return rt.net.release_op(rt)


@REGISTRY.act("net.release")
def _release(rt) -> None:
    rt.net.do_release(rt)


@REGISTRY.act("net.ioctl")
def _ioctl(rt) -> None:
    rt.ret(0)


@REGISTRY.slot("net.poll_proto_op")
def _poll_proto_op(rt) -> str:
    return rt.net.poll_proto_op(rt)


@REGISTRY.slot("net.xmit_op")
def _xmit_op(rt) -> str:
    return rt.net.xmit_op(rt)


@REGISTRY.act("net.backlog_enqueue")
def _backlog_enqueue(rt) -> None:
    rt.net.backlog_enqueue(rt)


@REGISTRY.act("net.raise_rx_softirq")
def _raise_rx_softirq(rt) -> None:
    rt.softirq_pending.add("net_rx")


@REGISTRY.pred("net.backlog_nonempty")
def _backlog_nonempty(rt) -> bool:
    return rt.net.backlog_nonempty(rt)


@REGISTRY.act("net.backlog_pop")
def _backlog_pop(rt) -> None:
    rt.net.backlog_pop(rt)


@REGISTRY.pred("net.tap_active")
def _tap_active(rt) -> bool:
    return rt.net.tap_active(rt)


@REGISTRY.act("net.tap_deliver")
def _tap_deliver(rt) -> None:
    rt.net.tap_deliver(rt)


@REGISTRY.slot("net.proto_rcv_op")
def _proto_rcv_op(rt) -> str:
    return rt.net.proto_rcv_op(rt)


@REGISTRY.pred("net.pkt_is_syn")
def _pkt_is_syn(rt) -> bool:
    return rt.net.pkt_is_syn(rt)


@REGISTRY.pred("net.pkt_is_data")
def _pkt_is_data(rt) -> bool:
    return rt.net.pkt_is_data(rt)


@REGISTRY.act("net.enqueue_accept")
def _enqueue_accept(rt) -> None:
    rt.net.enqueue_accept(rt)


@REGISTRY.act("net.deliver")
def _deliver(rt) -> None:
    rt.net.deliver(rt)
