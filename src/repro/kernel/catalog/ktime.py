"""Timekeeping: clocksources, the timer interrupt, timers and sleeps.

The clocksource is selected by platform through the
``time.clocksource_read`` dispatch slot: under QEMU (the profiling
emulator) it resolves to the TSC path, under KVM (the runtime
hypervisor) to the kvm-clock paravirtual path.  This reproduces the
paper's Section III-B3 example: the chain ``kvm_clock_get_cycles ->
kvm_clock_read -> pvclock_clocksource_read -> native_read_tsc`` can never
be profiled under QEMU and must be recovered at run time.
"""

from __future__ import annotations

from repro.kernel.catalog._dsl import A, C, D, W, Wh, kfunc
from repro.kernel.registry import REGISTRY

FUNCTIONS = [
    # clocksources
    kfunc("native_read_tsc", W(12)),
    kfunc("read_tsc", W(14), C("native_read_tsc")),
    kfunc("pvclock_clocksource_read", W(42), C("native_read_tsc")),
    kfunc("kvm_clock_read", W(18), C("pvclock_clocksource_read")),
    kfunc("kvm_clock_get_cycles", W(10), C("kvm_clock_read")),
    kfunc("ktime_get", W(32), D("time.clocksource_read")),
    kfunc("getnstimeofday", W(30), D("time.clocksource_read")),
    kfunc("do_gettimeofday", W(22), C("getnstimeofday")),
    kfunc("sys_gettimeofday", W(30), C("do_gettimeofday"), C("copy_to_user")),
    kfunc("sys_time", W(16), C("do_gettimeofday")),
    kfunc(
        "sys_clock_gettime",
        W(28),
        C("ktime_get"),
        C("copy_to_user"),
    ),
    # the periodic tick
    kfunc("timer_interrupt", W(30), C("tick_handle_periodic")),
    kfunc(
        "tick_handle_periodic",
        W(40),
        C("ktime_get"),
        C("do_timer"),
        C("update_process_times"),
    ),
    kfunc("do_timer", W(34)),
    kfunc(
        "update_process_times",
        W(30),
        C("account_process_tick"),
        C("run_local_timers"),
        C("scheduler_tick"),
    ),
    kfunc("account_process_tick", W(44)),
    kfunc("run_local_timers", W(18), C("raise_softirq")),
    kfunc("raise_softirq", W(16), A("time.raise_timer_softirq")),
    kfunc(
        "run_timer_softirq",
        W(56),
        A("time.run_timers"),
        Wh("time.itimer_fired", [C("it_real_fn")]),
        W(12),
    ),
    kfunc("it_real_fn", W(26), C("send_signal")),
    # sleeping
    kfunc("sys_nanosleep", W(38), C("hrtimer_nanosleep")),
    kfunc(
        "hrtimer_nanosleep",
        W(52),
        A("time.set_sleep"),
        C("schedule_timeout"),
    ),
    kfunc(
        "schedule_timeout",
        W(40),
        Wh("time.sleep_wait", [C("schedule")]),
        W(12),
    ),
    # interval timers
    kfunc("sys_setitimer", W(38), C("do_setitimer")),
    kfunc("do_setitimer", W(56), A("time.set_itimer"), W(14)),
    kfunc("sys_alarm", W(28), A("time.set_alarm"), C("do_setitimer")),
    kfunc("sys_times", W(26), C("account_process_tick"), C("copy_to_user")),
]


# --- semantics -------------------------------------------------------------


@REGISTRY.slot("time.clocksource_read")
def _clocksource_read(rt) -> str:
    if rt.platform == "kvm":
        return "kvm_clock_get_cycles"
    return "read_tsc"


@REGISTRY.act("time.raise_timer_softirq")
def _raise_timer_softirq(rt) -> None:
    rt.softirq_pending.add("timer")


@REGISTRY.act("time.run_timers")
def _run_timers(rt) -> None:
    rt.time.run_expired(rt)


@REGISTRY.pred("time.itimer_fired")
def _itimer_fired(rt) -> bool:
    # Pops one fired interval timer and stages its SIGALRM for the
    # ``send_signal`` call inside ``it_real_fn``.
    return rt.time.pop_fired(rt)


@REGISTRY.act("time.set_sleep")
def _set_sleep(rt) -> None:
    cycles = int(rt.arg("cycles", 10_000))
    rt.time.sleep_current(rt, cycles)


@REGISTRY.pred("time.sleep_wait")
def _sleep_wait(rt) -> bool:
    return rt.time.still_sleeping(rt)


@REGISTRY.act("time.set_itimer")
def _set_itimer(rt) -> None:
    interval = int(rt.arg("interval", 0))
    rt.time.set_itimer(rt, interval)
    rt.ret(0)


@REGISTRY.act("time.set_alarm")
def _set_alarm(rt) -> None:
    delay = int(rt.arg("delay", 0))
    rt.time.set_alarm(rt, delay)
    rt.ret(0)
