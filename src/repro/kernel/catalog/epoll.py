"""The epoll event interface (used by modern event-loop applications).

``ep_poll`` reuses the generic poll scan machinery: the watched fd set
is seeded from the eventpoll object instead of syscall arguments, then
readiness scanning and blocking work exactly as ``do_poll`` does.
"""

from __future__ import annotations

from repro.kernel.catalog._dsl import A, C, Cnd, D, W, Wh, kfunc
from repro.kernel.registry import REGISTRY

FUNCTIONS = [
    kfunc(
        "sys_epoll_create",
        W(36),
        C("anon_inode_getfile"),
        A("epoll.create"),
    ),
    kfunc("anon_inode_getfile", W(44), C("get_unused_fd"), C("kmalloc")),
    kfunc(
        "sys_epoll_ctl",
        W(40),
        C("fget_light"),
        A("epoll.ctl"),
        C("ep_insert"),
        C("fput"),
    ),
    kfunc("ep_insert", W(66), C("kmalloc"), C("rb_insert_color")),
    kfunc(
        "sys_epoll_wait",
        W(44),
        C("fget_light"),
        C("ep_poll"),
        C("copy_to_user"),
        C("fput"),
    ),
    kfunc(
        "ep_poll",
        W(70),
        A("epoll.begin_wait"),
        Wh(
            "poll.wait_loop",
            [
                A("poll.rescan_init"),
                Wh(
                    "poll.more_fds",
                    [
                        A("poll.next_fd"),
                        Cnd("poll.fd_pollable", [D("vfs.poll_op")]),
                    ],
                ),
                Cnd("poll.should_block", [A("poll.block"), C("schedule_timeout")]),
            ],
        ),
        W(16),
    ),
    kfunc("eventpoll_release", W(30), C("rb_erase"), C("kfree")),
]


@REGISTRY.act("epoll.create")
def _epoll_create(rt) -> None:
    rt.fs.epoll_create(rt)


@REGISTRY.act("epoll.ctl")
def _epoll_ctl(rt) -> None:
    rt.fs.epoll_ctl(rt)


@REGISTRY.act("epoll.begin_wait")
def _epoll_begin_wait(rt) -> None:
    rt.fs.epoll_begin_wait(rt)
