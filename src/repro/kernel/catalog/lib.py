"""Kernel library routines: string ops, formatting, user copies, locks.

``strnlen``/``vsnprintf``/``snprintf`` exist (with their real call
structure) because the KBeast case study (Figure 5) recovers exactly that
chain when the rootkit formats sniffed keystrokes.
"""

from __future__ import annotations

from repro.kernel.catalog._dsl import A, C, W, kfunc
from repro.kernel.registry import REGISTRY

FUNCTIONS = [
    kfunc("memcpy", W(44)),
    kfunc("memset", W(32)),
    kfunc("strlen", W(14)),
    kfunc("strnlen", W(24)),
    kfunc("strcmp", W(22)),
    kfunc("strcpy", W(18)),
    kfunc("strncpy", W(26)),
    kfunc("vsnprintf", W(176), C("strnlen"), C("memcpy"), W(48)),
    kfunc("snprintf", W(26), C("vsnprintf")),
    kfunc("sprintf", W(22), C("vsnprintf")),
    kfunc("printk", W(58), C("vsnprintf"), W(22)),
    kfunc("copy_to_user", W(30), C("memcpy")),
    kfunc("copy_from_user", W(30), C("memcpy")),
    kfunc("mutex_lock", W(22)),
    kfunc("mutex_unlock", W(18)),
    kfunc("_spin_lock", W(12)),
    kfunc("_spin_unlock", W(10)),
    kfunc("prepare_to_wait", W(28)),
    kfunc("prepare_to_wait_exclusive", W(32)),
    kfunc("finish_wait", W(22)),
    # generic data structures shared by mm/vfs/net
    kfunc("radix_tree_lookup", W(46)),
    kfunc("radix_tree_insert", W(58)),
    kfunc("rb_insert_color", W(52)),
    kfunc("rb_erase", W(48)),
    kfunc("rb_next", W(18)),
    kfunc("idr_get_new", W(40)),
]

# lib has no semantics; the registry import keeps the module signature
# uniform with the other catalog files.
_ = REGISTRY
_ = A
