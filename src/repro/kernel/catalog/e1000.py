"""The e1000 NIC driver (loadable module).

Inbound packets injected by workload drivers raise the NIC interrupt;
``e1000_clean_rx_irq`` drains the ring into ``netif_receive_skb``.
"""

from __future__ import annotations

from repro.kernel.catalog._dsl import A, C, W, Wh, kfunc
from repro.kernel.registry import REGISTRY

MODULE_NAME = "e1000"

FUNCTIONS = [
    kfunc("e1000_intr", W(54), C("e1000_clean")),
    kfunc(
        "e1000_clean",
        W(78),
        C("e1000_clean_rx_irq"),
        C("e1000_clean_tx_irq"),
    ),
    kfunc(
        "e1000_clean_rx_irq",
        W(92),
        Wh(
            "net.nic_has_rx",
            [A("net.nic_pop"), C("netif_receive_skb")],
        ),
        W(16),
    ),
    kfunc("e1000_clean_tx_irq", W(58)),
    kfunc("e1000_xmit_frame", W(102), A("net.nic_tx")),
]


@REGISTRY.pred("net.nic_has_rx")
def _nic_has_rx(rt) -> bool:
    return rt.net.nic_has_rx(rt)


@REGISTRY.act("net.nic_pop")
def _nic_pop(rt) -> None:
    rt.net.nic_pop(rt)


@REGISTRY.act("net.nic_tx")
def _nic_tx(rt) -> None:
    rt.net.nic_tx(rt)
