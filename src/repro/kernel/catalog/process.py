"""Process management: fork/clone/execve/exit/wait, futexes, identity."""

from __future__ import annotations

from repro.kernel.catalog._dsl import A, C, Cnd, W, Wh, kfunc
from repro.kernel.registry import REGISTRY

FUNCTIONS = [
    kfunc("sys_fork", W(28), C("do_fork")),
    kfunc("sys_clone", W(32), C("do_fork")),
    kfunc("sys_vfork", W(26), C("do_fork")),
    kfunc(
        "do_fork",
        W(76),
        C("security_task_create"),
        C("copy_process"),
        C("wake_up_new_task"),
        A("task.fork_ret"),
    ),
    kfunc(
        "copy_process",
        W(152),
        C("dup_task_struct"),
        C("copy_files"),
        C("copy_mm"),
        C("copy_thread"),
        A("task.create_child"),
    ),
    kfunc("dup_task_struct", W(58), C("kmalloc")),
    kfunc("copy_files", W(48), C("kmalloc")),
    kfunc("copy_mm", W(84), C("dup_mm")),
    kfunc("dup_mm", W(102), C("kmalloc"), C("copy_page_range")),
    kfunc("copy_page_range", W(126)),
    kfunc("copy_thread", W(52)),
    kfunc("wake_up_new_task", W(38), C("try_to_wake_up")),
    kfunc("sys_execve", W(38), C("do_execve")),
    kfunc(
        "do_execve",
        W(96),
        C("getname"),
        C("open_exec"),
        C("security_bprm_check"),
        C("search_binary_handler"),
        A("task.execve"),
        C("putname"),
    ),
    kfunc("open_exec", W(46), C("do_filp_open")),
    kfunc("search_binary_handler", W(56), C("load_elf_binary")),
    kfunc(
        "load_elf_binary",
        W(172),
        C("kmalloc"),
        C("do_mmap_pgoff"),
        C("start_thread"),
    ),
    kfunc("start_thread", W(30)),
    kfunc("sys_exit", W(18), C("do_group_exit")),
    kfunc("sys_exit_group", W(18), C("do_group_exit")),
    kfunc("do_group_exit", W(34), C("do_exit")),
    kfunc(
        "do_exit",
        W(112),
        C("exit_mm"),
        C("exit_files"),
        C("exit_notify"),
        A("task.exit"),
        Wh("task.exited", [C("schedule")]),
    ),
    kfunc("exit_mm", W(48), C("kfree")),
    kfunc("exit_files", W(52), A("task.close_fds"), C("kfree")),
    kfunc(
        "exit_notify",
        W(56),
        A("signal.stage_child_exit"),
        C("send_signal"),
        C("__wake_up_sync"),
    ),
    kfunc("sys_waitpid", W(44), C("do_wait")),
    kfunc(
        "do_wait",
        W(86),
        Wh("task.wait_no_child", [A("task.wait_block"), C("schedule")]),
        A("task.reap_child"),
        C("release_task"),
    ),
    kfunc("release_task", W(64), C("kfree")),
    kfunc("sys_getpid", W(14), A("task.getpid")),
    kfunc("sys_getppid", W(14), A("task.getppid")),
    kfunc("sys_getuid", W(12), A("task.getuid")),
    kfunc("sys_uname", W(28), C("copy_to_user")),
    kfunc(
        "sys_futex",
        W(54),
        Cnd("futex.is_wait", [C("futex_wait")]),
        Cnd("futex.is_wake", [C("futex_wake")]),
    ),
    kfunc(
        "futex_wait",
        W(74),
        C("get_futex_key"),
        A("futex.prepare_wait"),
        Wh("futex.wait_cond", [A("futex.block"), C("schedule")]),
        W(12),
    ),
    kfunc("futex_wake", W(56), C("get_futex_key"), A("futex.wake"), C("__wake_up_sync")),
    kfunc("get_futex_key", W(42)),
]


# --- semantics -------------------------------------------------------------


@REGISTRY.act("task.fork_ret")
def _fork_ret(rt) -> None:
    rt.tasks_api.fork_ret(rt)


@REGISTRY.act("task.create_child")
def _create_child(rt) -> None:
    rt.tasks_api.create_child(rt)


@REGISTRY.act("task.execve")
def _execve(rt) -> None:
    rt.tasks_api.execve(rt)


@REGISTRY.act("task.exit")
def _exit(rt) -> None:
    rt.tasks_api.exit_current(rt)


@REGISTRY.pred("task.exited")
def _exited(rt) -> bool:
    # A zombie never leaves do_exit; if ever rescheduled it just loops.
    return True


@REGISTRY.act("task.close_fds")
def _close_fds(rt) -> None:
    rt.tasks_api.close_fds(rt)


@REGISTRY.act("signal.stage_child_exit")
def _stage_child_exit(rt) -> None:
    rt.signals.stage_child_exit(rt)


@REGISTRY.pred("task.wait_no_child")
def _wait_no_child(rt) -> bool:
    return rt.tasks_api.wait_no_child(rt)


@REGISTRY.act("task.wait_block")
def _wait_block(rt) -> None:
    rt.tasks_api.wait_block(rt)


@REGISTRY.act("task.reap_child")
def _reap_child(rt) -> None:
    rt.tasks_api.reap_child(rt)


@REGISTRY.act("task.getpid")
def _getpid(rt) -> None:
    rt.ret(rt.current.pid)


@REGISTRY.act("task.getppid")
def _getppid(rt) -> None:
    parent = rt.current.parent
    rt.ret(parent.pid if parent is not None else 0)


@REGISTRY.act("task.getuid")
def _getuid(rt) -> None:
    rt.ret(1000)


@REGISTRY.pred("futex.is_wait")
def _futex_is_wait(rt) -> bool:
    return rt.arg("op", "wait") == "wait"


@REGISTRY.pred("futex.is_wake")
def _futex_is_wake(rt) -> bool:
    return rt.arg("op", "wait") == "wake"


@REGISTRY.act("futex.prepare_wait")
def _futex_prepare_wait(rt) -> None:
    rt.futex.prepare_wait(rt)


@REGISTRY.pred("futex.wait_cond")
def _futex_wait_cond(rt) -> bool:
    return rt.futex.wait_cond(rt)


@REGISTRY.act("futex.block")
def _futex_block(rt) -> None:
    rt.futex.block(rt)


@REGISTRY.act("futex.wake")
def _futex_wake(rt) -> None:
    rt.futex.wake(rt)
