"""Scheduler: schedule/pick/context-switch, wakeups, tick accounting.

``context_switch`` is the function whose entry address FACE-CHANGE traps
("Context Switch Trap", Figure 2 step 2).  The architectural switch point
itself (register/stack swap) is the ``CtxSwitch`` pseudo-instruction
inside ``__switch_to``.
"""

from __future__ import annotations

from repro.kernel.catalog._dsl import A, C, Cnd, CtxSwitch, W, kfunc
from repro.kernel.registry import REGISTRY

FUNCTIONS = [
    kfunc(
        "schedule",
        W(68),
        A("sched.prepare"),
        C("pick_next_task"),
        Cnd("sched.switch_needed", [C("context_switch")]),
        W(22),
    ),
    kfunc(
        "pick_next_task",
        W(84),
        C("update_curr"),
        A("sched.pick_next"),
        W(12),
    ),
    kfunc("update_curr", W(46)),
    kfunc(
        "context_switch",
        W(18),
        C("__switch_to"),
        W(10),
    ),
    kfunc(
        "__switch_to",
        W(26),
        CtxSwitch(),
        W(8),
    ),
    kfunc(
        "try_to_wake_up",
        W(58),
        C("enqueue_task"),
        A("sched.resched_check"),
        W(10),
    ),
    kfunc("enqueue_task", W(52)),
    kfunc("dequeue_task", W(48)),
    kfunc(
        "__wake_up_sync",
        W(36),
        C("__wake_up_common"),
    ),
    kfunc(
        "__wake_up_common",
        W(44),
        C("try_to_wake_up"),
    ),
    kfunc(
        "scheduler_tick",
        W(54),
        A("sched.tick"),
        C("task_tick_fair"),
    ),
    kfunc("task_tick_fair", W(64)),
    kfunc(
        "sys_sched_yield",
        W(30),
        A("sched.yield"),
        C("schedule"),
    ),
]


# --- semantics -------------------------------------------------------------


@REGISTRY.act("sched.prepare")
def _sched_prepare(rt) -> None:
    rt.sched.need_resched = False


@REGISTRY.act("sched.pick_next")
def _sched_pick_next(rt) -> None:
    rt.sched.pick_next(rt)


@REGISTRY.pred("sched.switch_needed")
def _switch_needed(rt) -> bool:
    return rt.sched.switch_needed


@REGISTRY.pred("sched.need_resched")
def _need_resched(rt) -> bool:
    return rt.sched.need_resched


@REGISTRY.act("sched.resched_check")
def _resched_check(rt) -> None:
    # A newly woken task may preempt at the next user-space resume.
    rt.sched.need_resched = True


@REGISTRY.act("sched.tick")
def _sched_tick(rt) -> None:
    rt.sched.on_tick(rt)


@REGISTRY.act("sched.yield")
def _sched_yield(rt) -> None:
    rt.sched.need_resched = True
    rt.ret(0)
