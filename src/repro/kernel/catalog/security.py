"""LSM hooks and the AppArmor policy engine (built in, as on Ubuntu).

``security_socket_bind`` -> ``apparmor_socket_bind`` is part of the
recovered chain in the paper's Figure 4 (the Injectso UDP payload).
"""

from __future__ import annotations

from repro.kernel.catalog._dsl import C, W, kfunc
from repro.kernel.registry import REGISTRY

FUNCTIONS = [
    kfunc("security_file_permission", W(16), C("apparmor_file_permission")),
    kfunc("apparmor_file_permission", W(58), C("aa_file_perm")),
    kfunc("aa_file_perm", W(52)),
    kfunc("security_inode_permission", W(16), C("apparmor_inode_permission")),
    kfunc("apparmor_inode_permission", W(42)),
    kfunc("security_socket_create", W(14), C("apparmor_socket_create")),
    kfunc("apparmor_socket_create", W(40)),
    kfunc("security_socket_bind", W(14), C("apparmor_socket_bind")),
    kfunc("apparmor_socket_bind", W(44)),
    kfunc("security_socket_connect", W(14), C("apparmor_socket_connect")),
    kfunc("apparmor_socket_connect", W(44)),
    kfunc("security_socket_listen", W(14), C("apparmor_socket_listen")),
    kfunc("apparmor_socket_listen", W(38)),
    kfunc("security_socket_accept", W(14), C("apparmor_socket_accept")),
    kfunc("apparmor_socket_accept", W(38)),
    kfunc("security_socket_sendmsg", W(14), C("apparmor_socket_sendmsg")),
    kfunc("apparmor_socket_sendmsg", W(40)),
    kfunc("security_socket_recvmsg", W(14), C("apparmor_socket_recvmsg")),
    kfunc("apparmor_socket_recvmsg", W(40)),
    kfunc("security_task_create", W(20)),
    kfunc("security_task_kill", W(24)),
    kfunc("security_bprm_check", W(26)),
    kfunc("security_kernel_module", W(22)),
]

_ = REGISTRY
