"""Kernel object model: tasks, files, pipes, sockets, wait queues.

These are the Python-side twins of the structures a real kernel keeps in
memory.  The parts FACE-CHANGE introspects from the hypervisor (pid,
comm, the module list) are *also* maintained as raw structures in guest
memory by the runtime, so the VMI layer genuinely parses memory rather
than peeking at these objects.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional, Set

from repro.memory.paging import GuestPageTable


class TaskState(enum.Enum):
    RUNNING = "running"
    RUNNABLE = "runnable"
    BLOCKED = "blocked"  # interruptible sleep on a wait queue
    SLEEPING = "sleeping"  # timed sleep (nanosleep)
    ZOMBIE = "zombie"


@dataclass
class SavedRegs:
    """Register file (plus IF flag) saved across a context switch."""

    eip: int = 0
    esp: int = 0
    ebp: int = 0
    eax: int = 0
    if_enabled: bool = True


class WaitQueue:
    """A set of tasks waiting for a condition."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.waiters: List["Task"] = []

    def add(self, task: "Task") -> None:
        if task not in self.waiters:
            self.waiters.append(task)

    def remove(self, task: "Task") -> None:
        if task in self.waiters:
            self.waiters.remove(task)

    def __len__(self) -> int:
        return len(self.waiters)


#: What a user-space driver may yield to the kernel runtime.
#: ``Syscall`` enters the kernel; ``Compute`` burns pure user-mode cycles.
@dataclass
class Syscall:
    name: str
    args: Dict[str, Any] = field(default_factory=dict)

    def __init__(self, name: str, **args: Any) -> None:
        self.name = name
        self.args = args


@dataclass
class Compute:
    """Pure user-space computation of ``cycles`` virtual cycles."""

    cycles: int


#: A driver is a generator yielding Syscall/Compute requests and receiving
#: each syscall's return value back through ``send``.
Driver = Generator[Any, Any, None]
DriverFactory = Callable[[], Driver]


@dataclass
class SyscallContext:
    """Per-syscall execution context consulted by predicates/actions."""

    name: str
    args: Dict[str, Any]
    retval: int = 0
    #: scratch space for multi-step kernel paths
    scratch: Dict[str, Any] = field(default_factory=dict)


class Epoll:
    """An eventpoll instance: the set of fds it watches."""

    def __init__(self, ident: int) -> None:
        self.ident = ident
        self.watched: List[int] = []


class File:
    """An open file description (what an fd points at)."""

    KINDS = ("ext4", "proc", "tty", "pipe_r", "pipe_w", "socket", "dev", "epoll")

    def __init__(self, kind: str, name: str, obj: Any = None) -> None:
        if kind not in self.KINDS:
            raise ValueError(f"unknown file kind {kind!r}")
        self.kind = kind
        self.name = name
        self.obj = obj  # Pipe, Socket, or inode-ish payload
        self.pos = 0
        self.flags: Set[str] = set()
        #: open-file-description reference count (fork/dup2 share files)
        self.refcount = 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<File {self.kind}:{self.name}>"


class Pipe:
    """A pipe: byte count plus reader/writer bookkeeping."""

    CAPACITY = 65536

    def __init__(self, ident: int) -> None:
        self.ident = ident
        self.count = 0
        self.readers = 1
        self.writers = 1
        self.wait_read = WaitQueue(f"pipe{ident}:read")
        self.wait_write = WaitQueue(f"pipe{ident}:write")


class Socket:
    """A socket: family/type plus receive/accept queues."""

    def __init__(self, ident: int, family: str, stype: str) -> None:
        self.ident = ident
        self.family = family  # "inet" / "unix" / "packet"
        self.stype = stype  # "stream" / "dgram" / "raw"
        self.bound_port: Optional[int] = None
        self.listening = False
        self.connected = False
        self.shut_down = False
        self.rx_bytes = 0
        self.rx_packets: int = 0
        self.accept_queue: List["Socket"] = []
        self.wait_rx = WaitQueue(f"sock{ident}:rx")
        self.wait_accept = WaitQueue(f"sock{ident}:accept")
        self.nonblocking = False


@dataclass
class ITimer:
    """setitimer state: fires SIGALRM every ``interval`` cycles."""

    next_fire: int
    interval: int


class Task:
    """A guest process (or kernel thread)."""

    def __init__(
        self,
        pid: int,
        comm: str,
        page_table: GuestPageTable,
        kstack_top: int,
        driver: Optional[Driver] = None,
    ) -> None:
        self.pid = pid
        self.comm = comm
        self.page_table = page_table
        self.kstack_top = kstack_top
        self.state = TaskState.RUNNABLE
        #: the CPU this task is pinned to (§V-C: "each process ... is
        #: pinned to one CPU during execution")
        self.cpu = 0
        self.is_idle = False
        self.regs = SavedRegs()
        #: stack of drivers; signal handlers push a nested driver
        self.drivers: List[Driver] = [driver] if driver is not None else []
        self.syscall: Optional[SyscallContext] = None
        self.fd_table: Dict[int, File] = {}
        self.next_fd = 3
        self.exit_code: Optional[int] = None
        self.parent: Optional["Task"] = None
        self.children: List["Task"] = []
        self.wait_child = WaitQueue(f"task{pid}:wait")
        # signals
        self.signal_handlers: Dict[int, DriverFactory] = {}
        self.pending_signals: List[int] = []
        self.in_signal_handler = False
        #: signal currently being delivered (valid within do_signal)
        self.delivering_signal: Optional[int] = None
        self.itimer: Optional[ITimer] = None
        self.alarm_deadline: Optional[int] = None
        # timed sleep
        self.sleep_deadline: Optional[int] = None
        #: wait queue this task is currently blocked on (for diagnostics)
        self.blocked_on: Optional[WaitQueue] = None
        #: remaining pure user-mode cycles for a Compute request
        self.user_compute_remaining = 0
        #: cumulative counts for tests/benchmarks
        self.syscall_count = 0
        #: last value returned to user space
        self.last_retval = 0
        #: set when the driver is exhausted and the task has exited
        self.finished = False
        #: user-visible time-slice accounting
        self.timeslice = 0
        #: saved contexts of interrupts delivered while this task ran
        self.irq_frames: List[Any] = []

    @property
    def driver(self) -> Optional[Driver]:
        return self.drivers[-1] if self.drivers else None

    def alloc_fd(self, file: File) -> int:
        fd = self.next_fd
        self.next_fd += 1
        self.fd_table[fd] = file
        return fd

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Task {self.pid} {self.comm} {self.state.value}>"


class SignalNumbers:
    """The handful of signal numbers the simulation uses."""

    SIGKILL = 9
    SIGALRM = 14
    SIGTERM = 15
    SIGCHLD = 17


@dataclass
class Packet:
    """An inbound network packet queued on the simulated NIC."""

    port: int
    nbytes: int
    arrival_cycles: int
    #: "dgram" payload or "syn" for a TCP connection attempt
    kind: str = "dgram"
