"""Kernel image builder: lays out function bytes in guest memory.

The base kernel's functions are assembled and placed from
``KERNEL_TEXT_BASE`` with 16-byte alignment (the paper relies on
``-falign-functions``: function starts are power-of-two aligned, which is
what makes whole-function loading safe against split-UD2 hazards).  The
inter-function alignment gaps are padded with ``nop`` -- the "free
alignment areas between functions" that the Infelf case study hides
trojan blocks in.

Loadable modules are assembled the same way but placed in the kernel heap
region (``MODULE_SPACE_BASE``); a descriptor is appended to the guest's
in-memory module list so the hypervisor can find module bases via VMI,
exactly like the paper records module code relative to its base address.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.isa.assembler import AssembledFunction, Assembler, FunctionBody
from repro.memory.layout import (
    KERNEL_BASE,
    KERNEL_TEXT_BASE,
    MODULE_SPACE_BASE,
    PAGE_SIZE,
)
from repro.memory.physmem import PhysicalMemory
from repro.hypervisor.vmi import MODULE_LIST_HEAD_ADDR

_ALIGN = 16
_NOP = 0x90
#: Guest address where module descriptors are allocated.
_MODULE_DESC_BASE = 0xC1001000


class SymbolError(KeyError):
    """Unknown symbol during relocation or lookup."""


@dataclass
class Symbol:
    name: str
    address: int
    size: int
    module: Optional[str]  # None = base kernel


@dataclass
class LoadedModule:
    name: str
    base: int
    size: int
    #: guest address of this module's list descriptor
    descriptor_addr: int
    hidden: bool = False


class KernelImage:
    """The guest kernel's code layout plus its symbol table."""

    def __init__(self, physmem: PhysicalMemory, assembler: Assembler) -> None:
        self.physmem = physmem
        self.assembler = assembler
        self.symbols: Dict[str, Symbol] = {}
        self._sorted_symbols: List[Symbol] = []
        self.text_start = KERNEL_TEXT_BASE
        self.text_end = KERNEL_TEXT_BASE
        self.modules: Dict[str, LoadedModule] = {}
        self._module_cursor = MODULE_SPACE_BASE
        self._desc_cursor = _MODULE_DESC_BASE
        self._pending: List[Tuple[AssembledFunction, int, Optional[str]]] = []

    # -- guest memory helpers ------------------------------------------------

    @staticmethod
    def gva_to_gpa(gva: int) -> int:
        """Kernel linear mapping: virtual = physical + KERNEL_BASE."""
        return gva - KERNEL_BASE

    def write_guest(self, gva: int, data: bytes) -> None:
        self.physmem.write(self.gva_to_gpa(gva), data)

    def read_guest(self, gva: int, length: int) -> bytes:
        return self.physmem.read(self.gva_to_gpa(gva), length)

    # -- base kernel -----------------------------------------------------------

    def build_base(self, functions: Iterable[FunctionBody]) -> None:
        """Assemble and lay out the base kernel text."""
        cursor = KERNEL_TEXT_BASE
        pending: List[Tuple[AssembledFunction, int]] = []
        for body in functions:
            assembled = self.assembler.assemble(body)
            cursor = self._align(cursor)
            if body.name in self.symbols:
                raise SymbolError(f"duplicate symbol {body.name}")
            self.symbols[body.name] = Symbol(
                body.name, cursor, assembled.size, module=None
            )
            pending.append((assembled, cursor))
            cursor += assembled.size
        self.text_end = cursor
        # pad the whole text region with nops first (alignment gaps)
        self.write_guest(
            KERNEL_TEXT_BASE,
            bytes([_NOP]) * (self.text_end - KERNEL_TEXT_BASE),
        )
        for assembled, address in pending:
            self._resolve_and_write(assembled, address)
        self._rebuild_sorted()

    # -- modules -----------------------------------------------------------------

    def load_module(self, name: str, functions: Iterable[FunctionBody]) -> LoadedModule:
        """Assemble ``functions`` into the module space and register it."""
        if name in self.modules:
            raise SymbolError(f"module {name} already loaded")
        base = self._module_cursor
        cursor = base
        pending: List[Tuple[AssembledFunction, int]] = []
        new_symbols: List[Symbol] = []
        for body in functions:
            assembled = self.assembler.assemble(body)
            cursor = self._align(cursor)
            if body.name in self.symbols:
                raise SymbolError(f"duplicate symbol {body.name}")
            symbol = Symbol(body.name, cursor, assembled.size, module=name)
            self.symbols[body.name] = symbol
            new_symbols.append(symbol)
            pending.append((assembled, cursor))
            cursor += assembled.size
        size = cursor - base
        self.write_guest(base, bytes([_NOP]) * size)
        for assembled, address in pending:
            self._resolve_and_write(assembled, address)
        # advance the heap cursor to the next page boundary
        self._module_cursor = (cursor + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)
        descriptor = self._append_module_descriptor(name, base, size)
        module = LoadedModule(name, base, size, descriptor)
        self.modules[name] = module
        self._rewrite_module_list()
        self._rebuild_sorted()
        return module

    def hide_module(self, name: str) -> None:
        """Unlink a module's descriptor from the guest list (rootkit style).

        The module's code stays resident; only the list entry vanishes, so
        VMI-based range identification can no longer attribute it -- this
        is what produces the ``UNKNOWN`` frames in the paper's Figure 5.
        """
        target = self.modules[name]
        target.hidden = True
        self._rewrite_module_list()

    def _append_module_descriptor(self, name: str, base: int, size: int) -> int:
        addr = self._desc_cursor
        self._desc_cursor += 64
        payload = name.encode("ascii")[:23].ljust(24, b"\x00")
        payload += struct.pack("<III", base, size, 0)
        self.write_guest(addr, payload)
        return addr

    def _rewrite_module_list(self) -> None:
        """Re-link the guest-visible descriptor chain, skipping hidden ones."""
        visible = [m for m in self.modules.values() if not m.hidden]
        head = visible[0].descriptor_addr if visible else 0
        self.write_guest(MODULE_LIST_HEAD_ADDR, struct.pack("<I", head))
        for idx, module in enumerate(visible):
            nxt = visible[idx + 1].descriptor_addr if idx + 1 < len(visible) else 0
            self.write_guest(module.descriptor_addr + 32, struct.pack("<I", nxt))

    # -- symbol lookup --------------------------------------------------------------

    def address_of(self, name: str) -> int:
        symbol = self.symbols.get(name)
        if symbol is None:
            raise SymbolError(name)
        return symbol.address

    def symbol_at(self, address: int) -> Optional[Symbol]:
        """The symbol whose [start, start+size) contains ``address``."""
        lo, hi = 0, len(self._sorted_symbols) - 1
        result: Optional[Symbol] = None
        while lo <= hi:
            mid = (lo + hi) // 2
            symbol = self._sorted_symbols[mid]
            if symbol.address <= address:
                result = symbol
                lo = mid + 1
            else:
                hi = mid - 1
        if result is not None and result.address <= address < result.address + result.size:
            return result
        return None

    def format_address(self, address: int) -> str:
        """Pretty-print like the paper's logs: ``<name+0xoff>`` or UNKNOWN.

        Addresses inside *hidden* modules print as UNKNOWN: the
        hypervisor's symbol knowledge comes from the base kernel map plus
        the guest's (VMI-parsed) module list, so a rootkit that unlinks
        itself from that list becomes unattributable -- producing the
        UNKNOWN frames of the paper's Figure 5.
        """
        symbol = self.symbol_at(address)
        if symbol is None:
            return f"{address:#010x} <UNKNOWN>"
        if symbol.module is not None:
            module = self.modules.get(symbol.module)
            if module is not None and module.hidden:
                return f"{address:#010x} <UNKNOWN>"
        off = address - symbol.address
        return f"{address:#010x} <{symbol.name}+{off:#x}>"

    def function_range(self, name: str) -> Tuple[int, int]:
        symbol = self.symbols.get(name)
        if symbol is None:
            raise SymbolError(name)
        return symbol.address, symbol.address + symbol.size

    # -- internals ---------------------------------------------------------------------

    @staticmethod
    def _align(addr: int) -> int:
        return (addr + _ALIGN - 1) & ~(_ALIGN - 1)

    def _resolve_and_write(self, assembled: AssembledFunction, address: int) -> None:
        data = bytearray(assembled.data)
        for reloc in assembled.relocations:
            target = self.symbols.get(reloc.target)
            if target is None:
                raise SymbolError(
                    f"{assembled.name}: unresolved reference to {reloc.target!r}"
                )
            rel = (target.address - (address + reloc.insn_end)) & 0xFFFFFFFF
            struct.pack_into("<I", data, reloc.offset, rel)
        self.write_guest(address, bytes(data))

    def _rebuild_sorted(self) -> None:
        self._sorted_symbols = sorted(self.symbols.values(), key=lambda s: s.address)
