"""The system call table: request name -> handler symbol.

The runtime resolves the ``syscall_table`` dispatch slot through this
mapping; kernel rootkits hook entries of this table (KBeast hooks the
read/write/getdents entries) by replacing the symbol with one of their
module functions.
"""

from __future__ import annotations

from typing import Dict

#: Default (pristine) syscall table.
SYSCALL_TABLE: Dict[str, str] = {
    # files
    "open": "sys_open",
    "close": "sys_close",
    "read": "sys_read",
    "write": "sys_write",
    "writev": "sys_writev",
    "sendfile": "sys_sendfile64",
    "lseek": "sys_lseek",
    "stat": "sys_stat64",
    "fstat": "sys_fstat64",
    "getdents": "sys_getdents64",
    "poll": "sys_poll",
    "select": "sys_select",
    "dup2": "sys_dup2",
    "fcntl": "sys_fcntl64",
    "ioctl": "sys_ioctl",
    "fsync": "sys_fsync",
    "unlink": "sys_unlink",
    "rename": "sys_rename",
    "mkdir": "sys_mkdir",
    "chdir": "sys_chdir",
    "getcwd": "sys_getcwd",
    "pipe": "sys_pipe",
    "pread": "sys_pread64",
    "pwrite": "sys_pwrite64",
    "readv": "sys_readv",
    "epoll_create": "sys_epoll_create",
    "epoll_ctl": "sys_epoll_ctl",
    "epoll_wait": "sys_epoll_wait",
    # memory
    "brk": "sys_brk",
    "mmap": "sys_mmap",
    "munmap": "sys_munmap",
    # network
    "socket": "sys_socket",
    "bind": "sys_bind",
    "listen": "sys_listen",
    "accept": "sys_accept",
    "connect": "sys_connect",
    "sendto": "sys_sendto",
    "send": "sys_sendto",
    "recvfrom": "sys_recvfrom",
    "recv": "sys_recvfrom",
    "setsockopt": "sys_setsockopt",
    "getsockopt": "sys_getsockopt",
    "shutdown": "sys_shutdown",
    # processes
    "fork": "sys_fork",
    "clone": "sys_clone",
    "vfork": "sys_vfork",
    "execve": "sys_execve",
    "exit": "sys_exit",
    "exit_group": "sys_exit_group",
    "waitpid": "sys_waitpid",
    "getpid": "sys_getpid",
    "getppid": "sys_getppid",
    "getuid": "sys_getuid",
    "uname": "sys_uname",
    "futex": "sys_futex",
    "sched_yield": "sys_sched_yield",
    # signals
    "rt_sigaction": "sys_rt_sigaction",
    "signal": "sys_signal",
    "kill": "sys_kill",
    "sigreturn": "sys_sigreturn",
    "pause": "sys_pause",
    # time
    "gettimeofday": "sys_gettimeofday",
    "time": "sys_time",
    "clock_gettime": "sys_clock_gettime",
    "times": "sys_times",
    "nanosleep": "sys_nanosleep",
    "setitimer": "sys_setitimer",
    "alarm": "sys_alarm",
    # modules
    "init_module": "sys_init_module",
    "delete_module": "sys_delete_module",
}
