"""Semantic registry: named predicates, actions and dispatch slots.

Kernel function bodies reference semantics by *name* (interned to 32-bit
ids by the assembler).  The runtime resolves an id back to a name and
looks up the Python callable here.  Subsystem catalog modules register
their semantics with the decorators below at import time.

All callables receive the :class:`repro.kernel.runtime.KernelRuntime`:

* predicate: ``fn(rt) -> bool``
* action:    ``fn(rt) -> None``
* slot:      ``fn(rt) -> str``  (returns the target *symbol name*)
"""

from __future__ import annotations

from typing import Callable, Dict, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.runtime import KernelRuntime

Predicate = Callable[["KernelRuntime"], bool]
Action = Callable[["KernelRuntime"], None]
Slot = Callable[["KernelRuntime"], str]


class SemanticRegistry:
    """Name -> callable tables for predicates, actions and slots."""

    def __init__(self) -> None:
        self.predicates: Dict[str, Predicate] = {}
        self.actions: Dict[str, Action] = {}
        self.slots: Dict[str, Slot] = {}

    def pred(self, name: str) -> Callable[[Predicate], Predicate]:
        def register(fn: Predicate) -> Predicate:
            if name in self.predicates:
                raise ValueError(f"duplicate predicate {name!r}")
            self.predicates[name] = fn
            return fn

        return register

    def act(self, name: str) -> Callable[[Action], Action]:
        def register(fn: Action) -> Action:
            if name in self.actions:
                raise ValueError(f"duplicate action {name!r}")
            self.actions[name] = fn
            return fn

        return register

    def slot(self, name: str) -> Callable[[Slot], Slot]:
        def register(fn: Slot) -> Slot:
            if name in self.slots:
                raise ValueError(f"duplicate slot {name!r}")
            self.slots[name] = fn
            return fn

        return register


#: The global registry the built-in catalog populates at import time.
REGISTRY = SemanticRegistry()
