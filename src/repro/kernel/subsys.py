"""Kernel subsystem state machines behind the semantic actions.

Each class holds the Python-side state of one subsystem (file system,
network stack, tty, signals, timers, futexes, task lifecycle, module
loader) and implements the methods that the catalog's registered
predicates/actions/slots call.  The ``rt`` argument threaded through is
the :class:`repro.kernel.runtime.KernelRuntime`.

Error returns follow Linux conventions: negative errno values
(-EAGAIN = -11, -EINTR = -4, -ECHILD = -10).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.kernel.objects import (
    Epoll,
    File,
    ITimer,
    Packet,
    Pipe,
    SignalNumbers,
    Socket,
    Task,
    TaskState,
    WaitQueue,
)

EAGAIN = -11
EINTR = -4
ECHILD = -10
EBADF = -9


# ---------------------------------------------------------------------------
# file system
# ---------------------------------------------------------------------------


class FsState:
    """VFS state: path classification, fd-table ops, pipes, poll scans."""

    _PROC_PREFIX = "/proc"
    _TTY_NAMES = ("/dev/tty", "/dev/console", "/dev/pts")

    def __init__(self) -> None:
        self.next_pipe_id = 1
        self.block_ios = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self._read_counter = 0

    # -- classification --------------------------------------------------------

    def classify(self, path: str) -> str:
        if path.startswith(self._PROC_PREFIX):
            return "proc"
        if any(path.startswith(p) for p in self._TTY_NAMES):
            return "tty"
        if path.startswith("/dev/"):
            return "dev"
        return "ext4"

    def current_file(self, rt) -> Optional[File]:
        fd = rt.arg("fd")
        if fd is None:
            return None
        return rt.current.fd_table.get(fd)

    # -- open/close ---------------------------------------------------------------

    def open_op(self, rt) -> str:
        kind = self.classify(str(rt.arg("path", "/")))
        return {
            "ext4": "ext4_file_open",
            "proc": "proc_reg_open",
            "tty": "tty_open",
            "dev": "chrdev_open",
        }[kind]

    def lookup_op(self, rt) -> str:
        path = str(rt.arg("path", "/"))
        if path.startswith(self._PROC_PREFIX):
            return "proc_root_lookup"
        return "ext4_lookup"

    def do_open(self, rt) -> None:
        path = str(rt.arg("path", "/"))
        kind = self.classify(path)
        fd = rt.current.alloc_fd(File(kind, path))
        rt.ret(fd)

    def release_op(self, rt) -> str:
        file = self.current_file(rt)
        kind = file.kind if file is not None else "ext4"
        return {
            "ext4": "ext4_release_file",
            "proc": "proc_reg_release",
            "tty": "tty_release",
            "pipe_r": "pipe_release",
            "pipe_w": "pipe_release",
            "socket": "sock_close",
            "dev": "chrdev_release",
            "epoll": "eventpoll_release",
        }[kind]

    # -- read/write dispatch ---------------------------------------------------------

    def read_op(self, rt) -> str:
        file = self.current_file(rt)
        kind = file.kind if file is not None else "ext4"
        return {
            "ext4": "do_sync_read",
            "proc": "proc_reg_read",
            "tty": "tty_read",
            "pipe_r": "pipe_read",
            "pipe_w": "pipe_read",
            "socket": "sock_aio_read",
            "dev": "chrdev_read",
            "epoll": "do_sync_read",
        }[kind]

    def write_op(self, rt) -> str:
        file = self.current_file(rt)
        kind = file.kind if file is not None else "ext4"
        return {
            "ext4": "do_sync_write",
            "proc": "do_sync_write",
            "tty": "tty_write",
            "pipe_r": "pipe_write",
            "pipe_w": "pipe_write",
            "socket": "sock_aio_write",
            "dev": "chrdev_write",
            "epoll": "do_sync_write",
        }[kind]

    def aio_read_op(self, rt) -> str:
        return "generic_file_aio_read"

    def aio_write_op(self, rt) -> str:
        file = self.current_file(rt)
        if file is not None and file.kind == "socket":
            return "sock_aio_write"
        return "ext4_file_write"

    def dirty_inode_op(self, rt) -> str:
        file = self.current_file(rt)
        if file is None or file.kind == "ext4":
            return "ext4_dirty_inode"
        return "generic_dirty_inode"

    def write_begin_op(self, rt) -> str:
        return "ext4_da_write_begin"

    def write_end_op(self, rt) -> str:
        return "ext4_da_write_end"

    def readdir_op(self, rt) -> str:
        file = self.current_file(rt)
        if file is not None and file.kind == "proc":
            return "proc_pid_readdir"
        return "ext4_readdir"

    def ioctl_op(self, rt) -> str:
        file = self.current_file(rt)
        kind = file.kind if file is not None else "dev"
        return {
            "tty": "tty_ioctl",
            "socket": "sock_ioctl",
            "dev": "chrdev_ioctl",
            "ext4": "ext4_ioctl",
            "proc": "ext4_ioctl",
            "pipe_r": "ext4_ioctl",
            "pipe_w": "ext4_ioctl",
            "epoll": "ext4_ioctl",
        }[kind]

    def need_readpage(self, rt) -> bool:
        # Every fourth read misses the page cache and goes to the disk path.
        self._read_counter += 1
        return self._read_counter % 4 == 0

    def do_file_read(self, rt) -> None:
        count = int(rt.arg("count", 1024))
        self.bytes_read += count
        rt.ret(count)

    def do_file_write(self, rt) -> None:
        count = int(rt.arg("count", 1024))
        self.bytes_written += count
        rt.ret(count)

    def do_lseek(self, rt) -> None:
        file = self.current_file(rt)
        if file is None:
            rt.ret(EBADF)
            return
        file.pos = int(rt.arg("offset", 0))
        rt.ret(file.pos)

    def do_dup2(self, rt) -> None:
        task = rt.current
        old = rt.arg("oldfd")
        new = rt.arg("newfd")
        file = task.fd_table.get(old)
        if file is None:
            rt.ret(EBADF)
            return
        displaced = task.fd_table.get(new)
        if displaced is not None and displaced is not file:
            self.release_file(rt, displaced)
        task.fd_table[new] = file
        file.refcount += 1
        rt.ret(new)

    def do_close_fd(self, rt) -> None:
        """Remove the fd table entry (the release op already ran)."""
        fd = rt.arg("fd")
        rt.current.fd_table.pop(fd, None)
        rt.ret(0)

    def do_fcntl(self, rt) -> None:
        file = self.current_file(rt)
        if file is not None and rt.arg("cmd") == "setfl_nonblock":
            if file.kind == "socket" and file.obj is not None:
                file.obj.nonblocking = True
            file.flags.add("nonblock")
        rt.ret(0)

    # -- pipes --------------------------------------------------------------------

    def pipe_create(self, rt) -> None:
        pipe = Pipe(self.next_pipe_id)
        self.next_pipe_id += 1
        task = rt.current
        rfd = task.alloc_fd(File("pipe_r", f"pipe:{pipe.ident}", pipe))
        wfd = task.alloc_fd(File("pipe_w", f"pipe:{pipe.ident}", pipe))
        rt.ret((rfd, wfd))

    def _pipe(self, rt) -> Optional[Pipe]:
        file = self.current_file(rt)
        return file.obj if file is not None else None

    def pipe_read_wait(self, rt) -> bool:
        pipe = self._pipe(rt)
        if pipe is None:
            return False
        return (
            pipe.count == 0
            and pipe.writers > 0
            and not rt.signals.pending_raw(rt.current)
        )

    def pipe_read_block(self, rt) -> None:
        pipe = self._pipe(rt)
        if pipe is not None:
            rt.block_current(pipe.wait_read)

    def pipe_do_read(self, rt) -> None:
        pipe = self._pipe(rt)
        if pipe is None:
            rt.ret(EBADF)
            return
        count = int(rt.arg("count", 1024))
        if pipe.count == 0:
            rt.ret(0 if pipe.writers == 0 else EINTR)
            return
        n = min(count, pipe.count)
        pipe.count -= n
        rt.wake_queue(pipe.wait_write)
        rt.ret(n)

    def pipe_write_wait(self, rt) -> bool:
        pipe = self._pipe(rt)
        if pipe is None:
            return False
        count = int(rt.arg("count", 1024))
        return (
            pipe.count + count > Pipe.CAPACITY
            and pipe.readers > 0
            and not rt.signals.pending_raw(rt.current)
        )

    def pipe_write_block(self, rt) -> None:
        pipe = self._pipe(rt)
        if pipe is not None:
            rt.block_current(pipe.wait_write)

    def pipe_do_write(self, rt) -> None:
        pipe = self._pipe(rt)
        if pipe is None:
            rt.ret(EBADF)
            return
        if pipe.readers == 0:
            rt.ret(-32)  # -EPIPE
            return
        count = int(rt.arg("count", 1024))
        pipe.count += count
        self.bytes_written += count
        rt.wake_queue(pipe.wait_read)
        rt.ret(count)

    # -- epoll --------------------------------------------------------------------

    def epoll_create(self, rt) -> None:
        ep = Epoll(self.next_pipe_id)
        self.next_pipe_id += 1
        fd = rt.current.alloc_fd(File("epoll", f"eventpoll:{ep.ident}", ep))
        rt.ret(fd)

    def _epoll(self, rt) -> Optional[Epoll]:
        file = self.current_file(rt)  # the "fd" argument is the epfd
        if file is not None and isinstance(file.obj, Epoll):
            return file.obj
        return None

    def epoll_ctl(self, rt) -> None:
        ep = self._epoll(rt)
        if ep is None:
            rt.ret(EBADF)
            return
        target = rt.arg("target_fd")
        op = rt.arg("op", "add")
        if op == "add" and target not in ep.watched:
            ep.watched.append(target)
        elif op == "del" and target in ep.watched:
            ep.watched.remove(target)
        rt.ret(0)

    def epoll_begin_wait(self, rt) -> None:
        """Seed the generic poll-scan state from the eventpoll set."""
        ep = self._epoll(rt)
        rt.scratch["poll"] = {
            "fds": list(ep.watched) if ep is not None else [],
            "idx": 0,
            "events": 0,
            "deadline": None,
            "timeout": rt.arg("timeout_cycles"),
            "registered": [],
            "current": None,
        }

    def pipe_release(self, rt) -> None:
        file = self.current_file(rt)
        if file is None or not isinstance(file.obj, Pipe):
            return
        self.release_file(rt, file)

    @staticmethod
    def release_file(rt, file: File) -> None:
        """Drop one reference; tear the object down on the last close."""
        file.refcount -= 1
        if file.refcount > 0:
            return
        obj = file.obj
        if isinstance(obj, Pipe):
            if file.kind == "pipe_r":
                obj.readers = max(0, obj.readers - 1)
            else:
                obj.writers = max(0, obj.writers - 1)
            rt.wake_queue(obj.wait_read)
            rt.wake_queue(obj.wait_write)
        elif isinstance(obj, Socket):
            if obj.bound_port is not None and rt.net.ports.get(obj.bound_port) is obj:
                del rt.net.ports[obj.bound_port]
            if obj in rt.net.taps:
                rt.net.taps.remove(obj)
            rt.wake_queue(obj.wait_rx)
            rt.wake_queue(obj.wait_accept)

    # -- poll/select scan machinery ---------------------------------------------------

    _POLLABLE = ("pipe_r", "pipe_w", "socket", "tty")

    def _poll_state(self, rt) -> Dict[str, Any]:
        st = rt.scratch.get("poll")
        if st is None:
            timeout = rt.arg("timeout_cycles")
            st = {
                "fds": list(rt.arg("fds", [])),
                "idx": 0,
                "events": 0,
                "deadline": None,
                "timeout": timeout,
                "registered": [],
                "current": None,
            }
            rt.scratch["poll"] = st
        return st

    def _poll_unregister(self, rt, st: Dict[str, Any]) -> None:
        for queue in st["registered"]:
            queue.remove(rt.current)
        st["registered"] = []
        rt.current.sleep_deadline = None

    def poll_wait_loop(self, rt) -> bool:
        st = self._poll_state(rt)
        self._poll_unregister(rt, st)
        now = rt.cycles
        timed_out = st["deadline"] is not None and now >= st["deadline"]
        if st["events"] > 0 or timed_out or rt.signals.pending_raw(rt.current):
            if st["events"] > 0:
                rt.ret(st["events"])
            elif timed_out:
                rt.ret(0)
            else:
                rt.ret(EINTR)
            rt.scratch.pop("poll", None)
            return False
        # zero-timeout polls scan exactly once
        if st.get("scanned") and st["timeout"] == 0:
            rt.ret(0)
            rt.scratch.pop("poll", None)
            return False
        return True

    def poll_rescan_init(self, rt) -> None:
        st = self._poll_state(rt)
        st["idx"] = 0
        st["events"] = 0
        st["scanned"] = True

    def poll_more_fds(self, rt) -> bool:
        st = self._poll_state(rt)
        return st["idx"] < len(st["fds"])

    def poll_next_fd(self, rt) -> None:
        st = self._poll_state(rt)
        fd = st["fds"][st["idx"]]
        st["idx"] += 1
        st["current"] = rt.current.fd_table.get(fd)

    def poll_fd_pollable(self, rt) -> bool:
        st = self._poll_state(rt)
        file = st["current"]
        if file is None:
            return False
        if file.kind in self._POLLABLE:
            return True
        # regular files are always ready
        st["events"] += 1
        return False

    def poll_op(self, rt) -> str:
        st = self._poll_state(rt)
        file = st["current"]
        kind = file.kind if file is not None else "tty"
        return {
            "pipe_r": "pipe_poll",
            "pipe_w": "pipe_poll",
            "socket": "sock_poll",
            "tty": "tty_poll",
            "dev": "chrdev_poll",
        }.get(kind, "tty_poll")

    def poll_record(self, rt) -> None:
        st = self._poll_state(rt)
        file = st["current"]
        if file is None:
            return
        ready = False
        obj = file.obj
        if file.kind == "pipe_r" and isinstance(obj, Pipe):
            ready = obj.count > 0 or obj.writers == 0
        elif file.kind == "pipe_w" and isinstance(obj, Pipe):
            ready = obj.count < Pipe.CAPACITY
        elif file.kind == "socket" and isinstance(obj, Socket):
            ready = (
                obj.rx_bytes > 0
                or obj.rx_packets > 0
                or bool(obj.accept_queue)
            )
        elif file.kind == "tty":
            ready = rt.tty.cooked > 0
        elif file.kind == "dev":
            ready = True
        if ready:
            st["events"] += 1

    def poll_should_block(self, rt) -> bool:
        st = self._poll_state(rt)
        if st["events"] > 0:
            return False
        if st["timeout"] == 0:
            return False
        if st["deadline"] is None and st["timeout"] is not None:
            st["deadline"] = rt.cycles + int(st["timeout"])
        return True

    def poll_block(self, rt) -> None:
        st = self._poll_state(rt)
        task = rt.current
        for fd in st["fds"]:
            file = task.fd_table.get(fd)
            if file is None:
                continue
            obj = file.obj
            queue: Optional[WaitQueue] = None
            if isinstance(obj, Pipe):
                queue = obj.wait_read if file.kind == "pipe_r" else obj.wait_write
            elif isinstance(obj, Socket):
                queue = obj.wait_accept if obj.listening else obj.wait_rx
            elif file.kind == "tty":
                queue = rt.tty.wait_input
            if queue is not None:
                queue.add(task)
                st["registered"].append(queue)
        task.state = TaskState.BLOCKED
        task.blocked_on = st["registered"][0] if st["registered"] else None
        if st["deadline"] is not None:
            task.sleep_deadline = st["deadline"]


# ---------------------------------------------------------------------------
# network stack
# ---------------------------------------------------------------------------


class NetState:
    """Sockets, port table, NIC receive ring, loopback backlog, taps."""

    def __init__(self) -> None:
        self.next_sock_id = 1
        self.ports: Dict[int, Socket] = {}
        self.conn_map: Dict[int, Socket] = {}
        self.nic_queue: List[Tuple[int, int, Packet]] = []  # heap by arrival
        self._nic_seq = 0
        self.backlog: List[Packet] = []
        self.taps: List[Socket] = []
        self.current_rx: Optional[Packet] = None
        self.tx_bytes = 0
        self.rx_delivered = 0
        self.dropped = 0

    # -- injection (used by workload drivers / the simulated world) -------------

    def inject(self, packet: Packet) -> None:
        heapq.heappush(self.nic_queue, (packet.arrival_cycles, self._nic_seq, packet))
        self._nic_seq += 1

    def nic_irq_due(self, now: int) -> bool:
        return bool(self.nic_queue) and self.nic_queue[0][0] <= now

    def next_nic_event(self) -> Optional[int]:
        return self.nic_queue[0][0] if self.nic_queue else None

    # -- socket lifecycle ---------------------------------------------------------

    def _sock(self, rt) -> Optional[Socket]:
        file = rt.fs.current_file(rt)
        if file is not None and isinstance(file.obj, Socket):
            return file.obj
        return None

    def create_op(self, rt) -> str:
        family = rt.arg("family", "inet")
        return {
            "inet": "inet_create",
            "packet": "packet_create",
            "unix": "unix_create",
        }[family]

    def do_create(self, rt) -> None:
        sock = Socket(
            self.next_sock_id,
            rt.arg("family", "inet"),
            rt.arg("stype", "stream"),
        )
        self.next_sock_id += 1
        if rt.arg("nonblocking", False):
            sock.nonblocking = True
        rt.scratch["new_sock"] = sock

    def do_install_fd(self, rt) -> None:
        if rt.scratch.pop("accept_failed", False):
            rt.ret(EAGAIN)
            return
        sock = rt.scratch.pop("new_sock", None)
        if sock is None:
            rt.ret(EBADF)
            return
        fd = rt.current.alloc_fd(File("socket", f"socket:{sock.ident}", sock))
        rt.ret(fd)

    def bind_op(self, rt) -> str:
        family = rt.arg("family", None)
        if family is None:
            sock = self._sock(rt)
            family = sock.family if sock is not None else "inet"
        return {
            "inet": "inet_bind",
            "packet": "packet_bind",
            "unix": "unix_bind",
        }[family]

    def get_port_op(self, rt) -> str:
        sock = self._sock(rt)
        if sock is not None and sock.stype == "dgram":
            return "udp_v4_get_port"
        return "inet_csk_get_port"

    def do_bind(self, rt) -> None:
        sock = self._sock(rt)
        if sock is None:
            rt.ret(EBADF)
            return
        port = int(rt.arg("port", 0))
        sock.bound_port = port
        self.ports[port] = sock
        rt.ret(0)

    def do_autobind(self, rt) -> None:
        """Ephemeral-port autobind on first sendmsg (client sockets)."""
        sock = self._sock(rt)
        if sock is None or sock.bound_port is not None:
            return
        port = 32768 + (sock.ident % 28000)
        sock.bound_port = port
        self.ports.setdefault(port, sock)

    def do_tap_enable(self, rt) -> None:
        sock = self._sock(rt)
        if sock is not None and sock not in self.taps:
            self.taps.append(sock)

    def do_tap_disable(self, rt) -> None:
        sock = self._sock(rt)
        if sock in self.taps:
            self.taps.remove(sock)

    def do_listen(self, rt) -> None:
        sock = self._sock(rt)
        if sock is None:
            rt.ret(EBADF)
            return
        sock.listening = True
        rt.ret(0)

    # -- accept ----------------------------------------------------------------------

    def accept_wait(self, rt) -> bool:
        sock = self._sock(rt)
        if sock is None:
            return False
        return (
            not sock.accept_queue
            and not sock.nonblocking
            and not rt.signals.pending_raw(rt.current)
        )

    def accept_block(self, rt) -> None:
        sock = self._sock(rt)
        if sock is not None:
            rt.block_current(sock.wait_accept)

    def do_accept(self, rt) -> None:
        sock = self._sock(rt)
        if sock is None or not sock.accept_queue:
            rt.scratch["accept_failed"] = True
            return
        child = sock.accept_queue.pop(0)
        rt.scratch["new_sock"] = child

    # -- connect ----------------------------------------------------------------------

    def connect_op(self, rt) -> str:
        sock = self._sock(rt)
        family = sock.family if sock is not None else "inet"
        stype = sock.stype if sock is not None else "stream"
        if family == "unix":
            return "unix_stream_connect"
        if stype == "dgram":
            return "ip4_datagram_connect"
        return "inet_stream_connect"

    def do_connect(self, rt) -> None:
        sock = self._sock(rt)
        if sock is None:
            rt.ret(EBADF)
            return
        sock.connected = True
        # register the flow so injected response packets route back here
        conn_id = rt.arg("conn_id")
        if conn_id is not None:
            self.conn_map[conn_id] = sock
        rt.ret(0)

    # -- send/recv ---------------------------------------------------------------------

    def sendmsg_op(self, rt) -> str:
        sock = self._sock(rt)
        family = sock.family if sock is not None else "inet"
        stype = sock.stype if sock is not None else "stream"
        if family == "packet":
            return "packet_sendmsg"
        if family == "unix":
            return "unix_stream_sendmsg"
        return "tcp_sendmsg" if stype == "stream" else "udp_sendmsg"

    def do_send(self, rt) -> None:
        count = int(rt.arg("count", 512))
        self.tx_bytes += count
        rt.ret(count)

    def do_send_local(self, rt) -> None:
        self.do_send(rt)

    def recvmsg_op(self, rt) -> str:
        sock = self._sock(rt)
        family = sock.family if sock is not None else "inet"
        stype = sock.stype if sock is not None else "stream"
        if family == "packet":
            return "packet_recvmsg"
        if family == "unix":
            return "unix_stream_recvmsg"
        return "tcp_recvmsg" if stype == "stream" else "sock_common_recvmsg"

    def rx_wait(self, rt) -> bool:
        sock = self._sock(rt)
        if sock is None:
            return False
        return (
            sock.rx_bytes == 0
            and sock.rx_packets == 0
            and not sock.shut_down
            and not sock.nonblocking
            and not rt.signals.pending_raw(rt.current)
        )

    def rx_block(self, rt) -> None:
        sock = self._sock(rt)
        if sock is not None:
            rt.block_current(sock.wait_rx)

    def do_recv(self, rt) -> None:
        sock = self._sock(rt)
        if sock is None:
            rt.ret(EBADF)
            return
        if sock.rx_bytes == 0 and sock.rx_packets == 0:
            rt.ret(EAGAIN if sock.nonblocking else EINTR)
            return
        count = int(rt.arg("count", 1024))
        n = min(count, sock.rx_bytes) if sock.rx_bytes else count
        sock.rx_bytes = max(0, sock.rx_bytes - n)
        if sock.rx_packets:
            sock.rx_packets -= 1
        self.rx_delivered += 1
        rt.ret(n)

    def do_shutdown(self, rt) -> None:
        sock = self._sock(rt)
        if sock is not None:
            sock.shut_down = True
            rt.wake_queue(sock.wait_rx)
        rt.ret(0)

    def release_op(self, rt) -> str:
        sock = self._sock(rt)
        family = sock.family if sock is not None else "inet"
        return {
            "inet": "inet_release",
            "packet": "packet_release",
            "unix": "unix_release",
        }[family]

    def do_release(self, rt) -> None:
        file = rt.fs.current_file(rt)
        if file is None or not isinstance(file.obj, Socket):
            return
        rt.fs.release_file(rt, file)

    def poll_proto_op(self, rt) -> str:
        st = rt.scratch.get("poll") or {}
        file = st.get("current")
        sock = file.obj if file is not None and isinstance(file.obj, Socket) else None
        if sock is None:
            return "tcp_poll"
        if sock.family == "unix":
            return "unix_poll"
        return "tcp_poll" if sock.stype == "stream" else "datagram_poll"

    def xmit_op(self, rt) -> str:
        if rt.arg("local", False):
            return "loopback_xmit"
        return "e1000_xmit_frame"

    def nic_tx(self, rt) -> None:
        pass  # accounting already done in do_send

    # -- receive path (interrupt context) ------------------------------------------

    def nic_has_rx(self, rt) -> bool:
        return self.nic_irq_due(rt.cycles)

    def nic_pop(self, rt) -> None:
        _, _, packet = heapq.heappop(self.nic_queue)
        self.current_rx = packet
        rt.refresh_next_event()

    def backlog_enqueue(self, rt) -> None:
        if self.current_rx is not None:
            self.backlog.append(self.current_rx)

    def backlog_nonempty(self, rt) -> bool:
        return bool(self.backlog)

    def backlog_pop(self, rt) -> None:
        self.current_rx = self.backlog.pop(0)

    def tap_active(self, rt) -> bool:
        return bool(self.taps) and self.current_rx is not None

    def tap_deliver(self, rt) -> None:
        packet = self.current_rx
        if packet is None:
            return
        for sock in self.taps:
            sock.rx_packets += 1
            sock.rx_bytes += packet.nbytes
            rt.wake_queue(sock.wait_rx)

    def proto_rcv_op(self, rt) -> str:
        packet = self.current_rx
        if packet is not None and packet.kind in ("syn", "data"):
            return "tcp_v4_rcv"
        return "udp_rcv"

    def pkt_is_syn(self, rt) -> bool:
        return self.current_rx is not None and self.current_rx.kind == "syn"

    def pkt_is_data(self, rt) -> bool:
        return self.current_rx is not None and self.current_rx.kind == "data"

    def enqueue_accept(self, rt) -> None:
        packet = self.current_rx
        if packet is None:
            return
        listener = self.ports.get(packet.port)
        if listener is None or not listener.listening:
            self.dropped += 1
            return
        child = Socket(self.next_sock_id, "inet", "stream")
        self.next_sock_id += 1
        child.connected = True
        conn_id = getattr(packet, "conn_id", None)
        if conn_id is not None:
            self.conn_map[conn_id] = child
        listener.accept_queue.append(child)
        rt.wake_queue(listener.wait_accept)

    def deliver(self, rt) -> None:
        packet = self.current_rx
        if packet is None:
            return
        target: Optional[Socket] = None
        conn_id = getattr(packet, "conn_id", None)
        if conn_id is not None and conn_id in self.conn_map:
            target = self.conn_map[conn_id]
        else:
            target = self.ports.get(packet.port)
        if target is None:
            self.dropped += 1
            return
        target.rx_bytes += packet.nbytes
        target.rx_packets += 1
        rt.wake_queue(target.wait_rx)


# ---------------------------------------------------------------------------
# tty
# ---------------------------------------------------------------------------


class TtyState:
    """Console/pty line discipline state."""

    def __init__(self) -> None:
        #: (due_cycles, nchars) keystroke events injected by drivers
        self.input_events: List[Tuple[int, int, int]] = []
        self._seq = 0
        self.raw = 0
        self.cooked = 0
        self.output_bytes = 0
        self.pty_bytes = 0
        self.wait_input = WaitQueue("tty:input")
        #: observers notified on cook (the KBeast keylogger hooks here)
        self.sniffers: List[Callable[[Any, int], None]] = []

    def inject_keystrokes(self, due_cycles: int, nchars: int) -> None:
        heapq.heappush(self.input_events, (due_cycles, self._seq, nchars))
        self._seq += 1

    def kbd_irq_due(self, now: int) -> bool:
        return bool(self.input_events) and self.input_events[0][0] <= now

    def next_kbd_event(self) -> Optional[int]:
        return self.input_events[0][0] if self.input_events else None

    def on_input(self, rt) -> None:
        if self.input_events:
            _, _, nchars = heapq.heappop(self.input_events)
            self.raw += nchars
            rt.refresh_next_event()

    def cook(self, rt) -> None:
        moved = self.raw
        self.raw = 0
        self.cooked += moved
        for sniffer in self.sniffers:
            sniffer(rt, moved)
        rt.wake_queue(self.wait_input)

    def read_wait(self, rt) -> bool:
        return self.cooked == 0 and not rt.signals.pending_raw(rt.current)

    def read_block(self, rt) -> None:
        rt.block_current(self.wait_input)

    def do_read(self, rt) -> None:
        if self.cooked == 0:
            rt.ret(EINTR)
            return
        count = int(rt.arg("count", 256))
        n = min(count, self.cooked)
        self.cooked -= n
        rt.ret(n)

    def do_write(self, rt) -> None:
        count = int(rt.arg("count", 256))
        self.output_bytes += count
        rt.ret(count)

    def out_op(self, rt) -> str:
        file = rt.fs.current_file(rt)
        if file is not None and "pts" in file.name:
            return "pty_write"
        return "con_write"

    def pty_forward(self, rt) -> None:
        self.pty_bytes += int(rt.arg("count", 256))


# ---------------------------------------------------------------------------
# signals
# ---------------------------------------------------------------------------


class SignalState:
    """Signal registration, queueing and delivery bookkeeping."""

    def pending(self, task: Task) -> bool:
        return bool(task.pending_signals) and not task.in_signal_handler

    @staticmethod
    def pending_raw(task: Task) -> bool:
        return bool(task.pending_signals) and not task.in_signal_handler

    def do_sigaction(self, rt) -> None:
        signum = int(rt.arg("signum", SignalNumbers.SIGALRM))
        handler = rt.arg("handler")
        if handler is None:
            rt.current.signal_handlers.pop(signum, None)
        else:
            rt.current.signal_handlers[signum] = handler
        rt.ret(0)

    def stage_kill(self, rt) -> None:
        target = rt.tasks.get(int(rt.arg("pid", 0)))
        sig = int(rt.arg("signum", SignalNumbers.SIGTERM))
        rt.pending_signal_op = (target, sig)

    def stage_child_exit(self, rt) -> None:
        parent = rt.current.parent
        rt.pending_signal_op = (parent, SignalNumbers.SIGCHLD)

    def queue_staged(self, rt) -> None:
        op = rt.pending_signal_op
        rt.pending_signal_op = None
        if op is None:
            return
        task, sig = op
        if task is None:
            return
        self.queue(rt, task, sig)

    def queue(self, rt, task: Task, sig: int) -> None:
        task.pending_signals.append(sig)
        if task.state in (TaskState.BLOCKED, TaskState.SLEEPING):
            rt.wake_task(task)

    def dequeue(self, rt) -> None:
        task = rt.current
        # kept on the task, not the syscall scratch: signal delivery also
        # happens on the interrupt-return path where no syscall is live
        if task.pending_signals:
            task.delivering_signal = task.pending_signals.pop(0)
        else:
            task.delivering_signal = None

    def delivering_has_handler(self, rt) -> bool:
        sig = rt.current.delivering_signal
        return sig is not None and sig in rt.current.signal_handlers

    def push_handler(self, rt) -> None:
        sig = rt.current.delivering_signal
        factory = rt.current.signal_handlers.get(sig)
        if factory is None:
            return
        rt.push_driver(rt.current, factory())
        rt.current.in_signal_handler = True

    def delivering_is_fatal(self, rt) -> bool:
        sig = rt.current.delivering_signal
        if sig is None or sig in rt.current.signal_handlers:
            return False
        return sig in (SignalNumbers.SIGKILL, SignalNumbers.SIGTERM)

    def mark_fatal(self, rt) -> None:
        rt.current.exit_code = 128 + int(rt.current.delivering_signal or 0)

    def do_sigreturn(self, rt) -> None:
        task = rt.current
        if len(task.drivers) > 1:
            task.drivers.pop()
        task.in_signal_handler = False
        rt.ret(0)

    def do_pause(self, rt) -> None:
        rt.current.state = TaskState.BLOCKED

    def pause_wait(self, rt) -> bool:
        return not rt.current.pending_signals


# ---------------------------------------------------------------------------
# time
# ---------------------------------------------------------------------------


class TimeState:
    """Sleeps, interval timers and alarms, driven by the timer softirq."""

    def __init__(self) -> None:
        self.fired: List[Tuple[Task, int]] = []
        self.jiffies = 0

    def sleep_current(self, rt, cycles: int) -> None:
        task = rt.current
        task.sleep_deadline = rt.cycles + max(1, cycles)
        task.state = TaskState.SLEEPING

    def still_sleeping(self, rt) -> bool:
        task = rt.current
        if task.state == TaskState.RUNNING:
            return False
        if (
            task.sleep_deadline is not None
            and rt.cycles >= task.sleep_deadline
        ):
            task.sleep_deadline = None
            task.state = TaskState.RUNNING
            return False
        if self.pending_signal_break(rt, task):
            task.state = TaskState.RUNNING
            return False
        return True

    @staticmethod
    def pending_signal_break(rt, task: Task) -> bool:
        return bool(task.pending_signals) and not task.in_signal_handler

    def set_itimer(self, rt, interval: int) -> None:
        task = rt.current
        if interval <= 0:
            task.itimer = None
        else:
            task.itimer = ITimer(next_fire=rt.cycles + interval, interval=interval)

    def set_alarm(self, rt, delay: int) -> None:
        task = rt.current
        task.alarm_deadline = (rt.cycles + delay) if delay > 0 else None

    def run_expired(self, rt) -> None:
        self.jiffies += 1
        now = rt.cycles
        for task in list(rt.tasks.values()):
            if (
                task.sleep_deadline is not None
                and now >= task.sleep_deadline
                and task.state in (TaskState.SLEEPING, TaskState.BLOCKED)
            ):
                task.sleep_deadline = None
                rt.wake_task(task)
            if task.itimer is not None and now >= task.itimer.next_fire:
                task.itimer.next_fire = now + task.itimer.interval
                self.fired.append((task, SignalNumbers.SIGALRM))
            if task.alarm_deadline is not None and now >= task.alarm_deadline:
                task.alarm_deadline = None
                self.fired.append((task, SignalNumbers.SIGALRM))

    def pop_fired(self, rt) -> bool:
        if not self.fired:
            return False
        rt.pending_signal_op = self.fired.pop(0)
        return True

    def next_deadline(self, rt) -> Optional[int]:
        deadlines = [
            task.sleep_deadline
            for task in rt.tasks.values()
            if task.sleep_deadline is not None
        ]
        deadlines += [
            task.itimer.next_fire
            for task in rt.tasks.values()
            if task.itimer is not None
        ]
        deadlines += [
            task.alarm_deadline
            for task in rt.tasks.values()
            if task.alarm_deadline is not None
        ]
        return min(deadlines) if deadlines else None


# ---------------------------------------------------------------------------
# futexes
# ---------------------------------------------------------------------------


class FutexState:
    """Minimal futex wait/wake."""

    def __init__(self) -> None:
        self.queues: Dict[Any, WaitQueue] = {}

    def _queue(self, key: Any) -> WaitQueue:
        queue = self.queues.get(key)
        if queue is None:
            queue = WaitQueue(f"futex:{key}")
            self.queues[key] = queue
        return queue

    def prepare_wait(self, rt) -> None:
        key = rt.arg("key", 0)
        self._queue(key).add(rt.current)

    def wait_cond(self, rt) -> bool:
        key = rt.arg("key", 0)
        task = rt.current
        return task in self._queue(key).waiters and not SignalState.pending_raw(task)

    def block(self, rt) -> None:
        rt.current.state = TaskState.BLOCKED
        rt.current.blocked_on = self._queue(rt.arg("key", 0))

    def wake(self, rt) -> None:
        key = rt.arg("key", 0)
        queue = self._queue(key)
        rt.wake_queue(queue)
        queue.waiters.clear()
        rt.ret(1)


# ---------------------------------------------------------------------------
# task lifecycle
# ---------------------------------------------------------------------------


class TasksApi:
    """fork/execve/exit/wait semantics, delegating to the runtime core."""

    def create_child(self, rt) -> None:
        factory = rt.arg("child")
        comm = rt.arg("comm", rt.current.comm)
        child = rt.create_task(comm, factory, parent=rt.current)
        # fork semantics: the child shares the parent's open files
        for fd, file in rt.current.fd_table.items():
            child.fd_table[fd] = file
            file.refcount += 1
        child.next_fd = rt.current.next_fd
        rt.scratch["child_pid"] = child.pid

    def fork_ret(self, rt) -> None:
        rt.ret(rt.scratch.get("child_pid", -1))

    def execve(self, rt) -> None:
        factory = rt.arg("driver")
        comm = rt.arg("comm", rt.current.comm)
        task = rt.current
        task.comm = comm
        if factory is not None:
            rt.replace_driver(task, factory())
        rt.publish_current_task(task)
        rt.ret(0)

    def exit_current(self, rt) -> None:
        task = rt.current
        task.exit_code = (
            int(rt.arg("code", 0)) if task.exit_code is None else task.exit_code
        )
        task.state = TaskState.ZOMBIE
        task.finished = True
        parent = task.parent
        if parent is not None:
            rt.wake_queue(parent.wait_child)
        rt.sched.need_resched = True

    def close_fds(self, rt) -> None:
        task = rt.current
        for file in list(task.fd_table.values()):
            rt.fs.release_file(rt, file)
        task.fd_table.clear()

    def wait_no_child(self, rt) -> bool:
        task = rt.current
        if not task.children:
            return False
        zombies = [c for c in task.children if c.state == TaskState.ZOMBIE]
        return not zombies and not SignalState.pending_raw(task)

    def wait_block(self, rt) -> None:
        rt.block_current(rt.current.wait_child)

    def reap_child(self, rt) -> None:
        task = rt.current
        if not task.children:
            rt.ret(ECHILD)
            return
        zombies = [c for c in task.children if c.state == TaskState.ZOMBIE]
        if not zombies:
            rt.ret(EINTR)
            return
        child = zombies[0]
        task.children.remove(child)
        rt.tasks.pop(child.pid, None)
        rt.release_kstack(child.kstack_top)
        rt.ret(child.pid)


# ---------------------------------------------------------------------------
# module loading
# ---------------------------------------------------------------------------


@dataclass
class ModuleSpec:
    """What ``init_module`` needs: a name, code, and an init hook."""

    name: str
    functions: Sequence[Any]
    init: Optional[Callable[[Any], None]] = None
    description: str = ""


class ModulesApi:
    """sys_init_module / sys_delete_module semantics."""

    def __init__(self) -> None:
        self.loaded: List[str] = []

    def load(self, rt) -> None:
        spec: Optional[ModuleSpec] = rt.arg("module_spec")
        if spec is None:
            rt.ret(-22)  # -EINVAL
            return
        rt.image.load_module(spec.name, spec.functions)
        self.loaded.append(spec.name)
        if spec.init is not None:
            spec.init(rt)
        rt.on_module_loaded(spec.name)
        rt.ret(0)

    def unload(self, rt) -> None:
        name = rt.arg("name")
        if name in rt.image.modules:
            rt.image.hide_module(name)
        rt.ret(0)
