"""The kernel runtime: OS semantics + the VCPU's semantics bridge.

This class is the simulated guest's "Linux": it owns tasks, the
scheduler, the subsystem states, the syscall table, and implements the
:class:`repro.hypervisor.vcpu.SemanticsBridge` protocol that the virtual
CPU calls for predicates, actions, dispatch slots, context switches,
syscall entry/exit and interrupt delivery.

Guest-transparency note: everything FACE-CHANGE consumes (the per-CPU
current-task records, the module list) is *written into guest memory*
here and read back by the hypervisor's VMI layer -- the hypervisor never
touches these Python objects.

SMP: the guest supports multiple vCPUs (the paper's §V-C future work).
Each CPU has its own run queue, idle task, interrupt state and timer;
tasks are pinned to a CPU at creation, matching the paper's observation
that "each process ... is pinned to one CPU during execution".  Device
(NIC/keyboard) interrupts are delivered to CPU 0.  vCPUs execute in
interleaved time slices, so subsystem state needs no locking; the
machine marks the running vCPU via :meth:`set_active_vcpu`.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional, Set, Tuple

from repro.hypervisor.vcpu import SemanticsBridge, Vcpu, VcpuError
from repro.hypervisor.vmi import CURRENT_TASK_ADDR, CURRENT_TASK_STRIDE
from repro.isa.assembler import NameRegistry
from repro.kernel.image import KernelImage
from repro.kernel.objects import (
    Compute,
    Syscall,
    SyscallContext,
    Task,
    TaskState,
    WaitQueue,
)
from repro.kernel.registry import REGISTRY, SemanticRegistry
from repro.kernel.subsys import (
    FsState,
    FutexState,
    ModulesApi,
    NetState,
    SignalState,
    TasksApi,
    TimeState,
    TtyState,
)
from repro.kernel.syscalls import SYSCALL_TABLE
from repro.memory.layout import (
    KERNEL_STACK_BASE,
    USER_STACK_TOP,
    USER_TEXT_BASE,
)
from repro.memory.paging import GuestPageTable

#: Periodic tick interval in simulated cycles (default guest build).
TIMER_PERIOD_CYCLES = 200_000
#: Time slice, in ticks, before the scheduler preempts a task (default).
TIMESLICE_TICKS = 4
#: Kernel stack stride per task (2 pages, like 32-bit Linux THREAD_SIZE).
KSTACK_STRIDE = 0x2000


class Platform:
    """Which hypervisor the guest believes it runs under.

    Selects the clocksource: ``QEMU`` (profiling) uses the TSC path,
    ``KVM`` (runtime) uses the kvm-clock paravirtual path -- the source
    of the benign recoveries discussed in the paper's Section III-B3.
    """

    QEMU = "qemu"
    KVM = "kvm"


class SchedState:
    """Per-CPU round-robin run queue state."""

    def __init__(self) -> None:
        self.need_resched = False
        self.next_task: Optional[Task] = None
        self.switch_needed = False
        self.context_switches = 0

    def pick_next(self, rt: "KernelRuntime") -> None:
        cpu = rt.active_cpu
        current = cpu.current
        runnable = [
            t
            for t in rt.tasks.values()
            if not t.is_idle
            and t.cpu == cpu.cpu_id
            and t.state == TaskState.RUNNABLE
        ]
        if (
            current.state in (TaskState.RUNNING, TaskState.RUNNABLE)
            and not current.is_idle
        ):
            # round-robin: rotate past the current task
            after = [t for t in runnable if t.pid > current.pid]
            candidates = after + [t for t in runnable if t.pid <= current.pid]
            nxt = candidates[0] if candidates else current
        else:
            nxt = runnable[0] if runnable else cpu.idle_task
        self.next_task = nxt
        self.switch_needed = nxt is not current
        if not self.switch_needed and current.state != TaskState.ZOMBIE:
            current.state = TaskState.RUNNING
        rt.publish_current_task(nxt, cpu.cpu_id)

    def on_tick(self, rt: "KernelRuntime") -> None:
        cpu = rt.active_cpu
        current = cpu.current
        if current.is_idle:
            return
        current.timeslice -= 1
        others = [
            t
            for t in rt.tasks.values()
            if not t.is_idle
            and t.cpu == cpu.cpu_id
            and t is not current
            and t.state == TaskState.RUNNABLE
        ]
        if current.timeslice <= 0 and others:
            current.timeslice = rt.timeslice_ticks
            self.need_resched = True


@dataclass
class _IrqFrame:
    """Saved context for one delivered interrupt (kept per task)."""

    eip: int
    esp: int
    ebp: int
    was_user: bool


class _DriverBox:
    """A user-space driver generator plus its priming state."""

    __slots__ = ("gen", "started")

    def __init__(self, gen: Generator[Any, Any, None]) -> None:
        self.gen = gen
        self.started = False


class CpuState:
    """Per-CPU kernel state: current task, scheduler, interrupts, timer."""

    def __init__(
        self,
        cpu_id: int,
        idle_task: Task,
        timer_period: int = TIMER_PERIOD_CYCLES,
    ) -> None:
        self.cpu_id = cpu_id
        self.idle_task = idle_task
        self.current: Task = idle_task
        self.sched = SchedState()
        self.irq_nesting = 0
        self.current_irq: Optional[str] = None
        self.softirq_pending: Set[str] = set()
        self.next_timer = timer_period
        self.next_event = timer_period
        self.timer_interrupts = 0


class KernelRuntime(SemanticsBridge):
    """The guest OS brain; also the VCPU's semantics bridge."""

    def __init__(
        self,
        image: KernelImage,
        names: NameRegistry,
        kernel_page_table: GuestPageTable,
        platform: str = Platform.KVM,
        registry: SemanticRegistry = REGISTRY,
        num_cpus: int = 1,
        timer_period: int = TIMER_PERIOD_CYCLES,
        timeslice_ticks: int = TIMESLICE_TICKS,
    ) -> None:
        self.image = image
        self.names = names
        self.registry = registry
        self.platform = platform
        #: scheduler/timer variant (from the guest config)
        self.timer_period = timer_period
        self.timeslice_ticks = timeslice_ticks
        self.kernel_page_table = kernel_page_table
        self.vcpus: List[Vcpu] = []
        self.active_vcpu: Optional[Vcpu] = None
        # subsystems (shared across CPUs)
        self.fs = FsState()
        self.net = NetState()
        self.tty = TtyState()
        self.signals = SignalState()
        self.time = TimeState()
        self.futex = FutexState()
        self.tasks_api = TasksApi()
        self.modules_api = ModulesApi()
        # tasks
        self.tasks: Dict[int, Task] = {}
        self.next_pid = 1
        self._next_kstack_index = 0
        self._kstack_free: List[int] = []
        # per-CPU state (idle task per CPU)
        self.cpus: List[CpuState] = []
        for cpu_id in range(max(1, num_cpus)):
            idle = self._make_idle_task(cpu_id)
            self.cpus.append(CpuState(cpu_id, idle, timer_period=timer_period))
        self.active_cpu: CpuState = self.cpus[0]
        self._spawn_cpu_rr = 0
        # syscall dispatch (rootkits hook entries of this table)
        self.syscall_table: Dict[str, str] = dict(SYSCALL_TABLE)
        # cross-subsystem scratch
        self.pending_signal_op: Optional[Tuple[Task, int]] = None
        self.mm_alloc_counter = 0
        self.syscalls_executed = 0
        #: notified after a module load changes the guest module list
        self.module_load_listeners: List[Callable[[str], None]] = []

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------

    def attach_vcpu(self, vcpu: Vcpu) -> None:
        """Attach a vCPU to the CPU slot matching its cpu_id."""
        while len(self.vcpus) <= vcpu.cpu_id:
            self.vcpus.append(None)  # type: ignore[arg-type]
        self.vcpus[vcpu.cpu_id] = vcpu
        cpu = self.cpus[vcpu.cpu_id]
        vcpu.irq_state = cpu  # interrupt_pending == cycles >= cpu.next_event
        vcpu.mmu.set_cr3(cpu.idle_task.page_table)
        vcpu.user_mode = False
        vcpu.eip = self.image.address_of("cpu_idle")
        vcpu.esp = cpu.idle_task.kstack_top
        vcpu.ebp = 0
        self.publish_current_task(cpu.idle_task, cpu.cpu_id)
        if self.active_vcpu is None:
            self.set_active_vcpu(vcpu)

    def set_active_vcpu(self, vcpu: Vcpu) -> None:
        """Mark which vCPU is executing (called by the machine's loop)."""
        self.active_vcpu = vcpu
        self.active_cpu = self.cpus[vcpu.cpu_id]

    @property
    def vcpu(self) -> Optional[Vcpu]:
        """The active vCPU (CPU 0's on a uniprocessor guest)."""
        return self.active_vcpu

    @property
    def cycles(self) -> int:
        return self.active_vcpu.cycles if self.active_vcpu is not None else 0

    @property
    def current(self) -> Task:
        return self.active_cpu.current

    @property
    def sched(self) -> SchedState:
        return self.active_cpu.sched

    @property
    def softirq_pending(self) -> Set[str]:
        return self.active_cpu.softirq_pending

    @property
    def next_timer(self) -> int:
        return self.active_cpu.next_timer

    @property
    def timer_interrupts(self) -> int:
        return sum(cpu.timer_interrupts for cpu in self.cpus)

    @property
    def idle_task(self) -> Task:
        return self.cpus[0].idle_task

    @property
    def ctx(self) -> Optional[SyscallContext]:
        return self.current.syscall

    @property
    def scratch(self) -> Dict[str, Any]:
        ctx = self.ctx
        if ctx is None:
            raise VcpuError("no syscall context for scratch access")
        return ctx.scratch

    def arg(self, name: str, default: Any = None) -> Any:
        ctx = self.ctx
        if ctx is None:
            return default
        return ctx.args.get(name, default)

    def ret(self, value: Any) -> None:
        ctx = self.ctx
        if ctx is not None:
            ctx.retval = value

    @property
    def in_interrupt(self) -> bool:
        return self.active_cpu.irq_nesting > 0

    @property
    def in_interrupt_handler(self) -> bool:
        return self.active_cpu.irq_nesting > 1

    # ------------------------------------------------------------------
    # task management
    # ------------------------------------------------------------------

    def _alloc_kstack(self) -> int:
        if self._kstack_free:
            return self._kstack_free.pop()
        index = self._next_kstack_index
        self._next_kstack_index += 1
        base = KERNEL_STACK_BASE + index * KSTACK_STRIDE
        return base + KSTACK_STRIDE - 16

    def release_kstack(self, top: int) -> None:
        self._kstack_free.append(top)

    def _make_idle_task(self, cpu_id: int) -> Task:
        page_table = GuestPageTable()
        self.kernel_page_table.share_kernel_mappings(page_table)
        comm = "swapper" if cpu_id == 0 else f"swapper/{cpu_id}"
        # idle tasks use pid 0 (CPU 0) / high sentinel pids (others)
        pid = 0 if cpu_id == 0 else 1_000_000 + cpu_id
        task = Task(pid, comm, page_table, self._alloc_kstack(), driver=None)
        task.state = TaskState.RUNNING
        task.timeslice = self.timeslice_ticks
        task.cpu = cpu_id
        task.is_idle = True
        self.tasks[task.pid] = task
        return task

    def create_task(
        self,
        comm: str,
        driver_factory: Callable[[], Generator[Any, Any, None]],
        parent: Optional[Task] = None,
        cpu: Optional[int] = None,
    ) -> Task:
        """Create a user task whose first schedule-in lands in ret_from_fork."""
        pid = self.next_pid
        self.next_pid += 1
        page_table = GuestPageTable()
        self.kernel_page_table.share_kernel_mappings(page_table)
        # user mappings are shared read-only stub/stack frames
        page_table.map_page(USER_TEXT_BASE, 0x00090000)
        page_table.map_page(USER_STACK_TOP - 0x1000, 0x000A0000)
        task = Task(pid, comm, page_table, self._alloc_kstack(), driver=None)
        task.drivers = [_DriverBox(driver_factory())]
        task.timeslice = self.timeslice_ticks
        task.regs.eip = self.image.address_of("ret_from_fork")
        task.regs.esp = task.kstack_top
        task.regs.ebp = 0
        if cpu is None:
            cpu = self._spawn_cpu_rr % len(self.cpus)
            self._spawn_cpu_rr += 1
        task.cpu = cpu
        if parent is not None:
            task.parent = parent
            parent.children.append(task)
        self.tasks[pid] = task
        task.state = TaskState.RUNNABLE
        self.cpus[cpu].sched.need_resched = True
        return task

    def push_driver(self, task: Task, gen: Generator[Any, Any, None]) -> None:
        task.drivers.append(_DriverBox(gen))

    def replace_driver(self, task: Task, gen: Generator[Any, Any, None]) -> None:
        task.drivers = [_DriverBox(gen)]

    def publish_current_task(self, task: Task, cpu_id: Optional[int] = None) -> None:
        """Write the guest-memory record VMI parses (pid + comm), per CPU."""
        if cpu_id is None:
            cpu_id = self.active_cpu.cpu_id
        comm = task.comm.encode("ascii")[:15].ljust(16, b"\x00")
        addr = CURRENT_TASK_ADDR + cpu_id * CURRENT_TASK_STRIDE
        self.image.write_guest(
            addr, struct.pack("<I", task.pid & 0xFFFFFFFF) + comm
        )

    def on_module_loaded(self, name: str) -> None:
        for listener in self.module_load_listeners:
            listener(name)

    # ------------------------------------------------------------------
    # blocking / waking
    # ------------------------------------------------------------------

    def block_current(self, queue: WaitQueue) -> None:
        task = self.current
        queue.add(task)
        task.state = TaskState.BLOCKED
        task.blocked_on = queue

    def wake_queue(self, queue: WaitQueue) -> None:
        for task in list(queue.waiters):
            queue.remove(task)
            self.wake_task(task)

    def wake_task(self, task: Task) -> None:
        if task.state in (TaskState.BLOCKED, TaskState.SLEEPING):
            task.state = TaskState.RUNNABLE
            task.blocked_on = None
            # resched on the task's own CPU (cross-CPU wakes take effect
            # at that CPU's next need_resched check, IPI-less)
            self.cpus[task.cpu].sched.need_resched = True

    # ------------------------------------------------------------------
    # SemanticsBridge: predicates / actions / slots
    # ------------------------------------------------------------------

    def eval_pred(self, pred_id: int) -> bool:
        name = self.names.pred_name(pred_id)
        fn = self.registry.predicates.get(name)
        if fn is None:
            raise VcpuError(f"unregistered predicate {name!r}")
        return bool(fn(self))

    def do_act(self, act_id: int) -> None:
        name = self.names.act_name(act_id)
        fn = self.registry.actions.get(name)
        if fn is None:
            raise VcpuError(f"unregistered action {name!r}")
        fn(self)

    def resolve_slot(self, slot_id: int) -> int:
        name = self.names.slot_name(slot_id)
        fn = self.registry.slots.get(name)
        if fn is None:
            raise VcpuError(f"unregistered slot {name!r}")
        symbol = fn(self)
        return self.image.address_of(symbol)

    def syscall_handler_symbol(self) -> str:
        ctx = self.ctx
        if ctx is None:
            return "sys_ni_syscall"
        symbol = self.syscall_table.get(ctx.name)
        if symbol is None:
            return "sys_ni_syscall"
        return symbol

    def current_irq_handler(self) -> str:
        return {
            "timer": "timer_interrupt",
            "e1000": "e1000_intr",
            "atkbd": "atkbd_interrupt",
        }.get(self.active_cpu.current_irq or "timer", "timer_interrupt")

    # ------------------------------------------------------------------
    # context switch
    # ------------------------------------------------------------------

    def on_ctxsw(self, vcpu: Vcpu) -> None:
        cpu = self.cpus[vcpu.cpu_id]
        prev = cpu.current
        nxt = cpu.sched.next_task or cpu.idle_task
        if nxt is prev:
            return
        # save prev
        prev.regs.eip = vcpu.eip
        prev.regs.esp = vcpu.esp
        prev.regs.ebp = vcpu.ebp
        prev.regs.if_enabled = vcpu.if_enabled
        if prev.state == TaskState.RUNNING:
            prev.state = TaskState.RUNNABLE
        # restore next
        nxt.state = TaskState.RUNNING
        cpu.current = nxt
        vcpu.mmu.set_cr3(nxt.page_table)
        vcpu.eip = nxt.regs.eip
        vcpu.esp = nxt.regs.esp
        vcpu.ebp = nxt.regs.ebp
        vcpu.if_enabled = nxt.regs.if_enabled
        cpu.sched.context_switches += 1
        self.publish_current_task(nxt, cpu.cpu_id)

    # ------------------------------------------------------------------
    # syscalls
    # ------------------------------------------------------------------

    def _next_request(self, task: Task) -> Any:
        box: Optional[_DriverBox] = task.drivers[-1] if task.drivers else None
        if box is None:
            return Syscall("exit", code=0)
        try:
            if not box.started:
                box.started = True
                return next(box.gen)
            return box.gen.send(task.last_retval)
        except StopIteration:
            if len(task.drivers) > 1:
                # a signal handler fell off its end: implicit sigreturn
                return Syscall("sigreturn")
            return Syscall("exit", code=0)

    def on_software_interrupt(self, vcpu: Vcpu, vector: int) -> None:
        if vector != 0x80:
            raise VcpuError(f"unexpected software interrupt {vector:#x}")
        task = self.cpus[vcpu.cpu_id].current
        if task.user_compute_remaining > 0:
            self._consume_user_compute(vcpu, task)
            return
        request = self._next_request(task)
        if isinstance(request, Compute):
            task.user_compute_remaining = max(1, int(request.cycles))
            self._consume_user_compute(vcpu, task)
            return
        if not isinstance(request, Syscall):
            raise VcpuError(f"driver yielded {request!r}, expected Syscall/Compute")
        task.syscall = SyscallContext(request.name, dict(request.args))
        task.syscall_count += 1
        self.syscalls_executed += 1
        # enter the kernel on the task's kernel stack
        vcpu.user_mode = False
        vcpu.esp = task.kstack_top
        vcpu.push(0)  # backtrace sentinel
        vcpu.ebp = 0
        vcpu.eip = self.image.address_of("syscall_call")

    def _consume_user_compute(self, vcpu: Vcpu, task: Task) -> None:
        """Burn pure user-mode cycles in timer-bounded chunks."""
        cpu = self.cpus[vcpu.cpu_id]
        until_tick = max(1, cpu.next_timer - vcpu.cycles)
        chunk = min(task.user_compute_remaining, until_tick)
        vcpu.cycles += chunk
        task.user_compute_remaining -= chunk
        # eip is already past the INT; the user stub loops back to it,
        # giving the interrupt-window check a chance to fire the tick.

    def on_iret(self, vcpu: Vcpu) -> None:
        task = self.cpus[vcpu.cpu_id].current
        frames: List[_IrqFrame] = task.irq_frames
        if frames:
            frame = frames.pop()
            vcpu.if_enabled = True
            if frame.was_user:
                self._return_to_user(vcpu, task)
            else:
                vcpu.user_mode = False
                vcpu.eip = frame.eip
                vcpu.esp = frame.esp
                vcpu.ebp = frame.ebp
            return
        # syscall (or fork-child) return
        if task.syscall is not None:
            task.last_retval = task.syscall.retval
            task.syscall = None
        self._return_to_user(vcpu, task)

    def _return_to_user(self, vcpu: Vcpu, task: Task) -> None:
        vcpu.user_mode = True
        vcpu.if_enabled = True
        vcpu.eip = USER_TEXT_BASE
        vcpu.esp = USER_STACK_TOP - 16
        vcpu.ebp = 0

    def finish_fork(self) -> None:
        task = self.current
        task.last_retval = 0  # fork returns 0 in the child
        task.syscall = None

    # ------------------------------------------------------------------
    # interrupts
    # ------------------------------------------------------------------

    def _due_irq(self, cpu: CpuState, now: int) -> Optional[str]:
        if now >= cpu.next_timer:
            return "timer"
        if cpu.cpu_id == 0:
            if self.net.nic_irq_due(now):
                return "e1000"
            if self.tty.kbd_irq_due(now):
                return "atkbd"
        return None

    def refresh_next_event(self) -> None:
        """Recompute every CPU's cached earliest-interrupt deadline."""
        for cpu in self.cpus:
            nxt = cpu.next_timer
            if cpu.cpu_id == 0:
                nic = self.net.next_nic_event()
                if nic is not None and nic < nxt:
                    nxt = nic
                kbd = self.tty.next_kbd_event()
                if kbd is not None and kbd < nxt:
                    nxt = kbd
            cpu.next_event = nxt

    def interrupt_pending(self, vcpu: Vcpu) -> bool:
        return vcpu.cycles >= self.cpus[vcpu.cpu_id].next_event

    def deliver_interrupt(self, vcpu: Vcpu) -> None:
        cpu = self.cpus[vcpu.cpu_id]
        irq = self._due_irq(cpu, vcpu.cycles)
        if irq is None:
            self.refresh_next_event()
            return
        if irq == "timer":
            cpu.timer_interrupts += 1
            while cpu.next_timer <= vcpu.cycles:
                cpu.next_timer += self.timer_period
        self.refresh_next_event()
        cpu.current_irq = irq
        task = cpu.current
        task.irq_frames.append(
            _IrqFrame(
                eip=vcpu.eip,
                esp=vcpu.esp,
                ebp=vcpu.ebp,
                was_user=vcpu.user_mode,
            )
        )
        vcpu.if_enabled = False
        if vcpu.user_mode:
            vcpu.user_mode = False
            vcpu.esp = task.kstack_top
            vcpu.push(0)
            vcpu.ebp = 0
        else:
            # interrupted kernel context: the handler runs deeper on the
            # same stack, leaving the interrupted frame walkable
            vcpu.push(vcpu.eip)
        vcpu.eip = self.image.address_of("irq_entry")

    def irq_enter(self) -> None:
        self.active_cpu.irq_nesting += 1

    def irq_exit(self) -> None:
        cpu = self.active_cpu
        cpu.irq_nesting = max(0, cpu.irq_nesting - 1)

    def irq_returns_to_user(self) -> bool:
        frames = self.current.irq_frames
        return bool(frames) and frames[-1].was_user

    # ------------------------------------------------------------------
    # idle (HLT exit handler)
    # ------------------------------------------------------------------

    def on_idle(self, vcpu: Vcpu) -> None:
        """Advance virtual time to the next event while the guest idles."""
        self.refresh_next_event()
        cpu = self.cpus[vcpu.cpu_id]
        target = cpu.next_event
        if len(self.cpus) > 1:
            # co-simulation clamp: never run more than one tick period
            # ahead of the slowest sibling vCPU (it catches up on its own
            # interleaved slice)
            others = [
                v.cycles
                for i, v in enumerate(self.vcpus)
                if v is not None and i != vcpu.cpu_id
            ]
            if others:
                target = min(target, min(others) + self.timer_period)
        if target > vcpu.cycles:
            vcpu.cycles = target
        else:
            vcpu.cycles += 1
