"""The synthetic guest kernel.

A Linux-like kernel whose code section is real bytes in guest memory:
~400 kernel functions with a realistic call graph spanning process
management, scheduling, VFS (ext4 + jbd2 journalling, procfs, pipes),
networking (UDP/TCP sockets with an apparmor LSM), TTY, signals, timers
and the clocksource split (TSC under QEMU vs kvm-clock under KVM) that
the paper's recovery example in Section III-B3 depends on.

Control flow that on real hardware would be data-driven (branch on a
file's type, indirect call through the syscall table) is delegated by
the virtual CPU to this package's *semantic layer*: named predicates,
actions and dispatch slots registered in :mod:`repro.kernel.registry`
and interpreted by :class:`repro.kernel.runtime.KernelRuntime`.
"""

from repro.kernel.image import KernelImage, LoadedModule
from repro.kernel.runtime import KernelRuntime, Platform
from repro.kernel.objects import Task, TaskState

__all__ = [
    "KernelImage",
    "KernelRuntime",
    "LoadedModule",
    "Platform",
    "Task",
    "TaskState",
]
