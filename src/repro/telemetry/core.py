"""Telemetry primitives: counters, histograms and the trace ring buffer.

The paper's evaluation (Section IV, Figures 6-7, Table 2) attributes
every cycle of overhead to a mechanism: VM exits, EPT view switches,
code recoveries.  This module gives the whole stack one shared event
model for that accounting instead of per-component counter bags:

* :class:`Counter` / :class:`LabelledCounter` -- monotonic counts,
  registry-owned so read-only views (``ExitStats``, ``FaceChangeStats``)
  can be reconstructed from names;
* :class:`Histogram` -- power-of-two bucketed cycle/latency
  distributions (per-exit-reason charged cycles, EPT switch costs);
* :class:`TraceBuffer` -- a bounded ring of structured
  :class:`TraceEvent` records, the raw material for the per-app
  timelines (``repro.cli trace``) the paper could only describe
  qualitatively;
* :class:`Telemetry` -- the per-machine registry tying it together.

Tracing is **zero-cost when disabled**: hot paths guard every ``emit``
behind the single ``tracing`` flag (``if tel.tracing: tel.emit(...)``),
and counters are plain integer adds, so the Figure 6/7 virtual-cycle
scores are unaffected either way (telemetry charges no guest cycles).
"""

from __future__ import annotations

import os
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.telemetry.journal import Journal
from repro.telemetry.spans import SpanRecorder

#: Distinguishes auto-attached journal files from the same process.
_journal_counter = 0


class Counter:
    """A named monotonic counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


class LabelledCounter:
    """A counter family keyed by label (e.g. per trap address)."""

    __slots__ = ("name", "values")

    def __init__(self, name: str) -> None:
        self.name = name
        self.values: Dict[Any, int] = {}

    def inc(self, label: Any, n: int = 1) -> None:
        self.values[label] = self.values.get(label, 0) + n

    def get(self, label: Any) -> int:
        return self.values.get(label, 0)

    @property
    def total(self) -> int:
        return sum(self.values.values())

    def reset(self) -> None:
        self.values.clear()


#: Number of power-of-two buckets: covers values up to 2**63.
_HISTOGRAM_BUCKETS = 64


class Histogram:
    """Power-of-two bucketed distribution of non-negative samples.

    Bucket ``i`` counts samples with ``value.bit_length() == i`` (bucket
    0 holds zeros), i.e. bucket boundaries at 1, 2, 4, 8, ... cycles.
    """

    __slots__ = ("name", "buckets", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.buckets: List[int] = [0] * _HISTOGRAM_BUCKETS
        self.count = 0
        self.total = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None

    def observe(self, value: int) -> None:
        if value < 0:
            value = 0
        self.buckets[value.bit_length()] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> int:
        """Upper bucket boundary containing the ``q``-quantile sample."""
        if not self.count:
            return 0
        rank = max(1, int(q * self.count + 0.999999))
        seen = 0
        for i, n in enumerate(self.buckets):
            seen += n
            if seen >= rank:
                return (1 << i) - 1 if i else 0
        return (1 << _HISTOGRAM_BUCKETS) - 1  # pragma: no cover

    def nonzero_buckets(self) -> List[Tuple[int, int]]:
        """(upper_bound, count) for every populated bucket, ascending."""
        return [
            ((1 << i) - 1 if i else 0, n)
            for i, n in enumerate(self.buckets)
            if n
        ]

    def reset(self) -> None:
        self.buckets = [0] * _HISTOGRAM_BUCKETS
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None


@dataclass(frozen=True)
class TraceEvent:
    """One structured trace record.

    ``cycles`` is the emitting vCPU's virtual clock, which is also what
    :class:`~repro.core.provenance.RecoveryEvent` stamps -- so recovery
    trace events and provenance-log entries correlate exactly.
    """

    seq: int
    cycles: int
    cpu: int
    kind: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def get(self, key: str, default: Any = None) -> Any:
        return self.fields.get(key, default)

    def format(self) -> str:
        detail = " ".join(f"{k}={v}" for k, v in self.fields.items())
        return f"[{self.cycles:>12}] cpu{self.cpu} {self.kind:<22} {detail}"


class TraceBuffer:
    """A bounded ring buffer of trace events (oldest dropped first)."""

    def __init__(self, capacity: int = 65536) -> None:
        if capacity <= 0:
            raise ValueError("trace buffer capacity must be positive")
        self.capacity = capacity
        self._events: deque = deque(maxlen=capacity)
        self.dropped = 0

    def append(self, event: TraceEvent) -> None:
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(event)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0


class Telemetry:
    """The per-machine registry of counters, histograms and the trace.

    One instance is shared by the hypervisor, the view switcher, the
    recovery engine and the vCPUs of a machine; components hold direct
    handles to their counters (one attribute load per increment) while
    consumers enumerate the registry by name.
    """

    def __init__(self, trace_capacity: int = 65536) -> None:
        self.counters: Dict[str, Counter] = {}
        self.labelled: Dict[str, LabelledCounter] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.trace = TraceBuffer(trace_capacity)
        #: the single branch hot paths test before emitting a trace event
        #: (``REPRO_TRACE=1`` turns tracing on for every new machine, so
        #: benchmark drivers that boot their own machines can be traced)
        self.tracing = os.environ.get("REPRO_TRACE", "") == "1"
        self._seq = 0
        #: causal-span recorder; span calls are guarded by ``recording``
        self.spans = SpanRecorder()
        self.journal: Optional[Journal] = None
        #: the single branch hot paths test before touching the recorder
        self.recording = False
        # REPRO_JOURNAL_DIR auto-attaches a file journal to every new
        # machine, so benchmark drivers can exercise the recorder
        # without plumbing flags through every boot path.
        journal_dir = os.environ.get("REPRO_JOURNAL_DIR", "")
        if journal_dir:
            global _journal_counter
            _journal_counter += 1
            path = os.path.join(
                journal_dir, f"journal-{os.getpid()}-{_journal_counter}.jsonl"
            )
            self.attach_journal(Journal(path=path))

    # -- instrument registry (get-or-create) --------------------------------

    def counter(self, name: str) -> Counter:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter(name)
        return counter

    def labelled_counter(self, name: str) -> LabelledCounter:
        counter = self.labelled.get(name)
        if counter is None:
            counter = self.labelled[name] = LabelledCounter(name)
        return counter

    def histogram(self, name: str) -> Histogram:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram(name)
        return hist

    # -- tracing -------------------------------------------------------------

    def enable_tracing(self) -> None:
        self.tracing = True

    def disable_tracing(self) -> None:
        self.tracing = False

    def emit(self, kind: str, cycles: int = 0, cpu: int = 0, **fields: Any) -> None:
        """Record a trace event.  Callers guard with ``if tel.tracing``."""
        if not self.tracing:
            return
        self._seq += 1
        self.trace.append(TraceEvent(self._seq, cycles, cpu, kind, fields))
        if self.recording and self.journal is not None:
            span = self.spans.current(cpu)
            self.journal.append(
                "event",
                kind=kind,
                cycles=cycles,
                cpu=cpu,
                span=span.span_id if span is not None else None,
                fields=fields,
            )

    # -- flight recorder -----------------------------------------------------

    def attach_journal(self, journal: Journal) -> Journal:
        """Bind a journal; spans and trace events persist into it."""
        self.journal = journal
        self.spans.bind(journal)
        self.recording = True
        return journal

    def detach_journal(self) -> Optional[Journal]:
        """Unbind and return the journal (caller closes it)."""
        journal = self.journal
        self.journal = None
        self.spans.unbind()
        self.recording = False
        return journal

    def events(self, kind: Optional[str] = None) -> List[TraceEvent]:
        if kind is None:
            return list(self.trace)
        return [e for e in self.trace if e.kind == kind]

    # -- lifecycle ------------------------------------------------------------

    def reset(self) -> None:
        for counter in self.counters.values():
            counter.reset()
        for counter in self.labelled.values():
            counter.reset()
        for hist in self.histograms.values():
            hist.reset()
        self.trace.clear()
        self._seq = 0
        self.spans.reset()
