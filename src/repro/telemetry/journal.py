"""Forensic flight recorder: an append-only, schema-versioned JSONL journal.

The trace ring (PR 1) is bounded and volatile -- fine for live
inspection, useless as evidence.  The journal persists what the monitor
itself did, in order, with explicit loss accounting:

* line 1 is an unnumbered ``header`` record carrying the schema version
  and free-form run metadata;
* every body record gets a monotonically increasing ``seq`` starting at
  1 -- a reader can prove completeness: the only legitimate gaps are
  drops the writer accounted for;
* a ``footer`` records the final seq and total drops on a clean
  :meth:`Journal.close` (a crashed run simply has no footer -- the file
  is still valid and must then be gapless);
* a bounded in-memory journal (fleet workers stream segments to the
  parent) evicts oldest-first and counts every eviction in ``dropped``.

Record kinds written today: ``span`` (closed causal spans, see
:mod:`repro.telemetry.spans`) and ``event`` (trace-ring events, tagged
with the innermost open span so the loader can attach them to the
tree).  Unknown kinds are preserved round-trip; the schema version only
changes when existing fields change meaning.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Deque, Dict, Iterable, List, Optional, Tuple, Union

#: Bump only when the meaning of existing fields changes.
JOURNAL_SCHEMA = 1


class JournalError(Exception):
    """Corrupt, truncated, or wrong-schema journal data."""


def _dumps(record: Dict[str, Any]) -> str:
    return json.dumps(record, separators=(",", ":"), sort_keys=True)


class Journal:
    """Append-only record sink; file-backed, in-memory, or both.

    ``path``      -- JSONL file to append to (header written immediately).
    ``capacity``  -- bound on the in-memory buffer; ``None`` = unbounded.
    ``keep``      -- retain records in memory (defaults to True without a
                     path, False with one -- the file already has them).
    ``meta``      -- free-form run metadata stored in the header.
    """

    def __init__(
        self,
        path: Optional[Union[str, Path]] = None,
        capacity: Optional[int] = None,
        keep: Optional[bool] = None,
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.path = Path(path) if path is not None else None
        self.capacity = capacity
        self.keep = keep if keep is not None else self.path is None
        self.meta = dict(meta or {})
        #: seq of the most recently appended body record
        self.seq = 0
        #: total records evicted from the in-memory buffer
        self.dropped = 0
        self._dropped_since_drain = 0
        self._buffer: Deque[Dict[str, Any]] = deque()
        self._fh = None
        self.closed = False
        if self.path is not None:
            self._fh = open(self.path, "w", encoding="utf-8")
            self._fh.write(
                _dumps({"t": "header", "schema": JOURNAL_SCHEMA, "meta": self.meta})
                + "\n"
            )

    # -- writing -------------------------------------------------------------

    def append(self, kind: str, /, **payload: Any) -> int:
        """Append one body record; returns its seq number.

        ``kind`` is positional-only so payloads may carry their own
        ``kind`` field (trace events do).
        """
        if self.closed:
            return self.seq
        self.seq += 1
        record = dict(payload)
        record["t"] = kind
        record["seq"] = self.seq
        if self._fh is not None:
            self._fh.write(_dumps(record) + "\n")
        if self.keep:
            self._buffer.append(record)
            if self.capacity is not None and len(self._buffer) > self.capacity:
                self._buffer.popleft()
                self.dropped += 1
                self._dropped_since_drain += 1
        return self.seq

    def records(self) -> List[Dict[str, Any]]:
        """The in-memory records (empty unless ``keep``)."""
        return list(self._buffer)

    def drain_segment(self) -> Tuple[List[Dict[str, Any]], int]:
        """Pop buffered records for streaming.

        Returns ``(records, dropped_since_last_drain)``.  Drained records
        are *transmitted*, not lost -- they don't count as drops; the
        second element accounts evictions since the previous drain so a
        receiver concatenating segments can keep exact loss totals.
        """
        records = list(self._buffer)
        self._buffer.clear()
        dropped = self._dropped_since_drain
        self._dropped_since_drain = 0
        return records, dropped

    def close(self) -> None:
        """Write the footer (file mode) and stop accepting records."""
        if self.closed:
            return
        self.closed = True
        if self._fh is not None:
            self._fh.write(
                _dumps({"t": "footer", "records": self.seq, "dropped": self.dropped})
                + "\n"
            )
            self._fh.close()
            self._fh = None

    def flush(self) -> None:
        if self._fh is not None:
            self._fh.flush()

    def __deepcopy__(self, memo: Dict[int, Any]) -> "Journal":
        # Snapshot forks deepcopy the whole machine; an open file handle
        # can't be copied (and a fork must not write into its parent's
        # journal), so the clone gets a fresh, detached in-memory
        # journal with the same bounds.
        clone = Journal(capacity=self.capacity, keep=self.keep, meta=self.meta)
        memo[id(self)] = clone
        return clone


# -- reading -----------------------------------------------------------------


@dataclass
class JournalData:
    """A parsed journal: header metadata, body records, loss accounting."""

    schema: int
    meta: Dict[str, Any]
    records: List[Dict[str, Any]]
    footer: Optional[Dict[str, Any]] = None

    @property
    def dropped(self) -> int:
        """Drops the writer accounted for (0 when no footer)."""
        if self.footer is None:
            return 0
        return int(self.footer.get("dropped", 0))

    @property
    def complete(self) -> bool:
        """True when a clean footer is present (run closed the journal)."""
        return self.footer is not None


def parse_journal(lines: Iterable[str]) -> JournalData:
    """Parse journal lines, verifying schema and seq completeness.

    Seq numbers must be strictly increasing, and the total number of
    missing seqs must not exceed the drops the footer accounts for --
    a journal with unexplained gaps is evidence of tampering or
    truncation and is rejected.
    """
    header: Optional[Dict[str, Any]] = None
    footer: Optional[Dict[str, Any]] = None
    records: List[Dict[str, Any]] = []
    for lineno, line in enumerate(lines, 1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError as exc:
            raise JournalError(f"line {lineno}: invalid JSON: {exc}") from exc
        if not isinstance(record, dict) or "t" not in record:
            raise JournalError(f"line {lineno}: not a journal record")
        kind = record["t"]
        if kind == "header":
            if header is not None:
                raise JournalError(f"line {lineno}: duplicate header")
            if records or footer is not None:
                raise JournalError(f"line {lineno}: header not first")
            schema = record.get("schema")
            if schema != JOURNAL_SCHEMA:
                raise JournalError(
                    f"unsupported journal schema {schema!r} "
                    f"(expected {JOURNAL_SCHEMA})"
                )
            header = record
            continue
        if header is None:
            raise JournalError(f"line {lineno}: record before header")
        if footer is not None:
            raise JournalError(f"line {lineno}: record after footer")
        if kind == "footer":
            footer = record
            continue
        seq = record.get("seq")
        if not isinstance(seq, int):
            raise JournalError(f"line {lineno}: body record without seq")
        if records and seq <= records[-1]["seq"]:
            raise JournalError(
                f"line {lineno}: seq {seq} not increasing "
                f"(previous {records[-1]['seq']})"
            )
        records.append(record)
    if header is None:
        raise JournalError("empty journal: no header record")
    data = JournalData(
        schema=int(header["schema"]),
        meta=dict(header.get("meta", {})),
        records=records,
        footer=footer,
    )
    last_seq = records[-1]["seq"] if records else 0
    missing = last_seq - len(records)
    if missing > data.dropped:
        raise JournalError(
            f"{missing} seq number(s) missing but only {data.dropped} "
            "drop(s) accounted for"
        )
    if footer is not None:
        declared = int(footer.get("records", last_seq))
        if declared < last_seq:
            raise JournalError(
                f"footer declares {declared} records but seq reaches {last_seq}"
            )
    return data


def load_journal(path: Union[str, Path]) -> JournalData:
    """Read and verify a journal file."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise JournalError(f"unreadable journal {path}: {exc}") from exc
    return parse_journal(text.splitlines())


# -- span-tree reconstruction -------------------------------------------------


@dataclass
class SpanNode:
    """A reconstructed span with its children and attached trace events."""

    record: Dict[str, Any]
    children: List["SpanNode"] = field(default_factory=list)
    events: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def kind(self) -> str:
        return self.record.get("kind", "?")

    @property
    def span_id(self) -> int:
        return self.record["id"]

    @property
    def attrs(self) -> Dict[str, Any]:
        return self.record.get("attrs", {})

    def find(self, kind: str) -> List["SpanNode"]:
        """All descendants (and self) of the given kind, pre-order."""
        found = [self] if self.kind == kind else []
        for child in self.children:
            found.extend(child.find(kind))
        return found

    def to_dict(self) -> Dict[str, Any]:
        """Canonical nested form, for replay-equality comparison."""
        return {
            "kind": self.kind,
            "cpu": self.record.get("cpu"),
            "start": self.record.get("start"),
            "end": self.record.get("end"),
            "status": self.record.get("status"),
            "attrs": self.attrs,
            "events": [
                {k: v for k, v in event.items() if k != "seq"}
                for event in self.events
            ],
            "children": [child.to_dict() for child in self.children],
        }


def build_span_trees(records: Iterable[Dict[str, Any]]) -> List[SpanNode]:
    """Rebuild span trees from journal body records.

    Spans are journaled on *close*, so children precede parents in file
    order; linkage uses the recorded ids, not ordering.  A span whose
    parent is absent (dropped, or still open at the end of a truncated
    run) becomes a root.  Trace events tagged with a span id attach to
    that span's node.
    """
    nodes: Dict[int, SpanNode] = {}
    events: List[Dict[str, Any]] = []
    order: List[SpanNode] = []
    for record in records:
        if record.get("t") == "span":
            node = SpanNode(record=record)
            nodes[record["id"]] = node
            order.append(node)
        elif record.get("t") == "event":
            events.append(record)
    roots: List[SpanNode] = []
    for node in order:
        parent_id = node.record.get("parent")
        parent = nodes.get(parent_id) if parent_id is not None else None
        if parent is not None:
            parent.children.append(node)
        else:
            roots.append(node)
    for event in events:
        target = nodes.get(event.get("span"))
        if target is not None:
            target.events.append(event)
    def _key(node: SpanNode) -> Tuple[int, int]:
        return (node.record.get("start", 0), node.span_id)
    for node in order:
        node.children.sort(key=_key)
        node.events.sort(key=lambda e: e.get("seq", 0))
    roots.sort(key=_key)
    return roots
