"""Causal spans: the tree-structured sibling of the flat trace ring.

PR 1's :class:`~repro.telemetry.core.TraceBuffer` records *what*
happened; it cannot record *why*.  A VM exit at a UD2 fill, the
backtrace walked from it, the provenance verdict and the code fill that
resolves it are one causal chain (paper §III-B3, §III-C), but ring
events only correlate heuristically by ``(cycles, rip)`` after the
fact.  Spans make the chain explicit:

* a :class:`Span` has an id, a parent id, a kind, start/end virtual
  cycles and free-form attributes;
* the :class:`SpanRecorder` keeps one stack of open spans **per vCPU**,
  so a span opened while another is open becomes its child
  automatically -- the exit-stage pipeline opens the root ``vmexit``
  span and everything the handler does (view switch, backtrace,
  provenance verdict, recovery fill) nests under it;
* closed spans are appended to the attached
  :class:`~repro.telemetry.journal.Journal` (the forensic flight
  recorder), from which :func:`~repro.telemetry.journal.build_span_trees`
  reconstructs the trees with real parent links.

Spans charge **zero guest cycles**: they only read the vCPU's virtual
clock, never advance it, so every virtual-cycle benchmark score is
bit-identical with the recorder on or off
(``benchmarks/record_observability_overhead.py`` enforces this).  Hot
paths guard every call behind the single ``telemetry.recording`` flag.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Sentinel: derive the parent from the per-CPU stack of open spans.
_AUTO = object()


@dataclass
class Span:
    """One node of a causal chain (open until :meth:`SpanRecorder.close`)."""

    span_id: int
    parent_id: Optional[int]
    kind: str
    cpu: int
    start_cycles: int
    end_cycles: Optional[int] = None
    status: str = "ok"
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def open(self) -> bool:
        return self.end_cycles is None

    def to_record(self) -> Dict[str, Any]:
        """The journal payload (sans ``seq``, which the journal assigns)."""
        return {
            "id": self.span_id,
            "parent": self.parent_id,
            "kind": self.kind,
            "cpu": self.cpu,
            "start": self.start_cycles,
            "end": self.end_cycles,
            "status": self.status,
            "attrs": dict(self.attrs),
        }


class SpanRecorder:
    """Allocates span ids and maintains the per-CPU open-span stacks."""

    def __init__(self) -> None:
        self._next_id = 1
        self._open: Dict[int, List[Span]] = {}
        self.journal = None  # bound by Telemetry.attach_journal
        #: request trace id stamped onto root spans while set (the
        #: serve daemon binds it for the duration of a traced job, so
        #: every vmexit chain in the guest journal links back to the
        #: submission that caused it).  An attribute only -- it never
        #: touches cycle accounting, so scores stay bit-identical.
        self.trace_id: Optional[str] = None

    def bind(self, journal) -> None:
        self.journal = journal

    def unbind(self) -> None:
        self.journal = None

    # -- span lifecycle ------------------------------------------------------

    def open(
        self,
        kind: str,
        cpu: int = 0,
        cycles: int = 0,
        parent: Any = _AUTO,
        **attrs: Any,
    ) -> Span:
        """Open a span; parent defaults to the CPU's innermost open span."""
        if parent is _AUTO:
            stack = self._open.get(cpu)
            parent_id = stack[-1].span_id if stack else None
        else:
            parent_id = parent.span_id if isinstance(parent, Span) else parent
        if parent_id is None and self.trace_id is not None:
            attrs.setdefault("trace", self.trace_id)
        span = Span(
            span_id=self._next_id,
            parent_id=parent_id,
            kind=kind,
            cpu=cpu,
            start_cycles=cycles,
            attrs=attrs,
        )
        self._next_id += 1
        self._open.setdefault(cpu, []).append(span)
        return span

    def close(
        self, span: Span, cycles: int = 0, status: str = "ok", **attrs: Any
    ) -> Span:
        """Close ``span`` and persist it to the journal (if bound)."""
        span.end_cycles = cycles
        span.status = status
        if attrs:
            span.attrs.update(attrs)
        stack = self._open.get(span.cpu)
        if stack and span in stack:
            stack.remove(span)
        if self.journal is not None:
            self.journal.append("span", **span.to_record())
        return span

    def event(self, span: Span, kind: str, cycles: int = 0, **attrs: Any) -> Span:
        """A zero-duration child span (e.g. a provenance verdict)."""
        child = self.open(kind, cpu=span.cpu, cycles=cycles,
                          parent=span.span_id, **attrs)
        # remove from the stack immediately: it must not adopt children
        return self.close(child, cycles=cycles)

    def current(self, cpu: int = 0) -> Optional[Span]:
        """The CPU's innermost open span (trace events link to it)."""
        stack = self._open.get(cpu)
        return stack[-1] if stack else None

    def reset(self) -> None:
        self._open.clear()
        self._next_id = 1
