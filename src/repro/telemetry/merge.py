"""Merge telemetry registry snapshots into one fleet-level view.

Each fleet guest owns a private :class:`~repro.telemetry.core.Telemetry`
registry; workers ship its :func:`~repro.telemetry.export.snapshot`
dict (picklable) back to the coordinator, which folds them together:

* counters and labelled counters add;
* histograms add bucket-wise (buckets are keyed by upper bound, so
  registries that populated different buckets merge losslessly), with
  ``count``/``total`` summed, ``min``/``max`` taken across sources and
  ``mean`` recomputed from the merged sums;
* trace rings are *sampled*: events are tagged with their source,
  interleaved, and evenly thinned to ``trace_limit``, with everything
  thinned (plus each ring's own overflow) accounted in ``dropped``.

The merge is associative and commutative over the numeric instruments:
merging two registries equals one registry that observed both streams.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence


def _merge_counters(target: Dict[str, int], source: Dict[str, int]) -> None:
    for name, value in source.items():
        target[name] = target.get(name, 0) + value


def _merge_labelled(
    target: Dict[str, Dict[str, int]], source: Dict[str, Dict[str, int]]
) -> None:
    for name, values in source.items():
        slot = target.setdefault(name, {})
        for label, value in values.items():
            slot[label] = slot.get(label, 0) + value


def _merge_histogram(target: Dict[str, Any], source: Dict[str, Any]) -> None:
    target["count"] += source["count"]
    target["total"] += source["total"]
    for bound in ("min", "max"):
        ours, theirs = target[bound], source[bound]
        if theirs is not None and (
            ours is None or (theirs < ours if bound == "min" else theirs > ours)
        ):
            target[bound] = theirs
    buckets = dict(tuple(pair) for pair in target["buckets"])
    for upper, count in source["buckets"]:
        buckets[upper] = buckets.get(upper, 0) + count
    target["buckets"] = sorted(buckets.items())
    target["mean"] = target["total"] / target["count"] if target["count"] else 0.0


def _copy_histogram(source: Dict[str, Any]) -> Dict[str, Any]:
    data = dict(source)
    data["buckets"] = [tuple(pair) for pair in source["buckets"]]
    return data


def _thin(events: List[Dict[str, Any]], limit: int) -> List[Dict[str, Any]]:
    """Evenly strided sample of ``events`` keeping at most ``limit``."""
    if limit <= 0 or len(events) <= limit:
        return events
    stride = len(events) / limit
    return [events[int(i * stride)] for i in range(limit)]


def empty_merge() -> Dict[str, Any]:
    """A zero-source accumulator for :func:`merge_into`."""
    return {
        "counters": {},
        "labelled_counters": {},
        "histograms": {},
        "trace": {"dropped": 0, "events": []},
        "journal": {"written": 0, "dropped": 0},
        "sources": 0,
    }


def merge_into(
    accumulator: Dict[str, Any],
    snap: Dict[str, Any],
    source: str,
    trace_limit: int = 512,
) -> Dict[str, Any]:
    """Fold one more registry snapshot into ``accumulator`` in place.

    The incremental counterpart to :func:`merge_snapshots`, for
    long-lived consumers (the serve daemon) that cannot afford to keep
    every source snapshot alive for a batch merge.  Counters, labelled
    counters, histograms and journal totals fold exactly as the batch
    merge would; the trace is re-thinned to ``trace_limit`` after each
    fold (already-merged events keep their original source tags), so
    kept + dropped always accounts for every event ever seen.
    """
    _merge_counters(accumulator["counters"], snap.get("counters", {}))
    _merge_labelled(
        accumulator["labelled_counters"], snap.get("labelled_counters", {})
    )
    for name, hist in snap.get("histograms", {}).items():
        if name in accumulator["histograms"]:
            _merge_histogram(accumulator["histograms"][name], hist)
        else:
            accumulator["histograms"][name] = _copy_histogram(hist)
    journal = snap.get("journal")
    if journal:
        accumulator["journal"]["written"] += journal.get("written", 0)
        accumulator["journal"]["dropped"] += journal.get("dropped", 0)
    trace = snap.get("trace")
    if trace:
        accumulator["trace"]["dropped"] += trace.get("dropped", 0)
        events = list(accumulator["trace"]["events"])
        for event in trace.get("events", []):
            events.append({**event, "source": source})
        events.sort(
            key=lambda e: (e.get("cycles", 0), e.get("source", ""), e.get("seq", 0))
        )
        kept = _thin(events, trace_limit)
        accumulator["trace"]["dropped"] += len(events) - len(kept)
        accumulator["trace"]["events"] = kept
    accumulator["sources"] += 1
    return accumulator


def merge_snapshots(
    snapshots: Sequence[Dict[str, Any]],
    sources: Optional[Sequence[str]] = None,
    trace_limit: int = 512,
) -> Dict[str, Any]:
    """Fold registry snapshot dicts into one fleet-level snapshot.

    ``sources`` (parallel to ``snapshots``) tags each sampled trace
    event with the guest it came from; defaults to ``guest-<i>``.
    """
    if sources is not None and len(sources) != len(snapshots):
        raise ValueError(
            f"{len(sources)} source names for {len(snapshots)} snapshots"
        )
    merged: Dict[str, Any] = {
        "counters": {},
        "labelled_counters": {},
        "histograms": {},
        "trace": {"dropped": 0, "events": []},
        "journal": {"written": 0, "dropped": 0},
        "sources": len(snapshots),
    }
    events: List[Dict[str, Any]] = []
    for i, snap in enumerate(snapshots):
        _merge_counters(merged["counters"], snap.get("counters", {}))
        _merge_labelled(
            merged["labelled_counters"], snap.get("labelled_counters", {})
        )
        for name, hist in snap.get("histograms", {}).items():
            if name in merged["histograms"]:
                _merge_histogram(merged["histograms"][name], hist)
            else:
                merged["histograms"][name] = _copy_histogram(hist)
        journal = snap.get("journal")
        if journal:
            merged["journal"]["written"] += journal.get("written", 0)
            merged["journal"]["dropped"] += journal.get("dropped", 0)
        trace = snap.get("trace")
        if trace:
            merged["trace"]["dropped"] += trace.get("dropped", 0)
            label = sources[i] if sources is not None else f"guest-{i}"
            for event in trace.get("events", []):
                events.append({**event, "source": label})
    events.sort(key=lambda e: (e.get("cycles", 0), e.get("source", ""), e.get("seq", 0)))
    kept = _thin(events, trace_limit)
    merged["trace"]["dropped"] += len(events) - len(kept)
    merged["trace"]["events"] = kept
    return merged
