"""Structured telemetry: counters, histograms, trace events, exporters.

The shared measurement substrate every layer emits through -- see
:mod:`repro.telemetry.core` for the primitives and
:mod:`repro.telemetry.export` for the JSON/text render paths.
"""

from repro.telemetry.core import (
    Counter,
    Histogram,
    LabelledCounter,
    Telemetry,
    TraceBuffer,
    TraceEvent,
)
from repro.telemetry.export import (
    format_counters,
    format_prometheus,
    format_timeline,
    prometheus_name,
    snapshot,
    to_json,
)
from repro.telemetry.journal import (
    JOURNAL_SCHEMA,
    Journal,
    JournalData,
    JournalError,
    SpanNode,
    build_span_trees,
    load_journal,
    parse_journal,
)
from repro.telemetry.merge import empty_merge, merge_into, merge_snapshots
from repro.telemetry.spans import Span, SpanRecorder

__all__ = [
    "Counter",
    "Histogram",
    "JOURNAL_SCHEMA",
    "Journal",
    "JournalData",
    "JournalError",
    "LabelledCounter",
    "Span",
    "SpanNode",
    "SpanRecorder",
    "Telemetry",
    "TraceBuffer",
    "TraceEvent",
    "build_span_trees",
    "empty_merge",
    "format_counters",
    "format_prometheus",
    "format_timeline",
    "load_journal",
    "merge_into",
    "merge_snapshots",
    "parse_journal",
    "prometheus_name",
    "snapshot",
    "to_json",
]
