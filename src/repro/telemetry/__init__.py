"""Structured telemetry: counters, histograms, trace events, exporters.

The shared measurement substrate every layer emits through -- see
:mod:`repro.telemetry.core` for the primitives and
:mod:`repro.telemetry.export` for the JSON/text render paths.
"""

from repro.telemetry.core import (
    Counter,
    Histogram,
    LabelledCounter,
    Telemetry,
    TraceBuffer,
    TraceEvent,
)
from repro.telemetry.export import (
    format_counters,
    format_timeline,
    snapshot,
    to_json,
)
from repro.telemetry.merge import merge_snapshots

__all__ = [
    "Counter",
    "Histogram",
    "LabelledCounter",
    "Telemetry",
    "TraceBuffer",
    "TraceEvent",
    "format_counters",
    "format_timeline",
    "merge_snapshots",
    "snapshot",
    "to_json",
]
