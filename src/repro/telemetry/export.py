"""Telemetry exporters: JSON snapshots, Prometheus text, terminal text.

Three render targets:

* :func:`snapshot` / :func:`to_json` -- a machine-readable dump of every
  counter, histogram and trace event (the ``repro.cli trace -o`` file
  format, also what ``BENCH_telemetry.json`` records);
* :func:`format_prometheus` -- Prometheus text exposition over a
  snapshot dict (shared by the serve daemon's scrape surface and
  ``repro report --format prom``);
* :func:`format_counters` / :func:`format_timeline` -- the terminal
  rendering used by the ``trace`` CLI verb and the evaluation report.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, Iterable, List, Optional

from repro.telemetry.core import Telemetry, TraceEvent

_PROM_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def snapshot(telemetry: Telemetry, events: bool = True) -> Dict[str, Any]:
    """A JSON-able dump of the registry (and, optionally, the trace)."""
    data: Dict[str, Any] = {
        "counters": {
            name: counter.value
            for name, counter in sorted(telemetry.counters.items())
        },
        "labelled_counters": {
            name: {str(label): n for label, n in sorted(counter.values.items())}
            for name, counter in sorted(telemetry.labelled.items())
        },
        "histograms": {
            name: {
                "count": hist.count,
                "total": hist.total,
                "min": hist.min,
                "max": hist.max,
                "mean": hist.mean,
                "buckets": hist.nonzero_buckets(),
            }
            for name, hist in sorted(telemetry.histograms.items())
        },
    }
    if events:
        data["trace"] = {
            "dropped": telemetry.trace.dropped,
            "events": [
                {
                    "seq": e.seq,
                    "cycles": e.cycles,
                    "cpu": e.cpu,
                    "kind": e.kind,
                    **e.fields,
                }
                for e in telemetry.trace
            ],
        }
    if telemetry.journal is not None:
        data["journal"] = {
            "written": telemetry.journal.seq,
            "dropped": telemetry.journal.dropped,
        }
    return data


def to_json(telemetry: Telemetry, events: bool = True, indent: int = 2) -> str:
    return json.dumps(snapshot(telemetry, events=events), indent=indent)


def prometheus_name(name: str) -> str:
    """A dotted instrument name as a legal Prometheus metric name."""
    return _PROM_BAD_CHARS.sub("_", name)


def _prometheus_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", " ")


def format_prometheus(
    snap: Dict[str, Any], prefix: str = "repro"
) -> str:
    """Prometheus text exposition (v0.0.4) over a snapshot dict.

    ``snap`` is the shape produced by :func:`snapshot` -- and by
    :func:`repro.telemetry.merge.empty_merge`, which shares it, so the
    daemon's lifetime job-telemetry merge exports through the same
    path.  Counters become ``<prefix>_<name>_total``, labelled counters
    add a ``label`` dimension, histograms emit cumulative ``le``
    buckets plus ``_sum``/``_count``.
    """
    lines: List[str] = []
    for name, value in sorted((snap.get("counters") or {}).items()):
        metric = f"{prefix}_{prometheus_name(name)}_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {value}")
    for name, values in sorted((snap.get("labelled_counters") or {}).items()):
        metric = f"{prefix}_{prometheus_name(name)}_total"
        lines.append(f"# TYPE {metric} counter")
        for label, count in sorted(values.items()):
            lines.append(
                f'{metric}{{label="{_prometheus_label(str(label))}"}} '
                f"{count}"
            )
    for name, hist in sorted((snap.get("histograms") or {}).items()):
        metric = f"{prefix}_{prometheus_name(name)}"
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for upper, count in hist.get("buckets") or []:
            cumulative += count
            lines.append(f'{metric}_bucket{{le="{upper}"}} {cumulative}')
        lines.append(f'{metric}_bucket{{le="+Inf"}} {hist.get("count", 0)}')
        lines.append(f'{metric}_sum {hist.get("total", 0)}')
        lines.append(f'{metric}_count {hist.get("count", 0)}')
    return "\n".join(lines) + "\n"


def format_counters(telemetry: Telemetry) -> str:
    """Render every non-zero instrument, one per line."""
    lines = []
    for name, counter in sorted(telemetry.counters.items()):
        if counter.value:
            lines.append(f"{name:<40} {counter.value:>12}")
    for name, counter in sorted(telemetry.labelled.items()):
        if counter.values:
            lines.append(f"{name:<40} {counter.total:>12}")
            for label, n in sorted(
                counter.values.items(), key=lambda kv: -kv[1]
            )[:8]:
                lines.append(f"  {str(label):<38} {n:>12}")
    for name, hist in sorted(telemetry.histograms.items()):
        if hist.count:
            lines.append(
                f"{name:<40} {hist.count:>12}  "
                f"mean {hist.mean:>10.1f}  p99 {hist.percentile(0.99):>8}  "
                f"max {hist.max:>8}"
            )
    return "\n".join(lines)


def format_timeline(
    events: Iterable[TraceEvent],
    limit: Optional[int] = None,
    kinds: Optional[Iterable[str]] = None,
) -> str:
    """Render trace events as a chronological timeline.

    An event-free run renders an explicit marker instead of an empty
    string, so ``repro trace`` output is never silently blank.
    """
    wanted = set(kinds) if kinds is not None else None
    rows = [
        e.format()
        for e in events
        if wanted is None or e.kind in wanted
    ]
    if not rows:
        return "(no events recorded)"
    total = len(rows)
    # limit=0 (or None) means unlimited; rows[-0:] would keep everything
    # while still claiming events were omitted
    if limit and total > limit:
        omitted = total - limit
        rows = rows[-limit:]
        rows.insert(0, f"... ({omitted} earlier events omitted)")
    return "\n".join(rows)
