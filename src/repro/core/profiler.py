"""The profiling-phase component (Section III-A).

Implemented as the simulated analogue of the paper's QEMU 1.6.0 plugin:
it hooks the virtual CPU's translation-block execution (the same
granularity QEMU exposes) and records every *kernel* basic block executed
in a tracked application's context.  Process context and module load
addresses are obtained via VMI-equivalent channels, never by asking the
application.

Interrupt-context blocks are recorded into a separate profile that is
merged into **every** exported view, per the paper's design decision to
include interrupt handler code in all views rather than repeatedly
recover it at run time (III-A3).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.kernel_view import KernelViewConfig
from repro.core.rangelist import BASE_KERNEL, KernelProfile
from repro.guest.machine import Machine
from repro.memory.layout import is_kernel_address


class Profiler:
    """Basic-block profiler for a booted machine.

    Parameters
    ----------
    machine:
        The (QEMU-platform) machine to profile.
    track_all:
        Record every process without explicit ``track`` calls.
    """

    def __init__(self, machine: Machine, track_all: bool = False) -> None:
        if machine.runtime is None or machine.vcpu is None:
            raise ValueError("machine must be booted before profiling")
        self.machine = machine
        self.track_all = track_all
        self._tracked: set = set()
        self.profiles: Dict[str, KernelProfile] = {}
        self.interrupt_profile = KernelProfile()
        self.blocks_recorded = 0
        self._module_ranges: List[Tuple[int, int, str]] = []
        self._installed = False
        self._refresh_module_ranges(None)
        machine.runtime.module_load_listeners.append(self._refresh_module_ranges)

    # -- configuration --------------------------------------------------------

    def track(self, comm: str) -> None:
        """Profile processes whose command name is ``comm``."""
        self._tracked.add(comm)

    def install(self) -> None:
        """Attach the block tracer to the VCPU."""
        if not self._installed:
            self.machine.vcpu.block_tracer = self._on_block
            self._installed = True

    def uninstall(self) -> None:
        if self._installed:
            self.machine.vcpu.block_tracer = None
            self._installed = False

    # -- recording ----------------------------------------------------------------

    def _refresh_module_ranges(self, _name: Optional[str]) -> None:
        """Re-read the guest module list (VMI) after a module (un)load."""
        introspector = self.machine.introspector
        if introspector is None:
            return
        self._module_ranges = [
            (mod.base, mod.base + mod.size, mod.name)
            for mod in introspector.read_module_list()
        ]

    def _classify(self, addr: int) -> Tuple[str, int]:
        """Map an absolute kernel address to (segment, segment-relative)."""
        for begin, end, name in self._module_ranges:
            if begin <= addr < end:
                return name, addr - begin
        return BASE_KERNEL, addr

    def _on_block(self, start: int, end: int) -> None:
        if not is_kernel_address(start):
            return
        runtime = self.machine.runtime
        if runtime.in_interrupt:
            profile = self.interrupt_profile
        else:
            comm = runtime.current.comm
            if not self.track_all and comm not in self._tracked:
                return
            profile = self.profiles.get(comm)
            if profile is None:
                profile = KernelProfile()
                self.profiles[comm] = profile
        segment, rel_start = self._classify(start)
        profile.add(segment, rel_start, rel_start + (end - start))
        self.blocks_recorded += 1

    # -- export ---------------------------------------------------------------------

    def export(self, comm: str, include_interrupts: bool = True) -> KernelViewConfig:
        """Build the kernel view configuration for one application."""
        profile = self.profiles.get(comm)
        if profile is None:
            raise KeyError(f"no profile recorded for {comm!r}")
        merged = profile.copy()
        if include_interrupts:
            merged.update(self.interrupt_profile)
        return KernelViewConfig(app=comm, profile=merged)

    def export_all(self, include_interrupts: bool = True) -> Dict[str, KernelViewConfig]:
        return {
            comm: self.export(comm, include_interrupts)
            for comm in self.profiles
        }
