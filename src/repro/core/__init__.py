"""FACE-CHANGE core: profiling, kernel views, switching, recovery.

The paper's contribution, layered over the simulated hypervisor:

* :mod:`repro.core.rangelist` -- K[app] range lists and the similarity
  index S (Section II, Equation 1).
* :mod:`repro.core.profiler` -- the QEMU-side basic-block profiler with
  per-process context tracking and interrupt-context capture (III-A).
* :mod:`repro.core.kernel_view` -- kernel view configuration files and
  union views (III-A1, IV-A2).
* :mod:`repro.core.view_manager` -- view construction: UD2 fill,
  whole-function widening via prologue-signature search, per-view host
  frames and EPT wiring (III-B1).
* :mod:`repro.core.switching` -- the context-switch / resume-userspace
  trap logic of Algorithm 1 (III-B2).
* :mod:`repro.core.recovery` -- invalid-opcode handling, ebp-chain
  backtraces, lazy/instant recovery (III-B3, Figure 3).
* :mod:`repro.core.provenance` -- the recovery log and attack-provenance
  reports (Figures 4 and 5).
* :mod:`repro.core.facechange` -- the facade tying it all together.
"""

from repro.core.rangelist import KernelProfile, RangeList, similarity_index
from repro.core.kernel_view import KernelViewConfig, union_view
from repro.core.library import ViewLibrary
from repro.core.profiler import Profiler
from repro.core.provenance import RecoveryEvent, RecoveryLog
from repro.core.scanner import HiddenCodeScanner
from repro.core.facechange import FaceChange

__all__ = [
    "FaceChange",
    "HiddenCodeScanner",
    "KernelProfile",
    "KernelViewConfig",
    "Profiler",
    "RangeList",
    "RecoveryEvent",
    "RecoveryLog",
    "ViewLibrary",
    "similarity_index",
    "union_view",
]
