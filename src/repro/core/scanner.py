"""Hidden-code scanner: attribute kernel-heap code to loaded modules.

The paper's Section V sketches integrating kernel-integrity techniques
(NICKLE-style code authorization) to complement view switching.  This
module implements the piece FACE-CHANGE's own evidence motivates: when
recovery backtraces contain UNKNOWN frames (Figure 5), an administrator
wants to know *what* owns those addresses.

The scanner sweeps the guest's module space for function prologues
(``55 89 e5`` at 16-byte alignment -- the same signature the view
builder trusts) and diffs the discovered code regions against the
VMI-visible module list.  Code that exists in memory but belongs to no
listed module is exactly a hidden (DKOM-unlinked) module like KBeast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.view_manager import FunctionBoundaryFinder, gva_to_gpa
from repro.hypervisor.vmi import GuestModuleInfo
from repro.isa.opcodes import PROLOGUE_SIGNATURE
from repro.memory.layout import MODULE_SPACE_BASE, PAGE_SIZE

#: How far into the kernel heap the sweep looks.
_DEFAULT_SPAN = 0x400000
_ALIGN = 16


@dataclass(frozen=True)
class HiddenRegion:
    """A kernel-heap code region owned by no VMI-visible module."""

    start: int
    end: int
    functions: int  # prologues found inside

    @property
    def size(self) -> int:
        return self.end - self.start

    def __str__(self) -> str:
        return (
            f"hidden code {self.start:#010x}-{self.end:#010x} "
            f"({self.size} bytes, {self.functions} functions)"
        )


class HiddenCodeScanner:
    """Sweeps module space and diffs against the guest module list."""

    def __init__(self, machine) -> None:
        self.machine = machine

    def _prologues(self, start: int, end: int) -> List[int]:
        """Aligned prologue addresses in [start, end), from raw memory."""
        physmem = self.machine.physmem
        out: List[int] = []
        addr = (start + _ALIGN - 1) & ~(_ALIGN - 1)
        while addr + len(PROLOGUE_SIGNATURE) <= end:
            if (
                physmem.read(gva_to_gpa(addr), len(PROLOGUE_SIGNATURE))
                == PROLOGUE_SIGNATURE
            ):
                out.append(addr)
            addr += _ALIGN
        return out

    def scan(self, span: int = _DEFAULT_SPAN) -> List[HiddenRegion]:
        """Return code regions in module space owned by no listed module."""
        visible: List[GuestModuleInfo] = (
            self.machine.introspector.read_module_list()
        )
        owned: List[Tuple[int, int]] = sorted(
            (m.base, m.base + m.size) for m in visible
        )

        def is_owned(addr: int) -> bool:
            return any(b <= addr < e for b, e in owned)

        sweep_end = MODULE_SPACE_BASE + span
        orphans = [
            addr
            for addr in self._prologues(MODULE_SPACE_BASE, sweep_end)
            if not is_owned(addr)
        ]
        # group orphan prologues into page-contiguous regions
        regions: List[HiddenRegion] = []
        group: List[int] = []
        for addr in orphans:
            if group and addr - group[-1] > PAGE_SIZE:
                regions.append(self._finish(group))
                group = []
            group.append(addr)
        if group:
            regions.append(self._finish(group))
        return regions

    def _finish(self, prologues: List[int]) -> HiddenRegion:
        finder = FunctionBoundaryFinder(self.machine.physmem)
        start = prologues[0]
        # the last function extends to the next page boundary at most
        last = prologues[-1]
        end = (last + PAGE_SIZE) & ~(PAGE_SIZE - 1)
        _, fn_end = finder.containing_function(last, start, end)
        return HiddenRegion(start=start, end=fn_end, functions=len(prologues))

    def report(self, span: int = _DEFAULT_SPAN) -> str:
        regions = self.scan(span)
        if not regions:
            return "no hidden kernel-heap code found"
        lines = [f"{len(regions)} hidden code region(s):"]
        lines += [f"  {region}" for region in regions]
        return "\n".join(lines)
