"""Kernel view configuration files (Section III-A1).

A configuration names an application and carries its K[app] profile.
Configurations are plain JSON on disk so they can be generated in one
(profiling) session and loaded into another (runtime) session, which is
how the paper supports profiling new applications off-line.

``union_view`` builds the union of many configurations -- the
"system-wide minimized kernel" strawman the security evaluation compares
against (Section IV-A2).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Union

from repro.core.rangelist import KernelProfile


@dataclass
class KernelViewConfig:
    """One application's kernel view: name + profiled code ranges."""

    app: str
    profile: KernelProfile = field(default_factory=KernelProfile)
    #: free-form provenance notes (profiling workload, date, ...)
    notes: str = ""

    @property
    def size(self) -> int:
        """SIZE of the profiled kernel code (the paper's Table I diagonal)."""
        return self.profile.size

    # -- persistence -----------------------------------------------------------

    def to_dict(self) -> Dict:
        return {
            "app": self.app,
            "notes": self.notes,
            "segments": self.profile.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "KernelViewConfig":
        return cls(
            app=data["app"],
            profile=KernelProfile.from_dict(data.get("segments", {})),
            notes=data.get("notes", ""),
        )

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "KernelViewConfig":
        return cls.from_dict(json.loads(Path(path).read_text()))


def union_view(
    configs: Iterable[KernelViewConfig], name: str = "union"
) -> KernelViewConfig:
    """The union of many views: a system-wide minimized kernel."""
    union = KernelViewConfig(app=name, notes="union of per-app views")
    for config in configs:
        union.profile.update(config.profile)
    return union
