"""Kernel view switching (Section III-B2, Algorithm 1, Figure 2).

The hypervisor traps fetches of ``context_switch``; the handler reads the
incoming process' identity via VMI (``READ_PROC_INFO``) and selects its
view.  Two optimizations from the paper are implemented and individually
switchable for ablation:

* **deferred switch** -- rather than switching views inside the context
  switch (which can make the guest miss interrupts and hurts I/O), the
  ``resume_userspace`` trap is armed and the EPT update happens when the
  process is about to re-enter user space;
* **same-view skip** -- when the previous and next process share a view,
  the EPT update is skipped entirely.

SMP (the paper's §V-C): view state is tracked *per vCPU* -- each vCPU
owns an EPT, the resume trap is armed on the specific vCPU that needs
the deferred switch, and one view can be installed in several EPTs at
once when multiple CPUs run the same application.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.view_manager import KernelView
from repro.hypervisor.vcpu import Vcpu
from repro.hypervisor.vmexit import VmExit

#: Index of the full kernel view (no EPT overrides).
FULL_KERNEL_VIEW_INDEX = -1
#: Cycles charged for re-pointing the base kernel's EPT directory entries.
EPT_SWITCH_BASE_COST = 900
#: Extra cycles per module region whose entries must be re-pointed.
EPT_SWITCH_MODULE_COST = 120


class ViewSwitcher:
    """Implements SWITCH_KERNEL_VIEW / HANDLE_KERNEL_VIEW_TRAP."""

    def __init__(
        self,
        machine,
        selector: Callable[[str], int],
    ) -> None:
        self.machine = machine
        self.selector = selector
        self.views: Dict[int, KernelView] = {}
        n = machine.vcpu_count
        self.current_index: List[int] = [FULL_KERNEL_VIEW_INDEX] * n
        self.last_index: List[int] = [FULL_KERNEL_VIEW_INDEX] * n
        self._resume_armed: List[bool] = [False] * n
        # telemetry handles (aggregated over all CPUs)
        self.telemetry = machine.hypervisor.telemetry
        self._ctxsw_traps = self.telemetry.counter("switch.context_switch_traps")
        self._resume_traps = self.telemetry.counter("switch.resume_traps")
        self._switches = self.telemetry.counter("switch.switches")
        self._skipped = self.telemetry.counter("switch.skipped_switches")
        self._ept_cycles = self.telemetry.histogram("switch.ept_cycles")
        # ablation switches
        self.defer_to_resume = True
        self.skip_same_view = True

    # -- legacy counter names (read-only views over the registry) -----------------

    @property
    def context_switch_traps(self) -> int:
        return self._ctxsw_traps.value

    @property
    def resume_traps(self) -> int:
        return self._resume_traps.value

    @property
    def switches(self) -> int:
        return self._switches.value

    @property
    def skipped_switches(self) -> int:
        return self._skipped.value

    # -- view registry ------------------------------------------------------------

    def register_view(self, view: KernelView) -> None:
        self.views[view.index] = view

    def remove_view(self, index: int) -> None:
        """Hot-unplug a view (switching to the full view where live)."""
        for cpu in range(self.machine.vcpu_count):
            if self.current_index[cpu] == index:
                self.switch_kernel_view(FULL_KERNEL_VIEW_INDEX, cpu)
            if self.last_index[cpu] == index:
                self.last_index[cpu] = FULL_KERNEL_VIEW_INDEX
        self.views.pop(index, None)

    @property
    def current_view(self) -> Optional[KernelView]:
        """CPU 0's live view (uniprocessor convenience)."""
        return self.current_view_for(0)

    def current_view_for(self, cpu: int) -> Optional[KernelView]:
        return self.views.get(self.current_index[cpu])

    # -- trap handlers (Algorithm 1) -----------------------------------------------

    def handle_context_switch_trap(self, vcpu: Vcpu, exit_: VmExit) -> None:
        self._ctxsw_traps.value += 1
        cpu = vcpu.cpu_id
        procinfo = self.machine.introspector.read_current_process(cpu)
        index = self.selector(procinfo.comm)
        current = self.current_index[cpu]
        tel = self.telemetry
        if tel.tracing:
            tel.emit(
                "ctxsw_trap",
                cycles=vcpu.cycles,
                cpu=cpu,
                comm=procinfo.comm,
                pid=procinfo.pid,
                view=index,
            )
        # Deferring the EPT update to resume_userspace is only safe when
        # the interim kernel execution cannot stray outside the *active*
        # view: that holds when the active view is the full kernel
        # (full -> custom, the common idle <-> app pattern the deferral
        # optimizes) or when the incoming process uses the view that is
        # already live (its kernel stack was built under it).  For a
        # custom -> *different* custom transition the incoming process'
        # stack may reference code missing from the previous app's view --
        # and an odd return target into a UD2 fill would be *silently
        # misdecoded* rather than trapped (the Figure 3 hazard) -- so
        # those switches happen immediately at the context-switch trap.
        safe_to_defer = (
            current == FULL_KERNEL_VIEW_INDEX or current == index
        )
        if (
            index == FULL_KERNEL_VIEW_INDEX
            or not self.defer_to_resume
            or not safe_to_defer
        ):
            self._disarm_resume_trap(cpu)
            self.switch_kernel_view(index, cpu)
        else:
            # Algorithm 1: arm the resume trap even when prev and next
            # share a view -- the same-view *switch* is skipped at resume
            # time, but the trap itself is part of the per-context-switch
            # cost the performance evaluation measures.
            self._arm_resume_trap(cpu)
            self.last_index[cpu] = index

    def handle_resume_userspace_trap(self, vcpu: Vcpu, exit_: VmExit) -> None:
        cpu = vcpu.cpu_id
        if not self._resume_armed[cpu]:
            return
        self._resume_traps.value += 1
        tel = self.telemetry
        if tel.tracing:
            tel.emit(
                "resume_trap",
                cycles=vcpu.cycles,
                cpu=cpu,
                view=self.last_index[cpu],
            )
        self._disarm_resume_trap(cpu)
        self.switch_kernel_view(self.last_index[cpu], cpu)

    # -- the switch itself ------------------------------------------------------------

    def switch_kernel_view(self, index: int, cpu: int = 0) -> None:
        tel = self.telemetry
        previous = self.current_index[cpu]
        if index == previous and self.skip_same_view:
            self._skipped.value += 1
            if tel.tracing:
                tel.emit(
                    "view_skip",
                    cycles=self.machine.vcpus[cpu].cycles,
                    cpu=cpu,
                    view=index,
                )
            return
        ept = self.machine.epts[cpu]
        vcpu = self.machine.vcpus[cpu]
        current = self.views.get(previous)
        target = self.views.get(index)
        span = None
        if tel.recording:
            span = tel.spans.open(
                "view_switch",
                cpu=cpu,
                cycles=vcpu.cycles,
                from_view=previous,
                app=target.config.app if target is not None else "<full>",
            )
        cost = EPT_SWITCH_BASE_COST
        if target is not None:
            # Delta switch: entries both views agree on (canonical UD2
            # frame, adopted originals) are no-op remaps inside the EPT,
            # preserving cached translations for untouched pages.  The
            # charged cost model is unchanged -- the paper's pointer
            # flip is what we're simulating either way.
            if current is not None:
                target.install_over(current, ept)
            else:
                target.install(ept)
            cost += EPT_SWITCH_MODULE_COST * max(0, len(target.regions) - 1)
        elif current is not None:
            current.uninstall(ept)
        self.current_index[cpu] = (
            index if target is not None else FULL_KERNEL_VIEW_INDEX
        )
        self._switches.value += 1
        self._ept_cycles.observe(cost)
        self.machine.hypervisor.charge(vcpu, cost)
        if span is not None:
            tel.spans.close(
                span,
                cycles=vcpu.cycles,
                to_view=self.current_index[cpu],
                cost=cost,
            )
        if tel.tracing:
            tel.emit(
                "view_switch",
                cycles=vcpu.cycles,
                cpu=cpu,
                from_view=previous,
                to_view=self.current_index[cpu],
                app=target.config.app if target is not None else "<full>",
                cost=cost,
            )

    # -- resume trap management ----------------------------------------------------------

    def disarm_resume_traps(self, cpu: Optional[int] = None) -> None:
        """Cancel pending deferred switches (one CPU, or all of them).

        Public API for lifecycle owners (e.g. ``FaceChange.disable``):
        any armed ``resume_userspace`` trap is disarmed and the deferred
        EPT update it carried is dropped.
        """
        self._disarm_resume_trap(cpu)

    def _resume_address(self) -> int:
        return self.machine.image.address_of("resume_userspace")

    def _arm_resume_trap(self, cpu: int) -> None:
        if not self._resume_armed[cpu]:
            self.machine.hypervisor.register_address_trap(
                self._resume_address(),
                self.handle_resume_userspace_trap,
                vcpu=self.machine.vcpus[cpu],
            )
            self._resume_armed[cpu] = True

    def _disarm_resume_trap(self, cpu: Optional[int] = None) -> None:
        cpus = range(self.machine.vcpu_count) if cpu is None else (cpu,)
        for each in cpus:
            if self._resume_armed[each]:
                self.machine.hypervisor.unregister_address_trap(
                    self._resume_address(), vcpu=self.machine.vcpus[each]
                )
                self._resume_armed[each] = False
