"""The FACE-CHANGE facade: enable/disable, load/unload, statistics.

Typical runtime-phase usage::

    fc = FaceChange(machine)
    fc.enable()
    index = fc.load_view(config)          # per-app customized view
    ...run workloads...
    print(fc.log.report())                # recovery provenance
    fc.unload_view(index)                 # hot-unplug (III-B4)
    fc.disable()

Everything is driven from the hypervisor: address traps on
``context_switch``/``resume_userspace``, the ``#UD`` handler for code
recovery, and per-view EPT overrides.  The guest is never modified.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

from repro.core.kernel_view import KernelViewConfig
from repro.core.provenance import RecoveryLog
from repro.core.recovery import RecoveryEngine
from repro.core.switching import FULL_KERNEL_VIEW_INDEX, ViewSwitcher
from repro.core.view_manager import KernelView, ViewBuilder
from repro.guest.machine import Machine
from repro.hypervisor.vcpu import Vcpu
from repro.hypervisor.vmexit import VmExit


class FaceChangeStats:
    """Read-only aggregate view over the telemetry registry.

    Keeps the field names the performance evaluation has always used
    while the actual accounting lives in ``machine.telemetry``.
    """

    def __init__(self, facechange: "FaceChange") -> None:
        self._fc = facechange
        self._telemetry = facechange.machine.telemetry

    @property
    def context_switch_traps(self) -> int:
        return self._telemetry.counter("switch.context_switch_traps").value

    @property
    def resume_traps(self) -> int:
        return self._telemetry.counter("switch.resume_traps").value

    @property
    def view_switches(self) -> int:
        return self._telemetry.counter("switch.switches").value

    @property
    def skipped_switches(self) -> int:
        return self._telemetry.counter("switch.skipped_switches").value

    @property
    def recoveries(self) -> int:
        return self._telemetry.counter("recovery.recoveries").value

    @property
    def instant_recoveries(self) -> int:
        return self._telemetry.counter("recovery.instant_recoveries").value

    @property
    def loaded_views(self) -> int:
        return len(self._fc.switcher.views)


class FaceChange:
    """Application-driven dynamic kernel view switching."""

    def __init__(self, machine: Machine, widen_views: bool = True) -> None:
        if machine.runtime is None:
            raise ValueError("machine must be booted")
        self.machine = machine
        self.telemetry = machine.telemetry
        self.log = RecoveryLog()
        self.builder = ViewBuilder(machine, widen=widen_views)
        self.recovery = RecoveryEngine(machine, self.log)
        self._selector_map: Dict[str, int] = {}
        self.switcher = ViewSwitcher(machine, self._select_view)
        self._next_index = 0
        self.enabled = False
        self._stats = FaceChangeStats(self)
        #: statistical observability attached via environment knobs
        #: (``REPRO_SAMPLE_INTERVAL``, ``REPRO_PROBE_FUNCS``) on enable()
        self.sampler = None
        self.probe_engine = None
        machine.runtime.module_load_listeners.append(self._on_module_loaded)

    # -- selector -----------------------------------------------------------------

    def _select_view(self, comm: str) -> int:
        """KERNEL_VIEW_SELECTOR: map a process name to its view index."""
        return self._selector_map.get(comm, FULL_KERNEL_VIEW_INDEX)

    # -- enable / disable ------------------------------------------------------------

    def enable(self) -> None:
        if self.enabled:
            return
        hv = self.machine.hypervisor
        hv.register_address_trap(
            self.machine.image.address_of("context_switch"),
            self.switcher.handle_context_switch_trap,
        )
        hv.set_invalid_opcode_handler(self._handle_invalid_opcode)
        self._attach_env_observability()
        self.enabled = True

    def disable(self) -> None:
        """Disable FACE-CHANGE, reverting to the full kernel view."""
        if not self.enabled:
            return
        for cpu in range(self.machine.vcpu_count):
            self.switcher.switch_kernel_view(FULL_KERNEL_VIEW_INDEX, cpu)
        self.switcher.disarm_resume_traps()
        hv = self.machine.hypervisor
        hv.unregister_address_trap(self.machine.image.address_of("context_switch"))
        hv.set_invalid_opcode_handler(None)
        self._detach_env_observability()
        self.enabled = False

    def _attach_env_observability(self) -> None:
        """Install the sampler/probes the environment asks for.

        ``REPRO_SAMPLE_INTERVAL=<cycles>`` installs the sampling
        profiler wired to this instance's view switcher;
        ``REPRO_PROBE_FUNCS=<sym>[,<sym>...]`` arms observer probes;
        ``REPRO_JIT=0`` forces block translation off (guest state is
        bit-identical either way, see :mod:`repro.hypervisor.jit`).
        All are how the benchmark suite and fleet workers turn these
        layers on without touching call sites.
        """
        if "REPRO_JIT" in os.environ:
            from repro.hypervisor.jit import env_jit_enabled

            self.machine.set_jit(env_jit_enabled())
        interval = os.environ.get("REPRO_SAMPLE_INTERVAL", "")
        if interval:
            from repro.obs.profiling.sampler import SamplingProfiler

            self.sampler = SamplingProfiler(
                self.machine,
                interval=int(interval),
                view_provider=lambda cpu: self.switcher.current_index[cpu],
            )
            self.sampler.install()
        probe_funcs = os.environ.get("REPRO_PROBE_FUNCS", "")
        if probe_funcs:
            from repro.obs.profiling.probes import ProbeEngine

            self.probe_engine = ProbeEngine(self.machine)
            for symbol in probe_funcs.split(","):
                symbol = symbol.strip()
                if symbol:
                    self.probe_engine.arm(symbol)

    def _detach_env_observability(self) -> None:
        if self.sampler is not None:
            self.sampler.uninstall()
            self.sampler = None
        if self.probe_engine is not None:
            self.probe_engine.disarm_all()
            self.probe_engine = None

    # -- view lifecycle ----------------------------------------------------------------

    def load_view(self, config: KernelViewConfig, comm: Optional[str] = None) -> int:
        """Build a view from ``config`` and bind it to a process name.

        Returns the view index.  Loading happens without interrupting the
        guest; the view takes effect at the bound process' next schedule.
        """
        index = self._next_index
        self._next_index += 1
        view = self.builder.build(index, config)
        self.switcher.register_view(view)
        self._selector_map[comm if comm is not None else config.app] = index
        if self.telemetry.tracing:
            self.telemetry.emit(
                "view_load",
                cycles=self.machine.cycles,
                view=index,
                app=config.app,
                loaded_bytes=view.loaded_bytes,
            )
        return index

    def unload_view(self, index: int) -> None:
        """Hot-unplug a view: de-allocate its pages, fall back to full view."""
        view = self.switcher.views.get(index)
        if view is None:
            return
        self.switcher.remove_view(index)
        for comm in [c for c, i in self._selector_map.items() if i == index]:
            del self._selector_map[comm]
        view.free()
        if self.telemetry.tracing:
            self.telemetry.emit(
                "view_unload",
                cycles=self.machine.cycles,
                view=index,
                app=view.config.app,
            )

    def view_for(self, comm: str) -> Optional[KernelView]:
        index = self._selector_map.get(comm)
        return self.switcher.views.get(index) if index is not None else None

    @property
    def loaded_views(self) -> List[KernelView]:
        return list(self.switcher.views.values())

    # -- handlers ---------------------------------------------------------------------

    def _handle_invalid_opcode(self, vcpu: Vcpu, exit_: VmExit) -> bool:
        view = self.switcher.current_view_for(vcpu.cpu_id)
        return self.recovery.handle(vcpu, exit_, view)

    def _on_module_loaded(self, name: str) -> None:
        """Cover a newly loaded module in every existing view."""
        for view in self.switcher.views.values():
            self.builder.extend_for_module(view, name)
            for ept in list(view.installed_epts):
                view.install(ept)  # map the new frames too
        if self.telemetry.tracing:
            self.telemetry.emit(
                "module_load",
                cycles=self.machine.cycles,
                module=name,
                views=len(self.switcher.views),
            )

    # -- stats -----------------------------------------------------------------------

    @property
    def stats(self) -> FaceChangeStats:
        return self._stats
