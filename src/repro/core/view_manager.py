"""Kernel view construction (Section III-B1).

A :class:`KernelView` is a set of host frames shadowing the guest's
kernel code pages.  Views are built copy-on-write: every covered page of
a fresh view maps to the single machine-wide canonical ``UD2`` frame
(``0f 0b`` repeated from the page base, so even offsets hold ``0f``);
loading a fully-profiled page simply adopts the original guest frame;
only pages that end up *partially* filled materialize a private frame.
The refcounted bookkeeping and the write barrier that keeps this honest
live in :class:`repro.memory.physmem.SharedFrameStore` -- view build is
O(profiled bytes), not O(kernel size).

Function widening follows the paper exactly: starting from a marked
basic block, scan backwards and forwards for the function header
signature ``push ebp; mov ebp, esp`` (``55 89 e5``) at power-of-two
aligned addresses (the kernel is built with ``-falign-functions``).  The
prologue positions of each region are memoized (invalidated by writes to
the region's frames via ``physmem.code_epoch``), so widening many ranges
costs one linear scan per region plus a bisect per range.

Installing a view re-points EPT entries for the covered guest-physical
pages at the view's frames; uninstalling restores identity mappings.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.kernel_view import KernelViewConfig
from repro.core.rangelist import BASE_KERNEL
from repro.isa.opcodes import PROLOGUE_SIGNATURE, UD2_BYTES
from repro.memory.ept import ExtendedPageTable
from repro.memory.layout import KERNEL_BASE, PAGE_SIZE
from repro.memory.physmem import PhysicalMemory

#: Function alignment produced by -falign-functions.
FUNCTION_ALIGN = 16


def gva_to_gpa(gva: int) -> int:
    return gva - KERNEL_BASE


class FunctionBoundaryFinder:
    """Signature-based function boundary search over original guest memory.

    ``containing_function`` used to probe guest memory at every 16-byte
    candidate for every profiled range; the finder now pre-scans each
    region once into a sorted prologue list and answers queries with a
    bisect.  The memo is invalidated when any frame feeding it is
    written (``PhysicalMemory.code_epoch``).
    """

    def __init__(self, physmem: PhysicalMemory) -> None:
        self.physmem = physmem
        #: (region_start, region_end) -> (code_epoch, sorted prologue gvas)
        self._prologues: Dict[Tuple[int, int], Tuple[int, List[int]]] = {}

    def _signature_at(self, gva: int) -> bool:
        return (
            self.physmem.read(gva_to_gpa(gva), len(PROLOGUE_SIGNATURE))
            == PROLOGUE_SIGNATURE
        )

    def _prologue_index(self, region_start: int, region_end: int) -> List[int]:
        if region_end <= region_start:
            return []
        key = (region_start, region_end)
        epoch = self.physmem.code_epoch
        cached = self._prologues.get(key)
        if cached is not None and cached[0] == epoch:
            return cached[1]
        sig = PROLOGUE_SIGNATURE
        gpa_start = gva_to_gpa(region_start)
        # per-candidate probes read up to len(sig)-1 bytes past
        # region_end; scan the same over-read so results match exactly
        length = region_end - region_start + len(sig) - 1
        self.physmem.watch_code_frames(
            range(gpa_start >> 12, ((gpa_start + length - 1) >> 12) + 1)
        )
        epoch = self.physmem.code_epoch
        data = self.physmem.read(gpa_start, length)
        first = (region_start + FUNCTION_ALIGN - 1) & ~(FUNCTION_ALIGN - 1)
        addrs = [
            addr
            for addr in range(first, region_end, FUNCTION_ALIGN)
            if data[addr - region_start : addr - region_start + len(sig)] == sig
        ]
        self._prologues[key] = (epoch, addrs)
        return addrs

    def containing_function(
        self, addr: int, region_start: int, region_end: int
    ) -> Tuple[int, int]:
        """The whole-function range around ``addr`` within a code region.

        Returns ``(start, end)`` where ``start`` is the nearest preceding
        aligned prologue and ``end`` the next aligned prologue (or the
        region bounds when no signature is found).
        """
        addr = max(region_start, min(addr, region_end - 1))
        index = self._prologue_index(region_start, region_end)
        i = bisect_right(index, addr)
        start = index[i - 1] if i > 0 else region_start
        end = index[i] if i < len(index) else region_end
        return start, end


class KernelView:
    """One application's in-memory kernel view (UD2-filled shadow pages)."""

    def __init__(
        self,
        index: int,
        config: KernelViewConfig,
        physmem: PhysicalMemory,
        finder: Optional[FunctionBoundaryFinder] = None,
    ) -> None:
        self.index = index
        self.config = config
        self.physmem = physmem
        self.finder = finder if finder is not None else FunctionBoundaryFinder(physmem)
        #: gpfn -> hpfn for every covered kernel-code page.  The hpfn is
        #: the canonical UD2 frame, the original guest frame (fully
        #: loaded pages) or a private frame (partially filled pages).
        self.frames: Dict[int, int] = {}
        #: gpfns backed by a private (exclusively owned) frame
        self._private: Set[int] = set()
        #: (region_start, region_end) of every covered code region
        self.regions: List[Tuple[int, int]] = []
        self._region_begins: List[int] = []
        self._sorted_regions: List[Tuple[int, int]] = []
        self.loaded_bytes = 0
        self.recovered_ranges: List[Tuple[int, int]] = []
        #: EPTs this view is currently installed in (several, when
        #: multiple vCPUs run the same application)
        self.installed_epts: List[ExtendedPageTable] = []

    # -- construction -----------------------------------------------------------

    def add_region(self, region_start: int, region_end: int) -> None:
        """Cover a guest code region, CoW-shared with the canonical frame."""
        first = gva_to_gpa(region_start) >> 12
        last = (gva_to_gpa(region_end) + PAGE_SIZE - 1) >> 12
        if last <= first:
            return
        store = self.physmem.shared
        canonical = store.canonical_ud2_frame(UD2_BYTES)
        for gpfn in range(first, last):
            self.frames[gpfn] = canonical
            store.share(self, gpfn, canonical)
        self.regions.append((region_start, region_end))
        insort(self._sorted_regions, (region_start, region_end))
        self._region_begins = [begin for begin, _ in self._sorted_regions]

    def region_of(self, addr: int) -> Optional[Tuple[int, int]]:
        i = bisect_right(self._region_begins, addr) - 1
        if i >= 0:
            begin, end = self._sorted_regions[i]
            if begin <= addr < end:
                return begin, end
        return None

    def covers(self, addr: int) -> bool:
        return (gva_to_gpa(addr) >> 12) in self.frames

    def materialize_page(self, gpfn: int) -> int:
        """Break a shared page out into a private frame (CoW fault).

        The private copy snapshots the shared frame's *current* bytes, so
        it is written through :meth:`PhysicalMemory.write` -- bumping the
        new frame's version so no vCPU keeps executing stale decoded
        blocks -- and the view's installed EPTs are re-pointed (which
        bumps the covering level-2 epoch, dropping cached translations).
        """
        shared_hpfn = self.frames[gpfn]
        new = self.physmem.allocate_frames(1)[0]
        self.physmem.write(new << 12, bytes(self.physmem.frame(shared_hpfn)))
        self.frames[gpfn] = new
        self._private.add(gpfn)
        self.physmem.shared.unshare(self, gpfn, shared_hpfn)
        for ept in self.installed_epts:
            ept.map_frame(gpfn, new)
        return new

    def _adopt_original(self, gpfn: int) -> None:
        """Map a fully-loaded page straight to the original guest frame."""
        current = self.frames.get(gpfn)
        if current == gpfn:
            return
        store = self.physmem.shared
        if gpfn in self._private:
            self._private.discard(gpfn)
            self.physmem.free_frames([current])
        else:
            store.unshare(self, gpfn, current)
        self.frames[gpfn] = gpfn
        store.share(self, gpfn, gpfn)
        for ept in self.installed_epts:
            ept.map_frame(gpfn, gpfn)

    def load_function_ranges(
        self,
        ranges: Iterable[Tuple[int, int]],
        region: Tuple[int, int],
        widen: bool = True,
    ) -> None:
        """Copy profiled ranges in, widened to whole functions by default.

        ``widen=False`` loads the raw basic-block ranges instead -- the
        ablation of the paper's III-B1 relaxation.  Expect both more
        recovery traps (adjacent same-function code is missing) and
        split-UD2 hazards at odd range boundaries.
        """
        region_start, region_end = region
        for begin, end in ranges:
            if not widen:
                self.copy_original(begin, end)
                continue
            fn_start, _ = self.finder.containing_function(
                begin, region_start, region_end
            )
            _, fn_end = self.finder.containing_function(
                max(begin, end - 1), region_start, region_end
            )
            self.copy_original(fn_start, fn_end)

    def copy_original(self, start: int, end: int) -> None:
        """Load original guest bytes ``[start, end)`` into the view.

        Whole pages adopt the original guest frame outright (no copy);
        partial pages materialize a private frame on first touch.
        """
        addr = start
        while addr < end:
            gpfn = gva_to_gpa(addr) >> 12
            hpfn = self.frames.get(gpfn)
            offset = addr & (PAGE_SIZE - 1)
            chunk = min(PAGE_SIZE - offset, end - addr)
            if hpfn is not None:
                if hpfn == gpfn:
                    # already the original frame: bytes identical by
                    # construction, and the CoW barrier snapshots the
                    # page if the original is ever patched
                    pass
                elif chunk == PAGE_SIZE:
                    self._adopt_original(gpfn)
                else:
                    if gpfn not in self._private:
                        self.materialize_page(gpfn)
                    data = self.physmem.read(gva_to_gpa(addr), chunk)
                    self.physmem.write((self.frames[gpfn] << 12) | offset, data)
                self.loaded_bytes += chunk
            addr += chunk

    # -- EPT wiring ------------------------------------------------------------------

    @property
    def installed(self) -> bool:
        return bool(self.installed_epts)

    def install(self, ept: ExtendedPageTable) -> None:
        ept.map_frames(self.frames.items())
        if ept not in self.installed_epts:
            self.installed_epts.append(ept)

    def install_over(self, previous: "KernelView", ept: ExtendedPageTable) -> None:
        """Switch ``ept`` from ``previous`` to this view as a delta.

        Entries that already point at the right frame (most pages: both
        views share the canonical UD2 frame or the original) are no-op
        remaps skipped inside the EPT, so no epoch is bumped for them and
        cached translations stay valid -- the pointer-flip cost model of
        the paper's Section III-B2.  The final EPT state is identical to
        ``previous.uninstall(ept); self.install(ept)``.
        """
        frames = self.frames
        ept.map_frames(frames.items())
        ept.unmap_frames(
            gpfn for gpfn in previous.frames if gpfn not in frames
        )
        if ept in previous.installed_epts:
            previous.installed_epts.remove(ept)
        if ept not in self.installed_epts:
            self.installed_epts.append(ept)

    def uninstall(self, ept: ExtendedPageTable) -> None:
        ept.unmap_frames(self.frames.keys())
        if ept in self.installed_epts:
            self.installed_epts.remove(ept)

    def free(self) -> None:
        """Release the view's frames (view unload, III-B4).

        Only private frames are returned to the allocator; shared
        mappings (canonical UD2 frame, adopted originals) just drop one
        reference so other views keep using them.
        """
        for ept in list(self.installed_epts):
            self.uninstall(ept)
        store = self.physmem.shared
        private: List[int] = []
        for gpfn, hpfn in self.frames.items():
            if gpfn in self._private:
                private.append(hpfn)
            else:
                store.unshare(self, gpfn, hpfn)
        self.physmem.free_frames(private)
        self.frames.clear()
        self._private.clear()
        self.regions.clear()
        self._region_begins = []
        self._sorted_regions = []


class ViewBuilder:
    """Builds :class:`KernelView` objects from configs + guest state.

    ``widen=False`` disables the whole-function loading relaxation
    (ablation of Section III-B1).  One :class:`FunctionBoundaryFinder`
    is shared across all views built by this builder, so prologue scans
    are amortized machine-wide.
    """

    def __init__(self, machine, widen: bool = True) -> None:
        self.machine = machine
        self.widen = widen
        self.finder = FunctionBoundaryFinder(machine.physmem)

    def build(self, index: int, config: KernelViewConfig) -> KernelView:
        view = KernelView(
            index, config, self.machine.physmem, finder=self.finder
        )
        image = self.machine.image
        # base kernel text
        base_region = (image.text_start, image.text_end)
        view.add_region(*base_region)
        base_ranges = config.profile.segments.get(BASE_KERNEL)
        if base_ranges is not None:
            view.load_function_ranges(base_ranges, base_region, widen=self.widen)
        # modules, located through the guest module list (VMI)
        introspector = self.machine.introspector
        modules = {
            mod.name: mod for mod in introspector.read_module_list()
        }
        for name, module in modules.items():
            region = (module.base, module.base + module.size)
            view.add_region(*region)
            rel_ranges = config.profile.segments.get(name)
            if rel_ranges is not None:
                absolute = [
                    (module.base + begin, module.base + end)
                    for begin, end in rel_ranges
                ]
                view.load_function_ranges(absolute, region, widen=self.widen)
        return view

    def extend_for_module(self, view: KernelView, name: str) -> None:
        """Cover a newly loaded module with UD2 frames (no profiled code).

        Called when a module appears after the view was built; any use of
        the module's code by the view's application will surface through
        the recovery log -- exactly the rootkit-detection property of the
        paper's Section IV-A2.
        """
        introspector = self.machine.introspector
        for module in introspector.read_module_list():
            if module.name != name:
                continue
            region_start = module.base
            region_end = module.base + module.size
            if view.region_of(region_start) is None:
                view.add_region(region_start, region_end)
                rel_ranges = view.config.profile.segments.get(name)
                if rel_ranges is not None:
                    absolute = [
                        (region_start + begin, region_start + end)
                        for begin, end in rel_ranges
                    ]
                    view.load_function_ranges(absolute, (region_start, region_end))
            return
