"""Kernel view construction (Section III-B1).

A :class:`KernelView` is a set of hypervisor-owned host frames shadowing
the guest's kernel code pages.  Frames start out filled with the ``UD2``
pattern (``0f 0b`` repeated from the page base, so even offsets hold
``0f``), then every profiled range -- widened to whole-function
boundaries -- is copied in from the guest's original code pages.

Function widening follows the paper exactly: starting from a marked
basic block, scan backwards and forwards for the function header
signature ``push ebp; mov ebp, esp`` (``55 89 e5``) at power-of-two
aligned addresses (the kernel is built with ``-falign-functions``).  The
scan reads raw guest memory and crosses page boundaries, handling
functions that straddle pages.

Installing a view re-points EPT entries for the covered guest-physical
pages at the view's frames; uninstalling restores identity mappings.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.kernel_view import KernelViewConfig
from repro.core.rangelist import BASE_KERNEL
from repro.isa.opcodes import PROLOGUE_SIGNATURE, UD2_BYTES
from repro.memory.ept import ExtendedPageTable
from repro.memory.layout import KERNEL_BASE, PAGE_SIZE
from repro.memory.physmem import PhysicalMemory

#: Function alignment produced by -falign-functions.
FUNCTION_ALIGN = 16


def gva_to_gpa(gva: int) -> int:
    return gva - KERNEL_BASE


class FunctionBoundaryFinder:
    """Signature-based function boundary search over original guest memory."""

    def __init__(self, physmem: PhysicalMemory) -> None:
        self.physmem = physmem

    def _signature_at(self, gva: int) -> bool:
        return (
            self.physmem.read(gva_to_gpa(gva), len(PROLOGUE_SIGNATURE))
            == PROLOGUE_SIGNATURE
        )

    def containing_function(
        self, addr: int, region_start: int, region_end: int
    ) -> Tuple[int, int]:
        """The whole-function range around ``addr`` within a code region.

        Returns ``(start, end)`` where ``start`` is the nearest preceding
        aligned prologue and ``end`` the next aligned prologue (or the
        region bounds when no signature is found).
        """
        addr = max(region_start, min(addr, region_end - 1))
        # backwards: nearest aligned prologue at or before addr
        start = region_start
        candidate = addr & ~(FUNCTION_ALIGN - 1)
        while candidate >= region_start:
            if self._signature_at(candidate):
                start = candidate
                break
            candidate -= FUNCTION_ALIGN
        # forwards: next aligned prologue strictly after addr
        end = region_end
        candidate = (addr + FUNCTION_ALIGN) & ~(FUNCTION_ALIGN - 1)
        while candidate < region_end:
            if self._signature_at(candidate):
                end = candidate
                break
            candidate += FUNCTION_ALIGN
        return start, end


class KernelView:
    """One application's in-memory kernel view (UD2-filled shadow frames)."""

    def __init__(
        self,
        index: int,
        config: KernelViewConfig,
        physmem: PhysicalMemory,
    ) -> None:
        self.index = index
        self.config = config
        self.physmem = physmem
        self.finder = FunctionBoundaryFinder(physmem)
        #: gpfn -> shadow hpfn for every covered kernel-code page
        self.frames: Dict[int, int] = {}
        #: (region_start, region_end) of every covered code region
        self.regions: List[Tuple[int, int]] = []
        self.loaded_bytes = 0
        self.recovered_ranges: List[Tuple[int, int]] = []
        #: EPTs this view is currently installed in (several, when
        #: multiple vCPUs run the same application)
        self.installed_epts: List[ExtendedPageTable] = []

    # -- construction -----------------------------------------------------------

    def add_region(self, region_start: int, region_end: int) -> None:
        """Cover a guest code region with fresh UD2-filled shadow frames."""
        first = gva_to_gpa(region_start) >> 12
        last = (gva_to_gpa(region_end) + PAGE_SIZE - 1) >> 12
        count = last - first
        if count <= 0:
            return
        hpfns = self.physmem.allocate_frames(count)
        for offset, hpfn in enumerate(hpfns):
            self.frames[first + offset] = hpfn
            self.physmem.fill(hpfn << 12, PAGE_SIZE, UD2_BYTES)
        self.regions.append((region_start, region_end))

    def region_of(self, addr: int) -> Optional[Tuple[int, int]]:
        for begin, end in self.regions:
            if begin <= addr < end:
                return begin, end
        return None

    def covers(self, addr: int) -> bool:
        return (gva_to_gpa(addr) >> 12) in self.frames

    def load_function_ranges(
        self,
        ranges: Iterable[Tuple[int, int]],
        region: Tuple[int, int],
        widen: bool = True,
    ) -> None:
        """Copy profiled ranges in, widened to whole functions by default.

        ``widen=False`` loads the raw basic-block ranges instead -- the
        ablation of the paper's III-B1 relaxation.  Expect both more
        recovery traps (adjacent same-function code is missing) and
        split-UD2 hazards at odd range boundaries.
        """
        region_start, region_end = region
        for begin, end in ranges:
            if not widen:
                self.copy_original(begin, end)
                continue
            fn_start, _ = self.finder.containing_function(
                begin, region_start, region_end
            )
            _, fn_end = self.finder.containing_function(
                max(begin, end - 1), region_start, region_end
            )
            self.copy_original(fn_start, fn_end)

    def copy_original(self, start: int, end: int) -> None:
        """Copy original guest bytes ``[start, end)`` into the view frames."""
        addr = start
        while addr < end:
            gpfn = gva_to_gpa(addr) >> 12
            hpfn = self.frames.get(gpfn)
            offset = addr & (PAGE_SIZE - 1)
            chunk = min(PAGE_SIZE - offset, end - addr)
            if hpfn is not None:
                data = self.physmem.read(gva_to_gpa(addr), chunk)
                self.physmem.write((hpfn << 12) | offset, data)
                self.loaded_bytes += chunk
            addr += chunk

    # -- EPT wiring ------------------------------------------------------------------

    @property
    def installed(self) -> bool:
        return bool(self.installed_epts)

    def install(self, ept: ExtendedPageTable) -> None:
        ept.map_frames(self.frames.items())
        if ept not in self.installed_epts:
            self.installed_epts.append(ept)

    def uninstall(self, ept: ExtendedPageTable) -> None:
        ept.unmap_frames(self.frames.keys())
        if ept in self.installed_epts:
            self.installed_epts.remove(ept)

    def free(self) -> None:
        """Release the view's shadow frames (view unload, III-B4)."""
        for ept in list(self.installed_epts):
            self.uninstall(ept)
        self.physmem.free_frames(list(self.frames.values()))
        self.frames.clear()
        self.regions.clear()


class ViewBuilder:
    """Builds :class:`KernelView` objects from configs + guest state.

    ``widen=False`` disables the whole-function loading relaxation
    (ablation of Section III-B1).
    """

    def __init__(self, machine, widen: bool = True) -> None:
        self.machine = machine
        self.widen = widen

    def build(self, index: int, config: KernelViewConfig) -> KernelView:
        view = KernelView(index, config, self.machine.physmem)
        image = self.machine.image
        # base kernel text
        base_region = (image.text_start, image.text_end)
        view.add_region(*base_region)
        base_ranges = config.profile.segments.get(BASE_KERNEL)
        if base_ranges is not None:
            view.load_function_ranges(base_ranges, base_region, widen=self.widen)
        # modules, located through the guest module list (VMI)
        introspector = self.machine.introspector
        modules = {
            mod.name: mod for mod in introspector.read_module_list()
        }
        for name, module in modules.items():
            region = (module.base, module.base + module.size)
            view.add_region(*region)
            rel_ranges = config.profile.segments.get(name)
            if rel_ranges is not None:
                absolute = [
                    (module.base + begin, module.base + end)
                    for begin, end in rel_ranges
                ]
                view.load_function_ranges(absolute, region, widen=self.widen)
        return view

    def extend_for_module(self, view: KernelView, name: str) -> None:
        """Cover a newly loaded module with UD2 frames (no profiled code).

        Called when a module appears after the view was built; any use of
        the module's code by the view's application will surface through
        the recovery log -- exactly the rootkit-detection property of the
        paper's Section IV-A2.
        """
        introspector = self.machine.introspector
        for module in introspector.read_module_list():
            if module.name != name:
                continue
            region_start = module.base
            region_end = module.base + module.size
            if view.region_of(region_start) is None:
                view.add_region(region_start, region_end)
                rel_ranges = view.config.profile.segments.get(name)
                if rel_ranges is not None:
                    absolute = [
                        (region_start + begin, region_start + end)
                        for begin, end in rel_ranges
                    ]
                    view.load_function_ranges(absolute, (region_start, region_end))
            return
