"""Recovery log and attack provenance (Sections III-B3, IV-A2).

Every kernel code recovery is recorded with its faulting address, the
recovered function, the full backtrace (symbolized where possible,
``UNKNOWN`` for unattributable addresses such as hidden rootkit modules
-- Figure 5), the process context obtained via VMI, and whether the
execution was in interrupt context.  The log is the raw material both
for the administrator workflow the paper describes (ameliorating test
suites) and for the attack case studies (Figures 4 and 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class BacktraceFrame:
    """One frame of a recovery backtrace."""

    address: int
    symbol: str  # "<name+0xoff>" or "<UNKNOWN>"

    def __str__(self) -> str:
        return f"{self.address:#010x} {self.symbol}"

    @property
    def is_unknown(self) -> bool:
        return "UNKNOWN" in self.symbol


@dataclass
class RecoveryEvent:
    """One kernel code recovery."""

    cycles: int
    rip: int
    #: symbolized recovered function, e.g. "<inet_create+0x0>"
    recovered: str
    #: recovered function's entry address
    function_start: int
    function_end: int
    pid: int
    comm: str
    view_app: str
    backtrace: Tuple[BacktraceFrame, ...] = ()
    in_interrupt: bool = False
    #: functions recovered instantly because a return address split a UD2
    instant_recoveries: Tuple[str, ...] = ()

    @property
    def function_name(self) -> str:
        """Bare function name (strips the <...+0x0> decoration)."""
        inner = self.recovered.strip("<>")
        return inner.split("+", 1)[0]

    @property
    def has_unknown_frames(self) -> bool:
        return any(frame.is_unknown for frame in self.backtrace)

    def format(self) -> str:
        """Render like the paper's Figures 4/5 log excerpts."""
        lines = [f"Recover {self.rip:#010x} {self.recovered} for kernel[{self.view_app}]"]
        for frame in self.backtrace:
            lines.append(f"|-- {frame}")
        if self.in_interrupt:
            lines.append("    (interrupt context)")
        for name in self.instant_recoveries:
            lines.append(f"    (instant recovery: {name})")
        return "\n".join(lines)


class RecoveryLog:
    """The append-only log of kernel code recoveries."""

    def __init__(self) -> None:
        self.events: List[RecoveryEvent] = []

    def append(self, event: RecoveryEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def clear(self) -> None:
        self.events.clear()

    # -- queries ---------------------------------------------------------------

    def for_app(self, view_app: str) -> List[RecoveryEvent]:
        return [e for e in self.events if e.view_app == view_app]

    def recovered_functions(self, view_app: Optional[str] = None) -> List[str]:
        events = self.events if view_app is None else self.for_app(view_app)
        return [e.function_name for e in events]

    def anomalous(
        self,
        view_app: Optional[str] = None,
        benign: Sequence[str] = (),
    ) -> List[RecoveryEvent]:
        """Events that are neither interrupt-context nor known-benign.

        ``benign`` lists function names the administrator has whitelisted
        (e.g. the kvm-clock chain from profiling under QEMU).
        """
        events = self.events if view_app is None else self.for_app(view_app)
        benign_set = set(benign)
        return [
            e
            for e in events
            if not e.in_interrupt and e.function_name not in benign_set
        ]

    def report(self, view_app: Optional[str] = None) -> str:
        events = self.events if view_app is None else self.for_app(view_app)
        return "\n\n".join(event.format() for event in events)


#: Functions whose recovery is expected when a view profiled under QEMU
#: runs under KVM (the paper's Section III-B3 example), plus interrupt
#: plumbing that may race the profiling window.
DEFAULT_BENIGN_RECOVERIES: Tuple[str, ...] = (
    "kvm_clock_get_cycles",
    "kvm_clock_read",
    "pvclock_clocksource_read",
    "native_read_tsc",
)


def classify_recovery(
    event: RecoveryEvent,
    benign: Sequence[str] = DEFAULT_BENIGN_RECOVERIES,
) -> str:
    """The provenance verdict for one recovery (paper §IV-A2).

    * ``captured-attack`` -- the backtrace contains UNKNOWN frames:
      unattributable return addresses, the signature of code injected by
      a hidden module (Figure 5);
    * ``benign``          -- interrupt context, or a function the
      profiling baseline whitelists (§III-B3);
    * ``anomalous``       -- everything else: not provably malicious,
      but outside the profiled behavior (the re-profiling trigger).
    """
    if event.has_unknown_frames:
        return "captured-attack"
    if event.in_interrupt or event.function_name in set(benign):
        return "benign"
    return "anomalous"
