"""Range lists: the paper's K[app] representation (Section II).

A profiled application's kernel footprint is::

    K[app] = {([B1, E1], T1), ..., ([Bi, Ei], Ti)}

where each ``[B, E]`` is an in-memory code segment and ``T`` is either
"base kernel" or a module name (module segments are stored relative to
the module's base address because modules relocate at load time).

This module implements the three operators the paper defines --
intersection, ``LEN`` and ``SIZE`` -- plus the similarity index

    S = SIZE(K1 ∩ K2) / MAX(SIZE(K1), SIZE(K2))          (Equation 1)
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Tuple

#: Segment type tag for base-kernel ranges (module segments use the
#: module's name).
BASE_KERNEL = "base kernel"


class RangeList:
    """A sorted list of non-overlapping half-open address ranges."""

    __slots__ = ("_ranges",)

    def __init__(self, ranges: Iterable[Tuple[int, int]] = ()) -> None:
        self._ranges: List[Tuple[int, int]] = []
        for begin, end in ranges:
            self.add(begin, end)

    # -- mutation ------------------------------------------------------------

    def add(self, begin: int, end: int) -> None:
        """Insert ``[begin, end)``, merging adjacent/overlapping ranges."""
        if end <= begin:
            return
        ranges = self._ranges
        # binary search for the insertion point
        lo, hi = 0, len(ranges)
        while lo < hi:
            mid = (lo + hi) // 2
            if ranges[mid][0] < begin:
                lo = mid + 1
            else:
                hi = mid
        # merge left neighbour
        start = lo
        if start > 0 and ranges[start - 1][1] >= begin:
            start -= 1
            begin = min(begin, ranges[start][0])
            end = max(end, ranges[start][1])
        # merge right neighbours
        stop = start
        while stop < len(ranges) and ranges[stop][0] <= end:
            end = max(end, ranges[stop][1])
            stop += 1
        ranges[start:stop] = [(begin, end)]

    def update(self, other: "RangeList") -> None:
        for begin, end in other:
            self.add(begin, end)

    # -- the paper's operators --------------------------------------------------

    def intersect(self, other: "RangeList") -> "RangeList":
        """K1 ∩ K2: the overlapping address ranges (still a range list)."""
        result = RangeList()
        a, b = self._ranges, other._ranges
        i = j = 0
        while i < len(a) and j < len(b):
            begin = max(a[i][0], b[j][0])
            end = min(a[i][1], b[j][1])
            if begin < end:
                result.add(begin, end)
            if a[i][1] < b[j][1]:
                i += 1
            else:
                j += 1
        return result

    @property
    def size(self) -> int:
        """SIZE: total bytes covered."""
        return sum(end - begin for begin, end in self._ranges)

    def __len__(self) -> int:
        """LEN: number of elements in the list."""
        return len(self._ranges)

    # -- queries ------------------------------------------------------------------

    def contains(self, addr: int) -> bool:
        lo, hi = 0, len(self._ranges) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            begin, end = self._ranges[mid]
            if addr < begin:
                hi = mid - 1
            elif addr >= end:
                lo = mid + 1
            else:
                return True
        return False

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        return iter(self._ranges)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, RangeList) and self._ranges == other._ranges

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = ", ".join(f"[{b:#x},{e:#x})" for b, e in self._ranges[:4])
        more = "..." if len(self._ranges) > 4 else ""
        return f"RangeList({inner}{more})"

    def copy(self) -> "RangeList":
        fresh = RangeList()
        fresh._ranges = list(self._ranges)
        return fresh


class KernelProfile:
    """K[app]: per-segment range lists for one application.

    Keys are :data:`BASE_KERNEL` (absolute addresses) or a module name
    (module-relative addresses).
    """

    def __init__(self) -> None:
        self.segments: Dict[str, RangeList] = {}

    def segment(self, name: str) -> RangeList:
        ranges = self.segments.get(name)
        if ranges is None:
            ranges = RangeList()
            self.segments[name] = ranges
        return ranges

    def add(self, segment: str, begin: int, end: int) -> None:
        self.segment(segment).add(begin, end)

    def update(self, other: "KernelProfile") -> None:
        for name, ranges in other.segments.items():
            self.segment(name).update(ranges)

    def intersect(self, other: "KernelProfile") -> "KernelProfile":
        result = KernelProfile()
        for name, ranges in self.segments.items():
            theirs = other.segments.get(name)
            if theirs is None:
                continue
            overlap = ranges.intersect(theirs)
            if len(overlap):
                result.segments[name] = overlap
        return result

    @property
    def size(self) -> int:
        return sum(ranges.size for ranges in self.segments.values())

    def __len__(self) -> int:
        return sum(len(ranges) for ranges in self.segments.values())

    def contains(self, segment: str, addr: int) -> bool:
        ranges = self.segments.get(segment)
        return ranges.contains(addr) if ranges is not None else False

    def copy(self) -> "KernelProfile":
        fresh = KernelProfile()
        for name, ranges in self.segments.items():
            fresh.segments[name] = ranges.copy()
        return fresh

    # -- serialization -----------------------------------------------------------

    def to_dict(self) -> Dict[str, List[List[int]]]:
        return {
            name: [[b, e] for b, e in ranges]
            for name, ranges in self.segments.items()
        }

    @classmethod
    def from_dict(cls, data: Dict[str, List[List[int]]]) -> "KernelProfile":
        profile = cls()
        for name, pairs in data.items():
            for begin, end in pairs:
                profile.add(name, begin, end)
        return profile


def similarity_index(a: KernelProfile, b: KernelProfile) -> float:
    """Equation 1: S = SIZE(K1 ∩ K2) / MAX(SIZE(K1), SIZE(K2))."""
    denominator = max(a.size, b.size)
    if denominator == 0:
        return 1.0
    return a.intersect(b).size / denominator
