"""View libraries: a directory of kernel view configurations.

The paper's deployment story profiles applications in independent
off-line sessions and ships the resulting configuration files to the
production hypervisor ("This removes the burden of re-compiling and/or
installing a new customized kernel upon the addition of a new
application", Section I).  A :class:`ViewLibrary` is that shipping
artifact: a directory of ``<app>.view.json`` files with load/save/update
helpers and bulk loading into a running :class:`FaceChange`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from repro.core.facechange import FaceChange
from repro.core.kernel_view import KernelViewConfig, union_view

_SUFFIX = ".view.json"


class ViewLibrary:
    """A directory of per-application kernel view configurations."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, app: str) -> Path:
        return self.root / f"{app}{_SUFFIX}"

    # -- storage ---------------------------------------------------------------

    def save(self, config: KernelViewConfig) -> Path:
        path = self._path(config.app)
        config.save(path)
        return path

    def save_all(self, configs: Dict[str, KernelViewConfig]) -> None:
        for config in configs.values():
            self.save(config)

    def load(self, app: str) -> KernelViewConfig:
        path = self._path(app)
        if not path.exists():
            raise KeyError(f"no kernel view for {app!r} in {self.root}")
        return KernelViewConfig.load(path)

    def remove(self, app: str) -> bool:
        path = self._path(app)
        if path.exists():
            path.unlink()
            return True
        return False

    def apps(self) -> List[str]:
        return sorted(
            p.name[: -len(_SUFFIX)]
            for p in self.root.glob(f"*{_SUFFIX}")
        )

    def __contains__(self, app: str) -> bool:
        return self._path(app).exists()

    def __iter__(self) -> Iterator[KernelViewConfig]:
        for app in self.apps():
            yield self.load(app)

    def __len__(self) -> int:
        return len(self.apps())

    # -- composition -------------------------------------------------------------

    def union(self, name: str = "union") -> KernelViewConfig:
        """The system-wide-minimization strawman over the whole library."""
        return union_view(list(self), name=name)

    def load_into(
        self,
        fc: FaceChange,
        apps: Optional[List[str]] = None,
    ) -> Dict[str, int]:
        """Load (a subset of) the library into a running FaceChange.

        Returns app -> view index.
        """
        selected = apps if apps is not None else self.apps()
        return {app: fc.load_view(self.load(app)) for app in selected}
