"""Kernel code recovery (Section III-B3, Algorithm 1, Figure 3).

When the guest executes a ``UD2`` left by the view fill, the ``#UD`` VM
exit lands here.  The handler:

1. walks the ``ebp`` frame chain (``BACK_TRACE``), dumping each return
   address, and -- the paper's *instant recovery* -- immediately recovers
   any caller whose return address points at a split ``UD2`` (``0b 0f``),
   which the processor would silently misdecode as an ``or`` instruction
   rather than trapping;
2. widens the faulting address to its containing function via the
   prologue-signature search (``SEARCH_BACKWARDS`` / ``SEARCH_FORWARDS``);
3. fetches the missing code from the guest's original kernel pages and
   fills it into the view frames (``FETCH_FILL_CODE``);
4. records a :class:`~repro.core.provenance.RecoveryEvent` with full
   provenance for later attack/exception analysis.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.provenance import (
    DEFAULT_BENIGN_RECOVERIES,
    BacktraceFrame,
    RecoveryEvent,
    RecoveryLog,
    classify_recovery,
)
from repro.core.view_manager import KernelView
from repro.hypervisor.vcpu import Vcpu
from repro.hypervisor.vmexit import VmExit
from repro.memory.layout import is_kernel_address
from repro.memory.mmu import TranslationError

#: Cycles charged per code recovery (trap + search + copy).
RECOVERY_COST_CYCLES = 15_000
#: Maximum frames walked by BACK_TRACE.
MAX_BACKTRACE_DEPTH = 64
#: The byte pair a split UD2 presents at an odd return address.
SPLIT_UD2 = b"\x0b\x0f"


class RecoveryEngine:
    """Implements HANDLE_INVALID_OPCODE / BACK_TRACE from Algorithm 1."""

    def __init__(self, machine, log: RecoveryLog) -> None:
        self.machine = machine
        self.log = log
        self.telemetry = machine.hypervisor.telemetry
        self._recoveries = self.telemetry.counter("recovery.recoveries")
        self._instant = self.telemetry.counter("recovery.instant_recoveries")
        self._bytes = self.telemetry.counter("recovery.recovered_bytes")
        self._depth = self.telemetry.histogram("recovery.backtrace_depth")
        #: per-verdict counts (benign / anomalous / captured-attack),
        #: always on -- the fleet drift detector reads these live
        self._verdicts = self.telemetry.labelled_counter("recovery.verdicts")
        #: benign baseline for verdict classification; fleet jobs point
        #: this at the ProfileLibrary record's profiled baseline
        self.benign_reference: Tuple[str, ...] = DEFAULT_BENIGN_RECOVERIES
        #: ablation switch: disabling instant recovery reproduces the
        #: cross-view corruption bug the paper describes (Figure 3)
        self.instant_recovery_enabled = True
        # no-progress guard: a rip that keeps faulting after recovery is
        # corrupted execution (e.g. a split-UD2 fragment), not a hole
        self._last_fault = (None, 0)

    # -- legacy counter names (read-only views over the registry) -----------------

    @property
    def recoveries(self) -> int:
        return self._recoveries.value

    @property
    def instant_recoveries(self) -> int:
        return self._instant.value

    # -- helpers ---------------------------------------------------------------

    def _read_guest(self, vcpu: Vcpu, addr: int, length: int) -> Optional[bytes]:
        try:
            return vcpu.mmu.read(addr, length)
        except TranslationError:
            return None

    def _symbolize(self, addr: int) -> str:
        text = self.machine.image.format_address(addr)
        # format_address returns "0x... <sym+off>"; keep the symbol part
        return text.split(" ", 1)[1]

    def _recover_function(
        self, view: KernelView, addr: int
    ) -> Optional[Tuple[int, int]]:
        """SEARCH_BACKWARDS/FORWARDS + FETCH_FILL_CODE around ``addr``."""
        region = view.region_of(addr)
        if region is None:
            return None
        start, end = view.finder.containing_function(addr, region[0], region[1])
        view.copy_original(start, end)
        view.recovered_ranges.append((start, end))
        return start, end

    # -- BACK_TRACE ----------------------------------------------------------------

    def back_trace(
        self, vcpu: Vcpu, view: KernelView
    ) -> Tuple[List[BacktraceFrame], List[str]]:
        frames: List[BacktraceFrame] = []
        instant: List[str] = []
        iter_rbp = vcpu.ebp
        for _ in range(MAX_BACKTRACE_DEPTH):
            if iter_rbp == 0 or not is_kernel_address(iter_rbp):
                break
            words = self._read_guest(vcpu, iter_rbp, 8)
            if words is None:
                break
            prev_rbp = int.from_bytes(words[0:4], "little")
            prev_rip = int.from_bytes(words[4:8], "little")
            if prev_rip == 0 or not is_kernel_address(prev_rip):
                break
            frames.append(BacktraceFrame(prev_rip, self._symbolize(prev_rip)))
            # instant recovery: a return target reading "0b 0f" would be
            # misdecoded by the CPU instead of trapping -- recover it now
            opcode = self._read_guest(vcpu, prev_rip, 2)
            if (
                self.instant_recovery_enabled
                and opcode == SPLIT_UD2
                and view.covers(prev_rip)
            ):
                recovered = self._recover_function(view, prev_rip)
                if recovered is not None:
                    instant.append(self._symbolize(recovered[0]))
                    self._instant.value += 1
                    if self.telemetry.tracing:
                        self.telemetry.emit(
                            "instant_recovery",
                            cycles=vcpu.cycles,
                            cpu=vcpu.cpu_id,
                            rip=prev_rip,
                            recovered=self._symbolize(recovered[0]),
                            view_app=view.config.app,
                        )
            iter_rbp = prev_rbp
        return frames, instant

    # -- HANDLE_INVALID_OPCODE --------------------------------------------------------

    def handle(self, vcpu: Vcpu, exit_: VmExit, view: Optional[KernelView]) -> bool:
        """Recover the missing code at ``exit_.rip``; False if unhandled."""
        tel = self.telemetry
        if not tel.recording:
            return self._handle(vcpu, exit_, view, None)
        span = tel.spans.open(
            "recovery", cpu=vcpu.cpu_id, cycles=vcpu.cycles, rip=exit_.rip
        )
        handled = self._handle(vcpu, exit_, view, span)
        tel.spans.close(
            span, cycles=vcpu.cycles, status="ok" if handled else "unhandled"
        )
        return handled

    def _handle(
        self,
        vcpu: Vcpu,
        exit_: VmExit,
        view: Optional[KernelView],
        span,
    ) -> bool:
        if view is None or not view.covers(exit_.rip):
            return False
        # confirm the fault really is in a UD2-filled hole of this view
        hole = self._read_guest(vcpu, exit_.rip & ~1, 2)
        if hole is None:
            return False
        last_rip, count = self._last_fault
        if last_rip == exit_.rip:
            if count >= 2:
                return False  # recovery is not making progress: crash
            self._last_fault = (exit_.rip, count + 1)
        else:
            self._last_fault = (exit_.rip, 1)
        tel = self.telemetry
        bt_span = None
        if span is not None:
            bt_span = tel.spans.open(
                "backtrace", cpu=vcpu.cpu_id, cycles=vcpu.cycles
            )
        frames, instant = self.back_trace(vcpu, view)
        if bt_span is not None:
            tel.spans.close(
                bt_span,
                cycles=vcpu.cycles,
                depth=len(frames),
                unknown=sum(1 for f in frames if f.is_unknown),
                instant=len(instant),
            )
        recovered = self._recover_function(view, exit_.rip)
        if recovered is None:
            return False
        start, end = recovered
        runtime = self.machine.runtime
        procinfo = self.machine.introspector.read_current_process(vcpu.cpu_id)
        event = RecoveryEvent(
            cycles=vcpu.cycles,
            rip=exit_.rip,
            recovered=self._symbolize(start),
            function_start=start,
            function_end=end,
            pid=procinfo.pid,
            comm=procinfo.comm,
            view_app=view.config.app,
            backtrace=tuple(frames),
            in_interrupt=runtime.in_interrupt,
            instant_recoveries=tuple(instant),
        )
        self.log.append(event)
        self._recoveries.value += 1
        self._bytes.value += end - start
        self._depth.observe(len(frames))
        verdict = classify_recovery(event, benign=self.benign_reference)
        self._verdicts.inc(verdict)
        if span is not None:
            tel.spans.event(
                span,
                "provenance",
                cycles=event.cycles,
                verdict=verdict,
                pid=event.pid,
                comm=event.comm,
                view_app=event.view_app,
                in_interrupt=event.in_interrupt,
                unknown_frames=event.has_unknown_frames,
            )
            span.attrs.update(recovered=event.recovered, bytes=end - start)
        if tel.tracing:
            tel.emit(
                "recovery",
                cycles=event.cycles,
                cpu=vcpu.cpu_id,
                rip=exit_.rip,
                recovered=event.recovered,
                pid=event.pid,
                comm=event.comm,
                view_app=event.view_app,
                in_interrupt=event.in_interrupt,
                instant=len(instant),
            )
        self.machine.hypervisor.charge(vcpu, RECOVERY_COST_CYCLES)
        # the fill went through copy_original's CoW path: a shared page
        # materialized a freshly-versioned private frame (or adopted the
        # original) and the EPT remap bumped the covering epoch, so every
        # vCPU re-translates and re-decodes on resume
        return True
