"""Per-app event timelines over the telemetry trace (``repro.cli trace``).

Renders the runtime-phase causal chain the paper describes only
qualitatively: context-switch trap -> (deferred) resume trap -> EPT view
flip -> ``#UD`` in a view hole -> code recovery with provenance.  Every
recovery trace event is cross-referenced against the
:class:`~repro.core.provenance.RecoveryLog` (both stamp the same vCPU
cycle counter), so the timeline and the provenance log tell one story.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.provenance import RecoveryEvent, RecoveryLog
from repro.telemetry import Telemetry, TraceEvent, format_counters, format_timeline

#: Event kinds rendered in a timeline (raw ``vmexit`` events are elided
#: by default -- every trap below already implies one).
TIMELINE_KINDS: Tuple[str, ...] = (
    "ctxsw_trap",
    "resume_trap",
    "view_switch",
    "view_skip",
    "recovery",
    "instant_recovery",
    "misdecode",
    "view_load",
    "view_unload",
    "module_load",
)

#: Fields that may attribute an event to an application.
_APP_FIELDS = ("comm", "app", "view_app")


def events_for_app(
    telemetry: Telemetry, app: str, kinds: Optional[Iterable[str]] = None
) -> List[TraceEvent]:
    """Trace events attributable to ``app`` (by comm or view binding)."""
    wanted = set(kinds) if kinds is not None else set(TIMELINE_KINDS)
    return [
        e
        for e in telemetry.trace
        if e.kind in wanted
        and any(e.get(field) == app for field in _APP_FIELDS)
    ]


def correlate_recoveries(
    telemetry: Telemetry, log: RecoveryLog
) -> List[Tuple[TraceEvent, Optional[RecoveryEvent]]]:
    """Match each ``recovery`` trace event to its provenance-log entry.

    Both records stamp the faulting vCPU's cycle counter and rip, which
    identify a recovery.  An unmatched event (``None`` partner)
    indicates the log was cleared or the ring buffer wrapped -- worth
    surfacing, not hiding.

    This is a heuristic join, kept as the fallback for legacy snapshots
    that predate the span journal (``repro forensics`` uses real parent
    links when a journal is available).  Tie-breaking rule: when several
    log entries share one ``(cycles, rip)`` key -- possible when
    distinct vCPUs fault the same hole at the same virtual cycle -- the
    **latest log entry wins** (later appends overwrite earlier ones in
    the key map), and every trace event with that key maps to it.
    """
    by_key: Dict[Tuple[int, int], RecoveryEvent] = {
        (entry.cycles, entry.rip): entry for entry in log
    }
    return [
        (event, by_key.get((event.cycles, event.get("rip"))))
        for event in telemetry.events("recovery")
    ]


def format_trace_report(
    telemetry: Telemetry,
    log: Optional[RecoveryLog] = None,
    app: Optional[str] = None,
    limit: Optional[int] = 200,
) -> str:
    """The full ``repro trace`` rendering: counters, timeline, provenance."""
    sections: List[str] = []

    counters = format_counters(telemetry)
    if counters:
        sections.append("== counters ==\n" + counters)

    if app is not None:
        events: Iterable[TraceEvent] = events_for_app(telemetry, app)
        header = f"== timeline ({app}) =="
    else:
        events = [e for e in telemetry.trace if e.kind in TIMELINE_KINDS]
        header = "== timeline =="
    timeline = format_timeline(events, limit=limit)
    if telemetry.trace.dropped:
        timeline = (
            f"(ring buffer wrapped: {telemetry.trace.dropped} events dropped)\n"
            + timeline
        )
    sections.append(header + "\n" + (timeline or "(no events recorded)"))

    if log is not None:
        pairs = correlate_recoveries(telemetry, log)
        lines = []
        for event, entry in pairs:
            if entry is None:
                lines.append(
                    f"[{event.cycles:>12}] UNMATCHED trace recovery at "
                    f"rip={event.get('rip'):#x}"
                )
            else:
                lines.append(f"[{event.cycles:>12}] " + entry.format().replace(
                    "\n", "\n" + " " * 15
                ))
        matched = sum(1 for _, entry in pairs if entry is not None)
        sections.append(
            "== recovery provenance "
            f"({matched}/{len(pairs)} trace events matched to log) ==\n"
            + ("\n".join(lines) or "(no recoveries)")
        )

    return "\n\n".join(sections)
