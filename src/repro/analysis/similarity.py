"""Kernel view similarity study (paper Section II / Table I).

``profile_applications`` profiles each Table I application in its own
(QEMU-platform) session, exactly like the paper's independent profiling
sessions, and ``SimilarityMatrix`` renders the square matrix: view sizes
on the diagonal, overlap sizes above it, similarity indices (Equation 1)
below it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.apps.base import launch
from repro.apps.catalog import APP_CATALOG
from repro.core.kernel_view import KernelViewConfig
from repro.core.profiler import Profiler
from repro.core.rangelist import similarity_index
from repro.guest.machine import boot_machine
from repro.kernel.runtime import Platform


def profile_applications(
    apps: Optional[Sequence[str]] = None,
    scale: int = 6,
    max_cycles: int = 40_000_000_000,
) -> Dict[str, KernelViewConfig]:
    """Profile each application in an independent session.

    Returns app name -> kernel view configuration (interrupt-context code
    included, per Section III-A3).
    """
    names = list(apps) if apps is not None else list(APP_CATALOG)
    configs: Dict[str, KernelViewConfig] = {}
    for name in names:
        machine = boot_machine(platform=Platform.QEMU)
        profiler = Profiler(machine)
        profiler.track(name)
        profiler.install()
        handle = launch(machine, name, APP_CATALOG[name], scale=scale)
        handle.run_to_completion(max_cycles=max_cycles)
        if not handle.finished:
            raise RuntimeError(f"profiling workload for {name!r} did not finish")
        configs[name] = profiler.export(name)
    return configs


@dataclass
class SimilarityMatrix:
    """Table I: sizes (diagonal), overlap bytes (above), S index (below)."""

    apps: List[str]
    sizes: Dict[str, int] = field(default_factory=dict)
    overlap: Dict[tuple, int] = field(default_factory=dict)
    index: Dict[tuple, float] = field(default_factory=dict)

    @classmethod
    def build(cls, configs: Dict[str, KernelViewConfig]) -> "SimilarityMatrix":
        apps = list(configs)
        matrix = cls(apps=apps)
        for name, config in configs.items():
            matrix.sizes[name] = config.size
        for i, a in enumerate(apps):
            for b in apps[i + 1 :]:
                inter = configs[a].profile.intersect(configs[b].profile)
                matrix.overlap[(a, b)] = inter.size
                matrix.index[(a, b)] = similarity_index(
                    configs[a].profile, configs[b].profile
                )
        return matrix

    def similarity(self, a: str, b: str) -> float:
        if a == b:
            return 1.0
        return self.index.get((a, b), self.index.get((b, a), 0.0))

    def overlap_bytes(self, a: str, b: str) -> int:
        if a == b:
            return self.sizes[a]
        return self.overlap.get((a, b), self.overlap.get((b, a), 0))

    def off_diagonal_indices(self) -> List[float]:
        return list(self.index.values())

    def min_similarity(self) -> tuple:
        pair = min(self.index, key=self.index.get)
        return pair, self.index[pair]

    def max_similarity(self) -> tuple:
        pair = max(self.index, key=self.index.get)
        return pair, self.index[pair]

    def format_table(self) -> str:
        """Render in the layout of the paper's Table I."""
        apps = self.apps
        width = 9
        header = " " * 9 + "".join(f"{a[:8]:>{width}}" for a in apps)
        lines = [header]
        for i, row in enumerate(apps):
            cells = []
            for j, col in enumerate(apps):
                if i == j:
                    cells.append(f"{self.sizes[row] // 1024}KB".rjust(width))
                elif j > i:
                    cells.append(f"{self.overlap_bytes(row, col) // 1024}KB".rjust(width))
                else:
                    cells.append(f"{self.similarity(row, col) * 100:.1f}%".rjust(width))
            lines.append(f"{row[:8]:<9}" + "".join(cells))
        return "\n".join(lines)
