"""Evaluation analysis: similarity matrices and attack detection verdicts."""

from repro.analysis.similarity import SimilarityMatrix, profile_applications
from repro.analysis.detection import DetectionResult, evaluate_attack

__all__ = [
    "DetectionResult",
    "SimilarityMatrix",
    "evaluate_attack",
    "profile_applications",
]
