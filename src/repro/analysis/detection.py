"""Attack detection experiment driver (paper Section IV-A2 / Table II).

For each malware sample, the experiment runs the infected host
application twice:

1. under the host's **per-application kernel view** (FACE-CHANGE), and
2. under the **union view** of all profiled applications -- the
   stand-in for traditional system-wide kernel minimization.

Detection evidence = anomalous (non-interrupt, non-whitelisted) kernel
code recoveries attributed to the host's view.  The paper's headline
security claim is that per-app views catch attacks whose kernel
footprint hides inside the union view.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.facechange import FaceChange
from repro.core.kernel_view import KernelViewConfig, union_view
from repro.core.provenance import DEFAULT_BENIGN_RECOVERIES
from repro.guest.machine import boot_machine
from repro.kernel.runtime import Platform


@dataclass
class DetectionResult:
    """Outcome of one malware sample's evaluation."""

    name: str
    infection_method: str
    payload: str
    host_app: str
    detected_per_app: bool
    detected_union: bool
    #: anomalous kernel functions recovered under the per-app view
    evidence: List[str] = field(default_factory=list)
    #: anomalous kernel functions recovered under the union view
    union_evidence: List[str] = field(default_factory=list)
    #: True when any backtrace contained UNKNOWN (hidden-module) frames
    unknown_frames: bool = False

    def row(self) -> str:
        verdicts = (
            f"per-app: {'DETECTED' if self.detected_per_app else 'missed'}; "
            f"union: {'DETECTED' if self.detected_union else 'missed'}"
        )
        return f"{self.name:<14} {self.infection_method:<44} {verdicts}"


def _run_infected(
    config: KernelViewConfig,
    attack,
    scale: int,
    max_cycles: int,
):
    """Run the infected host under ``config``; return the FaceChange."""
    machine = boot_machine(platform=Platform.KVM)
    fc = FaceChange(machine)
    fc.enable()
    fc.load_view(config, comm=attack.host_app)
    handle = attack.launch(machine, scale=scale)
    machine.run(
        until=lambda: handle.finished,
        max_cycles=max_cycles,
        step_budget=50_000,
    )
    return fc


def _run_clean(
    config: KernelViewConfig,
    host_app: str,
    scale: int,
    max_cycles: int,
):
    """Run the *uninfected* host under ``config`` (baseline recoveries).

    Benign recoveries caused by incomplete profiling are "recorded as a
    reference for the administrator" (paper III-B3); the detection
    experiment subtracts them so evidence is attack-specific.
    """
    from repro.apps.base import launch
    from repro.apps.catalog import APP_CATALOG

    machine = boot_machine(platform=Platform.KVM)
    fc = FaceChange(machine)
    fc.enable()
    fc.load_view(config, comm=host_app)
    handle = launch(machine, host_app, APP_CATALOG[host_app], scale=scale)
    machine.run(
        until=lambda: handle.finished,
        max_cycles=max_cycles,
        step_budget=50_000,
    )
    return {e.function_name for e in fc.log.events}


def evaluate_attack(
    attack,
    configs: Dict[str, KernelViewConfig],
    scale: int = 4,
    max_cycles: int = 60_000_000_000,
    benign=DEFAULT_BENIGN_RECOVERIES,
) -> DetectionResult:
    """Run one Table II sample under per-app and union views."""
    host_config = configs[attack.host_app]
    union_config = union_view(configs.values())

    baseline = _run_clean(host_config, attack.host_app, scale, max_cycles)
    baseline |= set(benign)

    fc_app = _run_infected(host_config, attack, scale, max_cycles)
    app_events = fc_app.log.anomalous(benign=tuple(baseline))
    evidence = sorted({e.function_name for e in app_events})
    unknown = any(e.has_unknown_frames for e in fc_app.log.events)

    union_named = KernelViewConfig(app=attack.host_app, profile=union_config.profile)
    union_baseline = _run_clean(union_named, attack.host_app, scale, max_cycles)
    union_baseline |= set(benign)
    fc_union = _run_infected(union_named, attack, scale, max_cycles)
    union_events = fc_union.log.anomalous(benign=tuple(union_baseline))
    union_evidence = sorted({e.function_name for e in union_events})
    union_unknown = any(e.has_unknown_frames for e in fc_union.log.events)

    return DetectionResult(
        name=attack.name,
        infection_method=attack.infection_method,
        payload=attack.payload,
        host_app=attack.host_app,
        detected_per_app=bool(app_events) or unknown,
        detected_union=bool(union_events) or union_unknown,
        evidence=evidence,
        union_evidence=union_evidence,
        unknown_frames=unknown,
    )
