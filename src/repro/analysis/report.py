"""One-shot evaluation report generator.

Runs the full paper evaluation (Tables I & II, Figures 6 & 7) and
renders a markdown report, so ``EXPERIMENTS.md``-style records can be
regenerated on any machine with one command::

    python -m repro.cli report -o report.md
"""

from __future__ import annotations

import io
from typing import Dict, Optional, Sequence

from repro.analysis.detection import evaluate_attack
from repro.analysis.similarity import SimilarityMatrix, profile_applications
from repro.bench.httperf import run_httperf_sweep
from repro.bench.unixbench import run_unixbench
from repro.core.kernel_view import KernelViewConfig
from repro.malware import ALL_ATTACKS

#: Every section ``generate_report`` knows how to render.
KNOWN_SECTIONS = {
    "table1", "table2", "fig6", "fig7", "caches", "trace",
    "observability", "heat", "capacity",
}


def _section_table1(out: io.StringIO, configs) -> None:
    matrix = SimilarityMatrix.build(configs)
    out.write("## Table I — similarity matrix\n\n```\n")
    out.write(matrix.format_table())
    out.write("\n```\n\n")
    lo_pair, lo = matrix.min_similarity()
    hi_pair, hi = matrix.max_similarity()
    out.write(
        f"- similarity range: **{lo * 100:.1f}%** {lo_pair} .. "
        f"**{hi * 100:.1f}%** {hi_pair} (paper: 33.6% top/firefox .. "
        f"86.5% eog/totem)\n\n"
    )


def _section_table2(out: io.StringIO, configs, scale: int) -> None:
    out.write("## Table II — security evaluation\n\n")
    out.write("| sample | host | FACE-CHANGE | union view | evidence |\n")
    out.write("|---|---|---|---|---|\n")
    per_app = union = 0
    for attack in ALL_ATTACKS:
        result = evaluate_attack(attack, configs, scale=scale)
        per_app += result.detected_per_app
        union += result.detected_union
        fc = "**DETECTED**" if result.detected_per_app else "missed"
        un = "detected" if result.detected_union else "missed"
        extra = " +UNKNOWN frames" if result.unknown_frames else ""
        out.write(
            f"| {result.name} | {result.host_app} | {fc}{extra} | {un} | "
            f"{len(result.evidence)} fns |\n"
        )
    out.write(
        f"\nFACE-CHANGE: **{per_app}/{len(ALL_ATTACKS)}**, union view: "
        f"{union}/{len(ALL_ATTACKS)} (paper: 16/16 vs user-level blind spot)\n\n"
    )


def _section_figure6(out: io.StringIO, configs, views: Sequence[int]) -> None:
    out.write("## Figure 6 — UnixBench (normalized)\n\n")
    baseline = run_unixbench(0, label="baseline")
    runs = [run_unixbench(k, configs) for k in views]
    out.write("| subtest |" + "".join(f" {k} views |" for k in views) + "\n")
    out.write("|---|" + "---|" * len(views) + "\n")
    for name in baseline.scores:
        row = f"| {name} |"
        for run in runs:
            row += f" {run.normalized(baseline)[name]:.3f} |"
        out.write(row + "\n")
    out.write(
        "| **index** |"
        + "".join(f" **{r.normalized_index(baseline):.3f}** |" for r in runs)
        + "\n\n"
    )
    out.write("(paper: 5–7% overall overhead; only Pipe-based Context "
              "Switching degrades; extra views are free)\n\n")


def _section_trace(out: io.StringIO, configs, scale: int) -> None:
    """A traced quickstart run: the event timeline behind Figures 6/7."""
    from repro.analysis.timeline import format_trace_report
    from repro.apps.base import launch
    from repro.apps.catalog import APP_CATALOG
    from repro.core.facechange import FaceChange
    from repro.guest.machine import boot_machine
    from repro.kernel.runtime import Platform

    app = "top"
    machine = boot_machine(platform=Platform.KVM)
    machine.enable_tracing()
    fc = FaceChange(machine)
    fc.enable()
    fc.load_view(configs[app], comm=app)
    handle = launch(machine, app, APP_CATALOG[app], scale=scale)
    handle.run_to_completion(max_cycles=200_000_000_000)
    out.write("## Trace — telemetry timeline for one enforced run\n\n")
    out.write(f"({app} under its kernel view, tracing enabled)\n\n```\n")
    out.write(format_trace_report(machine.telemetry, fc.log, limit=60))
    out.write("\n```\n\n")


def _section_caches(out: io.StringIO, configs, scale: int) -> None:
    """Hit/miss/eviction counters of the translation and decode caches."""
    from repro.apps.base import launch
    from repro.apps.catalog import APP_CATALOG
    from repro.core.facechange import FaceChange
    from repro.guest.machine import boot_machine
    from repro.kernel.runtime import Platform

    app = "top"
    machine = boot_machine(platform=Platform.KVM)
    fc = FaceChange(machine)
    fc.enable()
    fc.load_view(configs[app], comm=app)
    handle = launch(machine, app, APP_CATALOG[app], scale=scale)
    handle.run_to_completion(max_cycles=200_000_000_000)
    out.write("## Caches — TLB / stack / decode counters\n\n")
    out.write(f"(one enforced {app} run; counters from the telemetry "
              "registry)\n\n")
    out.write("| cache | hits | misses | evictions | hit rate |\n")
    out.write("|---|---|---|---|---|\n")
    for label, prefix in (
        ("MMU TLB", "mmu.tlb"),
        ("stack page", "vcpu.stack"),
        ("decode", "decode"),
    ):
        hits = machine.telemetry.counter(f"{prefix}.hits").value
        misses = machine.telemetry.counter(f"{prefix}.misses").value
        evictions = machine.telemetry.counter(f"{prefix}.evictions").value
        total = hits + misses
        rate = f"{hits / total:.4f}" if total else "n/a"
        out.write(f"| {label} | {hits} | {misses} | {evictions} | {rate} |\n")
    out.write("\n### Block translation (JIT)\n\n")
    out.write("| counter | value |\n")
    out.write("|---|---|\n")
    out.write(f"| enabled | {machine.jit_enabled} |\n")
    for name in ("jit.blocks", "jit.superblocks", "jit.promotions"):
        out.write(f"| {name} | {machine.telemetry.counter(name).value} |\n")
    invalidations = machine.telemetry.labelled.get("jit.invalidations")
    causes = invalidations.values if invalidations is not None else {}
    for cause in sorted(causes):
        out.write(f"| jit.invalidations[{cause}] | {causes[cause]} |\n")
    if not causes:
        out.write("| jit.invalidations | 0 |\n")
    out.write("\n(invalidation rules: docs/PERFORMANCE.md)\n\n")


def _section_observability(out: io.StringIO, configs, scale: int) -> None:
    """Recorder accounting: trace-ring and journal drop visibility."""
    from repro.apps.base import launch
    from repro.apps.catalog import APP_CATALOG
    from repro.core.facechange import FaceChange
    from repro.guest.machine import boot_machine
    from repro.kernel.runtime import Platform
    from repro.telemetry.journal import build_span_trees

    app = "top"
    machine = boot_machine(platform=Platform.KVM)
    journal = machine.start_recording(meta={"app": app, "scale": scale})
    fc = FaceChange(machine)
    fc.enable()
    fc.load_view(configs[app], comm=app)
    handle = launch(machine, app, APP_CATALOG[app], scale=scale)
    handle.run_to_completion(max_cycles=200_000_000_000)
    trees = build_span_trees(journal.records())
    trace = machine.telemetry.trace
    verdicts = machine.telemetry.labelled.get("recovery.verdicts")
    machine.stop_recording()
    out.write("## Observability — recorder accounting\n\n")
    out.write(f"(one enforced {app} run with the flight recorder on)\n\n")
    out.write("| instrument | recorded | dropped |\n")
    out.write("|---|---|---|\n")
    out.write(f"| trace ring | {len(trace)} | {trace.dropped} |\n")
    out.write(f"| span journal | {journal.seq} | {journal.dropped} |\n")
    out.write(f"| causal chains | {len(trees)} | — |\n")
    if verdicts is not None and verdicts.values:
        rendered = ", ".join(
            f"{label}={n}" for label, n in sorted(verdicts.values.items())
        )
        out.write(f"\nrecovery verdicts: {rendered}\n")
    out.write(
        "\n(every drop is accounted; silent truncation would show up "
        "here and in the journal's seq gaps)\n\n"
    )


def _section_heat(out: io.StringIO, configs, scale: int) -> None:
    """Sampled hotness joined against the app's kernel-view ranges."""
    from repro.apps.base import launch
    from repro.apps.catalog import APP_CATALOG
    from repro.core.facechange import FaceChange
    from repro.guest.machine import boot_machine
    from repro.kernel.runtime import Platform
    from repro.obs.profiling import analyze_heat, format_heat_report
    from repro.obs.profiling.sampler import SamplingProfiler
    from repro.telemetry.export import snapshot as telemetry_snapshot

    app = "find_pipe" if "find_pipe" in configs else sorted(configs)[0]
    machine = boot_machine(platform=Platform.KVM)
    fc = FaceChange(machine)
    fc.enable()
    fc.load_view(configs[app], comm=app)
    sampler = SamplingProfiler(
        machine,
        view_provider=lambda cpu: fc.switcher.current_index[cpu],
    )
    sampler.install()
    handle = launch(machine, app, APP_CATALOG[app], scale=scale)
    handle.run_to_completion(max_cycles=200_000_000_000)
    sampler.uninstall()
    snapshot = telemetry_snapshot(machine.telemetry)
    heat = analyze_heat(snapshot, {app: configs[app]})
    out.write("## Heat — sampled hotness vs. kernel-view coverage\n\n")
    out.write(
        f"(one enforced {app} run with the sampling profiler on; "
        "see docs/OBSERVABILITY.md)\n\n```\n"
    )
    out.write(format_heat_report(heat))
    out.write("\n```\n\n")


def _fmt_num(value, pattern: str = "{:.3f}") -> str:
    if value is None:
        return "—"
    return pattern.format(value)


def _section_capacity(out: io.StringIO, obs_dir: str) -> None:
    """Capacity planning from a serve daemon's persistent obs archive."""
    from repro.obs.store import capacity_report

    report = capacity_report(obs_dir)
    info = report["archive"]
    out.write("## Capacity — serve archive analysis\n\n")
    out.write(
        f"(archive `{obs_dir}`: {info['segments']} segment(s), "
        f"{info['samples']} sample tick(s), trailing window "
        f"{info['window_seconds']:.0f}s)\n\n"
    )
    queue = report["queue"]
    out.write("### Queue\n\n")
    out.write("| metric | value |\n|---|---|\n")
    out.write(f"| depth (latest) | {_fmt_num(queue['depth_latest'], '{:.0f}')} |\n")
    out.write(
        f"| utilization (latest) | "
        f"{_fmt_num(queue['utilization_latest'], '{:.1%}')} |\n"
    )
    out.write(
        f"| utilization slope | "
        f"{_fmt_num(queue['utilization_slope_per_s'], '{:+.5f}/s')} |\n"
    )
    eta = queue["projected_saturation_seconds"]
    out.write(
        "| projected saturation | "
        + (f"~{eta:.0f}s at current trend |\n" if eta is not None
           else "not on current trend |\n")
    )
    pool = report["pool"]
    out.write(
        f"\npool hit ratio: first {_fmt_num(pool['hit_ratio_first'], '{:.1%}')}"
        f" → latest {_fmt_num(pool['hit_ratio_latest'], '{:.1%}')}"
        f" (mean {_fmt_num(pool['hit_ratio_mean'], '{:.1%}')})\n\n"
    )
    if report["tenants"]:
        out.write("### Tenants\n\n")
        out.write(
            "| tenant | charged cycles | demand (window) | budget left | "
            "exhaustion ETA | wait-p95 trend |\n"
        )
        out.write("|---|---|---|---|---|---|\n")
        for tenant, row in sorted(report["tenants"].items()):
            eta = row["projected_budget_exhaustion_seconds"]
            slope = row["queue_wait_p95_slope_per_s"]
            out.write(
                f"| {tenant} "
                f"| {_fmt_num(row['charged_cycles_latest'], '{:.0f}')} "
                f"| {_fmt_num(row['demand_cycles_window'], '{:.0f}')} "
                f"| {_fmt_num(row['budget_remaining_ratio'], '{:.1%}')} "
                f"| {f'~{eta:.0f}s' if eta is not None else '—'} "
                f"| {_fmt_num(slope, '{:+.5f}/s')} |\n"
            )
        out.write("\n")
    if report["alerts"]:
        rendered = ", ".join(
            f"{rule}×{count}" for rule, count in sorted(report["alerts"].items())
        )
        out.write(f"alert transitions: {rendered}\n\n")
    else:
        out.write("alert transitions: none archived\n\n")


def _section_figure7(out: io.StringIO, configs, connections: int) -> None:
    out.write("## Figure 7 — Apache httperf throughput ratio\n\n")
    points = run_httperf_sweep(configs["apache"], connections=connections)
    out.write("| rate (req/s) | baseline | FACE-CHANGE | ratio |\n")
    out.write("|---|---|---|---|\n")
    for p in points:
        out.write(
            f"| {p.rate} | {p.baseline_throughput:.2f} | "
            f"{p.facechange_throughput:.2f} | {p.ratio:.3f} |\n"
        )
    out.write("\n(paper: flat below ~55 req/s, degrading beyond)\n\n")


def generate_prometheus(
    scale: int = 4,
    app: str = "top",
    configs: Optional[Dict[str, KernelViewConfig]] = None,
) -> str:
    """One enforced run rendered as Prometheus text exposition.

    ``repro report --format prom``: profiles and runs a single app under
    its kernel view and exports the machine's whole telemetry registry
    through the same :func:`repro.telemetry.export.format_prometheus`
    path the serve daemon's scrape endpoint uses -- so batch-run and
    daemon metrics share one exposition format.
    """
    from repro.apps.base import launch
    from repro.apps.catalog import APP_CATALOG
    from repro.core.facechange import FaceChange
    from repro.guest.machine import boot_machine
    from repro.kernel.runtime import Platform
    from repro.telemetry.export import format_prometheus
    from repro.telemetry.export import snapshot as telemetry_snapshot

    if app not in APP_CATALOG:
        raise ValueError(
            f"unknown application {app!r} "
            f"(available: {', '.join(sorted(APP_CATALOG))})"
        )
    if configs is None:
        configs = profile_applications(apps=[app], scale=scale)
    machine = boot_machine(platform=Platform.KVM)
    fc = FaceChange(machine)
    fc.enable()
    fc.load_view(configs[app], comm=app)
    handle = launch(machine, app, APP_CATALOG[app], scale=scale)
    handle.run_to_completion(max_cycles=200_000_000_000)
    return format_prometheus(
        telemetry_snapshot(machine.telemetry, events=False), prefix="repro"
    )


def generate_report(
    scale: int = 4,
    views: Sequence[int] = (1, 3, 6, 11),
    connections: int = 60,
    sections: Optional[Sequence[str]] = None,
    configs: Optional[Dict[str, KernelViewConfig]] = None,
    obs_dir: Optional[str] = None,
) -> str:
    """Run the evaluation and return the markdown report.

    ``sections`` may also include ``"trace"`` for a telemetry timeline of
    one enforced run, ``"observability"`` for recorder accounting,
    ``"heat"`` for sampled hotness vs. view coverage, or ``"capacity"``
    for post-hoc capacity planning over a serve daemon's ``--obs-dir``
    archive (none are part of the default set: they narrate mechanism
    rather than reproducing a paper figure).  Unknown section names
    raise :class:`ValueError`; so does ``"capacity"`` without
    ``obs_dir``.
    """
    if sections:
        unknown = sorted(set(sections) - KNOWN_SECTIONS)
        if unknown:
            raise ValueError(
                f"unknown report section(s): {', '.join(unknown)} "
                f"(choose from: {', '.join(sorted(KNOWN_SECTIONS))})"
            )
    wanted = (
        set(sections)
        if sections
        else {"table1", "table2", "fig6", "fig7", "caches"}
    )
    if "capacity" in wanted and not obs_dir:
        raise ValueError(
            "the capacity section reads a serve observability archive; "
            "pass --obs-dir (repro serve --obs-dir wrote it)"
        )
    out = io.StringIO()
    out.write("# FACE-CHANGE reproduction — evaluation report\n\n")
    out.write(f"(workload scale {scale})\n\n")
    if configs is None and wanted != {"capacity"}:
        # capacity is pure archive analysis: no profiling, no guest runs
        configs = profile_applications(scale=scale)
    if "table1" in wanted:
        _section_table1(out, configs)
    if "table2" in wanted:
        _section_table2(out, configs, scale)
    if "fig6" in wanted:
        _section_figure6(out, configs, views)
    if "fig7" in wanted:
        _section_figure7(out, configs, connections)
    if "caches" in wanted:
        _section_caches(out, configs, scale)
    if "trace" in wanted:
        _section_trace(out, configs, scale)
    if "observability" in wanted:
        _section_observability(out, configs, scale)
    if "heat" in wanted:
        _section_heat(out, configs, scale)
    if "capacity" in wanted:
        _section_capacity(out, obs_dir)
    return out.getvalue()
