"""Simulated KVM-like hypervisor: VCPU, VM exits, EPT control and VMI.

The virtual CPU fetches, decodes and executes real bytes through the
two-stage MMU, with a QEMU-style decoded-block cache.  The hypervisor
registers *address traps* (on ``context_switch`` and ``resume_userspace``)
and receives ``#UD`` VM exits -- the two interception points FACE-CHANGE
is built on.
"""

from repro.hypervisor.vmexit import VmExit, VmExitReason
from repro.hypervisor.vcpu import SemanticsBridge, Vcpu, VcpuError
from repro.hypervisor.kvm import Hypervisor
from repro.hypervisor.vmi import Introspector

__all__ = [
    "Hypervisor",
    "Introspector",
    "SemanticsBridge",
    "Vcpu",
    "VcpuError",
    "VmExit",
    "VmExitReason",
]
