"""The virtual CPU: fetch/decode/execute with a decoded-block cache.

Execution is byte-accurate: every instruction is fetched through the
guest page table and the EPT, so swapping EPT entries (kernel view
switching) or writing recovered code into a view frame takes effect on
the very next fetch.  Blocks are decoded once per (host frame, frame
version, offset) and cached, mirroring how QEMU's translation-block
cache works -- and mirroring why the paper's profiler operates at basic
block granularity.

Data-dependent control flow (predicate evaluation, dispatch-slot
resolution, semantic actions, the architectural context-switch point and
interrupt entry/exit) is delegated to a :class:`SemanticsBridge`
implemented by the guest kernel runtime.  On real hardware these are
ordinary register/memory-driven branches; the bridge is the simulation
seam that keeps the byte-level machinery honest while the OS logic lives
in Python.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.isa.decoder import decode
from repro.isa.opcodes import Instr, Op
from repro.memory.layout import PAGE_SIZE, is_kernel_address
from repro.memory.mmu import Mmu, TranslationError
from repro.hypervisor.vmexit import VmExit, VmExitReason
from repro.telemetry import Counter, Telemetry

#: Hard cap on instructions decoded into a single block.  Filler runs are
#: fused into a single step at decode time, so a large cap keeps big
#: synthetic function bodies cheap to execute.
_MAX_BLOCK_INSNS = 4096
#: Ops that terminate a decoded block (control transfer or host interaction).
_BLOCK_TERMINATORS = frozenset(
    {
        Op.CALL,
        Op.JMP,
        Op.JZ,
        Op.DISPATCH,
        Op.RET,
        Op.IRET,
        Op.INT,
        Op.UD2,
        Op.INVALID,
        Op.HLT,
        Op.CTXSW,
    }
)


class VcpuError(Exception):
    """Internal inconsistency (bad bridge wiring, broken guest image)."""


class SemanticsBridge:
    """Interface the guest kernel runtime provides to the VCPU.

    The default implementations raise, so a partially wired machine fails
    loudly instead of silently misbehaving.
    """

    def eval_pred(self, pred_id: int) -> bool:
        raise VcpuError(f"unhandled predicate {pred_id}")

    def do_act(self, act_id: int) -> None:
        raise VcpuError(f"unhandled action {act_id}")

    def resolve_slot(self, slot_id: int) -> int:
        raise VcpuError(f"unhandled dispatch slot {slot_id}")

    def on_ctxsw(self, vcpu: "Vcpu") -> None:
        raise VcpuError("unhandled context switch")

    def on_software_interrupt(self, vcpu: "Vcpu", vector: int) -> None:
        raise VcpuError(f"unhandled software interrupt {vector:#x}")

    def on_iret(self, vcpu: "Vcpu") -> None:
        raise VcpuError("unhandled iret")

    def interrupt_pending(self, vcpu: "Vcpu") -> bool:
        return False

    def deliver_interrupt(self, vcpu: "Vcpu") -> None:
        raise VcpuError("unhandled interrupt delivery")


#: A decoded block: the non-terminal steps plus the terminator.
#: Steps are ("fill", n_insns, n_bytes) fusions or plain Instr objects.
_Block = Tuple[List[object], Optional[Instr], int]


class DecodeCache:
    """Machine-level decoded-block cache shared by all vCPUs.

    Blocks are keyed ``(hpfn, frame version, offset, trap limit)`` --
    host-frame based, so SMP vCPUs running the same application (or two
    views sharing the canonical UD2 frame) reuse each other's decodes.
    Cross-page instructions are cached too, keyed by both pages'
    ``(hpfn, version)``.

    Eviction is segmented LRU: entries are inserted into (or promoted
    to) the ``hot`` dict; when ``hot`` reaches capacity it is demoted
    wholesale to ``cold`` and the previous cold generation -- everything
    not touched for a full generation -- is dropped.  Total residency is
    bounded by ``2 * capacity`` entries.
    """

    __slots__ = ("hot", "cold", "capacity", "hits", "misses", "evictions")

    def __init__(self, capacity: int = 32768) -> None:
        self.hot: Dict[tuple, object] = {}
        self.cold: Dict[tuple, object] = {}
        self.capacity = max(2, capacity)
        self.hits = Counter("decode.hits")
        self.misses = Counter("decode.misses")
        self.evictions = Counter("decode.evictions")

    def attach_telemetry(self, telemetry: Telemetry) -> None:
        for attr in ("hits", "misses", "evictions"):
            standalone = getattr(self, attr)
            registered = telemetry.counter(standalone.name)
            if registered is not standalone:
                registered.value += standalone.value
                setattr(self, attr, registered)

    def lookup(self, key: tuple):
        block = self.hot.get(key)
        if block is None:
            cold = self.cold
            block = cold.get(key)
            if block is None:
                self.misses.value += 1
                return None
            del cold[key]
            self.hot[key] = block
        self.hits.value += 1
        return block

    def insert(self, key: tuple, block: object) -> None:
        hot = self.hot
        if len(hot) >= self.capacity:
            self.evictions.value += len(self.cold)
            self.cold = hot
            self.hot = hot = {}
        hot[key] = block

    def flush(self) -> None:
        self.hot.clear()
        self.cold.clear()

#: Optional per-block execution tracer: (start_gva, end_gva) of the block
#: about to execute.  Used by the profiling-phase component.
BlockTracer = Callable[[int, int], None]

#: Optional virtual-cycle sampler, checked at block boundaries once the
#: virtual clock reaches the due cycle; returns the next due cycle.  The
#: callback only *reads* vCPU state -- it must never advance the clock,
#: arm traps or touch guest memory through writing paths, so execution
#: is bit-identical with or without it (the sampling-profiler contract).
CycleSampler = Callable[["Vcpu"], int]

#: ``_sample_due`` sentinel while no sampler is installed: a cycle count
#: the virtual clock can never reach, so the run loop's due check stays
#: a single integer comparison in the common (unprofiled) case.
_NEVER_DUE = 1 << 63


class Vcpu:
    """A single virtual CPU."""

    def __init__(self, cpu_id: int, mmu: Mmu, bridge: SemanticsBridge) -> None:
        self.cpu_id = cpu_id
        self.mmu = mmu
        self.bridge = bridge
        # architectural state
        self.eip = 0
        self.esp = 0
        self.ebp = 0
        self.eax = 0
        self.zf = False
        self.if_enabled = True
        self.user_mode = True
        # accounting
        self.cycles = 0
        self.instructions = 0
        #: telemetry registry, bound when the hypervisor attaches us
        self.telemetry: Optional[Telemetry] = None
        #: count of silently executed ``0b 0f`` misdecodes -- the corruption
        #: instant recovery exists to prevent; observable only by tests.
        #: A standalone counter until :meth:`attach_telemetry` rebinds it
        #: to the machine-wide registry.
        self.misdecodes = Counter(f"vcpu.misdecode.cpu{cpu_id}")
        self._stack_hits = Counter("vcpu.stack.hits")
        self._stack_misses = Counter("vcpu.stack.misses")
        self._stack_evictions = Counter("vcpu.stack.evictions")
        # hypervisor wiring
        self.trap_addresses: Set[int] = set()
        self._sorted_traps: List[int] = []
        self._skip_trap_once: Optional[int] = None
        self.block_tracer: Optional[BlockTracer] = None
        #: virtual-cycle sampler hook; ``None`` until a profiler installs
        #: one.  Fired at block boundaries once ``cycles`` crosses the
        #: due mark; the callback returns the next due cycle count.
        self._cycle_sampler: Optional[CycleSampler] = None
        self._sample_due = _NEVER_DUE
        # decoded-block cache: private until the hypervisor swaps in the
        # machine-level shared cache via use_block_cache()
        self.block_cache = DecodeCache()
        # one-entry stack page cache:
        # (vfn, cr3, pt_gen, epoch cell, epoch, frame)
        self._stack_cache = None
        # one-entry code page cache, same shape plus (hpfn, frame)
        self._code_cache = None
        self._frame_versions = mmu.physmem._versions

    # -- register/stack helpers ----------------------------------------------
    #
    # push/pop are the hottest memory operations (every call/ret/frame).
    # They use a one-entry stack-page cache, invalidated by generation
    # checks, and fall back to the full MMU path on page misses/crossings.

    def _stack_frame(self, addr: int):
        mmu = self.mmu
        vfn = addr >> 12
        cache = self._stack_cache
        if (
            cache is not None
            and cache[0] == vfn
            and cache[1] is mmu.cr3
            and cache[2] == mmu.cr3.generation
            and cache[3][0] == cache[4]
        ):
            self._stack_hits.value += 1
            return cache[5]
        if cache is not None:
            self._stack_evictions.value += 1
        self._stack_misses.value += 1
        entry = mmu.resolve_entry(addr)
        # validated against the *scoped* EPT epoch of the stack page's
        # level-2 table: kernel-view switches (which remap only the
        # kernel-code range) no longer thrash this cache
        self._stack_cache = (
            vfn, mmu.cr3, mmu.cr3.generation, entry[2], entry[3], entry[1],
        )
        return entry[1]

    def push(self, value: int) -> None:
        esp = (self.esp - 4) & 0xFFFFFFFF
        self.esp = esp
        offset = esp & 0xFFF
        if offset <= 0xFFC:
            frame = self._stack_frame(esp)
            value &= 0xFFFFFFFF
            frame[offset] = value & 0xFF
            frame[offset + 1] = (value >> 8) & 0xFF
            frame[offset + 2] = (value >> 16) & 0xFF
            frame[offset + 3] = (value >> 24) & 0xFF
        else:
            self.mmu.write_u32(esp, value)

    def pop(self) -> int:
        esp = self.esp
        self.esp = (esp + 4) & 0xFFFFFFFF
        offset = esp & 0xFFF
        if offset <= 0xFFC:
            frame = self._stack_frame(esp)
            return (
                frame[offset]
                | (frame[offset + 1] << 8)
                | (frame[offset + 2] << 16)
                | (frame[offset + 3] << 24)
            )
        return self.mmu.read_u32(esp)

    def read_stack_u32(self, addr: int) -> int:
        """Aligned stack read used by the hypervisor's backtracer."""
        return self.mmu.read_u32(addr)

    def attach_telemetry(self, telemetry: Telemetry) -> None:
        """Rebind this vCPU's instruments to the machine-wide registry."""
        registered = telemetry.counter(self.misdecodes.name)
        registered.value += self.misdecodes.value
        self.misdecodes = registered
        for attr in ("_stack_hits", "_stack_misses", "_stack_evictions"):
            standalone = getattr(self, attr)
            shared = telemetry.counter(standalone.name)
            if shared is not standalone:
                shared.value += standalone.value
                setattr(self, attr, shared)
        self.mmu.attach_telemetry(telemetry)
        self.telemetry = telemetry

    def use_block_cache(self, cache: DecodeCache) -> None:
        """Adopt the machine-level shared decode cache."""
        self.block_cache = cache
        self._code_cache = None

    @property
    def corruption_executed(self) -> int:
        """Legacy name for the silent-misdecode tally."""
        return self.misdecodes.value

    def snapshot_exit(self, reason: VmExitReason, detail: str = None) -> VmExit:
        return VmExit(
            reason=reason, rip=self.eip, rbp=self.ebp, rsp=self.esp, detail=detail
        )

    @property
    def cycle_sampler(self) -> Optional[CycleSampler]:
        return self._cycle_sampler

    @cycle_sampler.setter
    def cycle_sampler(self, sampler: Optional[CycleSampler]) -> None:
        """Installing a sampler arms the due check; removing it parks the
        due mark at a cycle count the clock can never reach."""
        self._cycle_sampler = sampler
        self._sample_due = 0 if sampler is not None else _NEVER_DUE

    def arm_trap(self, address: int) -> None:
        """Register a fetch trap at ``address`` (hypervisor interception)."""
        if address not in self.trap_addresses:
            self.trap_addresses.add(address)
            insort(self._sorted_traps, address)

    def disarm_trap(self, address: int) -> None:
        if address in self.trap_addresses:
            self.trap_addresses.discard(address)
            self._sorted_traps.remove(address)

    def resume_past_trap(self) -> None:
        """Resume after an ADDRESS_TRAP without immediately re-trapping."""
        self._skip_trap_once = self.eip

    def flush_block_cache(self) -> None:
        self.block_cache.flush()
        self._code_cache = None

    def invalidate_translation_caches(self) -> None:
        """Drop the stack/code page caches and the MMU's TLB.

        Host-side administrative flush (snapshot capture/fork): these
        caches hold direct frame bytearray references that must not
        survive a CoW re-basing of physical memory.
        """
        self._stack_cache = None
        self._code_cache = None
        self.mmu.invalidate_cache()

    # -- block decode ----------------------------------------------------------

    def _decode_block(
        self, frame: bytearray, offset: int, limit: Optional[int] = None
    ) -> _Block:
        steps: List[object] = []
        terminator: Optional[Instr] = None
        pos = offset
        fill_insns = 0
        fill_bytes = 0
        count = 0
        data = bytes(frame)
        stop_at = PAGE_SIZE if limit is None else min(PAGE_SIZE, offset + limit)
        while count < _MAX_BLOCK_INSNS:
            if pos >= stop_at:
                break
            if pos + 8 > PAGE_SIZE:
                # Near the page end a truncated buffer cannot be decoded
                # reliably (an instruction may span pages, as the paper
                # notes for split kernel functions); leave the tail to the
                # cross-page slow path.
                break
            instr = decode(data, pos)
            if instr.op is Op.FILL:
                fill_insns += 1
                fill_bytes += instr.length
                pos += instr.length
                count += 1
                continue
            if fill_insns:
                steps.append(("fill", fill_insns, fill_bytes))
                fill_insns = 0
                fill_bytes = 0
            if instr.op in _BLOCK_TERMINATORS:
                terminator = instr
                pos += instr.length
                break
            steps.append(instr)
            pos += instr.length
            count += 1
        if fill_insns:
            steps.append(("fill", fill_insns, fill_bytes))
        # block_len covers the terminator too, so tracers see the full
        # basic-block byte range; terminator execution advances eip itself.
        block_len = pos - offset
        return (steps, terminator, block_len)

    def _fetch_block(self) -> Tuple[_Block, bool]:
        """Return (block, is_kernel) for the current ``eip``."""
        eip = self.eip
        mmu = self.mmu
        vfn = eip >> 12
        cache = self._code_cache
        if (
            cache is not None
            and cache[0] == vfn
            and cache[1] is mmu.cr3
            and cache[2] == mmu.cr3.generation
            and cache[3][0] == cache[4]
        ):
            hpfn = cache[5]
            frame = cache[6]
        else:
            entry = mmu.resolve_entry(eip)
            hpfn = entry[0]
            frame = entry[1]
            self._code_cache = (
                vfn, mmu.cr3, mmu.cr3.generation, entry[2], entry[3],
                hpfn, frame,
            )
        version = self._frame_versions.get(hpfn, 0)
        offset = eip & (PAGE_SIZE - 1)
        # A block must end *before* any armed trap address so the trap
        # check at the next block boundary can fire mid-stream (the same
        # reason QEMU splits translation blocks at breakpoints).
        limit = None
        traps = self._sorted_traps
        if traps:
            i = bisect_right(traps, eip)
            if i < len(traps):
                distance = traps[i] - eip
                if distance < PAGE_SIZE:
                    limit = distance
        key = (hpfn, version, offset, limit)
        # inlined DecodeCache.lookup/insert -- this is the hottest path
        shared = self.block_cache
        block = shared.hot.get(key)
        if block is None:
            cold = shared.cold
            block = cold.get(key)
            if block is not None:
                del cold[key]
                shared.hot[key] = block
                shared.hits.value += 1
            else:
                shared.misses.value += 1
                block = self._decode_block(frame, offset, limit)
                shared.insert(key, block)
        else:
            shared.hits.value += 1
        return block, is_kernel_address(eip)

    def _fetch_cross_page(self) -> Instr:
        """Slow path: decode one instruction that may span two pages.

        Cached keyed by both pages' ``(hpfn, version)`` -- the key shape
        (5-tuple) cannot collide with block keys (4-tuples).
        """
        eip = self.eip
        mmu = self.mmu
        offset = eip & (PAGE_SIZE - 1)
        first = PAGE_SIZE - offset
        if first >= 8:  # pragma: no cover - only reached on spanning fetches
            return decode(mmu.read(eip, 8), 0)
        entry1 = mmu.resolve_entry(eip)
        entry2 = mmu.resolve_entry((eip + first) & 0xFFFFFFFF)
        versions = self._frame_versions
        key = (
            entry1[0], versions.get(entry1[0], 0),
            offset,
            entry2[0], versions.get(entry2[0], 0),
        )
        shared = self.block_cache
        instr = shared.lookup(key)
        if instr is None:
            raw = bytes(entry1[1][offset:]) + bytes(entry2[1][: 8 - first])
            instr = decode(raw, 0)
            shared.insert(key, instr)
        return instr

    # -- execution --------------------------------------------------------------

    def run(self, budget: int = 1_000_000) -> VmExit:
        """Execute until a VM exit occurs or ``budget`` instructions run.

        The budget counts *retired instructions* (``self.instructions``),
        the same quantity the hypervisor's exit loop uses when it resumes
        a slice after an exit.  Counting anything else (blocks, decoded
        steps) would make the accounting restart from a different total
        after an exit, so a zero-cost exit -- an observer probe trap --
        would shift every later slice boundary and break bit-identity.
        """
        start = self.instructions
        while self.instructions - start < budget:
            # statistical sampler, checked at block boundaries; reads
            # state only and charges nothing, so the virtual clock is
            # bit-identical with or without it (due mark is _NEVER_DUE
            # while no sampler is installed)
            if self.cycles >= self._sample_due:
                self._sample_due = self._cycle_sampler(self)
            # interrupt window, checked at block boundaries
            if self.if_enabled and self.bridge.interrupt_pending(self):
                self.bridge.deliver_interrupt(self)
            if self.eip in self.trap_addresses:
                if self._skip_trap_once == self.eip:
                    self._skip_trap_once = None
                else:
                    return self.snapshot_exit(VmExitReason.ADDRESS_TRAP)
            else:
                self._skip_trap_once = None
            try:
                block, _in_kernel = self._fetch_block()
            except TranslationError as exc:
                return self.snapshot_exit(VmExitReason.ERROR, detail=str(exc))
            steps, terminator, block_len = block
            if self.block_tracer is not None:
                self.block_tracer(self.eip, self.eip + block_len)
            try:
                exit_ = self._execute_block(steps, terminator, block_len)
            except TranslationError as exc:
                return self.snapshot_exit(VmExitReason.ERROR, detail=str(exc))
            if exit_ is not None:
                return exit_
        return self.snapshot_exit(VmExitReason.BUDGET)

    def _execute_block(
        self, steps: List[object], terminator: Optional[Instr], block_len: int
    ) -> Optional[VmExit]:
        for step in steps:
            if isinstance(step, tuple):
                _, n_insns, n_bytes = step
                self.eip = (self.eip + n_bytes) & 0xFFFFFFFF
                self.cycles += n_insns
                self.instructions += n_insns
                continue
            self._execute_simple(step)
        if terminator is None:
            if block_len == 0:
                # Could not decode anything within this page: the
                # instruction spans pages.  Execute it via the slow path.
                instr = self._fetch_cross_page()
                if instr.op in _BLOCK_TERMINATORS:
                    return self._execute_terminator(instr)
                self._execute_simple(instr)
            return None
        return self._execute_terminator(terminator)

    def _execute_simple(self, instr: Instr) -> None:
        op = instr.op
        self.cycles += 1
        self.instructions += 1
        if op is Op.PUSH_EBP:
            self.push(self.ebp)
        elif op is Op.MOV_EBP_ESP:
            self.ebp = self.esp
        elif op is Op.PUSH_IMM:
            self.push(instr.operand or 0)
        elif op is Op.PRED:
            # ZF set => the JZ that follows skips the guarded body.
            self.zf = not self.bridge.eval_pred(instr.operand or 0)
        elif op is Op.ACT:
            self.bridge.do_act(instr.operand or 0)
        elif op is Op.LEAVE:
            self.esp = self.ebp
            self.ebp = self.pop()
        elif op is Op.OR_MIS:
            # The silent misdecode of a split UD2 stream.
            self.misdecodes.value += 1
            tel = self.telemetry
            if tel is not None and tel.tracing:
                tel.emit(
                    "misdecode", cycles=self.cycles, cpu=self.cpu_id, rip=self.eip
                )
        elif op is Op.CLI:
            self.if_enabled = False
        elif op is Op.STI:
            self.if_enabled = True
        elif op is Op.FILL:
            pass
        else:  # pragma: no cover - decoder/terminator partition is fixed
            raise VcpuError(f"non-simple op in block body: {op}")
        self.eip = (self.eip + instr.length) & 0xFFFFFFFF

    def _execute_terminator(self, instr: Instr) -> Optional[VmExit]:
        op = instr.op
        self.cycles += 1
        self.instructions += 1
        if op is Op.CALL:
            self.push((self.eip + instr.length) & 0xFFFFFFFF)
            self.eip = (self.eip + instr.length + (instr.operand or 0)) & 0xFFFFFFFF
            return None
        if op is Op.JMP:
            self.eip = (self.eip + instr.length + (instr.operand or 0)) & 0xFFFFFFFF
            return None
        if op is Op.JZ:
            if self.zf:
                self.eip = (
                    self.eip + instr.length + (instr.operand or 0)
                ) & 0xFFFFFFFF
            else:
                self.eip = (self.eip + instr.length) & 0xFFFFFFFF
            return None
        if op is Op.DISPATCH:
            target = self.bridge.resolve_slot(instr.operand or 0)
            self.push((self.eip + instr.length) & 0xFFFFFFFF)
            self.eip = target & 0xFFFFFFFF
            return None
        if op is Op.RET:
            self.eip = self.pop()
            return None
        if op is Op.IRET:
            self.bridge.on_iret(self)
            return None
        if op is Op.INT:
            self.eip = (self.eip + instr.length) & 0xFFFFFFFF
            self.bridge.on_software_interrupt(self, instr.operand or 0)
            return None
        if op is Op.CTXSW:
            self.eip = (self.eip + instr.length) & 0xFFFFFFFF
            self.bridge.on_ctxsw(self)
            return None
        if op is Op.HLT:
            self.eip = (self.eip + instr.length) & 0xFFFFFFFF
            return self.snapshot_exit(VmExitReason.HLT)
        if op in (Op.UD2, Op.INVALID):
            # #UD: eip stays at the faulting instruction, like hardware.
            return self.snapshot_exit(VmExitReason.INVALID_OPCODE)
        raise VcpuError(f"unexpected terminator {op}")  # pragma: no cover
