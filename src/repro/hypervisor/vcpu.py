"""The virtual CPU: fetch/decode/execute with a decoded-block cache.

Execution is byte-accurate: every instruction is fetched through the
guest page table and the EPT, so swapping EPT entries (kernel view
switching) or writing recovered code into a view frame takes effect on
the very next fetch.  Blocks are decoded once per (host frame, frame
version, offset) and cached, mirroring how QEMU's translation-block
cache works -- and mirroring why the paper's profiler operates at basic
block granularity.

Data-dependent control flow (predicate evaluation, dispatch-slot
resolution, semantic actions, the architectural context-switch point and
interrupt entry/exit) is delegated to a :class:`SemanticsBridge`
implemented by the guest kernel runtime.  On real hardware these are
ordinary register/memory-driven branches; the bridge is the simulation
seam that keeps the byte-level machinery honest while the OS logic lives
in Python.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.isa.decoder import decode
from repro.isa.opcodes import Instr, Op
from repro.memory.layout import PAGE_SIZE, is_kernel_address
from repro.memory.mmu import Mmu, TranslationError
from repro.hypervisor.jit import BAIL as _JIT_BAIL
from repro.hypervisor.jit import STALE as _JIT_STALE
from repro.hypervisor.jit import JitState
from repro.hypervisor.vmexit import VmExit, VmExitReason
from repro.telemetry import Counter, Telemetry

#: Hard cap on instructions decoded into a single block.  Filler runs are
#: fused into a single step at decode time, so a large cap keeps big
#: synthetic function bodies cheap to execute.
_MAX_BLOCK_INSNS = 4096
#: Process-wide ``(page bytes, offset, limit) -> block`` memo.  The
#: per-machine decode cache fronts this, so it only sees each machine's
#: cold misses; identical guest builds (benchmark reboots, fleet
#: workers) then share one decode of every page.  Blocks are treated as
#: immutable everywhere (the per-machine cache already shares them
#: between vCPUs), and the key's page-bytes copy is computed by
#: ``_decode_block`` anyway.
_block_memo: Dict[tuple, "_Block"] = {}
_MAX_BLOCK_MEMO = 8192
#: Ops that terminate a decoded block (control transfer or host interaction).
_BLOCK_TERMINATORS = frozenset(
    {
        Op.CALL,
        Op.JMP,
        Op.JZ,
        Op.DISPATCH,
        Op.RET,
        Op.IRET,
        Op.INT,
        Op.UD2,
        Op.INVALID,
        Op.HLT,
        Op.CTXSW,
    }
)


class VcpuError(Exception):
    """Internal inconsistency (bad bridge wiring, broken guest image)."""


class SemanticsBridge:
    """Interface the guest kernel runtime provides to the VCPU.

    The default implementations raise, so a partially wired machine fails
    loudly instead of silently misbehaving.
    """

    def eval_pred(self, pred_id: int) -> bool:
        raise VcpuError(f"unhandled predicate {pred_id}")

    def do_act(self, act_id: int) -> None:
        raise VcpuError(f"unhandled action {act_id}")

    def resolve_slot(self, slot_id: int) -> int:
        raise VcpuError(f"unhandled dispatch slot {slot_id}")

    def on_ctxsw(self, vcpu: "Vcpu") -> None:
        raise VcpuError("unhandled context switch")

    def on_software_interrupt(self, vcpu: "Vcpu", vector: int) -> None:
        raise VcpuError(f"unhandled software interrupt {vector:#x}")

    def on_iret(self, vcpu: "Vcpu") -> None:
        raise VcpuError("unhandled iret")

    def interrupt_pending(self, vcpu: "Vcpu") -> bool:
        return False

    def deliver_interrupt(self, vcpu: "Vcpu") -> None:
        raise VcpuError("unhandled interrupt delivery")


#: A decoded block: the non-terminal steps plus the terminator.
#: Steps are ("fill", n_insns, n_bytes) fusions or plain Instr objects.
_Block = Tuple[List[object], Optional[Instr], int]


class DecodeCache:
    """Machine-level decoded-block cache shared by all vCPUs.

    Blocks are keyed ``(hpfn, frame version, offset, trap limit)`` --
    host-frame based, so SMP vCPUs running the same application (or two
    views sharing the canonical UD2 frame) reuse each other's decodes.
    Cross-page instructions are cached too, keyed by both pages'
    ``(hpfn, version)``.

    Eviction is segmented LRU: entries are inserted into (or promoted
    to) the ``hot`` dict; when ``hot`` reaches capacity it is demoted
    wholesale to ``cold`` and the previous cold generation -- everything
    not touched for a full generation -- is dropped.  Total residency is
    bounded by ``2 * capacity`` entries.
    """

    __slots__ = ("hot", "cold", "capacity", "hits", "misses", "evictions")

    def __init__(self, capacity: int = 32768) -> None:
        self.hot: Dict[tuple, object] = {}
        self.cold: Dict[tuple, object] = {}
        self.capacity = max(2, capacity)
        self.hits = Counter("decode.hits")
        self.misses = Counter("decode.misses")
        self.evictions = Counter("decode.evictions")

    def attach_telemetry(self, telemetry: Telemetry) -> None:
        for attr in ("hits", "misses", "evictions"):
            standalone = getattr(self, attr)
            registered = telemetry.counter(standalone.name)
            if registered is not standalone:
                registered.value += standalone.value
                setattr(self, attr, registered)

    def lookup(self, key: tuple):
        block = self.hot.get(key)
        if block is None:
            cold = self.cold
            block = cold.get(key)
            if block is None:
                self.misses.value += 1
                return None
            del cold[key]
            self.hot[key] = block
        self.hits.value += 1
        return block

    def insert(self, key: tuple, block: object) -> None:
        hot = self.hot
        if len(hot) >= self.capacity:
            self.evictions.value += len(self.cold)
            self.cold = hot
            self.hot = hot = {}
        hot[key] = block

    def flush(self) -> None:
        self.hot.clear()
        self.cold.clear()

#: Optional per-block execution tracer: (start_gva, end_gva) of the block
#: about to execute.  Used by the profiling-phase component.
BlockTracer = Callable[[int, int], None]

#: Optional virtual-cycle sampler, checked at block boundaries once the
#: virtual clock reaches the due cycle; returns the next due cycle.  The
#: callback only *reads* vCPU state -- it must never advance the clock,
#: arm traps or touch guest memory through writing paths, so execution
#: is bit-identical with or without it (the sampling-profiler contract).
CycleSampler = Callable[["Vcpu"], int]

#: ``_sample_due`` sentinel while no sampler is installed: a cycle count
#: the virtual clock can never reach, so the run loop's due check stays
#: a single integer comparison in the common (unprofiled) case.
_NEVER_DUE = 1 << 63


class Vcpu:
    """A single virtual CPU."""

    def __init__(self, cpu_id: int, mmu: Mmu, bridge: SemanticsBridge) -> None:
        self.cpu_id = cpu_id
        self.mmu = mmu
        self.bridge = bridge
        # architectural state
        self.eip = 0
        self.esp = 0
        self.ebp = 0
        self.eax = 0
        self.zf = False
        self.if_enabled = True
        self.user_mode = True
        # accounting
        self.cycles = 0
        self.instructions = 0
        #: telemetry registry, bound when the hypervisor attaches us
        self.telemetry: Optional[Telemetry] = None
        #: count of silently executed ``0b 0f`` misdecodes -- the corruption
        #: instant recovery exists to prevent; observable only by tests.
        #: A standalone counter until :meth:`attach_telemetry` rebinds it
        #: to the machine-wide registry.
        self.misdecodes = Counter(f"vcpu.misdecode.cpu{cpu_id}")
        self._stack_hits = Counter("vcpu.stack.hits")
        self._stack_misses = Counter("vcpu.stack.misses")
        self._stack_evictions = Counter("vcpu.stack.evictions")
        # hypervisor wiring
        self.trap_addresses: Set[int] = set()
        self._sorted_traps: List[int] = []
        #: bumped on every trap arm/disarm; translated page tables pin
        #: the epoch they were built under (fused successors are proven
        #: trap-free at build time, valid only while the set is stable)
        self._trap_epoch = 0
        self._skip_trap_once: Optional[int] = None
        self.block_tracer: Optional[BlockTracer] = None
        #: virtual-cycle sampler hook; ``None`` until a profiler installs
        #: one.  Fired at block boundaries once ``cycles`` crosses the
        #: due mark; the callback returns the next due cycle count.
        self._cycle_sampler: Optional[CycleSampler] = None
        self._sample_due = _NEVER_DUE
        #: the bridge's per-CPU interrupt source (set by the kernel
        #: runtime at attach); lets hot paths read ``next_event``
        #: directly instead of calling ``bridge.interrupt_pending``
        self.irq_state = None
        # decoded-block cache: private until the hypervisor swaps in the
        # machine-level shared cache via use_block_cache()
        self.block_cache = DecodeCache()
        # one-entry stack page cache:
        # (vfn, cr3, pt_gen, epoch cell, epoch, frame)
        self._stack_cache = None
        # one-entry code page cache, same shape plus (hpfn, frame)
        self._code_cache = None
        self._frame_versions = mmu.physmem._versions
        #: block-translation state; ``None`` runs the pure interpreter
        #: (the default for directly constructed vCPUs -- machines wire
        #: it through ``Machine.set_jit`` / the ``REPRO_JIT`` env var)
        self._jit: Optional[JitState] = None

    # -- register/stack helpers ----------------------------------------------
    #
    # push/pop are the hottest memory operations (every call/ret/frame).
    # They use a one-entry stack-page cache, invalidated by generation
    # checks, and fall back to the full MMU path on page misses/crossings.

    def _stack_frame(self, addr: int):
        mmu = self.mmu
        vfn = addr >> 12
        cache = self._stack_cache
        if (
            cache is not None
            and cache[0] == vfn
            and cache[1] is mmu.cr3
            and cache[2] == mmu.cr3.generation
            and cache[3][0] == cache[4]
        ):
            self._stack_hits.value += 1
            return cache[5]
        if cache is not None:
            self._stack_evictions.value += 1
        self._stack_misses.value += 1
        entry = mmu.resolve_entry(addr)
        # validated against the *scoped* EPT epoch of the stack page's
        # level-2 table: kernel-view switches (which remap only the
        # kernel-code range) no longer thrash this cache
        self._stack_cache = (
            vfn, mmu.cr3, mmu.cr3.generation, entry[2], entry[3], entry[1],
        )
        return entry[1]

    def push(self, value: int) -> None:
        esp = (self.esp - 4) & 0xFFFFFFFF
        self.esp = esp
        offset = esp & 0xFFF
        if offset <= 0xFFC:
            frame = self._stack_frame(esp)
            value &= 0xFFFFFFFF
            frame[offset] = value & 0xFF
            frame[offset + 1] = (value >> 8) & 0xFF
            frame[offset + 2] = (value >> 16) & 0xFF
            frame[offset + 3] = (value >> 24) & 0xFF
        else:
            self.mmu.write_u32(esp, value)

    def pop(self) -> int:
        esp = self.esp
        self.esp = (esp + 4) & 0xFFFFFFFF
        offset = esp & 0xFFF
        if offset <= 0xFFC:
            frame = self._stack_frame(esp)
            return (
                frame[offset]
                | (frame[offset + 1] << 8)
                | (frame[offset + 2] << 16)
                | (frame[offset + 3] << 24)
            )
        return self.mmu.read_u32(esp)

    def read_stack_u32(self, addr: int) -> int:
        """Aligned stack read used by the hypervisor's backtracer."""
        return self.mmu.read_u32(addr)

    def attach_telemetry(self, telemetry: Telemetry) -> None:
        """Rebind this vCPU's instruments to the machine-wide registry."""
        registered = telemetry.counter(self.misdecodes.name)
        registered.value += self.misdecodes.value
        self.misdecodes = registered
        for attr in ("_stack_hits", "_stack_misses", "_stack_evictions"):
            standalone = getattr(self, attr)
            shared = telemetry.counter(standalone.name)
            if shared is not standalone:
                shared.value += standalone.value
                setattr(self, attr, shared)
        self.mmu.attach_telemetry(telemetry)
        if self._jit is not None:
            self._jit.attach_telemetry(telemetry)
        self.telemetry = telemetry

    def use_block_cache(self, cache: DecodeCache) -> None:
        """Adopt the machine-level shared decode cache."""
        self.block_cache = cache
        self._code_cache = None
        if self._jit is not None:
            self._jit.code_pages.clear()

    def set_jit(self, enabled: bool) -> None:
        """Enable or disable block translation for this vCPU.

        Enabling installs a fresh :class:`JitState`; disabling drops it
        (translations rebuild from scratch on re-enable).  Either way
        execution semantics are bit-identical -- only wall-clock speed
        and the ``jit.*`` counters change.
        """
        if enabled:
            if self._jit is None:
                self._jit = JitState()
                if self.telemetry is not None:
                    self._jit.attach_telemetry(self.telemetry)
        else:
            self._jit = None

    @property
    def jit_enabled(self) -> bool:
        return self._jit is not None

    @property
    def corruption_executed(self) -> int:
        """Legacy name for the silent-misdecode tally."""
        return self.misdecodes.value

    def snapshot_exit(self, reason: VmExitReason, detail: str = None) -> VmExit:
        return VmExit(
            reason=reason, rip=self.eip, rbp=self.ebp, rsp=self.esp, detail=detail
        )

    @property
    def cycle_sampler(self) -> Optional[CycleSampler]:
        return self._cycle_sampler

    @cycle_sampler.setter
    def cycle_sampler(self, sampler: Optional[CycleSampler]) -> None:
        """Installing a sampler arms the due check; removing it parks the
        due mark at a cycle count the clock can never reach."""
        self._cycle_sampler = sampler
        self._sample_due = 0 if sampler is not None else _NEVER_DUE

    def arm_trap(self, address: int) -> None:
        """Register a fetch trap at ``address`` (hypervisor interception)."""
        if address not in self.trap_addresses:
            self.trap_addresses.add(address)
            insort(self._sorted_traps, address)
            self._trap_epoch += 1

    def disarm_trap(self, address: int) -> None:
        if address in self.trap_addresses:
            self.trap_addresses.discard(address)
            self._sorted_traps.remove(address)
            self._trap_epoch += 1

    def resume_past_trap(self) -> None:
        """Resume after an ADDRESS_TRAP without immediately re-trapping."""
        self._skip_trap_once = self.eip

    def _page_trap_sig(self, vfn: int) -> Tuple[int, ...]:
        """Armed trap addresses that shape translations of page ``vfn``.

        Covers ``[page, page + 2*PAGE_SIZE)``: a trap up to one page
        *beyond* still truncates blocks near the page end (the decode
        limit looks ahead ``PAGE_SIZE`` bytes), and fused-successor
        decisions only concern targets inside the page itself.
        """
        traps = self._sorted_traps
        if not traps:
            return ()
        base = vfn << 12
        lo = bisect_left(traps, base)
        hi = bisect_left(traps, base + 2 * PAGE_SIZE)
        return tuple(traps[lo:hi])

    def flush_block_cache(self) -> None:
        self.block_cache.flush()
        self._code_cache = None
        if self._jit is not None:
            self._jit.flush()

    def invalidate_translation_caches(self) -> None:
        """Drop the stack/code page caches, the MMU's TLB and the
        translated page tables.

        Host-side administrative flush (snapshot capture/fork): these
        caches hold direct frame bytearray references that must not
        survive a CoW re-basing of physical memory.  Translated members
        hold no frame references (only constants), but their
        ``(hpfn, version)`` keys are meaningless across a re-based
        physical memory, so they are dropped too and rebuild warm.
        """
        self._stack_cache = None
        self._code_cache = None
        self.mmu.invalidate_cache()
        if self._jit is not None:
            self._jit.flush()

    # -- block decode ----------------------------------------------------------

    def _decode_block(
        self, frame: bytearray, offset: int, limit: Optional[int] = None
    ) -> _Block:
        data = bytes(frame)
        mkey = (data, offset, limit)
        memo = _block_memo.get(mkey)
        if memo is not None:
            return memo
        steps: List[object] = []
        terminator: Optional[Instr] = None
        pos = offset
        fill_insns = 0
        fill_bytes = 0
        count = 0
        stop_at = PAGE_SIZE if limit is None else min(PAGE_SIZE, offset + limit)
        while count < _MAX_BLOCK_INSNS:
            if pos >= stop_at:
                break
            if pos + 8 > PAGE_SIZE:
                # Near the page end a truncated buffer cannot be decoded
                # reliably (an instruction may span pages, as the paper
                # notes for split kernel functions); leave the tail to the
                # cross-page slow path.
                break
            instr = decode(data, pos)
            if instr.op is Op.FILL:
                ln = instr.length
                fill_insns += 1
                fill_bytes += ln
                pos += ln
                count += 1
                # Filler decodes depend only on the instruction's own
                # bytes, so a run of identical encodings (the common
                # shape of synthesized function bodies) can be consumed
                # without re-decoding; the run re-checks every loop-head
                # bound, and any differing bytes fall back to decode().
                if ln == 1:
                    b = data[pos - 1]
                    while (
                        count < _MAX_BLOCK_INSNS
                        and pos < stop_at
                        and pos + 8 <= PAGE_SIZE
                        and data[pos] == b
                    ):
                        fill_insns += 1
                        fill_bytes += 1
                        pos += 1
                        count += 1
                else:
                    enc = data[pos - ln:pos]
                    while (
                        count < _MAX_BLOCK_INSNS
                        and pos < stop_at
                        and pos + 8 <= PAGE_SIZE
                        and data[pos:pos + ln] == enc
                    ):
                        fill_insns += 1
                        fill_bytes += ln
                        pos += ln
                        count += 1
                continue
            if fill_insns:
                steps.append(("fill", fill_insns, fill_bytes))
                fill_insns = 0
                fill_bytes = 0
            if instr.op in _BLOCK_TERMINATORS:
                terminator = instr
                pos += instr.length
                break
            steps.append(instr)
            pos += instr.length
            count += 1
        if fill_insns:
            steps.append(("fill", fill_insns, fill_bytes))
        # block_len covers the terminator too, so tracers see the full
        # basic-block byte range; terminator execution advances eip itself.
        block_len = pos - offset
        block = (steps, terminator, block_len)
        if len(_block_memo) > _MAX_BLOCK_MEMO:
            _block_memo.clear()
        _block_memo[mkey] = block
        return block

    def _fetch_block(self) -> Tuple[_Block, bool]:
        """Return (block, is_kernel) for the current ``eip``."""
        eip = self.eip
        mmu = self.mmu
        vfn = eip >> 12
        cache = self._code_cache
        if (
            cache is not None
            and cache[0] == vfn
            and cache[1] is mmu.cr3
            and cache[2] == mmu.cr3.generation
            and cache[3][0] == cache[4]
        ):
            hpfn = cache[5]
            frame = cache[6]
        else:
            entry = mmu.resolve_entry(eip)
            hpfn = entry[0]
            frame = entry[1]
            self._code_cache = (
                vfn, mmu.cr3, mmu.cr3.generation, entry[2], entry[3],
                hpfn, frame,
            )
        version = self._frame_versions.get(hpfn, 0)
        offset = eip & (PAGE_SIZE - 1)
        # A block must end *before* any armed trap address so the trap
        # check at the next block boundary can fire mid-stream (the same
        # reason QEMU splits translation blocks at breakpoints).
        limit = None
        traps = self._sorted_traps
        if traps:
            i = bisect_right(traps, eip)
            if i < len(traps):
                distance = traps[i] - eip
                if distance < PAGE_SIZE:
                    limit = distance
        key = (hpfn, version, offset, limit)
        # inlined DecodeCache.lookup/insert -- this is the hottest path
        shared = self.block_cache
        block = shared.hot.get(key)
        if block is None:
            cold = shared.cold
            block = cold.get(key)
            if block is not None:
                del cold[key]
                shared.hot[key] = block
                shared.hits.value += 1
            else:
                shared.misses.value += 1
                block = self._decode_block(frame, offset, limit)
                shared.insert(key, block)
        else:
            shared.hits.value += 1
        return block, is_kernel_address(eip)

    def _fetch_cross_page(self) -> Instr:
        """Slow path: decode one instruction that may span two pages.

        Cached keyed by both pages' ``(hpfn, version)`` -- the key shape
        (5-tuple) cannot collide with block keys (4-tuples).
        """
        eip = self.eip
        mmu = self.mmu
        offset = eip & (PAGE_SIZE - 1)
        first = PAGE_SIZE - offset
        if first >= 8:
            # Eight bytes available on the first page: every encoding
            # fits, so decode straight from a linear read (no second
            # page to validate; not cached -- block decode covers these
            # offsets on the normal path).
            return decode(mmu.read(eip, 8), 0)
        entry1 = mmu.resolve_entry(eip)
        entry2 = mmu.resolve_entry((eip + first) & 0xFFFFFFFF)
        versions = self._frame_versions
        key = (
            entry1[0], versions.get(entry1[0], 0),
            offset,
            entry2[0], versions.get(entry2[0], 0),
        )
        shared = self.block_cache
        instr = shared.lookup(key)
        if instr is None:
            raw = bytes(entry1[1][offset:]) + bytes(entry2[1][: 8 - first])
            instr = decode(raw, 0)
            shared.insert(key, instr)
        return instr

    # -- execution --------------------------------------------------------------

    def run(self, budget: int = 1_000_000) -> VmExit:
        """Execute until a VM exit occurs or ``budget`` instructions run.

        The budget counts *retired instructions* (``self.instructions``),
        the same quantity the hypervisor's exit loop uses when it resumes
        a slice after an exit.  Counting anything else (blocks, decoded
        steps) would make the accounting restart from a different total
        after an exit, so a zero-cost exit -- an observer probe trap --
        would shift every later slice boundary and break bit-identity.
        """
        if self._jit is not None:
            return self._run_jit(budget)
        start = self.instructions
        while self.instructions - start < budget:
            # statistical sampler, checked at block boundaries; reads
            # state only and charges nothing, so the virtual clock is
            # bit-identical with or without it (due mark is _NEVER_DUE
            # while no sampler is installed)
            if self.cycles >= self._sample_due:
                self._sample_due = self._cycle_sampler(self)
            # interrupt window, checked at block boundaries
            if self.if_enabled and self.bridge.interrupt_pending(self):
                self.bridge.deliver_interrupt(self)
            if self.eip in self.trap_addresses:
                if self._skip_trap_once == self.eip:
                    self._skip_trap_once = None
                else:
                    return self.snapshot_exit(VmExitReason.ADDRESS_TRAP)
            else:
                self._skip_trap_once = None
            try:
                block, _in_kernel = self._fetch_block()
            except TranslationError as exc:
                return self.snapshot_exit(VmExitReason.ERROR, detail=str(exc))
            steps, terminator, block_len = block
            if self.block_tracer is not None:
                self.block_tracer(self.eip, self.eip + block_len)
            try:
                exit_ = self._execute_block(steps, terminator, block_len)
            except TranslationError as exc:
                return self.snapshot_exit(VmExitReason.ERROR, detail=str(exc))
            if exit_ is not None:
                return exit_
        return self.snapshot_exit(VmExitReason.BUDGET)

    def _run_jit(self, budget: int) -> VmExit:
        """The translated run loop (see :mod:`repro.hypervisor.jit`).

        The outer iteration replicates :meth:`run`'s boundary checks in
        the same order (budget, sampler due-mark, interrupt window,
        trap), then resolves the code page and dispatches a translated
        member if the page is hot, falling back to one interpreted block
        otherwise.  The inner loop chains members of the same page
        ("superblock executor"), re-checking the boundary conditions
        between members; cold blocks count heat toward promotion.
        """
        jit = self._jit
        stop = self.instructions + budget
        mmu = self.mmu
        bridge = self.bridge
        traps = self.trap_addresses
        versions = self._frame_versions
        tables = jit.tables
        heat = jit.heat
        code_pages = jit.code_pages
        irq = self.irq_state
        while self.instructions < stop:
            if self.cycles >= self._sample_due:
                self._sample_due = self._cycle_sampler(self)
            if self.if_enabled and (
                self.cycles >= irq.next_event
                if irq is not None
                else bridge.interrupt_pending(self)
            ):
                bridge.deliver_interrupt(self)
            eip = self.eip
            if eip in traps:
                if self._skip_trap_once == eip:
                    self._skip_trap_once = None
                else:
                    return self.snapshot_exit(VmExitReason.ADDRESS_TRAP)
            else:
                self._skip_trap_once = None
            # resolve the code page; validated like _fetch_block's
            # one-entry cache but per-vfn, because translated execution
            # ping-pongs between the user stub page and kernel handler
            # pages every interrupt/syscall
            vfn = eip >> 12
            ckey = (id(mmu.cr3), vfn)
            cache = code_pages.get(ckey)
            if (
                cache is not None
                and cache[0] is mmu.cr3
                and cache[1] == mmu.cr3.generation
                and cache[2][0] == cache[3]
            ):
                hpfn = cache[4]
                frame = cache[5]
            else:
                try:
                    entry = mmu.resolve_entry(eip)
                except TranslationError as exc:
                    return self.snapshot_exit(VmExitReason.ERROR, detail=str(exc))
                hpfn = entry[0]
                frame = entry[1]
                if len(code_pages) > 2048:
                    code_pages.clear()
                code_pages[ckey] = (
                    mmu.cr3, mmu.cr3.generation, entry[2], entry[3],
                    hpfn, frame,
                )
            version = versions.get(hpfn, 0)
            key = (hpfn, version)
            group = tables.get(key)
            fn = None
            members = None
            if group is not None:
                table = group.active
                if table.epoch != self._trap_epoch or table.vfn != vfn:
                    table = jit.revalidate(self, group, vfn)
                members = table.members
                fn = members.get(eip & 0xFFF)
                if fn is None and len(members) < jit.max_members:
                    fn = jit.translate(self, frame, hpfn, version, eip, table)
            else:
                n = heat.get(key, 0) + 1
                if n >= jit.threshold:
                    table = jit.promote(self, hpfn, version, vfn)
                    members = table.members
                    fn = jit.translate(self, frame, hpfn, version, eip, table)
                else:
                    if len(heat) > 8192:
                        heat.clear()
                    heat[key] = n
            if fn is not None:
                # superblock executor: chain members of this page until
                # a boundary condition or a non-member target
                r = None
                try:
                    while True:
                        r = fn(self, stop)
                        if r is not None:
                            break
                        if (
                            self.instructions >= stop
                            or self.cycles >= self._sample_due
                            or (
                                self.if_enabled
                                and (
                                    self.cycles >= irq.next_event
                                    if irq is not None
                                    else bridge.interrupt_pending(self)
                                )
                            )
                        ):
                            break
                        nip = self.eip
                        if nip in traps:
                            break
                        nvfn = nip >> 12
                        if nvfn != vfn:
                            # cross-page chain: swap to the target
                            # page's table without re-running the
                            # boundary checks (they just ran above);
                            # any cache/table miss defers to the
                            # outer loop's slow path
                            cr3 = mmu.cr3
                            c2 = code_pages.get((id(cr3), nvfn))
                            if (
                                c2 is None
                                or c2[0] is not cr3
                                or c2[1] != cr3.generation
                                or c2[2][0] != c2[3]
                            ):
                                break
                            nhpfn = c2[4]
                            nversion = versions.get(nhpfn, 0)
                            ngroup = tables.get((nhpfn, nversion))
                            if ngroup is None:
                                break
                            ntable = ngroup.active
                            if (
                                ntable.epoch != self._trap_epoch
                                or ntable.vfn != nvfn
                            ):
                                break
                            vfn = nvfn
                            hpfn = nhpfn
                            version = nversion
                            frame = c2[5]
                            table = ntable
                            members = ntable.members
                        fn = members.get(nip & 0xFFF)
                        if fn is None:
                            if len(members) < jit.max_members:
                                fn = jit.translate(
                                    self, frame, hpfn, version, nip, table
                                )
                            if fn is None:
                                break
                except TranslationError as exc:
                    return self.snapshot_exit(VmExitReason.ERROR, detail=str(exc))
                if r is _JIT_STALE:
                    # stale cross-page guard: the member made no
                    # progress; drop it and interpret this block (the
                    # boundary checks for it already ran)
                    members.pop(self.eip & 0xFFF, None)
                    jit.invalidations.inc("cross-page")
                elif r is None or r is _JIT_BAIL:
                    continue
                else:
                    return r
            # interpreted fallback: cold page, untranslatable entry, or
            # a dropped stale member -- one block, exactly as run() does
            try:
                block, _in_kernel = self._fetch_block()
            except TranslationError as exc:
                return self.snapshot_exit(VmExitReason.ERROR, detail=str(exc))
            steps, terminator, block_len = block
            if self.block_tracer is not None:
                self.block_tracer(self.eip, self.eip + block_len)
            try:
                exit_ = self._execute_block(steps, terminator, block_len)
            except TranslationError as exc:
                return self.snapshot_exit(VmExitReason.ERROR, detail=str(exc))
            if exit_ is not None:
                return exit_
        return self.snapshot_exit(VmExitReason.BUDGET)

    def _execute_block(
        self, steps: List[object], terminator: Optional[Instr], block_len: int
    ) -> Optional[VmExit]:
        for step in steps:
            if isinstance(step, tuple):
                _, n_insns, n_bytes = step
                self.eip = (self.eip + n_bytes) & 0xFFFFFFFF
                self.cycles += n_insns
                self.instructions += n_insns
                continue
            self._execute_simple(step)
        if terminator is None:
            if block_len == 0:
                # Could not decode anything within this page: the
                # instruction spans pages.  Execute it via the slow path.
                instr = self._fetch_cross_page()
                if instr.op in _BLOCK_TERMINATORS:
                    return self._execute_terminator(instr)
                self._execute_simple(instr)
            return None
        return self._execute_terminator(terminator)

    def _execute_simple(self, instr: Instr) -> None:
        op = instr.op
        self.cycles += 1
        self.instructions += 1
        if op is Op.PUSH_EBP:
            self.push(self.ebp)
        elif op is Op.MOV_EBP_ESP:
            self.ebp = self.esp
        elif op is Op.PUSH_IMM:
            self.push(instr.operand or 0)
        elif op is Op.PRED:
            # ZF set => the JZ that follows skips the guarded body.
            self.zf = not self.bridge.eval_pred(instr.operand or 0)
        elif op is Op.ACT:
            self.bridge.do_act(instr.operand or 0)
        elif op is Op.LEAVE:
            self.esp = self.ebp
            self.ebp = self.pop()
        elif op is Op.OR_MIS:
            # The silent misdecode of a split UD2 stream.
            self.misdecodes.value += 1
            tel = self.telemetry
            if tel is not None and tel.tracing:
                tel.emit(
                    "misdecode", cycles=self.cycles, cpu=self.cpu_id, rip=self.eip
                )
        elif op is Op.CLI:
            self.if_enabled = False
        elif op is Op.STI:
            self.if_enabled = True
        elif op is Op.FILL:
            pass
        else:  # pragma: no cover - decoder/terminator partition is fixed
            raise VcpuError(f"non-simple op in block body: {op}")
        self.eip = (self.eip + instr.length) & 0xFFFFFFFF

    def _execute_terminator(self, instr: Instr) -> Optional[VmExit]:
        op = instr.op
        self.cycles += 1
        self.instructions += 1
        if op is Op.CALL:
            self.push((self.eip + instr.length) & 0xFFFFFFFF)
            self.eip = (self.eip + instr.length + (instr.operand or 0)) & 0xFFFFFFFF
            return None
        if op is Op.JMP:
            self.eip = (self.eip + instr.length + (instr.operand or 0)) & 0xFFFFFFFF
            return None
        if op is Op.JZ:
            if self.zf:
                self.eip = (
                    self.eip + instr.length + (instr.operand or 0)
                ) & 0xFFFFFFFF
            else:
                self.eip = (self.eip + instr.length) & 0xFFFFFFFF
            return None
        if op is Op.DISPATCH:
            target = self.bridge.resolve_slot(instr.operand or 0)
            self.push((self.eip + instr.length) & 0xFFFFFFFF)
            self.eip = target & 0xFFFFFFFF
            return None
        if op is Op.RET:
            self.eip = self.pop()
            return None
        if op is Op.IRET:
            self.bridge.on_iret(self)
            return None
        if op is Op.INT:
            self.eip = (self.eip + instr.length) & 0xFFFFFFFF
            self.bridge.on_software_interrupt(self, instr.operand or 0)
            return None
        if op is Op.CTXSW:
            self.eip = (self.eip + instr.length) & 0xFFFFFFFF
            self.bridge.on_ctxsw(self)
            return None
        if op is Op.HLT:
            self.eip = (self.eip + instr.length) & 0xFFFFFFFF
            return self.snapshot_exit(VmExitReason.HLT)
        if op in (Op.UD2, Op.INVALID):
            # #UD: eip stays at the faulting instruction, like hardware.
            return self.snapshot_exit(VmExitReason.INVALID_OPCODE)
        raise VcpuError(f"unexpected terminator {op}")  # pragma: no cover
