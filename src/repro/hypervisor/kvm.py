"""The hypervisor: exit dispatch, trap registration and cost accounting.

This is the component FACE-CHANGE's runtime phase plugs into (the paper
implements it inside kvm-kmod).  It owns the physical memory and one EPT
per VCPU, routes VM exits to registered handlers, and charges the
world-switch cost that makes the performance evaluation meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.hypervisor.vcpu import Vcpu
from repro.hypervisor.vmexit import VmExit, VmExitReason
from repro.memory.ept import ExtendedPageTable
from repro.memory.physmem import PhysicalMemory

#: Cycles charged to the guest for every VM exit (world switch + handler).
VMEXIT_COST_CYCLES = 3500

TrapHandler = Callable[[Vcpu, VmExit], None]
#: Returns True when the #UD was handled (code recovered) and the guest
#: may resume at the same rip; False crashes the guest.
InvalidOpcodeHandler = Callable[[Vcpu, VmExit], bool]
IdleHandler = Callable[[Vcpu], None]


class GuestCrash(Exception):
    """The guest hit an unhandled fault (would panic on real hardware)."""

    def __init__(self, exit_: VmExit):
        super().__init__(f"unhandled guest fault: {exit_}")
        self.exit = exit_


@dataclass
class ExitStats:
    """Aggregate VM-exit accounting, consumed by the benchmarks."""

    address_traps: int = 0
    invalid_opcode_traps: int = 0
    hlt_exits: int = 0
    per_trap_address: Dict[int, int] = field(default_factory=dict)


class Hypervisor:
    """KVM-like host side: owns memory, EPTs and the exit loop."""

    def __init__(self, physmem: Optional[PhysicalMemory] = None) -> None:
        self.physmem = physmem if physmem is not None else PhysicalMemory()
        self.vcpus: List[Vcpu] = []
        self.epts: List[ExtendedPageTable] = []
        self._trap_handlers: Dict[int, TrapHandler] = {}
        self._trap_armed: Dict[int, set] = {}
        self._invalid_opcode_handler: Optional[InvalidOpcodeHandler] = None
        self._idle_handler: Optional[IdleHandler] = None
        self.stats = ExitStats()
        #: cycles charged for hypervisor work, attributed to the guest
        self.overhead_cycles = 0

    # -- wiring ----------------------------------------------------------------

    def attach_vcpu(self, vcpu: Vcpu, ept: ExtendedPageTable) -> None:
        self.vcpus.append(vcpu)
        self.epts.append(ept)
        for address in self._trap_handlers:
            if None in self._trap_armed.get(address, set()):
                vcpu.arm_trap(address)

    def register_address_trap(
        self,
        address: int,
        handler: TrapHandler,
        vcpu: Optional[Vcpu] = None,
    ) -> None:
        """Trap guest fetches of ``address`` (on one vCPU or on all)."""
        self._trap_handlers[address] = handler
        armed = self._trap_armed.setdefault(address, set())
        if vcpu is None:
            armed.add(None)  # sentinel: armed everywhere
            for each in self.vcpus:
                each.arm_trap(address)
        else:
            armed.add(vcpu.cpu_id)
            vcpu.arm_trap(address)

    def unregister_address_trap(
        self, address: int, vcpu: Optional[Vcpu] = None
    ) -> None:
        armed = self._trap_armed.get(address, set())
        if vcpu is None:
            armed.clear()
            for each in self.vcpus:
                each.disarm_trap(address)
        else:
            armed.discard(vcpu.cpu_id)
            vcpu.disarm_trap(address)
        if not armed:
            self._trap_handlers.pop(address, None)
            self._trap_armed.pop(address, None)

    def set_invalid_opcode_handler(
        self, handler: Optional[InvalidOpcodeHandler]
    ) -> None:
        self._invalid_opcode_handler = handler

    def set_idle_handler(self, handler: IdleHandler) -> None:
        self._idle_handler = handler

    def charge(self, vcpu: Vcpu, cycles: int) -> None:
        """Attribute hypervisor work to the guest's virtual clock."""
        vcpu.cycles += cycles
        self.overhead_cycles += cycles

    # -- exit loop ---------------------------------------------------------------

    def run(self, vcpu: Vcpu, budget: int = 1_000_000) -> None:
        """Run ``vcpu`` until the instruction budget is consumed.

        VM exits are dispatched transparently; only an unhandled fault
        stops execution (raising :class:`GuestCrash`).
        """
        start = vcpu.instructions
        while True:
            executed = vcpu.instructions - start
            if executed >= budget:
                return
            exit_ = vcpu.run(budget=budget - executed)
            if exit_.reason is VmExitReason.BUDGET:
                return
            self.charge(vcpu, VMEXIT_COST_CYCLES)
            if exit_.reason is VmExitReason.ADDRESS_TRAP:
                self.stats.address_traps += 1
                self.stats.per_trap_address[exit_.rip] = (
                    self.stats.per_trap_address.get(exit_.rip, 0) + 1
                )
                handler = self._trap_handlers.get(exit_.rip)
                if handler is None:
                    raise GuestCrash(exit_)
                handler(vcpu, exit_)
                vcpu.resume_past_trap()
            elif exit_.reason is VmExitReason.INVALID_OPCODE:
                self.stats.invalid_opcode_traps += 1
                handler = self._invalid_opcode_handler
                if handler is None or not handler(vcpu, exit_):
                    raise GuestCrash(exit_)
            elif exit_.reason is VmExitReason.HLT:
                self.stats.hlt_exits += 1
                if self._idle_handler is None:
                    raise GuestCrash(exit_)
                self._idle_handler(vcpu)
            elif exit_.reason is VmExitReason.ERROR:
                raise GuestCrash(exit_)
            else:  # pragma: no cover - exhaustive
                raise GuestCrash(exit_)
