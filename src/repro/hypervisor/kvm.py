"""The hypervisor: exit dispatch, trap registration and cost accounting.

This is the component FACE-CHANGE's runtime phase plugs into (the paper
implements it inside kvm-kmod).  It owns the physical memory and one EPT
per VCPU, routes VM exits through a pluggable dispatch pipeline, and
charges the world-switch cost that makes the performance evaluation
meaningful.

The exit loop is an ordered pipeline of :class:`ExitStage` objects, one
per exit reason.  Every stage is instrumented through the machine's
:class:`~repro.telemetry.Telemetry` registry: a per-reason exit counter
(``hv.exits.<stage>``) and a charged-cycle histogram
(``hv.exit_cycles.<stage>``) covering the world switch plus whatever the
handler charged (EPT switches, code recovery).  ``ExitStats`` remains as
a thin read-only view over those registry entries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.hypervisor.vcpu import DecodeCache, Vcpu
from repro.hypervisor.vmexit import VmExit, VmExitReason
from repro.memory.ept import ExtendedPageTable
from repro.memory.physmem import PhysicalMemory
from repro.telemetry import Telemetry

#: Cycles charged to the guest for every VM exit (world switch + handler).
VMEXIT_COST_CYCLES = 3500

TrapHandler = Callable[[Vcpu, VmExit], None]


@dataclass(frozen=True)
class TrapEntry:
    """One consumer of an address trap.

    ``cpu`` is ``None`` for a trap armed on every vCPU, or a specific
    ``cpu_id``.  ``observer`` entries are pure instrumentation (probes):
    an exit whose matching entries are all observers charges zero guest
    cycles, so arming a probe never perturbs virtual-cycle scores.
    """

    handler: TrapHandler
    cpu: Optional[int]
    observer: bool = False
#: Returns True when the #UD was handled (code recovered) and the guest
#: may resume at the same rip; False crashes the guest.
InvalidOpcodeHandler = Callable[[Vcpu, VmExit], bool]
IdleHandler = Callable[[Vcpu], None]


class GuestCrash(Exception):
    """The guest hit an unhandled fault (would panic on real hardware)."""

    def __init__(self, exit_: VmExit):
        super().__init__(f"unhandled guest fault: {exit_}")
        self.exit = exit_


class ExitStage:
    """One stage of the exit dispatch pipeline (one exit reason).

    Subclasses set :attr:`reason`/:attr:`name` and implement
    :meth:`handle`.  The hypervisor binds the stage's telemetry
    instruments when the stage is added to the pipeline.  A stage may
    override :meth:`exit_cost` to vary the charged world-switch cost per
    exit (observer-only trap exits charge nothing).
    """

    reason: VmExitReason
    name: str

    def __init__(self) -> None:
        self.exits = None  # bound by Hypervisor.add_stage
        self.charged_cycles = None

    def exit_cost(self, hv: "Hypervisor", vcpu: Vcpu, exit_: VmExit) -> int:
        """Cycles to charge for the world switch before handling."""
        return VMEXIT_COST_CYCLES

    def handle(self, hv: "Hypervisor", vcpu: Vcpu, exit_: VmExit) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} reason={self.reason.name}>"


class AddressTrapStage(ExitStage):
    """Guest fetched a trapped address (context_switch/resume_userspace).

    An address may have several consumers (FACE-CHANGE's switcher plus
    any number of probes); every entry matching the exiting vCPU runs,
    in registration order.  When *only* observer entries match, the exit
    is pure instrumentation and charges zero cycles -- the guest's
    virtual clock is bit-identical with or without the probe.
    """

    reason = VmExitReason.ADDRESS_TRAP
    name = "address_trap"

    #: the (exit, entries) pair computed by ``exit_cost`` -- ``handle``
    #: runs on the same exit immediately after, so the match is reused
    #: rather than recomputed (probe-heavy runs take this exit per call)
    _matched: Optional[tuple] = None

    def exit_cost(self, hv: "Hypervisor", vcpu: Vcpu, exit_: VmExit) -> int:
        matched = hv.matching_trap_entries(exit_.rip, vcpu.cpu_id)
        self._matched = (exit_, matched)
        if matched and all(entry.observer for entry in matched):
            return 0
        return VMEXIT_COST_CYCLES

    def handle(self, hv: "Hypervisor", vcpu: Vcpu, exit_: VmExit) -> None:
        hv._per_trap_address.inc(exit_.rip)
        cached = self._matched
        self._matched = None
        if cached is not None and cached[0] is exit_:
            matched = cached[1]
        else:
            matched = hv.matching_trap_entries(exit_.rip, vcpu.cpu_id)
        if not matched:
            raise GuestCrash(exit_)
        for entry in matched:
            entry.handler(vcpu, exit_)
        vcpu.resume_past_trap()


class InvalidOpcodeStage(ExitStage):
    """#UD exit: a UD2-filled hole in the active kernel view."""

    reason = VmExitReason.INVALID_OPCODE
    name = "invalid_opcode"

    def handle(self, hv: "Hypervisor", vcpu: Vcpu, exit_: VmExit) -> None:
        handler = hv._invalid_opcode_handler
        if handler is None or not handler(vcpu, exit_):
            raise GuestCrash(exit_)


class HltStage(ExitStage):
    """The guest idled; hand control to the runtime's idle logic."""

    reason = VmExitReason.HLT
    name = "hlt"

    def handle(self, hv: "Hypervisor", vcpu: Vcpu, exit_: VmExit) -> None:
        if hv._idle_handler is None:
            raise GuestCrash(exit_)
        hv._idle_handler(vcpu)


class ErrorStage(ExitStage):
    """Unrecoverable guest fault (translation failure etc.)."""

    reason = VmExitReason.ERROR
    name = "error"

    def handle(self, hv: "Hypervisor", vcpu: Vcpu, exit_: VmExit) -> None:
        raise GuestCrash(exit_)


class ExitStats:
    """Read-only view of VM-exit accounting over the telemetry registry.

    Kept for the benchmarks and older callers; new code should consume
    the registry (``hv.telemetry``) directly.
    """

    def __init__(self, telemetry: Telemetry) -> None:
        self._telemetry = telemetry

    @property
    def address_traps(self) -> int:
        return self._telemetry.counter("hv.exits.address_trap").value

    @property
    def invalid_opcode_traps(self) -> int:
        return self._telemetry.counter("hv.exits.invalid_opcode").value

    @property
    def hlt_exits(self) -> int:
        return self._telemetry.counter("hv.exits.hlt").value

    @property
    def per_trap_address(self) -> Dict[int, int]:
        return self._telemetry.labelled_counter("hv.exits.per_trap_address").values


class Hypervisor:
    """KVM-like host side: owns memory, EPTs and the exit pipeline."""

    def __init__(
        self,
        physmem: Optional[PhysicalMemory] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.physmem = physmem if physmem is not None else PhysicalMemory()
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.vcpus: List[Vcpu] = []
        self.epts: List[ExtendedPageTable] = []
        self._trap_entries: Dict[int, List[TrapEntry]] = {}
        self._invalid_opcode_handler: Optional[InvalidOpcodeHandler] = None
        self._idle_handler: Optional[IdleHandler] = None
        self._per_trap_address = self.telemetry.labelled_counter(
            "hv.exits.per_trap_address"
        )
        #: machine-level decoded-block cache shared by all vCPUs: blocks
        #: are keyed by host frame, so SMP vCPUs running the same
        #: application reuse each other's decodes
        self.decode_cache = DecodeCache()
        self.decode_cache.attach_telemetry(self.telemetry)
        self.stats = ExitStats(self.telemetry)
        #: cycles charged for hypervisor work, attributed to the guest
        self.overhead_cycles = 0
        # the ordered dispatch pipeline (one stage per exit reason)
        self.pipeline: List[ExitStage] = []
        self._dispatch: Dict[VmExitReason, ExitStage] = {}
        for stage in (
            AddressTrapStage(),
            InvalidOpcodeStage(),
            HltStage(),
            ErrorStage(),
        ):
            self.add_stage(stage)

    # -- pipeline ---------------------------------------------------------------

    def add_stage(self, stage: ExitStage, index: Optional[int] = None) -> None:
        """Plug ``stage`` into the pipeline (replacing any same-reason stage)."""
        stage.exits = self.telemetry.counter(f"hv.exits.{stage.name}")
        stage.charged_cycles = self.telemetry.histogram(
            f"hv.exit_cycles.{stage.name}"
        )
        previous = self._dispatch.get(stage.reason)
        if previous is not None:
            position = self.pipeline.index(previous)
            self.pipeline[position] = stage
        elif index is None:
            self.pipeline.append(stage)
        else:
            self.pipeline.insert(index, stage)
        self._dispatch[stage.reason] = stage

    def stage_for(self, reason: VmExitReason) -> Optional[ExitStage]:
        return self._dispatch.get(reason)

    # -- wiring ----------------------------------------------------------------

    def attach_vcpu(self, vcpu: Vcpu, ept: ExtendedPageTable) -> None:
        self.vcpus.append(vcpu)
        self.epts.append(ept)
        vcpu.attach_telemetry(self.telemetry)
        vcpu.use_block_cache(self.decode_cache)
        for address, entries in self._trap_entries.items():
            if any(entry.cpu is None for entry in entries):
                vcpu.arm_trap(address)

    def matching_trap_entries(self, address: int, cpu_id: int) -> List[TrapEntry]:
        """The consumers of ``address`` for an exit on ``cpu_id``."""
        return [
            entry
            for entry in self._trap_entries.get(address, ())
            if entry.cpu is None or entry.cpu == cpu_id
        ]

    def trap_consumers(self, address: int) -> List[TrapEntry]:
        """Every registered consumer of ``address`` (all scopes)."""
        return list(self._trap_entries.get(address, ()))

    def register_address_trap(
        self,
        address: int,
        handler: TrapHandler,
        vcpu: Optional[Vcpu] = None,
        observer: bool = False,
    ) -> None:
        """Trap guest fetches of ``address`` (on one vCPU or on all).

        Consumers stack: registering a second handler on the same
        address chains it after the existing ones rather than replacing
        them, so probes compose with FACE-CHANGE's own traps.
        Re-registering an identical ``(handler, scope)`` pair is
        idempotent.  ``observer=True`` marks pure instrumentation whose
        exits charge no guest cycles.
        """
        scope = None if vcpu is None else vcpu.cpu_id
        entries = self._trap_entries.setdefault(address, [])
        for i, entry in enumerate(entries):
            if entry.handler is handler and entry.cpu == scope:
                if entry.observer != observer:
                    entries[i] = TrapEntry(handler, scope, observer)
                break
        else:
            entries.append(TrapEntry(handler, scope, observer))
        if vcpu is None:
            for each in self.vcpus:
                each.arm_trap(address)
        else:
            vcpu.arm_trap(address)

    def unregister_address_trap(
        self,
        address: int,
        vcpu: Optional[Vcpu] = None,
        handler: Optional[TrapHandler] = None,
    ) -> None:
        """Remove one consumer's arming of ``address``.

        Global arming (``vcpu=None``) and per-vCPU arming are tracked
        independently: unregistering the global consumer keeps the trap
        armed on vCPUs that armed it specifically, and vice versa.  With
        ``handler`` given, only that handler's entry in the matching
        scope is removed (other same-address consumers -- e.g. a probe
        sharing FACE-CHANGE's resume trap -- survive in either removal
        order).  A vCPU's trap is disarmed only once no covering entry
        remains.
        """
        entries = self._trap_entries.get(address)
        if entries is None:
            return
        scope = None if vcpu is None else vcpu.cpu_id
        survivors = []
        removed = False
        for entry in entries:
            if entry.cpu == scope and (
                handler is None or entry.handler is handler
            ):
                removed = True
                continue
            survivors.append(entry)
        if not removed:
            return
        if survivors:
            self._trap_entries[address] = survivors
        else:
            self._trap_entries.pop(address, None)
        covered_globally = any(entry.cpu is None for entry in survivors)
        for each in self.vcpus:
            if covered_globally:
                continue
            if not any(entry.cpu == each.cpu_id for entry in survivors):
                each.disarm_trap(address)

    def set_invalid_opcode_handler(
        self, handler: Optional[InvalidOpcodeHandler]
    ) -> None:
        self._invalid_opcode_handler = handler

    def set_idle_handler(self, handler: IdleHandler) -> None:
        self._idle_handler = handler

    def charge(self, vcpu: Vcpu, cycles: int) -> None:
        """Attribute hypervisor work to the guest's virtual clock."""
        vcpu.cycles += cycles
        self.overhead_cycles += cycles

    # -- exit loop ---------------------------------------------------------------

    def run(self, vcpu: Vcpu, budget: int = 1_000_000) -> None:
        """Run ``vcpu`` until the instruction budget is consumed.

        VM exits are dispatched through the stage pipeline; only an
        unhandled fault stops execution (raising :class:`GuestCrash`).
        """
        start = vcpu.instructions
        dispatch = self._dispatch
        telemetry = self.telemetry
        while True:
            executed = vcpu.instructions - start
            if executed >= budget:
                return
            exit_ = vcpu.run(budget=budget - executed)
            reason = exit_.reason
            if reason is VmExitReason.BUDGET:
                return
            stage = dispatch.get(reason)
            if stage is None:
                raise GuestCrash(exit_)
            if telemetry.tracing:
                telemetry.emit(
                    "vmexit",
                    cycles=vcpu.cycles,
                    cpu=vcpu.cpu_id,
                    reason=reason.name,
                    rip=exit_.rip,
                )
            before = vcpu.cycles
            self.charge(vcpu, stage.exit_cost(self, vcpu, exit_))
            stage.exits.inc()
            if telemetry.recording:
                # Root of the causal chain: everything the handler does
                # (view switch, backtrace, recovery) nests under this
                # span via the per-CPU open-span stack.  Spans read the
                # virtual clock but never advance it.
                span = telemetry.spans.open(
                    "vmexit",
                    cpu=vcpu.cpu_id,
                    cycles=before,
                    reason=reason.name,
                    rip=exit_.rip,
                    stage=stage.name,
                )
                try:
                    stage.handle(self, vcpu, exit_)
                except GuestCrash:
                    telemetry.spans.close(
                        span, cycles=vcpu.cycles, status="crash",
                        charged=vcpu.cycles - before,
                    )
                    raise
                telemetry.spans.close(
                    span, cycles=vcpu.cycles, charged=vcpu.cycles - before
                )
            else:
                stage.handle(self, vcpu, exit_)
            stage.charged_cycles.observe(vcpu.cycles - before)
