"""Block translation: superblock JIT over the decode cache.

The interpreter in :mod:`repro.hypervisor.vcpu` dispatches every decoded
step through Python ``if``-ladders.  This module compiles *hot* decoded
blocks into specialized Python closures -- straight-line source generated
per block, ``compile``/``exec``-ed once -- and fuses fall-through chains
(CALL/JMP/JZ with static targets) into **superblocks** that run until the
next trap boundary, interrupt-window check, sampler due-mark, or page
crossing.  It is QEMU's TB-chaining transplanted onto the existing
decode-cache key scheme.

Keying and invalidation
-----------------------

Translated members live in per-vCPU :class:`JitPageTable` objects keyed
``(hpfn, frame version)`` -- the same identity the decode cache uses --
so every invalidation source carries over unchanged:

* **CoW writes / module hot-load** bump the frame version
  (``PhysicalMemory.bump_version``), so the stale table simply stops
  being found; no explicit invalidation hook is needed.
* **View switches** (``install_over`` delta-switch) remap the virtual
  page to a *different* host frame; the outer loop re-resolves ``eip``
  every iteration and looks up the new frame's table.  Switching back
  re-finds the old table, so the A/B working set stays translated.
* **Trap arm/disarm** bumps the vCPU's ``_trap_epoch``.  Each table is
  pinned to its page's *trap signature* -- the armed addresses within
  ``[page, page + 2*PAGE_SIZE)``, exactly the range that shapes decode
  limits and fused-boundary decisions (the reason QEMU splits TBs at
  breakpoints).  The epoch is only a fast-path stamp: on mismatch the
  signature is recomputed and the table re-stamped if unchanged, so
  arming a probe in an unrelated page costs one tuple compare per
  table, not a retranslation.  Pages whose signature actually toggles
  (the deferred-switch ``resume_userspace`` trap) keep one table per
  signature in a small group, flipping between them instead of
  retranslating.
* A table is also pinned to the **virtual page** it was built for
  (``vfn``): constituent limits are derived from virtual trap addresses,
  so an aliased mapping of the same frame at another address falls back
  to the interpreter rather than reusing the wrong truncation.

Every member additionally registers its constituent decode-cache keys
(``JitPageTable.keys``); since fusion never crosses a page, all
constituents share ``(hpfn, version)`` and invalidating any member's key
drops the whole chain with the table.

Bit-identity contract
---------------------

Virtual-cycle scores must be identical with translation on or off.  The
generated code therefore:

* batches ``cycles``/``instructions`` increments only across *pure* runs
  (fills, ``mov ebp,esp``, ``cli``/``sti``) and flushes the exact totals
  before anything observable: bridge calls, ``push``/``pop`` (which can
  raise :class:`TranslationError`), misdecode telemetry, and every block
  boundary;
* flushes the exact ``eip`` before every can-raise operation so an
  ``ERROR`` exit snapshots the same ``rip`` the interpreter would;
* re-checks the interpreter's boundary conditions *in the same order*
  (budget, sampler due-mark, interrupt window) between fused blocks, and
  re-reads ``eip`` after every bridge call (a bridge that moved ``eip``
  mid-block ends translation at the next boundary with exact state);
* returns :data:`BAIL` after any operation that may write guest memory
  or switch address spaces (ACT, INT, IRET, CTXSW, DISPATCH), forcing
  the outer loop to re-resolve the page and re-validate the table.

Closures capture **no** per-machine mutable state -- only integer
constants baked into the source -- so they are safe under the
``deepcopy`` used by ``MachineSnapshot``; snapshot capture flushes the
tables anyway (``Machine.flush_caches``) and forks rebuild them warm.
"""

from __future__ import annotations

import os
from bisect import bisect_right
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.isa.decoder import decode
from repro.isa.opcodes import Instr, Op
from repro.memory.layout import PAGE_SIZE
from repro.memory.mmu import TranslationError
from repro.hypervisor.vmexit import VmExitReason
from repro.telemetry import Counter, LabelledCounter, Telemetry

#: Executions of a ``(hpfn, version)`` code page before it is promoted
#: to a translated page table.
PROMOTE_THRESHOLD = 4
#: Maximum constituent blocks fused into one superblock closure (JZ arms
#: may duplicate a successor; the cap bounds total emissions).
MAX_FUSED_BLOCKS = 32
#: Maximum translated members per page table.
MAX_MEMBERS = 256
#: Maximum resident page tables per vCPU (stale versions are swept
#: first when the cap is hit).
MAX_TABLES = 512
#: Heat-map bound; the map is heuristic, so clearing it only delays
#: promotion of still-warm pages.
_MAX_HEAT = 8192

#: Process-wide ``source -> code object`` cache: identical guest builds
#: translate identical pages, so re-compiling per machine (fleet
#: workers, benchmark reboots) would waste the dominant translation
#: cost.  Code objects are immutable and close over nothing.
_CODE_CACHE: Dict[str, object] = {}
_MAX_CODE_CACHE = 4096

#: Sentinel: the member made progress but may have changed memory or
#: address-space state; the caller must re-validate everything.
BAIL = object()
#: Sentinel: the member made *no* progress (stale cross-page guard); the
#: caller must drop the member and interpret the block.
STALE = object()

_MASK = 0xFFFFFFFF


def env_jit_enabled(default: bool = True) -> bool:
    """Resolve the ``REPRO_JIT`` environment toggle."""
    raw = os.environ.get("REPRO_JIT")
    if raw is None:
        return default
    return raw.strip().lower() not in ("", "0", "off", "false", "no")


class _Untranslatable(Exception):
    """An op the code generator cannot compile (defensive; the op set
    is closed, so this should never fire outside decoder changes)."""


class JitPageTable:
    """Translated members of one ``(hpfn, version)`` code page.

    ``members`` maps page offset -> compiled closure; ``keys`` maps page
    offset -> the constituent decode-cache keys the chain was built
    from.  ``vfn``/``sig`` pin the virtual mapping and trap layout the
    translations assumed; ``epoch`` is the fast-path validity stamp
    (re-stamped whenever the recomputed signature still matches).
    """

    __slots__ = ("members", "keys", "epoch", "vfn", "sig")

    def __init__(self, vfn: int, epoch: int, sig: Tuple[int, ...]) -> None:
        self.members: Dict[int, object] = {}
        self.keys: Dict[int, Tuple[tuple, ...]] = {}
        self.epoch = epoch
        self.vfn = vfn
        self.sig = sig


class JitPageGroup:
    """All translations of one ``(hpfn, version)`` page: the active
    table plus alternates keyed ``(vfn, trap signature)``, so a trap
    that toggles (deferred-switch resume traps) flips between cached
    tables instead of retranslating the page each time."""

    __slots__ = ("active", "alternates")

    #: alternates kept per page before the group is reset wholesale
    MAX_ALTERNATES = 4

    def __init__(self, table: JitPageTable) -> None:
        self.active = table
        self.alternates: Dict[Tuple[int, Tuple[int, ...]], JitPageTable] = {
            (table.vfn, table.sig): table
        }


class JitState:
    """Per-vCPU translation state: page tables, heat map, counters."""

    __slots__ = (
        "tables",
        "heat",
        "code_pages",
        "threshold",
        "max_members",
        "max_tables",
        "blocks",
        "superblocks",
        "promotions",
        "invalidations",
    )

    def __init__(self, threshold: int = PROMOTE_THRESHOLD) -> None:
        self.tables: Dict[Tuple[int, int], JitPageGroup] = {}
        self.heat: Dict[Tuple[int, int], int] = {}
        # (id(cr3), vfn) -> code-page resolution (the JIT loop's
        # analogue of the interpreter's one-entry ``_code_cache``; a
        # dict because the user stub <-> kernel handler ping-pong of
        # every interrupt/syscall thrashes a single entry)
        self.code_pages: Dict[Tuple[int, int], tuple] = {}
        self.threshold = threshold
        self.max_members = MAX_MEMBERS
        self.max_tables = MAX_TABLES
        self.blocks = Counter("jit.blocks")
        self.superblocks = Counter("jit.superblocks")
        self.promotions = Counter("jit.promotions")
        self.invalidations = LabelledCounter("jit.invalidations")

    def attach_telemetry(self, telemetry: Telemetry) -> None:
        """Rebind the jit counters to the machine-wide registry."""
        for attr in ("blocks", "superblocks", "promotions"):
            standalone = getattr(self, attr)
            shared = telemetry.counter(standalone.name)
            if shared is not standalone:
                shared.value += standalone.value
                setattr(self, attr, shared)
        standalone = self.invalidations
        shared = telemetry.labelled_counter(standalone.name)
        if shared is not standalone:
            for label, n in standalone.values.items():
                shared.inc(label, n)
            self.invalidations = shared

    def promote(self, vcpu, hpfn: int, version: int, vfn: int) -> JitPageTable:
        """Create a (still empty) table for a page that crossed the
        hotness threshold."""
        tables = self.tables
        if len(tables) >= self.max_tables:
            versions = vcpu._frame_versions
            stale = [k for k in tables if versions.get(k[0], 0) != k[1]]
            for k in stale:
                del tables[k]
            if stale:
                self.invalidations.inc("version", len(stale))
            if len(tables) >= self.max_tables:
                self.invalidations.inc("capacity", len(tables))
                tables.clear()
        self.heat.pop((hpfn, version), None)
        table = JitPageTable(vfn, vcpu._trap_epoch, vcpu._page_trap_sig(vfn))
        tables[(hpfn, version)] = JitPageGroup(table)
        self.promotions.inc()
        return table

    def revalidate(self, vcpu, group: JitPageGroup, vfn: int) -> JitPageTable:
        """Slow path after a trap-epoch bump (or vfn change): re-pin the
        group's active table to the current trap signature.

        Returns a valid (possibly freshly created, empty) table -- the
        caller re-stamps nothing; tables matching the recomputed
        signature are stamped with the current epoch here so the next
        lookup takes the fast path.
        """
        sig = vcpu._page_trap_sig(vfn)
        epoch = vcpu._trap_epoch
        table = group.active
        if table.vfn == vfn and table.sig == sig:
            table.epoch = epoch
            return table
        alt = group.alternates.get((vfn, sig))
        if alt is not None:
            alt.epoch = epoch
            group.active = alt
            return alt
        self.invalidations.inc("trap" if table.vfn == vfn else "remap")
        if len(group.alternates) >= JitPageGroup.MAX_ALTERNATES:
            group.alternates.clear()
        table = JitPageTable(vfn, epoch, sig)
        group.alternates[(vfn, sig)] = table
        group.active = table
        return table

    def translate(self, vcpu, frame, hpfn, version, eip, table) -> Optional[object]:
        """Translate the chain starting at ``eip`` into ``table``.

        Returns the compiled member, or ``None`` when the entry cannot
        be translated (build-time translation fault on a spanning
        instruction); build failures leave all guest state untouched so
        the interpreter path stays bit-identical.
        """
        off = eip & (PAGE_SIZE - 1)
        try:
            gen = _Codegen(vcpu, frame, hpfn, version, table.vfn)
            fn, keys, nblocks = gen.build(off)
        except (TranslationError, _Untranslatable):
            return None
        if fn is None:
            return None
        table.members[off] = fn
        table.keys[off] = keys
        self.blocks.inc(nblocks)
        if nblocks > 1:
            self.superblocks.inc()
        return fn

    def flush(self, cause: str = "flush") -> None:
        """Drop every table (host-side flush: snapshot/fork, explicit
        cache invalidation)."""
        n = len(self.tables)
        if n:
            self.invalidations.inc(cause, n)
        self.tables.clear()
        self.heat.clear()
        self.code_pages.clear()


#: Ops that terminate a decoded block; mirrored from the vcpu module to
#: classify single spanning instructions (import cycle avoidance).
_TERMINATORS = frozenset(
    {
        Op.CALL,
        Op.JMP,
        Op.JZ,
        Op.DISPATCH,
        Op.RET,
        Op.IRET,
        Op.INT,
        Op.UD2,
        Op.INVALID,
        Op.HLT,
        Op.CTXSW,
    }
)

#: Globals shared by every generated closure: sentinels, exit reasons
#: and the translation-fault type.  Nothing per-machine lives here, so
#: closures stay safe to share across deepcopied machines.
_EXEC_GLOBALS = {
    "_BAIL": BAIL,
    "_STALE": STALE,
    "_HLT": VmExitReason.HLT,
    "_UD": VmExitReason.INVALID_OPCODE,
    "_TE": TranslationError,
    "__builtins__": {},
}


class _Codegen:
    """Emits and compiles the Python source of one translated member.

    All addresses are build-time integer constants: the owning table is
    pinned to one virtual page (``vfn``), the executor only dispatches
    members for that page, and fusion never crosses a page -- so every
    ``eip`` value a chain can produce is known statically (bridge calls
    are re-read and guarded, see the module docstring).
    """

    def __init__(self, vcpu, frame, hpfn: int, version: int, vfn: int) -> None:
        self.vcpu = vcpu
        self.frame = frame
        self.hpfn = hpfn
        self.version = version
        self.vfn = vfn
        self.page_base = (vfn << 12) & _MASK
        self.trap_set = vcpu.trap_addresses
        self.lines: List[str] = []
        self.keys: List[tuple] = []
        self.budget = MAX_FUSED_BLOCKS
        self.nblocks = 0
        self.entry_off = -1
        # interrupt-window check: read the per-CPU deadline directly
        # when the bridge published one (members are per-vCPU, and
        # ``irq_state`` never changes after attach)
        if vcpu.irq_state is not None:
            self.irq_check = "if v.if_enabled and v.cycles >= v.irq_state.next_event:"
        else:
            self.irq_check = "if v.if_enabled and v.bridge.interrupt_pending(v):"

    # -- decode helpers -----------------------------------------------------

    def _addr(self, off: int) -> int:
        return (self.page_base + off) & _MASK

    def _block_at(self, off: int):
        """Decode (via the shared decode cache) the block at ``off``,
        with the same trap-limit truncation ``_fetch_block`` applies."""
        vaddr = self._addr(off)
        limit = None
        traps = self.vcpu._sorted_traps
        if traps:
            i = bisect_right(traps, vaddr)
            if i < len(traps):
                distance = traps[i] - vaddr
                if distance < PAGE_SIZE:
                    limit = distance
        key = (self.hpfn, self.version, off, limit)
        cache = self.vcpu.block_cache
        block = cache.lookup(key)
        if block is None:
            block = self.vcpu._decode_block(self.frame, off, limit)
            cache.insert(key, block)
        return block, key

    # -- top level ----------------------------------------------------------

    def build(self, entry_off: int):
        """Return ``(fn, constituent_keys, n_blocks)`` for the chain
        entered at page offset ``entry_off`` (``fn`` may be ``None``)."""
        (steps, term, block_len), key = self._block_at(entry_off)
        name = f"_jit_{self.vfn:05x}_{entry_off:03x}"
        self.entry_off = entry_off
        L = self.lines
        L.append(f"def {name}(v, stop):")
        if term is None and block_len == 0:
            # Instruction spanning into the next page: a guarded
            # single-instruction member.
            self.keys.append(key)
            self._build_cross_page(entry_off)
        else:
            # The body is a loop so a back-edge targeting the entry
            # (the common shape once a loop head becomes a member) can
            # ``continue`` instead of returning to the executor.
            L.append("    tr = v.block_tracer")
            L.append("    while True:")
            self._emit_block(entry_off, 2, frozenset((entry_off,)))
        src = "\n".join(L) + "\n"
        # Same guest build -> same page bytes -> same source: compiled
        # code objects are shared globally (across machines, versions,
        # and fleet workers in one process) since they close over
        # nothing -- only the exec'd function object is per-call.
        code = _CODE_CACHE.get(src)
        if code is None:
            if len(_CODE_CACHE) > _MAX_CODE_CACHE:
                _CODE_CACHE.clear()
            code = compile(src, f"<jit:{self.vfn:05x}+{entry_off:03x}>", "exec")
            _CODE_CACHE[src] = code
        ns: dict = {}
        exec(code, _EXEC_GLOBALS, ns)
        return ns[name], tuple(dict.fromkeys(self.keys)), self.nblocks

    # -- block emission -----------------------------------------------------

    def _emit_block(self, off: int, indent: int, visited: FrozenSet[int]) -> None:
        self.budget -= 1
        self.nblocks += 1
        (steps, term, block_len), key = self._block_at(off)
        self.keys.append(key)
        pad = "    " * indent
        S = self._addr(off)
        emit = self.lines.append
        emit(f"{pad}if tr is not None:")
        emit(f"{pad}    tr({S}, {S + block_len})")
        self._emit_body(off, steps, term, block_len, indent, visited, True)

    def _build_cross_page(self, off: int) -> None:
        """Emit the guarded single-instruction member for a spanning
        fetch (the interpreter's ``_fetch_cross_page`` path)."""
        vcpu = self.vcpu
        first = PAGE_SIZE - off
        vaddr2 = (self.page_base + PAGE_SIZE) & _MASK
        entry2 = vcpu.mmu.resolve_entry(vaddr2)
        hpfn2 = entry2[0]
        v2 = vcpu._frame_versions.get(hpfn2, 0)
        key = (self.hpfn, self.version, off, hpfn2, v2)
        cache = vcpu.block_cache
        instr = cache.lookup(key)
        if instr is None:
            raw = bytes(self.frame[off:]) + bytes(entry2[1][: 8 - first])
            instr = decode(raw, 0)
            cache.insert(key, instr)
        self.keys.append(key)
        self.nblocks += 1
        S = self._addr(off)
        emit = self.lines.append
        # The second-page guard must not raise (the interpreter fires
        # the tracer before its resolve would), so a build-time-valid
        # mapping that later faults degrades to STALE + interpretation.
        emit("    try:")
        emit(f"        _e2 = v.mmu.resolve_entry({vaddr2})")
        emit("    except _TE:")
        emit("        _e2 = None")
        emit(
            f"    if _e2 is None or _e2[0] != {hpfn2} "
            f"or v._frame_versions.get({hpfn2}, 0) != {v2}:"
        )
        emit("        return _STALE")
        emit("    tr = v.block_tracer")
        emit("    if tr is not None:")
        emit(f"        tr({S}, {S})")
        if instr.op in _TERMINATORS:
            steps: List[object] = []
            term: Optional[Instr] = instr
            block_len = instr.length
        else:
            steps = [instr]
            term = None
            block_len = instr.length
        self._emit_body(off, steps, term, block_len, 1, frozenset((off,)), False)

    def _emit_push(self, pad: str, value: str) -> None:
        """Inline ``Vcpu.push``'s stack-page fast path (same arithmetic,
        same hit counter); misses and page crossings call the method."""
        emit = self.lines.append
        emit(f"{pad}_sp = (v.esp - 4) & 0xFFFFFFFF")
        emit(f"{pad}_o = _sp & 0xFFF")
        emit(f"{pad}_c = v._stack_cache")
        emit(f"{pad}_p = v.mmu.cr3")
        emit(
            f"{pad}if _o <= 0xFFC and _c is not None and _c[0] == _sp >> 12 "
            f"and _c[1] is _p and _c[2] == _p.generation and _c[3][0] == _c[4]:"
        )
        emit(f"{pad}    v.esp = _sp")
        emit(f"{pad}    v._stack_hits.value += 1")
        emit(f"{pad}    _f = _c[5]")
        emit(f"{pad}    _x = {value}")
        emit(f"{pad}    _f[_o] = _x & 0xFF")
        emit(f"{pad}    _f[_o + 1] = (_x >> 8) & 0xFF")
        emit(f"{pad}    _f[_o + 2] = (_x >> 16) & 0xFF")
        emit(f"{pad}    _f[_o + 3] = (_x >> 24) & 0xFF")
        emit(f"{pad}else:")
        emit(f"{pad}    v.push({value})")

    def _emit_pop(self, pad: str, dest: str) -> None:
        """Inline ``Vcpu.pop``'s stack-page fast path into ``dest``."""
        emit = self.lines.append
        emit(f"{pad}_sp = v.esp")
        emit(f"{pad}_o = _sp & 0xFFF")
        emit(f"{pad}_c = v._stack_cache")
        emit(f"{pad}_p = v.mmu.cr3")
        emit(
            f"{pad}if _o <= 0xFFC and _c is not None and _c[0] == _sp >> 12 "
            f"and _c[1] is _p and _c[2] == _p.generation and _c[3][0] == _c[4]:"
        )
        emit(f"{pad}    v.esp = (_sp + 4) & 0xFFFFFFFF")
        emit(f"{pad}    v._stack_hits.value += 1")
        emit(f"{pad}    _f = _c[5]")
        emit(
            f"{pad}    {dest} = _f[_o] | (_f[_o + 1] << 8) "
            f"| (_f[_o + 2] << 16) | (_f[_o + 3] << 24)"
        )
        emit(f"{pad}else:")
        emit(f"{pad}    {dest} = v.pop()")

    def _emit_body(
        self,
        off: int,
        steps: List[object],
        term: Optional[Instr],
        block_len: int,
        indent: int,
        visited: FrozenSet[int],
        allow_fuse: bool,
    ) -> None:
        pad = "    " * indent
        emit = self.lines.append
        cur = off
        pend = 0
        eip_at = off  # page offset currently materialized in v.eip
        poisoned = False  # an ACT ran: memory/versions may have changed

        def flush_counts(extra: int = 0) -> None:
            nonlocal pend
            n = pend + extra
            if n:
                emit(f"{pad}v.cycles += {n}")
                emit(f"{pad}v.instructions += {n}")
            pend = 0

        def flush_eip() -> None:
            nonlocal eip_at
            if eip_at != cur:
                emit(f"{pad}v.eip = {self._addr(cur)}")
                eip_at = cur

        for step in steps:
            if type(step) is tuple:
                _, n_insns, n_bytes = step
                pend += n_insns
                cur += n_bytes
                continue
            op = step.op
            ln = step.length
            if op is Op.MOV_EBP_ESP:
                pend += 1
                emit(f"{pad}v.ebp = v.esp")
            elif op is Op.PUSH_EBP:
                flush_counts(1)
                flush_eip()
                self._emit_push(pad, "v.ebp")
            elif op is Op.PUSH_IMM:
                flush_counts(1)
                flush_eip()
                self._emit_push(pad, str((step.operand or 0) & _MASK))
            elif op is Op.PRED:
                flush_counts(1)
                flush_eip()
                emit(f"{pad}v.zf = not v.bridge.eval_pred({step.operand or 0})")
                emit(f"{pad}v.eip = (v.eip + {ln}) & 0xFFFFFFFF")
                emit(f"{pad}if v.eip != {self._addr(cur + ln)}:")
                emit(f"{pad}    return None")
                eip_at = cur + ln
            elif op is Op.ACT:
                flush_counts(1)
                flush_eip()
                emit(f"{pad}v.bridge.do_act({step.operand or 0})")
                emit(f"{pad}v.eip = (v.eip + {ln}) & 0xFFFFFFFF")
                emit(f"{pad}if v.eip != {self._addr(cur + ln)}:")
                emit(f"{pad}    return _BAIL")
                eip_at = cur + ln
                poisoned = True
            elif op is Op.LEAVE:
                flush_counts(1)
                flush_eip()
                emit(f"{pad}v.esp = v.ebp")
                self._emit_pop(pad, "v.ebp")
            elif op is Op.OR_MIS:
                flush_counts(1)
                flush_eip()
                emit(f"{pad}v.misdecodes.value += 1")
                emit(f"{pad}_t = v.telemetry")
                emit(f"{pad}if _t is not None and _t.tracing:")
                emit(
                    f"{pad}    _t.emit('misdecode', cycles=v.cycles, "
                    f"cpu=v.cpu_id, rip=v.eip)"
                )
            elif op is Op.CLI:
                pend += 1
                emit(f"{pad}v.if_enabled = False")
            elif op is Op.STI:
                pend += 1
                emit(f"{pad}v.if_enabled = True")
            elif op is Op.FILL:
                pend += 1
            else:
                raise _Untranslatable(str(op))
            cur += ln

        end = "_BAIL" if poisoned else "None"
        if term is None:
            flush_counts(0)
            self._emit_transfer(
                off + block_len, indent, visited, poisoned, eip_at, allow_fuse
            )
            return
        op = term.op
        ln = term.length
        rel = term.operand or 0
        if op is Op.CALL:
            flush_counts(1)
            flush_eip()
            self._emit_push(pad, str(self._addr(cur + ln)))
            self._emit_transfer(
                cur + ln + rel, indent, visited, poisoned, eip_at, allow_fuse
            )
        elif op is Op.JMP:
            flush_counts(1)
            self._emit_transfer(
                cur + ln + rel, indent, visited, poisoned, eip_at, allow_fuse
            )
        elif op is Op.JZ:
            flush_counts(1)
            emit(f"{pad}if v.zf:")
            self._emit_transfer(
                cur + ln + rel, indent + 1, visited, poisoned, eip_at, allow_fuse
            )
            emit(f"{pad}else:")
            self._emit_transfer(
                cur + ln, indent + 1, visited, poisoned, eip_at, allow_fuse
            )
        elif op is Op.RET:
            flush_counts(1)
            flush_eip()
            self._emit_pop(pad, "v.eip")
            emit(f"{pad}return {end}")
        elif op is Op.DISPATCH:
            flush_counts(1)
            flush_eip()
            emit(f"{pad}_d = v.bridge.resolve_slot({term.operand or 0})")
            emit(f"{pad}v.push((v.eip + {ln}) & 0xFFFFFFFF)")
            emit(f"{pad}v.eip = _d & 0xFFFFFFFF")
            emit(f"{pad}return _BAIL")
        elif op is Op.INT:
            flush_counts(1)
            emit(f"{pad}v.eip = {self._addr(cur + ln)}")
            emit(f"{pad}v.bridge.on_software_interrupt(v, {term.operand or 0})")
            emit(f"{pad}return _BAIL")
        elif op is Op.IRET:
            flush_counts(1)
            flush_eip()
            emit(f"{pad}v.bridge.on_iret(v)")
            emit(f"{pad}return _BAIL")
        elif op is Op.CTXSW:
            flush_counts(1)
            emit(f"{pad}v.eip = {self._addr(cur + ln)}")
            emit(f"{pad}v.bridge.on_ctxsw(v)")
            emit(f"{pad}return _BAIL")
        elif op is Op.HLT:
            flush_counts(1)
            emit(f"{pad}v.eip = {self._addr(cur + ln)}")
            emit(f"{pad}return v.snapshot_exit(_HLT)")
        elif op in (Op.UD2, Op.INVALID):
            flush_counts(1)
            flush_eip()
            emit(f"{pad}return v.snapshot_exit(_UD)")
        else:  # pragma: no cover - terminator partition is fixed
            raise _Untranslatable(str(op))

    def _emit_transfer(
        self,
        t: int,
        indent: int,
        visited: FrozenSet[int],
        poisoned: bool,
        eip_at: int,
        allow_fuse: bool,
    ) -> None:
        """Emit the control transfer to page offset ``t``: either fuse
        the successor block inline (superblock) or end the member."""
        pad = "    " * indent
        emit = self.lines.append
        target = self._addr(t)
        back_edge = (
            allow_fuse
            and not poisoned
            and t == self.entry_off
            and target not in self.trap_set
        )
        fuse = (
            not back_edge
            and allow_fuse
            and not poisoned
            and self.budget > 0
            and 0 <= t < PAGE_SIZE
            and t not in visited
            and target not in self.trap_set
        )
        if fuse:
            (_fsteps, fterm, flen), _fkey = self._block_at(t)
            if fterm is None and flen == 0:
                fuse = False  # spanning instruction: leave to the executor
        if eip_at != t:
            emit(f"{pad}v.eip = {target}")
        if not (fuse or back_edge):
            emit(f"{pad}return {'_BAIL' if poisoned else 'None'}")
            return
        # The interpreter's boundary checks, in its order (budget,
        # sampler due-mark, interrupt window); the trap check is folded
        # into the build-time `target not in trap_set` above, valid
        # while the table's trap epoch holds.
        emit(f"{pad}if v.instructions >= stop:")
        emit(f"{pad}    return None")
        emit(f"{pad}if v.cycles >= v._sample_due:")
        emit(f"{pad}    return None")
        emit(f"{pad}{self.irq_check}")
        emit(f"{pad}    return None")
        if back_edge:
            # Loop back to the member's own entry without leaving the
            # closure; re-read the tracer the way the interpreter does
            # at every block boundary.
            emit(f"{pad}tr = v.block_tracer")
            emit(f"{pad}continue")
            return
        self._emit_block(t, indent, visited | {t})
