"""Virtual machine introspection: parsing guest memory from the host.

FACE-CHANGE is guest-transparent: everything it learns about the guest --
which process is about to run (``READ_PROC_INFO`` in Algorithm 1), where
each kernel module is loaded -- it learns by parsing guest kernel data
structures out of raw memory.  The simulated kernel maintains the same
structures at fixed, kernel-published addresses (see
:mod:`repro.memory.layout` and :mod:`repro.kernel.image`).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List

from repro.memory.mmu import Mmu

#: Guest kernel data region used for introspectable structures.
#: One record per CPU (like per-cpu ``current`` on real SMP kernels).
CURRENT_TASK_ADDR = 0xC1000000
#: Layout per record: pid u32, comm char[16].
CURRENT_TASK_SIZE = 20
#: Stride between per-CPU current-task records.
CURRENT_TASK_STRIDE = 32
MODULE_LIST_HEAD_ADDR = 0xC1000100
#: Module descriptor: name char[24], base u32, size u32, next u32.
MODULE_DESC_SIZE = 36


@dataclass(frozen=True)
class GuestProcessInfo:
    """What the hypervisor can learn about the process being scheduled."""

    pid: int
    comm: str


@dataclass(frozen=True)
class GuestModuleInfo:
    """One entry of the guest's kernel module list."""

    name: str
    base: int
    size: int


class Introspector:
    """Reads guest kernel structures through a VCPU's MMU."""

    def __init__(self, mmu: Mmu) -> None:
        self.mmu = mmu

    def read_current_process(self, cpu: int = 0) -> GuestProcessInfo:
        """Parse the guest's per-CPU "current task" record (pid + comm)."""
        addr = CURRENT_TASK_ADDR + cpu * CURRENT_TASK_STRIDE
        raw = self.mmu.read(addr, CURRENT_TASK_SIZE)
        pid = struct.unpack_from("<I", raw, 0)[0]
        comm = raw[4:20].split(b"\x00", 1)[0].decode("ascii", "replace")
        return GuestProcessInfo(pid=pid, comm=comm)

    def read_module_list(self) -> List[GuestModuleInfo]:
        """Walk the guest's module list (like reading ``modules`` in Linux)."""
        modules: List[GuestModuleInfo] = []
        head = self.mmu.read_u32(MODULE_LIST_HEAD_ADDR)
        ptr = head
        seen = set()
        while ptr and ptr not in seen:
            seen.add(ptr)
            raw = self.mmu.read(ptr, MODULE_DESC_SIZE)
            name = raw[0:24].split(b"\x00", 1)[0].decode("ascii", "replace")
            base, size, nxt = struct.unpack_from("<III", raw, 24)
            modules.append(GuestModuleInfo(name=name, base=base, size=size))
            ptr = nxt
        return modules
