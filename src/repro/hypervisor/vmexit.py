"""VM exit descriptions returned by :meth:`repro.hypervisor.vcpu.Vcpu.run`."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class VmExitReason(enum.Enum):
    """Why the VCPU stopped executing guest code."""

    #: Fetch reached a hypervisor-registered trap address (used for the
    #: ``context_switch`` and ``resume_userspace`` traps).
    ADDRESS_TRAP = "address_trap"
    #: ``UD2`` (or an undecodable byte) raised ``#UD`` -- the kernel-view
    #: boundary violation FACE-CHANGE's recovery handles.
    INVALID_OPCODE = "invalid_opcode"
    #: The guest executed ``hlt`` (idle); the host may advance virtual time.
    HLT = "hlt"
    #: The instruction budget given to ``run()`` was exhausted.
    BUDGET = "budget"
    #: Unrecoverable guest error (translation failure, stack fault).
    ERROR = "error"


@dataclass
class VmExit:
    """A single VM exit: the reason plus the faulting state snapshot."""

    reason: VmExitReason
    rip: int = 0
    rbp: int = 0
    rsp: int = 0
    detail: Optional[str] = None

    def __str__(self) -> str:
        text = f"{self.reason.value} @ {self.rip:#010x}"
        if self.detail:
            text += f" ({self.detail})"
        return text
