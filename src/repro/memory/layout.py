"""Guest address-space layout constants (32-bit, 3G/4G split).

Mirrors the i386 Ubuntu 10.04 guest the paper evaluates on: user space
occupies 0..3G, the kernel is mapped at ``0xC0000000`` with its text at
``0xC0100000``, and loadable module code lives in the kernel heap region
around ``0xF8000000`` (which is why the paper's Figure 5 shows rootkit
addresses like ``0xf8078bbe``).
"""

from __future__ import annotations

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
PAGE_MASK = ~(PAGE_SIZE - 1) & 0xFFFFFFFF

KERNEL_BASE = 0xC0000000
KERNEL_TEXT_BASE = 0xC0100000
#: Per-task kernel stacks are carved out of this region.
KERNEL_STACK_BASE = 0xC8000000
#: Kernel heap region where module code is loaded at run time.
MODULE_SPACE_BASE = 0xF8000000

USER_TEXT_BASE = 0x08048000
USER_STACK_TOP = 0xBFFF0000

ADDRESS_MASK = 0xFFFFFFFF


def page_number(addr: int) -> int:
    """Virtual/physical page frame number containing ``addr``."""
    return (addr & ADDRESS_MASK) >> PAGE_SHIFT


def page_base(addr: int) -> int:
    """Base address of the page containing ``addr``."""
    return addr & PAGE_MASK


def page_offset(addr: int) -> int:
    """Offset of ``addr`` within its page."""
    return addr & (PAGE_SIZE - 1)


def is_kernel_address(addr: int) -> bool:
    """True when ``addr`` is in the kernel half of the split."""
    return (addr & ADDRESS_MASK) >= KERNEL_BASE
