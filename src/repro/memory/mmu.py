"""Software MMU: combined GVA -> GPA -> HPA translation with caching.

The cache maps a guest virtual frame number to the backing host frame and
its bytearray, tagged with the generation counters of the active guest
page table and the EPT (and the frame's write version for code fetches).
Any remapping -- a guest ``mmap``, or FACE-CHANGE flipping EPT entries on
a kernel-view switch -- bumps a generation and implicitly invalidates all
cached translations, which is the software analogue of a TLB flush.
"""

from __future__ import annotations

import struct
from typing import Dict, Optional, Tuple

from repro.memory.ept import EptViolation, ExtendedPageTable
from repro.memory.layout import PAGE_SHIFT, PAGE_SIZE
from repro.memory.paging import GuestPageTable, PageFault
from repro.memory.physmem import PhysicalMemory


class TranslationError(Exception):
    """A guest access that neither the guest PT nor the EPT can satisfy."""

    def __init__(self, gva: int, cause: Exception):
        super().__init__(f"cannot translate gva {gva:#010x}: {cause}")
        self.gva = gva
        self.cause = cause


class Mmu:
    """Per-VCPU software MMU.

    ``cr3`` selects the active guest page table; the EPT is fixed per
    VCPU (the hypervisor swaps its *contents*, not the object).
    """

    def __init__(self, physmem: PhysicalMemory, ept: ExtendedPageTable) -> None:
        self.physmem = physmem
        self.ept = ept
        self.cr3: Optional[GuestPageTable] = None
        self._cache: Dict[int, Tuple[int, bytearray]] = {}
        self._cache_pt_gen = -1
        self._cache_ept_gen = -1

    def set_cr3(self, page_table: GuestPageTable) -> None:
        """Switch address space (guest context switch)."""
        if page_table is not self.cr3:
            self.cr3 = page_table
            self._cache.clear()
            self._cache_pt_gen = page_table.generation
            self._cache_ept_gen = self.ept.generation

    def _check_generations(self) -> None:
        if self.cr3 is None:
            raise TranslationError(0, PageFault(0))
        if (
            self._cache_pt_gen != self.cr3.generation
            or self._cache_ept_gen != self.ept.generation
        ):
            self._cache.clear()
            self._cache_pt_gen = self.cr3.generation
            self._cache_ept_gen = self.ept.generation

    def resolve_page(self, gva: int) -> Tuple[int, bytearray]:
        """Return ``(hpfn, frame bytes)`` for the page containing ``gva``."""
        self._check_generations()
        vfn = (gva & 0xFFFFFFFF) >> PAGE_SHIFT
        cached = self._cache.get(vfn)
        if cached is not None:
            return cached
        assert self.cr3 is not None
        try:
            gpa = self.cr3.translate(vfn << PAGE_SHIFT)
            hpfn = self.ept.translate_frame(gpa >> PAGE_SHIFT)
        except (PageFault, EptViolation) as exc:
            raise TranslationError(gva, exc) from exc
        frame = self.physmem.frame(hpfn)
        entry = (hpfn, frame)
        self._cache[vfn] = entry
        return entry

    def translate(self, gva: int) -> int:
        """Full GVA -> HPA translation of a single address."""
        hpfn, _ = self.resolve_page(gva)
        return (hpfn << PAGE_SHIFT) | (gva & (PAGE_SIZE - 1))

    # -- guest-virtual byte access -------------------------------------------

    def read(self, gva: int, length: int) -> bytes:
        out = bytearray()
        addr = gva
        remaining = length
        while remaining > 0:
            _, frame = self.resolve_page(addr)
            offset = addr & (PAGE_SIZE - 1)
            chunk = min(PAGE_SIZE - offset, remaining)
            out.extend(frame[offset : offset + chunk])
            addr = (addr + chunk) & 0xFFFFFFFF
            remaining -= chunk
        return bytes(out)

    def write(self, gva: int, data: bytes) -> None:
        addr = gva
        pos = 0
        remaining = len(data)
        while remaining > 0:
            hpfn, frame = self.resolve_page(addr)
            offset = addr & (PAGE_SIZE - 1)
            chunk = min(PAGE_SIZE - offset, remaining)
            frame[offset : offset + chunk] = data[pos : pos + chunk]
            # Keep frame versions honest for the decoded-block cache.
            self.physmem.bump_version(hpfn)
            addr = (addr + chunk) & 0xFFFFFFFF
            pos += chunk
            remaining -= chunk

    def read_u32(self, gva: int) -> int:
        return struct.unpack("<I", self.read(gva, 4))[0]

    def write_u32(self, gva: int, value: int) -> None:
        self.write(gva, struct.pack("<I", value & 0xFFFFFFFF))
