"""Software MMU: combined GVA -> GPA -> HPA translation with caching.

The cache maps a guest virtual frame number to the backing host frame
plus the *epoch cell* of the EPT level-2 table covering its guest frame.
A guest page-table change still flushes the whole cache (the guest
remapped its own address space), but EPT mutations -- FACE-CHANGE
flipping kernel-code entries on a view switch -- invalidate only the
entries whose level-2 table was touched: cached user and stack
translations survive the switch, the software analogue of how real EPT
switching needs no TLB flush for untouched ranges.

Hit/miss/eviction counts are standalone until the owning vCPU is
attached to the machine's telemetry registry, which rebinds them to the
shared ``mmu.tlb.*`` counters.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Tuple

from repro.memory.ept import EptViolation, ExtendedPageTable
from repro.memory.layout import PAGE_SHIFT, PAGE_SIZE
from repro.memory.paging import GuestPageTable, PageFault
from repro.memory.physmem import PhysicalMemory
from repro.telemetry import Counter, Telemetry

#: A cached translation: (hpfn, frame bytes, epoch cell, epoch snapshot,
#: gpfn).  The entry is valid while ``cell[0] == epoch`` and the guest
#: page table generation is unchanged.
_Entry = Tuple[int, bytearray, List[int], int, int]


class TranslationError(Exception):
    """A guest access that neither the guest PT nor the EPT can satisfy."""

    def __init__(self, gva: int, cause: Exception):
        super().__init__(f"cannot translate gva {gva:#010x}: {cause}")
        self.gva = gva
        self.cause = cause


class Mmu:
    """Per-VCPU software MMU.

    ``cr3`` selects the active guest page table; the EPT is fixed per
    VCPU (the hypervisor swaps its *contents*, not the object).
    """

    def __init__(self, physmem: PhysicalMemory, ept: ExtendedPageTable) -> None:
        self.physmem = physmem
        self.ept = ept
        self.cr3: Optional[GuestPageTable] = None
        self._cache: Dict[int, _Entry] = {}
        self._cache_pt_gen = -1
        self._shared_refs = physmem.shared.refs
        self._tlb_hits = Counter("mmu.tlb.hits")
        self._tlb_misses = Counter("mmu.tlb.misses")
        self._tlb_evictions = Counter("mmu.tlb.evictions")

    def attach_telemetry(self, telemetry: Telemetry) -> None:
        """Rebind the TLB counters to the machine-wide registry."""
        for attr in ("_tlb_hits", "_tlb_misses", "_tlb_evictions"):
            standalone = getattr(self, attr)
            registered = telemetry.counter(standalone.name)
            if registered is not standalone:
                registered.value += standalone.value
                setattr(self, attr, registered)

    def invalidate_cache(self) -> None:
        """Drop every cached translation (host-side administrative flush).

        Used by snapshot capture/fork: cached entries hold references to
        physical frame bytearrays, which must not leak across a CoW
        re-basing.  Unlike organic evictions this is not counted -- it
        reflects no guest behaviour.
        """
        self._cache.clear()

    def set_cr3(self, page_table: GuestPageTable) -> None:
        """Switch address space (guest context switch)."""
        if page_table is not self.cr3:
            self.cr3 = page_table
            self._tlb_evictions.value += len(self._cache)
            self._cache.clear()
            self._cache_pt_gen = page_table.generation

    def resolve_entry(self, gva: int) -> _Entry:
        """The cached translation entry for the page containing ``gva``."""
        cr3 = self.cr3
        if cr3 is None:
            raise TranslationError(0, PageFault(0))
        if self._cache_pt_gen != cr3.generation:
            self._tlb_evictions.value += len(self._cache)
            self._cache.clear()
            self._cache_pt_gen = cr3.generation
        vfn = (gva & 0xFFFFFFFF) >> PAGE_SHIFT
        entry = self._cache.get(vfn)
        if entry is not None:
            if entry[2][0] == entry[3]:
                self._tlb_hits.value += 1
                return entry
            self._tlb_evictions.value += 1
        self._tlb_misses.value += 1
        try:
            gpa = cr3.translate(vfn << PAGE_SHIFT)
            gpfn = gpa >> PAGE_SHIFT
            hpfn = self.ept.translate_frame(gpfn)
        except (PageFault, EptViolation) as exc:
            raise TranslationError(gva, exc) from exc
        cell = self.ept.epoch_cell(gpfn)
        entry = (hpfn, self.physmem.frame(hpfn), cell, cell[0], gpfn)
        self._cache[vfn] = entry
        return entry

    def resolve_page(self, gva: int) -> Tuple[int, bytearray]:
        """Return ``(hpfn, frame bytes)`` for the page containing ``gva``."""
        entry = self.resolve_entry(gva)
        return entry[0], entry[1]

    def translate(self, gva: int) -> int:
        """Full GVA -> HPA translation of a single address."""
        entry = self.resolve_entry(gva)
        return (entry[0] << PAGE_SHIFT) | (gva & (PAGE_SIZE - 1))

    # -- guest-virtual byte access -------------------------------------------

    def read(self, gva: int, length: int) -> bytes:
        offset = gva & (PAGE_SIZE - 1)
        if offset + length <= PAGE_SIZE:
            # fast path: the read stays within one page
            frame = self.resolve_entry(gva)[1]
            return bytes(frame[offset : offset + length])
        out = bytearray()
        addr = gva
        remaining = length
        while remaining > 0:
            frame = self.resolve_entry(addr)[1]
            offset = addr & (PAGE_SIZE - 1)
            chunk = min(PAGE_SIZE - offset, remaining)
            out.extend(frame[offset : offset + chunk])
            addr = (addr + chunk) & 0xFFFFFFFF
            remaining -= chunk
        return bytes(out)

    def write(self, gva: int, data: bytes) -> None:
        addr = gva
        pos = 0
        remaining = len(data)
        shared_refs = self._shared_refs
        while remaining > 0:
            entry = self.resolve_entry(addr)
            hpfn = entry[0]
            if shared_refs and hpfn in shared_refs:
                # CoW barrier: the page is a shared view frame (or an
                # original frame views still share) -- break the sharing
                # before the bytes change.
                redirect = self.physmem.shared.break_on_write(
                    entry[4], hpfn, self.ept
                )
                if redirect is not None:
                    entry = self.resolve_entry(addr)
                    hpfn = entry[0]
            frame = entry[1]
            offset = addr & (PAGE_SIZE - 1)
            chunk = min(PAGE_SIZE - offset, remaining)
            frame[offset : offset + chunk] = data[pos : pos + chunk]
            # Keep frame versions honest for the decoded-block cache.
            self.physmem.bump_version(hpfn)
            addr = (addr + chunk) & 0xFFFFFFFF
            pos += chunk
            remaining -= chunk

    def read_u32(self, gva: int) -> int:
        offset = gva & (PAGE_SIZE - 1)
        if offset <= PAGE_SIZE - 4:
            # fast path: direct indexing, like Vcpu.pop
            frame = self.resolve_entry(gva)[1]
            return (
                frame[offset]
                | (frame[offset + 1] << 8)
                | (frame[offset + 2] << 16)
                | (frame[offset + 3] << 24)
            )
        return struct.unpack("<I", self.read(gva, 4))[0]

    def write_u32(self, gva: int, value: int) -> None:
        self.write(gva, struct.pack("<I", value & 0xFFFFFFFF))
