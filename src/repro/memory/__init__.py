"""Simulated memory system: physical frames, guest paging and EPT.

The two-stage translation is the heart of FACE-CHANGE's mechanism: the
guest owns a conventional page table (guest-virtual to guest-physical)
while the hypervisor owns the Extended Page Tables (guest-physical to
host-physical).  Kernel view switching never touches guest state -- it
re-points EPT entries covering the kernel's code so the *same* guest
physical addresses resolve to per-view host frames.
"""

from repro.memory.layout import (
    KERNEL_BASE,
    KERNEL_STACK_BASE,
    KERNEL_TEXT_BASE,
    MODULE_SPACE_BASE,
    PAGE_MASK,
    PAGE_SHIFT,
    PAGE_SIZE,
    USER_STACK_TOP,
    USER_TEXT_BASE,
    is_kernel_address,
    page_base,
    page_number,
)
from repro.memory.physmem import PhysicalMemory
from repro.memory.paging import GuestPageTable, PageFault
from repro.memory.ept import ExtendedPageTable, EptViolation
from repro.memory.mmu import Mmu, TranslationError

__all__ = [
    "EptViolation",
    "ExtendedPageTable",
    "GuestPageTable",
    "KERNEL_BASE",
    "KERNEL_STACK_BASE",
    "KERNEL_TEXT_BASE",
    "MODULE_SPACE_BASE",
    "Mmu",
    "PAGE_MASK",
    "PAGE_SHIFT",
    "PAGE_SIZE",
    "PageFault",
    "PhysicalMemory",
    "TranslationError",
    "USER_STACK_TOP",
    "USER_TEXT_BASE",
    "is_kernel_address",
    "page_base",
    "page_number",
]
