"""Extended Page Tables: hypervisor-owned GPA -> HPA translation.

FACE-CHANGE's kernel view switching is implemented entirely here: each
view owns a set of host frames holding its (partially UD2-filled) copy of
the kernel code, and switching a view means re-pointing the EPT entries
covering the kernel-code guest-physical range at that view's frames
(Figure 2, steps 3A/3B in the paper).

The table is two-level like the paper's ("we modify the pointers to the
page directory (level 2 in the EPT)"): switching the contiguous base
kernel swaps whole level-2 table objects, while scattered module code
pages are switched entry-by-entry so that interleaved kernel *data* pages
keep their original mappings.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.memory.layout import PAGE_SHIFT

_TABLE_BITS = 10
_TABLE_SIZE = 1 << _TABLE_BITS
_TABLE_MASK = _TABLE_SIZE - 1

#: An epoch cell: a one-element list whose identity is stable for the
#: lifetime of the EPT, so cached translations can validate with a single
#: ``cell[0] == epoch`` comparison instead of a dict lookup.
EpochCell = List[int]


class EptViolation(Exception):
    """Guest-physical address with no EPT mapping."""

    def __init__(self, gpa: int):
        super().__init__(f"EPT violation at gpa {gpa:#010x}")
        self.gpa = gpa


class _EptLevel2:
    __slots__ = ("entries",)

    def __init__(self) -> None:
        self.entries: Dict[int, int] = {}


class ExtendedPageTable:
    """Two-level EPT with identity default mapping for guest RAM.

    By default every guest frame number maps to the identical host frame
    number (the usual "guest RAM is backed 1:1" simplification).  Explicit
    entries override the identity mapping; this is what view switching
    installs.
    """

    def __init__(self, identity_limit_gpfn: int = 1 << 18) -> None:
        self._directory: Dict[int, _EptLevel2] = {}
        #: gpfns below this translate identity unless overridden
        self.identity_limit_gpfn = identity_limit_gpfn
        #: global mutation counter (kept for inspection/tests); cached
        #: translations validate against the per-level-2-table epochs
        #: below, so remapping the kernel-code range does not invalidate
        #: cached user or stack translations.
        self.generation = 0
        self._epoch_cells: Dict[int, EpochCell] = {}

    # -- epochs --------------------------------------------------------------

    def epoch_cell(self, gpfn: int) -> EpochCell:
        """The epoch cell of the level-2 table covering ``gpfn``.

        Callers snapshot ``cell[0]`` alongside a translation and later
        compare it against the live cell: any remap of a gpfn sharing
        this level-2 table invalidates the snapshot, while remaps of
        other ranges leave it intact (selective TLB invalidation).
        """
        dir_index = gpfn >> _TABLE_BITS
        cell = self._epoch_cells.get(dir_index)
        if cell is None:
            cell = self._epoch_cells[dir_index] = [0]
        return cell

    def _bump_epoch(self, dir_index: int) -> None:
        cell = self._epoch_cells.get(dir_index)
        if cell is None:
            self._epoch_cells[dir_index] = [1]
        else:
            cell[0] += 1

    # -- entry management ----------------------------------------------------

    def map_frame(self, gpfn: int, hpfn: int) -> None:
        """Point ``gpfn`` at ``hpfn`` (single-entry update)."""
        table = self._directory.get(gpfn >> _TABLE_BITS)
        if table is None:
            table = _EptLevel2()
            self._directory[gpfn >> _TABLE_BITS] = table
        index = gpfn & _TABLE_MASK
        if table.entries.get(index) == hpfn:
            return  # no-op remap: keep every cached translation valid
        table.entries[index] = hpfn
        self.generation += 1
        self._bump_epoch(gpfn >> _TABLE_BITS)

    def map_frames(self, pairs: Iterable[Tuple[int, int]]) -> None:
        """Batch variant of :meth:`map_frame` (one generation bump)."""
        touched = False
        for gpfn, hpfn in pairs:
            table = self._directory.get(gpfn >> _TABLE_BITS)
            if table is None:
                table = _EptLevel2()
                self._directory[gpfn >> _TABLE_BITS] = table
            index = gpfn & _TABLE_MASK
            if table.entries.get(index) == hpfn:
                continue
            table.entries[index] = hpfn
            self._bump_epoch(gpfn >> _TABLE_BITS)
            touched = True
        if touched:
            self.generation += 1

    def unmap_frame(self, gpfn: int) -> None:
        """Remove an override, reverting ``gpfn`` to identity mapping."""
        table = self._directory.get(gpfn >> _TABLE_BITS)
        if table is not None and (gpfn & _TABLE_MASK) in table.entries:
            del table.entries[gpfn & _TABLE_MASK]
            self.generation += 1
            self._bump_epoch(gpfn >> _TABLE_BITS)

    def unmap_frames(self, gpfns: Iterable[int]) -> None:
        touched = False
        for gpfn in gpfns:
            table = self._directory.get(gpfn >> _TABLE_BITS)
            if table is not None and (gpfn & _TABLE_MASK) in table.entries:
                del table.entries[gpfn & _TABLE_MASK]
                self._bump_epoch(gpfn >> _TABLE_BITS)
                touched = True
        if touched:
            self.generation += 1

    def overridden_gpfns(self) -> List[int]:
        """All gpfns with non-identity mappings (for inspection/tests)."""
        out: List[int] = []
        for dir_index, table in self._directory.items():
            for entry_index in table.entries:
                out.append((dir_index << _TABLE_BITS) | entry_index)
        return sorted(out)

    # -- translation ---------------------------------------------------------

    def translate(self, gpa: int) -> int:
        """Translate ``gpa`` to a host-physical address."""
        gpfn = gpa >> PAGE_SHIFT
        return (self.translate_frame(gpfn) << PAGE_SHIFT) | (
            gpa & ((1 << PAGE_SHIFT) - 1)
        )

    def translate_frame(self, gpfn: int) -> int:
        """Translate a guest frame number to a host frame number."""
        table = self._directory.get(gpfn >> _TABLE_BITS)
        if table is not None:
            hpfn = table.entries.get(gpfn & _TABLE_MASK)
            if hpfn is not None:
                return hpfn
        if gpfn < self.identity_limit_gpfn:
            return gpfn
        raise EptViolation(gpfn << PAGE_SHIFT)
