"""Guest page tables: two-level GVA -> GPA translation.

Each process owns a :class:`GuestPageTable` (its ``cr3``).  Kernel
mappings (everything above ``KERNEL_BASE``) are shared between all
processes by sharing second-level table objects, exactly like a real
kernel shares its page-directory upper entries.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.memory.layout import KERNEL_BASE, PAGE_SHIFT

#: 10-bit directory index / 10-bit table index, like i386 non-PAE paging.
_TABLE_BITS = 10
_TABLE_SIZE = 1 << _TABLE_BITS
_TABLE_MASK = _TABLE_SIZE - 1


class PageFault(Exception):
    """Guest-level translation failure."""

    def __init__(self, gva: int):
        super().__init__(f"page fault at gva {gva:#010x}")
        self.gva = gva


class _PageTableLevel2:
    """A second-level table mapping 10 bits of vfn to gpfn."""

    __slots__ = ("entries",)

    def __init__(self) -> None:
        self.entries: Dict[int, int] = {}


class GuestPageTable:
    """A two-level guest page table.

    The generation counter increments whenever a mapping changes so the
    software MMU can invalidate cached translations.
    """

    def __init__(self) -> None:
        self._directory: Dict[int, _PageTableLevel2] = {}
        self.generation = 0

    # -- mapping management --------------------------------------------------

    def map_page(self, gva: int, gpa: int) -> None:
        """Map the page containing ``gva`` to the frame containing ``gpa``."""
        vfn = gva >> PAGE_SHIFT
        table = self._directory.get(vfn >> _TABLE_BITS)
        if table is None:
            table = _PageTableLevel2()
            self._directory[vfn >> _TABLE_BITS] = table
        table.entries[vfn & _TABLE_MASK] = gpa >> PAGE_SHIFT
        self.generation += 1

    def unmap_page(self, gva: int) -> None:
        vfn = gva >> PAGE_SHIFT
        table = self._directory.get(vfn >> _TABLE_BITS)
        if table is not None:
            table.entries.pop(vfn & _TABLE_MASK, None)
            self.generation += 1

    def share_kernel_mappings(self, other: "GuestPageTable") -> None:
        """Share this table's kernel-half level-2 tables into ``other``.

        Mimics how every process page directory points at the same kernel
        page tables.
        """
        kernel_dir_start = (KERNEL_BASE >> PAGE_SHIFT) >> _TABLE_BITS
        for index, table in self._directory.items():
            if index >= kernel_dir_start:
                other._directory[index] = table
        other.generation += 1

    # -- translation ---------------------------------------------------------

    def translate(self, gva: int) -> int:
        """Translate ``gva`` to a guest-physical address or raise PageFault."""
        vfn = (gva & 0xFFFFFFFF) >> PAGE_SHIFT
        table = self._directory.get(vfn >> _TABLE_BITS)
        if table is None:
            raise PageFault(gva)
        gpfn = table.entries.get(vfn & _TABLE_MASK)
        if gpfn is None:
            raise PageFault(gva)
        return (gpfn << PAGE_SHIFT) | (gva & ((1 << PAGE_SHIFT) - 1))

    def translate_page(self, gva: int) -> Optional[int]:
        """Return gpfn for the page containing ``gva`` or None."""
        vfn = (gva & 0xFFFFFFFF) >> PAGE_SHIFT
        table = self._directory.get(vfn >> _TABLE_BITS)
        if table is None:
            return None
        return table.entries.get(vfn & _TABLE_MASK)
