"""Host physical memory: a sparse collection of 4 KiB frames.

Frames are identified by host page frame number (hpfn).  Guest RAM is
mapped into the low hpfns; frames the hypervisor allocates for kernel-view
copies live above :attr:`PhysicalMemory.guest_frames`.

Each frame carries a monotonically increasing *version* so that the
virtual CPU's decoded-block cache (and the software MMU's page cache) can
detect writes -- in particular, FACE-CHANGE's recovery path writing
recovered code into a view frame must invalidate previously decoded UD2
blocks for that page.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.memory.layout import PAGE_SIZE


class PhysicalMemoryError(Exception):
    """Access to an unmapped host frame."""


class PhysicalMemory:
    """Sparse physical memory with per-frame version counters."""

    def __init__(self, guest_frames: int = 1 << 18) -> None:
        #: number of hpfns reserved for guest RAM (default 1 GiB)
        self.guest_frames = guest_frames
        self._frames: Dict[int, bytearray] = {}
        self._versions: Dict[int, int] = {}
        self._next_hypervisor_frame = guest_frames

    # -- frame management ---------------------------------------------------

    def frame(self, hpfn: int) -> bytearray:
        """Return the backing bytearray for ``hpfn``, creating it lazily."""
        data = self._frames.get(hpfn)
        if data is None:
            data = bytearray(PAGE_SIZE)
            self._frames[hpfn] = data
            self._versions[hpfn] = 0
        return data

    def version(self, hpfn: int) -> int:
        """Current write-version of ``hpfn`` (0 for untouched frames)."""
        return self._versions.get(hpfn, 0)

    def bump_version(self, hpfn: int) -> None:
        """Record an external in-place write to ``hpfn``'s bytearray."""
        self._versions[hpfn] = self._versions.get(hpfn, 0) + 1

    def allocate_frames(self, count: int) -> List[int]:
        """Allocate ``count`` fresh hypervisor-owned frames."""
        start = self._next_hypervisor_frame
        self._next_hypervisor_frame += count
        return list(range(start, start + count))

    def free_frames(self, hpfns: List[int]) -> None:
        """Release hypervisor-owned frames (e.g. on view unload)."""
        for hpfn in hpfns:
            self._frames.pop(hpfn, None)
            self._versions.pop(hpfn, None)

    def allocated_frame_count(self) -> int:
        return len(self._frames)

    # -- byte access (host-physical addressing) ------------------------------

    def read(self, hpa: int, length: int) -> bytes:
        """Read ``length`` bytes starting at host-physical address ``hpa``."""
        out = bytearray()
        for hpfn, offset, chunk in self._spans(hpa, length):
            out.extend(self.frame(hpfn)[offset : offset + chunk])
        return bytes(out)

    def write(self, hpa: int, data: bytes) -> None:
        """Write ``data`` at host-physical address ``hpa``."""
        pos = 0
        for hpfn, offset, chunk in self._spans(hpa, len(data)):
            self.frame(hpfn)[offset : offset + chunk] = data[pos : pos + chunk]
            self._versions[hpfn] = self._versions.get(hpfn, 0) + 1
            pos += chunk

    def fill(self, hpa: int, length: int, pattern: bytes) -> None:
        """Fill ``length`` bytes at ``hpa`` by repeating ``pattern``.

        Used for UD2-filling view frames.  The pattern is laid down
        aligned to the start address, so a two-byte pattern written at an
        even address keeps ``0f`` on even offsets.
        """
        if not pattern:
            raise ValueError("empty fill pattern")
        repeated = (pattern * (length // len(pattern) + 2))[:length]
        self.write(hpa, repeated)

    def _spans(self, hpa: int, length: int) -> Iterator[Tuple[int, int, int]]:
        if length < 0:
            raise ValueError("negative length")
        remaining = length
        addr = hpa
        while remaining > 0:
            hpfn = addr >> 12
            offset = addr & (PAGE_SIZE - 1)
            chunk = min(PAGE_SIZE - offset, remaining)
            yield hpfn, offset, chunk
            addr += chunk
            remaining -= chunk
