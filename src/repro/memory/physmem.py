"""Host physical memory: a sparse collection of 4 KiB frames.

Frames are identified by host page frame number (hpfn).  Guest RAM is
mapped into the low hpfns; frames the hypervisor allocates for kernel-view
copies live above :attr:`PhysicalMemory.guest_frames`.

Each frame carries a monotonically increasing *version* so that the
virtual CPU's decoded-block cache (and the software MMU's page cache) can
detect writes -- in particular, FACE-CHANGE's recovery path writing
recovered code into a view frame must invalidate previously decoded UD2
blocks for that page.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.memory.layout import PAGE_SIZE


class PhysicalMemoryError(Exception):
    """Access to an unmapped host frame."""


class SharedFrameStore:
    """Refcounted frames shared copy-on-write between kernel views.

    Fresh views do not copy anything: every unprofiled page maps to one
    canonical all-UD2 frame, and every fully-loaded page maps straight to
    the original guest frame.  A private frame is materialized only when
    a partially-filled page is first written (``KernelView.copy_original``
    or the recovery path), via the write barrier below.

    The store tracks, per guest frame number, which views currently hold
    a shared mapping so the barrier can find the view whose copy must be
    broken out.  Reference counts decide when a hypervisor-owned shared
    frame can really be freed; original guest frames are never freed.
    """

    def __init__(self, physmem: "PhysicalMemory") -> None:
        self._physmem = physmem
        #: hpfn -> number of shared mappings (CoW-protected frames)
        self.refs: Dict[int, int] = {}
        #: gpfn -> views holding a shared mapping for that page
        self._owners: Dict[int, List[object]] = {}
        self._canonical_ud2: Optional[int] = None

    def canonical_ud2_frame(self, pattern: bytes) -> int:
        """The single shared all-``pattern`` frame (allocated lazily)."""
        if self._canonical_ud2 is None:
            hpfn = self._physmem.allocate_frames(1)[0]
            self._physmem.fill(hpfn << 12, PAGE_SIZE, pattern)
            # the store's own permanent reference keeps it alive forever
            self.refs[hpfn] = 1
            self._canonical_ud2 = hpfn
        return self._canonical_ud2

    def is_shared(self, hpfn: int) -> bool:
        return hpfn in self.refs

    def refcount(self, hpfn: int) -> int:
        return self.refs.get(hpfn, 0)

    def share(self, view: object, gpfn: int, hpfn: int) -> None:
        """Record that ``view`` maps ``gpfn`` to the shared ``hpfn``."""
        self.refs[hpfn] = self.refs.get(hpfn, 0) + 1
        self._owners.setdefault(gpfn, []).append(view)

    def unshare(self, view: object, gpfn: int, hpfn: int) -> None:
        """Drop one shared mapping; free the frame at zero references."""
        owners = self._owners.get(gpfn)
        if owners is not None:
            try:
                owners.remove(view)
            except ValueError:
                pass
            if not owners:
                del self._owners[gpfn]
        count = self.refs.get(hpfn, 0) - 1
        if count > 0:
            self.refs[hpfn] = count
        else:
            self.refs.pop(hpfn, None)
            if hpfn >= self._physmem.guest_frames:
                self._physmem.free_frames([hpfn])

    def break_on_write(self, gpfn: int, hpfn: int, ept: object = None) -> Optional[int]:
        """CoW write barrier: called before a write through ``gpfn``/``hpfn``.

        When the write arrives through an EPT with a view installed, that
        view materializes a private copy and the returned replacement
        hpfn receives the write.  When the write targets the *original*
        guest frame (``hpfn == gpfn``, e.g. a rootkit patching resident
        kernel text through the identity mapping), every view still
        sharing that frame snapshots it first, and ``None`` is returned
        so the write proceeds to the original.
        """
        owners = self._owners.get(gpfn)
        if not owners:
            return None
        redirect = None
        if ept is not None:
            for view in list(owners):
                if view.frames.get(gpfn) == hpfn and ept in view.installed_epts:
                    redirect = view.materialize_page(gpfn)
                    break
        if redirect is None and hpfn == gpfn:
            for view in list(owners):
                if view.frames.get(gpfn) == hpfn:
                    view.materialize_page(gpfn)
        return redirect


class PhysicalMemory:
    """Sparse physical memory with per-frame version counters.

    ``base_frames`` turns the instance into a copy-on-write overlay over
    a frozen parent image (``hpfn -> bytes``), which is how
    :class:`repro.fleet.snapshot.MachineSnapshot` forks guest clones:
    the base dict is shared (never copied, never mutated) between every
    clone, reads are served straight from it, and a private mutable
    frame is materialized only when :meth:`frame` is asked for a
    writable view of a page.  Snapshots of pristine machines only ever
    contain guest frames (< ``guest_frames``), so :meth:`free_frames` --
    which targets hypervisor-owned frames -- never has to tombstone the
    base layer.
    """

    def __init__(
        self,
        guest_frames: int = 1 << 18,
        base_frames: Optional[Dict[int, bytes]] = None,
    ) -> None:
        #: number of hpfns reserved for guest RAM (default 1 GiB)
        self.guest_frames = guest_frames
        self._frames: Dict[int, bytearray] = {}
        #: frozen copy-on-write parent image (shared between clones)
        self._base_frames: Dict[int, bytes] = (
            base_frames if base_frames is not None else {}
        )
        self._versions: Dict[int, int] = {}
        self._next_hypervisor_frame = guest_frames
        #: copy-on-write bookkeeping for deduplicated kernel-view frames
        self.shared = SharedFrameStore(self)
        #: frames whose bytes feed the function-boundary prologue memo;
        #: any write to one bumps ``code_epoch``, invalidating the memo
        self._watched_code: Set[int] = set()
        self.code_epoch = 0

    # -- frame management ---------------------------------------------------

    def frame(self, hpfn: int) -> bytearray:
        """Return the backing bytearray for ``hpfn``, creating it lazily.

        On a CoW overlay the first writable access to a base frame
        materializes a private copy; its version is inherited from the
        snapshot (the copy holds identical bytes, so cached decodes that
        key on the version stay valid).
        """
        data = self._frames.get(hpfn)
        if data is None:
            base = self._base_frames.get(hpfn)
            data = bytearray(base) if base is not None else bytearray(PAGE_SIZE)
            self._frames[hpfn] = data
            self._versions.setdefault(hpfn, 0)
        return data

    def version(self, hpfn: int) -> int:
        """Current write-version of ``hpfn`` (0 for untouched frames)."""
        return self._versions.get(hpfn, 0)

    def bump_version(self, hpfn: int) -> None:
        """Record an external in-place write to ``hpfn``'s bytearray."""
        self._versions[hpfn] = self._versions.get(hpfn, 0) + 1
        if hpfn in self._watched_code:
            self.code_epoch += 1

    def watch_code_frames(self, hpfns: Iterable[int]) -> None:
        """Mark frames whose writes must invalidate the prologue memo."""
        self._watched_code.update(hpfns)

    def allocate_frames(self, count: int) -> List[int]:
        """Allocate ``count`` fresh hypervisor-owned frames."""
        start = self._next_hypervisor_frame
        self._next_hypervisor_frame += count
        return list(range(start, start + count))

    def free_frames(self, hpfns: List[int]) -> None:
        """Release hypervisor-owned frames (e.g. on view unload)."""
        for hpfn in hpfns:
            self._frames.pop(hpfn, None)
            self._versions.pop(hpfn, None)

    def allocated_frame_count(self) -> int:
        return len(self._frames)

    def freeze_frames(self) -> Dict[int, bytes]:
        """An immutable image of every resident frame (snapshot base).

        Private (materialized) frames shadow same-numbered base frames,
        so freezing a CoW overlay yields the overlay's effective view.
        """
        merged: Dict[int, bytes] = dict(self._base_frames)
        for hpfn, data in self._frames.items():
            merged[hpfn] = bytes(data)
        return merged

    def base_frame_count(self) -> int:
        """Number of frames served from the shared CoW parent image."""
        return len(self._base_frames)

    # -- byte access (host-physical addressing) ------------------------------

    def read(self, hpa: int, length: int) -> bytes:
        """Read ``length`` bytes starting at host-physical address ``hpa``."""
        out = bytearray()
        frames = self._frames
        base = self._base_frames
        for hpfn, offset, chunk in self._spans(hpa, length):
            data = frames.get(hpfn)
            if data is None and base:
                # CoW fast path: serve reads from the shared parent image
                # without materializing a private frame.
                data = base.get(hpfn)
            if data is None:
                data = self.frame(hpfn)
            out.extend(data[offset : offset + chunk])
        return bytes(out)

    def write(self, hpa: int, data: bytes) -> None:
        """Write ``data`` at host-physical address ``hpa``."""
        pos = 0
        shared_refs = self.shared.refs
        for hpfn, offset, chunk in self._spans(hpa, len(data)):
            # CoW barrier: writing an original guest frame that views
            # still share (hpa == gpa for guest RAM) snapshots it first.
            if shared_refs and hpfn in shared_refs and hpfn < self.guest_frames:
                self.shared.break_on_write(hpfn, hpfn)
            self.frame(hpfn)[offset : offset + chunk] = data[pos : pos + chunk]
            self._versions[hpfn] = self._versions.get(hpfn, 0) + 1
            if hpfn in self._watched_code:
                self.code_epoch += 1
            pos += chunk

    def fill(self, hpa: int, length: int, pattern: bytes) -> None:
        """Fill ``length`` bytes at ``hpa`` by repeating ``pattern``.

        Used for UD2-filling view frames.  The pattern is laid down
        aligned to the start address, so a two-byte pattern written at an
        even address keeps ``0f`` on even offsets.
        """
        if not pattern:
            raise ValueError("empty fill pattern")
        repeated = (pattern * (length // len(pattern) + 2))[:length]
        self.write(hpa, repeated)

    def _spans(self, hpa: int, length: int) -> Iterator[Tuple[int, int, int]]:
        if length < 0:
            raise ValueError("negative length")
        remaining = length
        addr = hpa
        while remaining > 0:
            hpfn = addr >> 12
            offset = addr & (PAGE_SIZE - 1)
            chunk = min(PAGE_SIZE - offset, remaining)
            yield hpfn, offset, chunk
            addr += chunk
            remaining -= chunk
