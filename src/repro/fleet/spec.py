"""Declarative fleet specification.

A fleet spec names a set of *jobs* -- each an (application, workload
scale, optional malware injection) triple -- plus fleet-wide execution
parameters: worker count, per-guest cycle budgets and wall-clock
timeouts, and the base RNG seed.  Specs are plain dicts (JSON-friendly)
so they can live in files and ship with benchmark configs::

    {
      "name": "nightly",
      "workers": 4,
      "seed": 20140623,
      "jobs": [
        {"app": "top", "scale": 2},
        {"app": "apache", "scale": 2, "attack": "kbeast"}
      ]
    }

Every job gets a **deterministic derived seed**: SHA-256 over the fleet
base seed and the job's identity.  Python's builtin ``hash()`` is
process-randomized and must never be used here -- derived seeds have to
match across the pool workers and any single-machine re-run used to
check bit-identity.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.guest.config import GuestConfig, GuestConfigError, resolve_guest

#: Fleet-wide default base seed (the paper's publication date).
DEFAULT_SEED = 20140623
#: Default per-guest virtual-cycle budget.
DEFAULT_MAX_CYCLES = 60_000_000_000
#: Default per-job wall-clock timeout (seconds) under the process pool.
DEFAULT_TIMEOUT = 120.0


class FleetSpecError(Exception):
    """Malformed or unsatisfiable fleet specification."""


def derive_seed(base: int, identity: str) -> int:
    """Deterministic 63-bit seed for one job, stable across processes."""
    digest = hashlib.sha256(f"{base}:{identity}".encode()).digest()
    return int.from_bytes(digest[:8], "big") >> 1


@dataclass
class FleetJob:
    """One unit of fleet work: an app workload, optionally infected."""

    app: str
    scale: int = 2
    #: malware sample name (repro.malware.ALL_ATTACKS) to inject, or None
    attack: Optional[str] = None
    #: explicit seed override; None derives from the fleet base seed
    seed: Optional[int] = None
    max_cycles: int = DEFAULT_MAX_CYCLES
    timeout: float = DEFAULT_TIMEOUT
    #: guest build to run on; None means the default build
    guest: Optional[GuestConfig] = None
    #: unique within the spec; auto-assigned as ``app[+attack]#i``
    name: str = ""

    def __post_init__(self) -> None:
        if self.guest is not None and not isinstance(self.guest, GuestConfig):
            self.guest = resolve_guest(self.guest)

    def identity(self) -> str:
        suffix = f"+{self.attack}" if self.attack else ""
        variant = f"@{self.guest.label()}" if self.guest is not None else ""
        return f"{self.app}{suffix}{variant}"

    def guest_config(self) -> GuestConfig:
        """The job's guest build (the default build when unpinned)."""
        from repro.guest.config import DEFAULT_GUEST_CONFIG

        return self.guest if self.guest is not None else DEFAULT_GUEST_CONFIG

    def effective_seed(self, base: int) -> int:
        if self.seed is not None:
            return self.seed
        return derive_seed(base, self.name or self.identity())

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "name": self.name,
            "app": self.app,
            "scale": self.scale,
            "max_cycles": self.max_cycles,
            "timeout": self.timeout,
        }
        if self.attack:
            data["attack"] = self.attack
        if self.seed is not None:
            data["seed"] = self.seed
        if self.guest is not None:
            data["guest"] = self.guest.to_dict()
        return data


_JOB_KEYS = {
    "name", "app", "scale", "attack", "seed", "max_cycles", "timeout", "guest",
}
_SPEC_KEYS = {
    "name", "workers", "seed", "jobs", "scale", "max_cycles", "timeout",
    "guest", "matrix",
}
_MATRIX_KEYS = {"apps", "attacks", "guests"}


def _resolve_guest_field(ref: object, where: str) -> GuestConfig:
    """Resolve a guest reference, re-prefixing errors with spec context."""
    try:
        return resolve_guest(ref)  # type: ignore[arg-type]
    except GuestConfigError as exc:
        field = f".{exc.field}" if exc.field else ""
        raise FleetSpecError(f"{where}{field}: {exc.message}") from exc


def expand_matrix(
    matrix: Dict[str, object], attacks: Dict[str, object]
) -> List[Dict[str, object]]:
    """Expand an app x attack x guest-variant cross-product into raw jobs.

    Every guest variant gets, per app, one clean job plus one job per
    listed attack hosted by that app.  Attacks whose host app is not in
    the matrix are an error (they would silently never run).
    """
    if not isinstance(matrix, dict):
        raise FleetSpecError(
            f"matrix: must be an object, got {type(matrix).__name__}"
        )
    unknown = set(matrix) - _MATRIX_KEYS
    if unknown:
        raise FleetSpecError(
            f"matrix: unknown keys: {', '.join(sorted(unknown))} "
            f"(known: {', '.join(sorted(_MATRIX_KEYS))})"
        )
    apps = matrix.get("apps")
    if not isinstance(apps, list) or not apps:
        raise FleetSpecError("matrix.apps: must be a non-empty list")
    raw_attacks = matrix.get("attacks", [])
    if not isinstance(raw_attacks, list):
        raise FleetSpecError("matrix.attacks: must be a list")
    for j, attack_name in enumerate(raw_attacks):
        attack = attacks.get(attack_name)
        if attack is None:
            raise FleetSpecError(
                f"matrix.attacks[{j}]: unknown malware sample {attack_name!r} "
                f"(available: {', '.join(sorted(attacks))})"
            )
        if attack.host_app not in apps:
            raise FleetSpecError(
                f"matrix.attacks[{j}]: {attack_name!r} infects "
                f"{attack.host_app!r}, which is not in matrix.apps"
            )
    raw_guests = matrix.get("guests", [None])
    if not isinstance(raw_guests, list) or not raw_guests:
        raise FleetSpecError("matrix.guests: must be a non-empty list")
    guests = [
        _resolve_guest_field(ref, f"matrix.guests[{g}]") if ref is not None else None
        for g, ref in enumerate(raw_guests)
    ]
    jobs: List[Dict[str, object]] = []
    for guest in guests:
        for app in apps:
            base: Dict[str, object] = {"app": app}
            if guest is not None:
                base["guest"] = guest
            jobs.append(dict(base))
            for attack_name in raw_attacks:
                if attacks[attack_name].host_app == app:
                    jobs.append(dict(base, attack=attack_name))
    return jobs


@dataclass
class FleetSpec:
    """A complete fleet: jobs plus fleet-wide execution parameters."""

    jobs: List[FleetJob]
    name: str = "fleet"
    workers: int = 2
    seed: int = DEFAULT_SEED

    def __post_init__(self) -> None:
        if not self.jobs:
            raise FleetSpecError("fleet spec has no jobs")
        if self.workers < 1:
            raise FleetSpecError(f"workers must be >= 1, got {self.workers}")
        counts: Dict[str, int] = {}
        for job in self.jobs:
            if not job.name:
                index = counts.get(job.identity(), 0)
                counts[job.identity()] = index + 1
                job.name = f"{job.identity()}#{index}"
        names = [job.name for job in self.jobs]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise FleetSpecError(f"duplicate job names: {', '.join(dupes)}")

    def apps(self) -> List[str]:
        """Distinct applications the fleet needs profiles for, sorted."""
        return sorted({job.app for job in self.jobs})

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FleetSpec":
        from repro.apps.catalog import APP_CATALOG
        from repro.malware import ALL_ATTACKS

        if not isinstance(data, dict):
            raise FleetSpecError(f"fleet spec must be an object, got {type(data).__name__}")
        unknown = set(data) - _SPEC_KEYS
        if unknown:
            raise FleetSpecError(f"unknown spec keys: {', '.join(sorted(unknown))}")
        attacks = {attack.name: attack for attack in ALL_ATTACKS}
        raw_jobs = list(data.get("jobs") or [])
        if "matrix" in data:
            raw_jobs.extend(expand_matrix(data["matrix"], attacks))
        if not raw_jobs:
            raise FleetSpecError("fleet spec needs a non-empty 'jobs' list")
        spec_guest: Optional[GuestConfig] = None
        if data.get("guest") is not None:
            spec_guest = _resolve_guest_field(data["guest"], "guest")
        default_scale = int(data.get("scale", 2))
        default_cycles = int(data.get("max_cycles", DEFAULT_MAX_CYCLES))
        default_timeout = float(data.get("timeout", DEFAULT_TIMEOUT))
        jobs: List[FleetJob] = []
        for i, raw in enumerate(raw_jobs):
            if not isinstance(raw, dict):
                raise FleetSpecError(f"jobs[{i}]: must be an object")
            unknown = set(raw) - _JOB_KEYS
            if unknown:
                raise FleetSpecError(
                    f"jobs[{i}]: unknown keys: {', '.join(sorted(unknown))}"
                )
            app = raw.get("app")
            if app not in APP_CATALOG:
                raise FleetSpecError(
                    f"jobs[{i}].app: unknown application {app!r} "
                    f"(available: {', '.join(sorted(APP_CATALOG))})"
                )
            attack_name = raw.get("attack")
            if attack_name is not None:
                attack = attacks.get(attack_name)
                if attack is None:
                    raise FleetSpecError(
                        f"jobs[{i}].attack: unknown malware sample {attack_name!r} "
                        f"(available: {', '.join(sorted(attacks))})"
                    )
                if attack.host_app != app:
                    raise FleetSpecError(
                        f"jobs[{i}].attack: {attack_name!r} infects "
                        f"{attack.host_app!r}, not {app!r}"
                    )
            guest = spec_guest
            if raw.get("guest") is not None:
                guest = _resolve_guest_field(raw["guest"], f"jobs[{i}].guest")
            jobs.append(
                FleetJob(
                    app=app,
                    scale=int(raw.get("scale", default_scale)),
                    attack=attack_name,
                    seed=raw.get("seed"),
                    max_cycles=int(raw.get("max_cycles", default_cycles)),
                    timeout=float(raw.get("timeout", default_timeout)),
                    guest=guest,
                    name=str(raw.get("name", "")),
                )
            )
        return cls(
            jobs=jobs,
            name=str(data.get("name", "fleet")),
            workers=int(data.get("workers", 2)),
            seed=int(data.get("seed", DEFAULT_SEED)),
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "FleetSpec":
        path = Path(path)
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            raise FleetSpecError(f"unreadable fleet spec {path}: {exc}") from exc
        return cls.from_dict(data)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "workers": self.workers,
            "seed": self.seed,
            "jobs": [job.to_dict() for job in self.jobs],
        }


def uniform_spec(
    apps: List[str],
    scale: int = 2,
    workers: int = 2,
    repeat: int = 1,
    seed: int = DEFAULT_SEED,
    name: str = "fleet",
    guest: Union[None, str, Dict[str, object], GuestConfig] = None,
) -> FleetSpec:
    """Convenience: ``repeat`` identical jobs per app, no injections."""
    guest_config = resolve_guest(guest) if guest is not None else None
    jobs = [
        FleetJob(app=app, scale=scale, guest=guest_config)
        for _ in range(repeat)
        for app in apps
    ]
    return FleetSpec(jobs=jobs, name=name, workers=workers, seed=seed)
