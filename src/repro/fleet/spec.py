"""Declarative fleet specification.

A fleet spec names a set of *jobs* -- each an (application, workload
scale, optional malware injection) triple -- plus fleet-wide execution
parameters: worker count, per-guest cycle budgets and wall-clock
timeouts, and the base RNG seed.  Specs are plain dicts (JSON-friendly)
so they can live in files and ship with benchmark configs::

    {
      "name": "nightly",
      "workers": 4,
      "seed": 20140623,
      "jobs": [
        {"app": "top", "scale": 2},
        {"app": "apache", "scale": 2, "attack": "kbeast"}
      ]
    }

Every job gets a **deterministic derived seed**: SHA-256 over the fleet
base seed and the job's identity.  Python's builtin ``hash()`` is
process-randomized and must never be used here -- derived seeds have to
match across the pool workers and any single-machine re-run used to
check bit-identity.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

#: Fleet-wide default base seed (the paper's publication date).
DEFAULT_SEED = 20140623
#: Default per-guest virtual-cycle budget.
DEFAULT_MAX_CYCLES = 60_000_000_000
#: Default per-job wall-clock timeout (seconds) under the process pool.
DEFAULT_TIMEOUT = 120.0


class FleetSpecError(Exception):
    """Malformed or unsatisfiable fleet specification."""


def derive_seed(base: int, identity: str) -> int:
    """Deterministic 63-bit seed for one job, stable across processes."""
    digest = hashlib.sha256(f"{base}:{identity}".encode()).digest()
    return int.from_bytes(digest[:8], "big") >> 1


@dataclass
class FleetJob:
    """One unit of fleet work: an app workload, optionally infected."""

    app: str
    scale: int = 2
    #: malware sample name (repro.malware.ALL_ATTACKS) to inject, or None
    attack: Optional[str] = None
    #: explicit seed override; None derives from the fleet base seed
    seed: Optional[int] = None
    max_cycles: int = DEFAULT_MAX_CYCLES
    timeout: float = DEFAULT_TIMEOUT
    #: unique within the spec; auto-assigned as ``app[+attack]#i``
    name: str = ""

    def identity(self) -> str:
        suffix = f"+{self.attack}" if self.attack else ""
        return f"{self.app}{suffix}"

    def effective_seed(self, base: int) -> int:
        if self.seed is not None:
            return self.seed
        return derive_seed(base, self.name or self.identity())

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "name": self.name,
            "app": self.app,
            "scale": self.scale,
            "max_cycles": self.max_cycles,
            "timeout": self.timeout,
        }
        if self.attack:
            data["attack"] = self.attack
        if self.seed is not None:
            data["seed"] = self.seed
        return data


_JOB_KEYS = {"name", "app", "scale", "attack", "seed", "max_cycles", "timeout"}
_SPEC_KEYS = {"name", "workers", "seed", "jobs", "scale", "max_cycles", "timeout"}


@dataclass
class FleetSpec:
    """A complete fleet: jobs plus fleet-wide execution parameters."""

    jobs: List[FleetJob]
    name: str = "fleet"
    workers: int = 2
    seed: int = DEFAULT_SEED

    def __post_init__(self) -> None:
        if not self.jobs:
            raise FleetSpecError("fleet spec has no jobs")
        if self.workers < 1:
            raise FleetSpecError(f"workers must be >= 1, got {self.workers}")
        counts: Dict[str, int] = {}
        for job in self.jobs:
            if not job.name:
                index = counts.get(job.identity(), 0)
                counts[job.identity()] = index + 1
                job.name = f"{job.identity()}#{index}"
        names = [job.name for job in self.jobs]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise FleetSpecError(f"duplicate job names: {', '.join(dupes)}")

    def apps(self) -> List[str]:
        """Distinct applications the fleet needs profiles for, sorted."""
        return sorted({job.app for job in self.jobs})

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FleetSpec":
        from repro.apps.catalog import APP_CATALOG
        from repro.malware import ALL_ATTACKS

        if not isinstance(data, dict):
            raise FleetSpecError(f"fleet spec must be an object, got {type(data).__name__}")
        unknown = set(data) - _SPEC_KEYS
        if unknown:
            raise FleetSpecError(f"unknown spec keys: {', '.join(sorted(unknown))}")
        raw_jobs = data.get("jobs")
        if not isinstance(raw_jobs, list) or not raw_jobs:
            raise FleetSpecError("fleet spec needs a non-empty 'jobs' list")
        attacks = {attack.name: attack for attack in ALL_ATTACKS}
        default_scale = int(data.get("scale", 2))
        default_cycles = int(data.get("max_cycles", DEFAULT_MAX_CYCLES))
        default_timeout = float(data.get("timeout", DEFAULT_TIMEOUT))
        jobs: List[FleetJob] = []
        for i, raw in enumerate(raw_jobs):
            if not isinstance(raw, dict):
                raise FleetSpecError(f"job {i} must be an object")
            unknown = set(raw) - _JOB_KEYS
            if unknown:
                raise FleetSpecError(
                    f"job {i}: unknown keys: {', '.join(sorted(unknown))}"
                )
            app = raw.get("app")
            if app not in APP_CATALOG:
                raise FleetSpecError(
                    f"job {i}: unknown application {app!r} "
                    f"(available: {', '.join(sorted(APP_CATALOG))})"
                )
            attack_name = raw.get("attack")
            if attack_name is not None:
                attack = attacks.get(attack_name)
                if attack is None:
                    raise FleetSpecError(
                        f"job {i}: unknown malware sample {attack_name!r} "
                        f"(available: {', '.join(sorted(attacks))})"
                    )
                if attack.host_app != app:
                    raise FleetSpecError(
                        f"job {i}: {attack_name!r} infects "
                        f"{attack.host_app!r}, not {app!r}"
                    )
            jobs.append(
                FleetJob(
                    app=app,
                    scale=int(raw.get("scale", default_scale)),
                    attack=attack_name,
                    seed=raw.get("seed"),
                    max_cycles=int(raw.get("max_cycles", default_cycles)),
                    timeout=float(raw.get("timeout", default_timeout)),
                    name=str(raw.get("name", "")),
                )
            )
        return cls(
            jobs=jobs,
            name=str(data.get("name", "fleet")),
            workers=int(data.get("workers", 2)),
            seed=int(data.get("seed", DEFAULT_SEED)),
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "FleetSpec":
        path = Path(path)
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            raise FleetSpecError(f"unreadable fleet spec {path}: {exc}") from exc
        return cls.from_dict(data)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "workers": self.workers,
            "seed": self.seed,
            "jobs": [job.to_dict() for job in self.jobs],
        }


def uniform_spec(
    apps: List[str],
    scale: int = 2,
    workers: int = 2,
    repeat: int = 1,
    seed: int = DEFAULT_SEED,
    name: str = "fleet",
) -> FleetSpec:
    """Convenience: ``repeat`` identical jobs per app, no injections."""
    jobs = [
        FleetJob(app=app, scale=scale)
        for _ in range(repeat)
        for app in apps
    ]
    return FleetSpec(jobs=jobs, name=name, workers=workers, seed=seed)
