"""Persistent, content-addressed library of per-application profiles.

The paper's offline phase produces, per application: the kernel-view
profile (K[app]) and the benign-recovery reference ("recorded as a
reference for the administrator", §III-B3).  Both are properties of the
*application*, not of any one VM -- so the library persists them on disk
and every later run (or every clone in a fleet) loads them instead of
re-profiling.

Layout under the library root::

    objects/<sha256>.json   -- one immutable profile record each
    index.json              -- app name -> current digest (+ history)

Records are canonical JSON (sorted keys, no whitespace) addressed by
the SHA-256 of their bytes; ``get``/``load_digest`` re-hash the file
and refuse records whose content does not match their address, and
recompute the per-page frame deltas to cross-check the range payload.
The record format is versioned (``format``) so future fields can be
added without invalidating existing libraries.
"""

from __future__ import annotations

import hashlib
import json
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.core.kernel_view import KernelViewConfig
from repro.core.rangelist import KernelProfile
from repro.memory.layout import PAGE_SIZE

#: Record format version.  Bump when the payload schema changes.
#: v2 adds ``guest_digest``: the kernel-build digest
#: (:meth:`repro.guest.config.GuestConfig.build_digest`) of the guest the
#: profile was taken on.  v1 records load as "unpinned" with a warning.
FORMAT_VERSION = 2
_RECORD_KIND = "kernel-view-profile"


class ProfileLibraryError(Exception):
    """Corrupt record, failed checksum, or unknown application."""


def _frame_deltas(profile: KernelProfile) -> Dict[str, List[List[int]]]:
    """Per-page byte spans of each segment: ``[page, begin, end]`` rows.

    This is exactly the set of partial-page deltas a
    :class:`~repro.core.view_manager.KernelView` materializes over the
    canonical UD2 frame; storing it alongside the ranges documents the
    frame-level footprint and gives loads a redundant integrity check.
    """
    deltas: Dict[str, List[List[int]]] = {}
    for name, ranges in sorted(profile.segments.items()):
        rows: List[List[int]] = []
        for begin, end in ranges:
            addr = begin
            while addr < end:
                page = addr // PAGE_SIZE
                upper = min(end, (page + 1) * PAGE_SIZE)
                row = [page, addr % PAGE_SIZE, upper - page * PAGE_SIZE]
                if rows and rows[-1][0] == page and rows[-1][2] >= row[1]:
                    rows[-1][2] = max(rows[-1][2], row[2])
                else:
                    rows.append(row)
                addr = upper
        deltas[name] = rows
    return deltas


@dataclass
class ProfileRecord:
    """One library entry: a profile plus its offline-phase by-products."""

    config: KernelViewConfig
    #: benign-recovery reference: function names recovered by the clean
    #: workload under its own view (subtracted during detection)
    baseline: List[str] = field(default_factory=list)
    #: free-form provenance (profiling scale, workload, creator...)
    meta: Dict[str, object] = field(default_factory=dict)
    #: kernel-build digest the profile was taken on ("" = unpinned legacy)
    guest_digest: str = ""
    digest: str = ""

    @property
    def app(self) -> str:
        return self.config.app

    def payload(self) -> Dict[str, object]:
        return {
            "format": FORMAT_VERSION,
            "kind": _RECORD_KIND,
            "app": self.config.app,
            "notes": self.config.notes,
            "segments": self.config.profile.to_dict(),
            "frame_deltas": _frame_deltas(self.config.profile),
            "baseline": sorted(self.baseline),
            "meta": self.meta,
            "guest_digest": self.guest_digest,
        }

    @classmethod
    def from_payload(cls, data: Dict[str, object], digest: str = "") -> "ProfileRecord":
        if data.get("kind") != _RECORD_KIND:
            raise ProfileLibraryError(
                f"not a profile record (kind={data.get('kind')!r})"
            )
        version = data.get("format")
        if not isinstance(version, int) or version > FORMAT_VERSION:
            raise ProfileLibraryError(
                f"unsupported record format {version!r} "
                f"(this build reads <= {FORMAT_VERSION})"
            )
        config = KernelViewConfig(
            app=data["app"],
            profile=KernelProfile.from_dict(data.get("segments", {})),
            notes=data.get("notes", ""),
        )
        guest_digest = str(data.get("guest_digest", "") or "")
        if not guest_digest:
            warnings.warn(
                f"profile record for {data['app']!r} is unpinned "
                "(no guest_digest); it will be served for any guest variant",
                stacklevel=2,
            )
        record = cls(
            config=config,
            baseline=list(data.get("baseline", [])),
            meta=dict(data.get("meta", {})),
            guest_digest=guest_digest,
            digest=digest,
        )
        stored = data.get("frame_deltas")
        if stored is not None and stored != _frame_deltas(config.profile):
            raise ProfileLibraryError(
                f"frame deltas do not match ranges for {config.app!r} "
                "(corrupt or hand-edited record)"
            )
        return record


def _canonical(payload: Dict[str, object]) -> bytes:
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()


class ProfileLibrary:
    """Content-addressed on-disk store of :class:`ProfileRecord` entries."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.objects = self.root / "objects"
        self.index_path = self.root / "index.json"

    # -- index ---------------------------------------------------------------

    def _read_index(self) -> Dict[str, object]:
        if not self.index_path.exists():
            return {"format": FORMAT_VERSION, "profiles": {}}
        try:
            index = json.loads(self.index_path.read_text())
        except (OSError, ValueError) as exc:
            raise ProfileLibraryError(
                f"unreadable library index {self.index_path}: {exc}"
            ) from exc
        if not isinstance(index.get("profiles"), dict):
            raise ProfileLibraryError(
                f"malformed library index {self.index_path}"
            )
        return index

    def _write_index(self, index: Dict[str, object]) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        self.index_path.write_text(json.dumps(index, indent=2, sort_keys=True))

    def apps(self) -> List[str]:
        """Applications with a current profile, sorted."""
        return sorted(self._read_index()["profiles"])

    def has(self, app: str) -> bool:
        return app in self._read_index()["profiles"]

    def digest_of(self, app: str, guest_digest: Optional[str] = None) -> Optional[str]:
        """Record digest for ``app`` (optionally for one guest variant).

        Without ``guest_digest``, the app's current record; with it, the
        record pinned to that kernel build (``None`` if no such pin).
        """
        entry = self._read_index()["profiles"].get(app)
        if entry is None:
            return None
        if guest_digest:
            variants = entry.get("variants", {})
            return variants.get(guest_digest)
        return entry["digest"]

    def variants_of(self, app: str) -> Dict[str, str]:
        """``guest build digest -> record digest`` for ``app``'s pins."""
        entry = self._read_index()["profiles"].get(app)
        return dict(entry.get("variants", {})) if entry else {}

    # -- store / load --------------------------------------------------------

    def put(
        self,
        config: KernelViewConfig,
        baseline: Optional[List[str]] = None,
        meta: Optional[Dict[str, object]] = None,
        guest_digest: str = "",
    ) -> ProfileRecord:
        """Store a profile; returns the record with its content digest.

        ``guest_digest`` pins the record to the kernel build it was
        profiled on (the config's *build* digest -- platform excluded,
        since the paper profiles under qemu-tsc and enforces under
        kvm-pvclock on the same build).  Re-putting identical content is
        idempotent; putting changed content for the same app supersedes
        the current digest and appends the old one to the app's history.
        """
        record = ProfileRecord(
            config=config,
            baseline=list(baseline or []),
            meta=dict(meta or {}),
            guest_digest=guest_digest,
        )
        blob = _canonical(record.payload())
        digest = hashlib.sha256(blob).hexdigest()
        record.digest = digest
        self.objects.mkdir(parents=True, exist_ok=True)
        path = self.objects / f"{digest}.json"
        if not path.exists():
            path.write_text(blob.decode())
        index = self._read_index()
        entry = index["profiles"].setdefault(
            config.app, {"digest": digest, "history": []}
        )
        if entry["digest"] != digest:
            history = entry.setdefault("history", [])
            if entry["digest"] not in history:
                history.append(entry["digest"])
            entry["digest"] = digest
        if guest_digest:
            entry.setdefault("variants", {})[guest_digest] = digest
        self._write_index(index)
        return record

    def load_digest(self, digest: str) -> ProfileRecord:
        """Load one record by digest, validating its checksum."""
        path = self.objects / f"{digest}.json"
        try:
            blob = path.read_bytes()
        except OSError as exc:
            raise ProfileLibraryError(
                f"missing profile object {digest[:12]}...: {exc}"
            ) from exc
        actual = hashlib.sha256(blob).hexdigest()
        if actual != digest:
            raise ProfileLibraryError(
                f"checksum mismatch for {path.name}: content hashes to "
                f"{actual[:12]}... (corrupt or tampered record)"
            )
        try:
            payload = json.loads(blob)
        except ValueError as exc:
            raise ProfileLibraryError(
                f"undecodable profile object {path.name}: {exc}"
            ) from exc
        return ProfileRecord.from_payload(payload, digest=digest)

    def get(self, app: str, guest_digest: Optional[str] = None) -> ProfileRecord:
        """Load ``app``'s current record (checksum-validated).

        With ``guest_digest`` (a kernel *build* digest), the lookup
        matches on ``(app, guest_digest)``: a record pinned to a
        different build is refused rather than silently applied to the
        wrong kernel; a legacy unpinned record is served with a warning
        (emitted at load time).
        """
        digest = self.digest_of(app, guest_digest)
        if digest is None:
            digest = self.digest_of(app)
        if digest is None:
            raise ProfileLibraryError(
                f"no profile for {app!r} in library {self.root} "
                f"(available: {', '.join(self.apps()) or 'none'})"
            )
        record = self.load_digest(digest)
        if record.app != app:
            raise ProfileLibraryError(
                f"index for {app!r} points at a record for {record.app!r}"
            )
        if (
            guest_digest
            and record.guest_digest
            and record.guest_digest != guest_digest
        ):
            raise ProfileLibraryError(
                f"profile for {app!r} is pinned to guest build "
                f"{record.guest_digest[:12]} but the booted machine is "
                f"{guest_digest[:12]}; re-run the offline phase on this "
                "variant (profiles do not transfer across kernel builds)"
            )
        return record
