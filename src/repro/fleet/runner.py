"""Fleet runner: a work-queue scheduler over snapshot-forked guests.

The parent process boots **one** machine, captures a
:class:`~repro.fleet.snapshot.MachineSnapshot`, and loads every needed
profile from the library.  Only then does it create the worker pool --
on POSIX the pool uses the ``fork`` start method, so workers inherit
the snapshot, the warm assembler caches and the loaded profile records
through the copied address space with **zero pickling and zero
re-boots**.  Each job then costs a worker one in-memory CoW fork plus
the workload itself.

Isolation properties:

* a job that raises inside a worker returns a failure
  :class:`JobResult` -- it cannot take the fleet down;
* each job has a wall-clock timeout; a stuck guest marks its job
  failed and the fleet carries on;
* guests never share mutable state -- every clone has private frames
  (CoW) and a private telemetry registry, merged only after the fact.

Platforms without ``fork`` (or ``workers=1``) degrade gracefully to an
in-process threaded pool / serial loop with identical semantics --
results are bit-identical in every mode by construction.
"""

from __future__ import annotations

import json
import multiprocessing
import queue as queue_mod
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from repro.fleet.jobs import JobResult, execute_job
from repro.fleet.library import ProfileLibrary, ProfileRecord
from repro.fleet.snapshot import MachineSnapshot
from repro.fleet.spec import FleetJob, FleetSpec
from repro.guest.config import GuestConfig
from repro.guest.machine import boot_machine
from repro.telemetry.journal import JOURNAL_SCHEMA
from repro.telemetry.merge import merge_snapshots

#: Worker state inherited through ``fork`` (or shared with threads).
#: Populated in the parent *before* the pool exists; never pickled.
_WORKER: Dict[str, Any] = {}

#: Capacity of each worker's in-memory journal between segment drains.
_WORKER_JOURNAL_CAPACITY = 4096


def _configure_workers(
    snapshots: Dict[str, MachineSnapshot],
    records: Dict[Any, ProfileRecord],
    base_seed: int,
    bus: Optional[Any] = None,
    heartbeat_interval: float = 0.5,
) -> None:
    #: one snapshot per guest variant, keyed by full config digest
    _WORKER["snapshots"] = snapshots
    #: profile records keyed by (app, guest build digest)
    _WORKER["records"] = records
    _WORKER["seed"] = base_seed
    _WORKER["bus"] = bus
    _WORKER["heartbeat"] = heartbeat_interval


def _observe(machine) -> Dict[str, Any]:
    """Cheap read-only stats for a heartbeat message."""
    tel = machine.telemetry
    recoveries = tel.counters.get("recovery.recoveries")
    verdicts = tel.labelled.get("recovery.verdicts")
    return {
        "cycles": machine.cycles,
        "recoveries": recoveries.value if recoveries is not None else 0,
        "verdicts": (
            {str(label): n for label, n in verdicts.values.items()}
            if verdicts is not None
            else {}
        ),
    }


def _run_job(job_data: Dict[str, Any]) -> Dict[str, Any]:
    """Pool entry point: fork a clone, run the job, ship the result.

    Takes and returns plain dicts so only small JSON-able payloads
    cross the process boundary.  Any exception -- a crashed guest, a
    broken driver -- is converted into a failure result here, inside
    the worker, so one bad job never poisons the pool.

    With a bus configured the worker also streams ``start`` /
    ``heartbeat`` / ``journal`` / ``done`` messages while the job runs
    (wall-clock rate-limited; the guest's virtual time is untouched).
    """
    job = FleetJob(**job_data)
    name = job.name or job.identity()
    bus = _WORKER.get("bus")
    journal = None
    progress = None
    try:
        guest = job.guest_config()
        digest = guest.digest()
        clone = _WORKER["snapshots"][digest].fork(expect_digest=digest)
        record = _WORKER["records"][(job.app, guest.build_digest())]
        if bus is not None:
            bus.put({"type": "start", "job": name, "app": job.app})
            journal = clone.start_recording(capacity=_WORKER_JOURNAL_CAPACITY)
            interval = _WORKER.get("heartbeat", 0.5)
            last_beat = [time.monotonic()]

            def progress(machine, fc) -> None:
                now = time.monotonic()
                if now - last_beat[0] < interval:
                    return
                last_beat[0] = now
                bus.put({"type": "heartbeat", "job": name, **_observe(machine)})
                records_seg, dropped = journal.drain_segment()
                if records_seg or dropped:
                    bus.put(
                        {
                            "type": "journal",
                            "job": name,
                            "records": records_seg,
                            "dropped": dropped,
                        }
                    )

        if progress is not None:
            result = execute_job(
                clone, job, record,
                base_seed=_WORKER["seed"], progress=progress,
            )
        else:
            result = execute_job(clone, job, record, base_seed=_WORKER["seed"])
        if bus is not None:
            records_seg, dropped = journal.drain_segment()
            if records_seg or dropped:
                bus.put(
                    {
                        "type": "journal",
                        "job": name,
                        "records": records_seg,
                        "dropped": dropped,
                    }
                )
            bus.put(
                {
                    "type": "done",
                    "job": name,
                    "ok": result.ok,
                    "error": result.error,
                    **_observe(clone),
                }
            )
    except Exception as exc:  # noqa: BLE001 - crash isolation boundary
        result = JobResult(
            name=name,
            app=job.app,
            attack=job.attack,
            ok=False,
            seed=job.effective_seed(_WORKER.get("seed", 0)),
            error=f"{type(exc).__name__}: {exc}\n{traceback.format_exc(limit=4)}",
        )
        if bus is not None:
            if journal is not None:
                records_seg, dropped = journal.drain_segment()
                if records_seg or dropped:
                    bus.put(
                        {
                            "type": "journal",
                            "job": name,
                            "records": records_seg,
                            "dropped": dropped,
                        }
                    )
            bus.put(
                {
                    "type": "done",
                    "job": name,
                    "ok": False,
                    "error": result.error,
                }
            )
    data = result.to_dict()
    data["telemetry"] = result.telemetry
    return data


@dataclass
class FleetReport:
    """Everything one fleet run produced, merge included."""

    spec_name: str
    workers: int
    mode: str
    results: List[Dict[str, Any]] = field(default_factory=list)
    telemetry: Dict[str, Any] = field(default_factory=dict)
    wall_seconds: float = 0.0
    forked: int = 0
    base_frames: int = 0
    #: guest variants the fleet ran on: short digest -> label + job count
    variants: Dict[str, Any] = field(default_factory=dict)
    #: per-job journal files written when a journal dir was configured
    journal_paths: Dict[str, str] = field(default_factory=dict)

    @property
    def completed(self) -> int:
        return sum(1 for r in self.results if r["ok"])

    @property
    def failed(self) -> int:
        return len(self.results) - self.completed

    @property
    def throughput(self) -> float:
        """Completed jobs per wall-clock second."""
        return self.completed / self.wall_seconds if self.wall_seconds else 0.0

    def to_dict(self) -> Dict[str, Any]:
        results = []
        for r in self.results:
            row = dict(r)
            row.pop("telemetry", None)
            results.append(row)
        return {
            "spec": self.spec_name,
            "workers": self.workers,
            "mode": self.mode,
            "jobs": len(self.results),
            "completed": self.completed,
            "failed": self.failed,
            "wall_seconds": self.wall_seconds,
            "throughput_jobs_per_s": self.throughput,
            "forked": self.forked,
            "base_frames": self.base_frames,
            "variants": self.variants,
            "journal_paths": self.journal_paths,
            "results": results,
            "telemetry": self.telemetry,
        }

    def format_summary(self) -> str:
        lines = [
            f"fleet {self.spec_name!r}: {self.completed}/{len(self.results)} "
            f"jobs completed in {self.wall_seconds:.2f}s "
            f"({self.throughput:.2f} jobs/s, {self.workers} workers, {self.mode})"
        ]
        if len(self.variants) > 1:
            variant_bits = ", ".join(
                f"{info['label']} x{info['jobs']}"
                for info in self.variants.values()
            )
            lines.append(f"  guest variants: {variant_bits}")
        for r in self.results:
            status = "ok" if r["ok"] else "FAILED"
            extra = ""
            if r.get("detected") is not None:
                extra = "  detected" if r["detected"] else "  missed"
            if not r["ok"]:
                extra = f"  {r['error'].splitlines()[0] if r['error'] else ''}"
            lines.append(
                f"  {r['name']:<24} {status:<7} "
                f"cycles={r['cycles']:<14} syscalls={r['syscalls']:<8}{extra}"
            )
        return "\n".join(lines)


class FleetRunner:
    """Schedules a :class:`FleetSpec` across snapshot-forked guests."""

    def __init__(
        self,
        spec: FleetSpec,
        library: ProfileLibrary,
        snapshot: Optional[MachineSnapshot] = None,
        use_processes: Optional[bool] = None,
        on_message: Optional[Callable[[Dict[str, Any]], None]] = None,
        heartbeat_interval: float = 0.5,
        journal_dir: Optional[Any] = None,
    ) -> None:
        self.spec = spec
        self.library = library
        self.snapshot = snapshot
        if use_processes is None:
            use_processes = (
                spec.workers > 1
                and "fork" in multiprocessing.get_all_start_methods()
            )
        self.use_processes = use_processes
        #: parent-side sink for live worker messages (watch mode)
        self.on_message = on_message
        self.heartbeat_interval = heartbeat_interval
        self.journal_dir = Path(journal_dir) if journal_dir is not None else None
        self._bus: Optional[Any] = None
        self._job_started: Dict[str, float] = {}
        #: journal segments collected per job (journal_dir mode)
        self._segments: Dict[str, List[Dict[str, Any]]] = {}
        self._segment_drops: Dict[str, int] = {}

    def _guest_configs(self) -> Dict[str, GuestConfig]:
        """Distinct guest variants in the spec, keyed by full digest."""
        configs: Dict[str, GuestConfig] = {}
        for job in self.spec.jobs:
            config = job.guest_config()
            configs.setdefault(config.digest(), config)
        return configs

    def _load_records(self) -> Dict[Any, ProfileRecord]:
        """Checksum-validated profile load for every (app, build) pair."""
        records: Dict[Any, ProfileRecord] = {}
        for job in self.spec.jobs:
            build = job.guest_config().build_digest()
            key = (job.app, build)
            if key not in records:
                records[key] = self.library.get(job.app, build)
        return records

    @property
    def streaming(self) -> bool:
        """True when workers should stream live messages to the parent."""
        return self.on_message is not None or self.journal_dir is not None

    def run(self) -> FleetReport:
        started = time.perf_counter()
        records = self._load_records()
        configs = self._guest_configs()
        # one snapshot per guest variant: booted once, forked many times
        snapshots: Dict[str, MachineSnapshot] = {}
        if self.snapshot is not None:
            snapshots[self.snapshot.guest_digest] = self.snapshot
        for digest, config in configs.items():
            if digest not in snapshots:
                snapshots[digest] = boot_machine(config=config).snapshot()
        if self.snapshot is None and len(configs) == 1:
            self.snapshot = next(iter(snapshots.values()))
        forked_before = {
            digest: snap.fork_count for digest, snap in snapshots.items()
        }
        bus = None
        if self.streaming:
            # created before the pool so fork-started workers inherit it
            if self.use_processes and self.spec.workers > 1:
                bus = multiprocessing.get_context("fork").Queue()
            else:
                bus = queue_mod.Queue()
        self._bus = bus
        # workers inherit this through fork() / share it with threads
        _configure_workers(
            snapshots,
            records,
            self.spec.seed,
            bus=bus,
            heartbeat_interval=self.heartbeat_interval,
        )
        job_dicts = [
            {
                "app": job.app,
                "scale": job.scale,
                "attack": job.attack,
                "seed": job.seed,
                "max_cycles": job.max_cycles,
                "timeout": job.timeout,
                "guest": job.guest.to_dict() if job.guest is not None else None,
                "name": job.name,
            }
            for job in self.spec.jobs
        ]
        if self.spec.workers == 1:
            mode = "serial"
            results = []
            for d in job_dicts:
                results.append(_run_job(d))
                self._drain_bus()
        elif self.use_processes:
            mode = "processes"
            results = self._run_pool(
                multiprocessing.get_context("fork").Pool, job_dicts
            )
        else:
            mode = "threads"
            from multiprocessing.pool import ThreadPool

            results = self._run_pool(ThreadPool, job_dicts)
        self._drain_bus()
        journal_paths = self._write_journals()
        telemetry = merge_snapshots(
            [r.get("telemetry", {}) for r in results if r.get("telemetry")],
            sources=[r["name"] for r in results if r.get("telemetry")],
        )
        variant_jobs: Dict[str, int] = {}
        for job in self.spec.jobs:
            digest = job.guest_config().digest()
            variant_jobs[digest] = variant_jobs.get(digest, 0) + 1
        report = FleetReport(
            spec_name=self.spec.name,
            workers=self.spec.workers,
            mode=mode,
            results=results,
            telemetry=telemetry,
            wall_seconds=time.perf_counter() - started,
            # under processes the forks happen in worker address spaces;
            # a job that shipped telemetry necessarily ran on a clone
            forked=(
                sum(
                    snap.fork_count - forked_before[digest]
                    for digest, snap in snapshots.items()
                )
                if mode != "processes"
                else sum(1 for r in results if r.get("telemetry"))
            ),
            base_frames=sum(snap.frame_count for snap in snapshots.values()),
            variants={
                digest[:12]: {
                    "label": configs[digest].label(),
                    "jobs": count,
                }
                for digest, count in sorted(variant_jobs.items())
            },
            journal_paths=journal_paths,
        )
        return report

    # -- live message plumbing ---------------------------------------------------

    def _dispatch(self, message: Dict[str, Any]) -> None:
        if message.get("type") == "start":
            self._job_started[message.get("job", "?")] = time.monotonic()
        if self.journal_dir is not None and message.get("type") == "journal":
            name = message.get("job", "?")
            self._segments.setdefault(name, []).extend(
                message.get("records", [])
            )
            self._segment_drops[name] = self._segment_drops.get(
                name, 0
            ) + message.get("dropped", 0)
        if self.on_message is not None:
            self.on_message(message)

    def _drain_bus(self) -> None:
        bus = self._bus
        if bus is None:
            return
        while True:
            try:
                message = bus.get_nowait()
            except queue_mod.Empty:
                return
            self._dispatch(message)

    def _write_journals(self) -> Dict[str, str]:
        """Reassemble streamed segments into per-job journal files.

        The files parse with :func:`repro.telemetry.journal.load_journal`:
        seqs come from the workers' journals and any capacity evictions
        are accounted in the footer, so completeness checks still hold.
        """
        if self.journal_dir is None:
            return {}
        self.journal_dir.mkdir(parents=True, exist_ok=True)
        paths: Dict[str, str] = {}
        for name, records in sorted(self._segments.items()):
            path = self.journal_dir / f"{name.replace('/', '_')}.jsonl"
            dropped = self._segment_drops.get(name, 0)
            last_seq = records[-1]["seq"] if records else 0
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(
                    json.dumps(
                        {
                            "t": "header",
                            "schema": JOURNAL_SCHEMA,
                            "meta": {"job": name, "spec": self.spec.name},
                        },
                        separators=(",", ":"),
                        sort_keys=True,
                    )
                    + "\n"
                )
                for record in records:
                    fh.write(
                        json.dumps(record, separators=(",", ":"), sort_keys=True)
                        + "\n"
                    )
                fh.write(
                    json.dumps(
                        {"t": "footer", "records": last_seq, "dropped": dropped},
                        separators=(",", ":"),
                        sort_keys=True,
                    )
                    + "\n"
                )
            paths[name] = str(path)
        return paths

    def _run_pool(self, pool_factory, job_dicts: List[Dict[str, Any]]):
        results: List[Optional[Dict[str, Any]]] = [None] * len(job_dicts)
        pool = pool_factory(self.spec.workers)
        try:
            pending = [
                (i, d, pool.apply_async(_run_job, (d,)))
                for i, d in enumerate(job_dicts)
            ]
            if self._bus is not None:
                self._poll_pool(pending, results)
            else:
                for i, d, handle in pending:
                    try:
                        results[i] = handle.get(timeout=d["timeout"])
                    except multiprocessing.TimeoutError:
                        results[i] = self._failure(d, "TimeoutError: job exceeded wall-clock timeout")
                    except Exception as exc:  # pool breakage / worker death
                        results[i] = self._failure(d, f"{type(exc).__name__}: {exc}")
        finally:
            pool.terminate()
            pool.join()
        return [r for r in results if r is not None]

    def _poll_pool(self, pending, results) -> None:
        """Watch-mode pool loop: drain the bus while jobs complete.

        Unlike the sequential path, messages are consumed *while* jobs
        run (that is the point).  A job's timeout countdown starts at
        its worker's ``start`` message (pool submission as fallback for
        jobs that never start).
        """
        submitted = time.monotonic()
        remaining = {i: (d, handle) for i, d, handle in pending}
        while remaining:
            self._drain_bus()
            for i in list(remaining):
                d, handle = remaining[i]
                if handle.ready():
                    try:
                        results[i] = handle.get()
                    except Exception as exc:  # pool breakage / worker death
                        results[i] = self._failure(
                            d, f"{type(exc).__name__}: {exc}"
                        )
                    del remaining[i]
                    continue
                name = d.get("name") or ""
                base = self._job_started.get(name, submitted)
                if time.monotonic() - base > d["timeout"]:
                    results[i] = self._failure(
                        d, "TimeoutError: job exceeded wall-clock timeout"
                    )
                    del remaining[i]
            if remaining:
                time.sleep(0.02)
        self._drain_bus()

    @staticmethod
    def _failure(job_data: Dict[str, Any], error: str) -> Dict[str, Any]:
        job = FleetJob(**job_data)
        result = JobResult(
            name=job.name or job.identity(),
            app=job.app,
            attack=job.attack,
            ok=False,
            error=error,
        )
        return result.to_dict()


def run_fleet(
    spec: FleetSpec,
    library: ProfileLibrary,
    snapshot: Optional[MachineSnapshot] = None,
    use_processes: Optional[bool] = None,
    on_message: Optional[Callable[[Dict[str, Any]], None]] = None,
    heartbeat_interval: float = 0.5,
    journal_dir: Optional[Any] = None,
) -> FleetReport:
    """Convenience wrapper: build a :class:`FleetRunner` and run it."""
    return FleetRunner(
        spec,
        library,
        snapshot=snapshot,
        use_processes=use_processes,
        on_message=on_message,
        heartbeat_interval=heartbeat_interval,
        journal_dir=journal_dir,
    ).run()
