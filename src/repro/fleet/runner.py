"""Fleet runner: a work-queue scheduler over snapshot-forked guests.

The parent process boots **one** machine, captures a
:class:`~repro.fleet.snapshot.MachineSnapshot`, and loads every needed
profile from the library.  Only then does it create the worker pool --
on POSIX the pool uses the ``fork`` start method, so workers inherit
the snapshot, the warm assembler caches and the loaded profile records
through the copied address space with **zero pickling and zero
re-boots**.  Each job then costs a worker one in-memory CoW fork plus
the workload itself.

Isolation properties:

* a job that raises inside a worker returns a failure
  :class:`JobResult` -- it cannot take the fleet down;
* each job has a wall-clock timeout; a stuck guest marks its job
  failed and the fleet carries on;
* guests never share mutable state -- every clone has private frames
  (CoW) and a private telemetry registry, merged only after the fact.

Platforms without ``fork`` (or ``workers=1``) degrade gracefully to an
in-process threaded pool / serial loop with identical semantics --
results are bit-identical in every mode by construction.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.fleet.jobs import JobResult, execute_job
from repro.fleet.library import ProfileLibrary, ProfileRecord
from repro.fleet.snapshot import MachineSnapshot
from repro.fleet.spec import FleetJob, FleetSpec
from repro.guest.machine import boot_machine
from repro.kernel.runtime import Platform
from repro.telemetry.merge import merge_snapshots

#: Worker state inherited through ``fork`` (or shared with threads).
#: Populated in the parent *before* the pool exists; never pickled.
_WORKER: Dict[str, Any] = {}


def _configure_workers(
    snapshot: MachineSnapshot,
    records: Dict[str, ProfileRecord],
    base_seed: int,
) -> None:
    _WORKER["snapshot"] = snapshot
    _WORKER["records"] = records
    _WORKER["seed"] = base_seed


def _run_job(job_data: Dict[str, Any]) -> Dict[str, Any]:
    """Pool entry point: fork a clone, run the job, ship the result.

    Takes and returns plain dicts so only small JSON-able payloads
    cross the process boundary.  Any exception -- a crashed guest, a
    broken driver -- is converted into a failure result here, inside
    the worker, so one bad job never poisons the pool.
    """
    job = FleetJob(**job_data)
    try:
        clone = _WORKER["snapshot"].fork()
        record = _WORKER["records"][job.app]
        result = execute_job(clone, job, record, base_seed=_WORKER["seed"])
    except Exception as exc:  # noqa: BLE001 - crash isolation boundary
        result = JobResult(
            name=job.name or job.identity(),
            app=job.app,
            attack=job.attack,
            ok=False,
            seed=job.effective_seed(_WORKER.get("seed", 0)),
            error=f"{type(exc).__name__}: {exc}\n{traceback.format_exc(limit=4)}",
        )
    data = result.to_dict()
    data["telemetry"] = result.telemetry
    return data


@dataclass
class FleetReport:
    """Everything one fleet run produced, merge included."""

    spec_name: str
    workers: int
    mode: str
    results: List[Dict[str, Any]] = field(default_factory=list)
    telemetry: Dict[str, Any] = field(default_factory=dict)
    wall_seconds: float = 0.0
    forked: int = 0
    base_frames: int = 0

    @property
    def completed(self) -> int:
        return sum(1 for r in self.results if r["ok"])

    @property
    def failed(self) -> int:
        return len(self.results) - self.completed

    @property
    def throughput(self) -> float:
        """Completed jobs per wall-clock second."""
        return self.completed / self.wall_seconds if self.wall_seconds else 0.0

    def to_dict(self) -> Dict[str, Any]:
        results = []
        for r in self.results:
            row = dict(r)
            row.pop("telemetry", None)
            results.append(row)
        return {
            "spec": self.spec_name,
            "workers": self.workers,
            "mode": self.mode,
            "jobs": len(self.results),
            "completed": self.completed,
            "failed": self.failed,
            "wall_seconds": self.wall_seconds,
            "throughput_jobs_per_s": self.throughput,
            "forked": self.forked,
            "base_frames": self.base_frames,
            "results": results,
            "telemetry": self.telemetry,
        }

    def format_summary(self) -> str:
        lines = [
            f"fleet {self.spec_name!r}: {self.completed}/{len(self.results)} "
            f"jobs completed in {self.wall_seconds:.2f}s "
            f"({self.throughput:.2f} jobs/s, {self.workers} workers, {self.mode})"
        ]
        for r in self.results:
            status = "ok" if r["ok"] else "FAILED"
            extra = ""
            if r.get("detected") is not None:
                extra = "  detected" if r["detected"] else "  missed"
            if not r["ok"]:
                extra = f"  {r['error'].splitlines()[0] if r['error'] else ''}"
            lines.append(
                f"  {r['name']:<24} {status:<7} "
                f"cycles={r['cycles']:<14} syscalls={r['syscalls']:<8}{extra}"
            )
        return "\n".join(lines)


class FleetRunner:
    """Schedules a :class:`FleetSpec` across snapshot-forked guests."""

    def __init__(
        self,
        spec: FleetSpec,
        library: ProfileLibrary,
        snapshot: Optional[MachineSnapshot] = None,
        use_processes: Optional[bool] = None,
    ) -> None:
        self.spec = spec
        self.library = library
        self.snapshot = snapshot
        if use_processes is None:
            use_processes = (
                spec.workers > 1
                and "fork" in multiprocessing.get_all_start_methods()
            )
        self.use_processes = use_processes

    def _load_records(self) -> Dict[str, ProfileRecord]:
        """Checksum-validated profile load for every app in the spec."""
        return {app: self.library.get(app) for app in self.spec.apps()}

    def run(self) -> FleetReport:
        started = time.perf_counter()
        records = self._load_records()
        snapshot = self.snapshot
        if snapshot is None:
            snapshot = boot_machine(platform=Platform.KVM).snapshot()
            self.snapshot = snapshot
        forked_before = snapshot.fork_count
        # workers inherit this through fork() / share it with threads
        _configure_workers(snapshot, records, self.spec.seed)
        job_dicts = [
            {
                "app": job.app,
                "scale": job.scale,
                "attack": job.attack,
                "seed": job.seed,
                "max_cycles": job.max_cycles,
                "timeout": job.timeout,
                "name": job.name,
            }
            for job in self.spec.jobs
        ]
        if self.spec.workers == 1:
            mode = "serial"
            results = [_run_job(d) for d in job_dicts]
        elif self.use_processes:
            mode = "processes"
            results = self._run_pool(
                multiprocessing.get_context("fork").Pool, job_dicts
            )
        else:
            mode = "threads"
            from multiprocessing.pool import ThreadPool

            results = self._run_pool(ThreadPool, job_dicts)
        telemetry = merge_snapshots(
            [r.get("telemetry", {}) for r in results if r.get("telemetry")],
            sources=[r["name"] for r in results if r.get("telemetry")],
        )
        report = FleetReport(
            spec_name=self.spec.name,
            workers=self.spec.workers,
            mode=mode,
            results=results,
            telemetry=telemetry,
            wall_seconds=time.perf_counter() - started,
            # under processes the forks happen in worker address spaces;
            # a job that shipped telemetry necessarily ran on a clone
            forked=(
                snapshot.fork_count - forked_before
                if mode != "processes"
                else sum(1 for r in results if r.get("telemetry"))
            ),
            base_frames=snapshot.frame_count,
        )
        return report

    def _run_pool(self, pool_factory, job_dicts: List[Dict[str, Any]]):
        results: List[Optional[Dict[str, Any]]] = [None] * len(job_dicts)
        pool = pool_factory(self.spec.workers)
        try:
            pending = [
                (i, d, pool.apply_async(_run_job, (d,)))
                for i, d in enumerate(job_dicts)
            ]
            for i, d, handle in pending:
                try:
                    results[i] = handle.get(timeout=d["timeout"])
                except multiprocessing.TimeoutError:
                    results[i] = self._failure(d, "TimeoutError: job exceeded wall-clock timeout")
                except Exception as exc:  # pool breakage / worker death
                    results[i] = self._failure(d, f"{type(exc).__name__}: {exc}")
        finally:
            pool.terminate()
            pool.join()
        return [r for r in results if r is not None]

    @staticmethod
    def _failure(job_data: Dict[str, Any], error: str) -> Dict[str, Any]:
        job = FleetJob(**job_data)
        result = JobResult(
            name=job.name or job.identity(),
            app=job.app,
            attack=job.attack,
            ok=False,
            error=error,
        )
        return result.to_dict()


def run_fleet(
    spec: FleetSpec,
    library: ProfileLibrary,
    snapshot: Optional[MachineSnapshot] = None,
    use_processes: Optional[bool] = None,
) -> FleetReport:
    """Convenience wrapper: build a :class:`FleetRunner` and run it."""
    return FleetRunner(
        spec, library, snapshot=snapshot, use_processes=use_processes
    ).run()
