"""Fleet job execution: the offline phase and the per-clone online phase.

:func:`prepare_offline_phase` runs FACE-CHANGE's offline workflow once
per application -- profile the workload, then run the *clean* workload
under its own view to record the benign-recovery reference (paper
§III-B3) -- and persists both into a :class:`ProfileLibrary`.  Every
fleet run afterwards is pure online phase: :func:`execute_job` takes a
freshly forked clone, loads the library profile (zero re-profiling),
launches the job's workload (optionally malware-infected) with its
deterministic seed, and returns scores + telemetry.

Because clones are bit-identical to freshly booted machines and seeds
are derived deterministically, a job's virtual-cycle score is the same
whether it ran in a fleet worker or alone on a dedicated machine --
``benchmarks/record_fleet_throughput.py`` enforces exactly that.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.apps.base import launch
from repro.apps.catalog import APP_CATALOG
from repro.core.facechange import FaceChange
from repro.core.profiler import Profiler
from repro.core.provenance import DEFAULT_BENIGN_RECOVERIES
from repro.fleet.library import ProfileLibrary, ProfileRecord
from repro.fleet.spec import DEFAULT_SEED, FleetJob
from repro.guest.machine import Machine, boot_machine
from repro.kernel.runtime import Platform
from repro.telemetry.export import snapshot as telemetry_snapshot


@dataclass
class JobResult:
    """Outcome of one fleet job on one guest."""

    name: str
    app: str
    ok: bool
    attack: Optional[str] = None
    seed: int = 0
    #: absolute virtual clock at job end (bit-identity score, part 1)
    cycles: int = 0
    #: kernel syscalls executed since boot (bit-identity score, part 2)
    syscalls: int = 0
    #: virtual cycles consumed by the job itself
    job_cycles: int = 0
    #: anomalous recoveries after baseline subtraction (attack evidence)
    evidence: List[str] = field(default_factory=list)
    #: True when the job carried an attack and evidence surfaced
    detected: Optional[bool] = None
    error: str = ""
    wall_seconds: float = 0.0
    #: the guest's full telemetry registry snapshot (merge-ready)
    telemetry: Dict[str, Any] = field(default_factory=dict)

    @property
    def score(self) -> tuple:
        """The pair that must be bit-identical across fleet/solo runs."""
        return (self.cycles, self.syscalls)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "app": self.app,
            "attack": self.attack,
            "ok": self.ok,
            "seed": self.seed,
            "cycles": self.cycles,
            "syscalls": self.syscalls,
            "job_cycles": self.job_cycles,
            "evidence": self.evidence,
            "detected": self.detected,
            "error": self.error,
            "wall_seconds": self.wall_seconds,
        }


def execute_job(
    machine: Machine,
    job: FleetJob,
    record: ProfileRecord,
    base_seed: int = DEFAULT_SEED,
    progress: Optional[Callable[[Machine, FaceChange], None]] = None,
) -> JobResult:
    """Run one fleet job on ``machine`` (a fresh boot or a fork).

    Attaches FACE-CHANGE, loads the library profile, launches the
    (possibly infected) workload with the job's derived seed, runs to
    completion within the job's cycle budget, and reports scores,
    attack evidence and the guest's telemetry snapshot.

    ``progress`` (if given) is invoked between run steps -- the fleet
    runner's heartbeat hook.  It observes the guest (virtual clock,
    telemetry) but must not mutate it; the run loop's cadence and the
    guest's virtual time are identical with or without it.
    """
    assert machine.runtime is not None
    seed = job.effective_seed(base_seed)
    started = time.perf_counter()
    start_cycles = machine.cycles

    fc = FaceChange(machine)
    fc.enable()
    fc.load_view(record.config, comm=job.app)
    # verdict classification uses the app's profiled baseline, so a
    # library-covered recovery counts as benign, not anomalous
    fc.recovery.benign_reference = tuple(
        sorted(set(record.baseline) | set(DEFAULT_BENIGN_RECOVERIES))
    )

    if job.attack is not None:
        from repro.malware import ALL_ATTACKS

        attack = next(a for a in ALL_ATTACKS if a.name == job.attack)
        handle = attack.launch(machine, scale=job.scale, seed=seed)
    else:
        handle = launch(
            machine, job.app, APP_CATALOG[job.app], scale=job.scale, seed=seed
        )
    if progress is None:
        until = lambda: handle.finished  # noqa: E731
    else:
        def until() -> bool:
            progress(machine, fc)
            return handle.finished
    machine.run(
        until=until,
        max_cycles=start_cycles + job.max_cycles,
        step_budget=50_000,
    )

    benign = set(record.baseline) | set(DEFAULT_BENIGN_RECOVERIES)
    events = fc.log.anomalous(benign=tuple(benign))
    evidence = sorted({e.function_name for e in events})
    unknown = any(e.has_unknown_frames for e in fc.log.events)

    result = JobResult(
        name=job.name or job.identity(),
        app=job.app,
        attack=job.attack,
        ok=handle.finished,
        seed=seed,
        cycles=machine.cycles,
        syscalls=machine.runtime.syscalls_executed,
        job_cycles=machine.cycles - start_cycles,
        evidence=evidence,
        detected=(bool(evidence) or unknown) if job.attack else None,
        error="" if handle.finished else "cycle budget exhausted before workload finished",
        wall_seconds=time.perf_counter() - started,
        telemetry=telemetry_snapshot(machine.telemetry, events=True),
    )
    return result


def run_job_on_fresh_machine(
    job: FleetJob,
    record: ProfileRecord,
    base_seed: int = DEFAULT_SEED,
) -> JobResult:
    """Boot a dedicated machine and run ``job`` on it (no forking).

    The solo reference path: the benchmark compares its scores against
    fleet clones' to prove bit-identity.
    """
    machine = boot_machine(platform=Platform.KVM)
    return execute_job(machine, job, record, base_seed=base_seed)


def profile_app_offline(
    app: str, scale: int = 4, max_cycles: int = 40_000_000_000
) -> ProfileRecord:
    """One application's complete offline phase, in memory.

    1. a profiling session (QEMU platform, like the paper's) yields the
       kernel-view configuration;
    2. a *clean* run of the same workload under its new view records
       the benign-recovery reference (paper §III-B3).
    """
    if app not in APP_CATALOG:
        raise KeyError(
            f"unknown application {app!r} "
            f"(available: {', '.join(sorted(APP_CATALOG))})"
        )
    machine = boot_machine(platform=Platform.QEMU)
    profiler = Profiler(machine)
    profiler.track(app)
    profiler.install()
    handle = launch(machine, app, APP_CATALOG[app], scale=scale)
    handle.run_to_completion(max_cycles=max_cycles)
    if not handle.finished:
        raise RuntimeError(f"profiling workload for {app!r} did not finish")
    config = profiler.export(app)
    clean = boot_machine(platform=Platform.KVM)
    fc = FaceChange(clean)
    fc.enable()
    fc.load_view(config, comm=app)
    clean_handle = launch(clean, app, APP_CATALOG[app], scale=scale)
    clean.run(
        until=lambda: clean_handle.finished,
        max_cycles=max_cycles,
        step_budget=50_000,
    )
    baseline = sorted({e.function_name for e in fc.log.events})
    return ProfileRecord(
        config=config,
        baseline=baseline,
        meta={"scale": scale, "max_cycles": max_cycles},
    )


def prepare_offline_phase(
    library: ProfileLibrary,
    apps: List[str],
    scale: int = 4,
    max_cycles: int = 40_000_000_000,
    force: bool = False,
) -> Dict[str, ProfileRecord]:
    """Profile ``apps`` and persist records (profile + benign baseline).

    Applications already in the library are reused unless ``force``;
    the whole point is that this phase runs once per application, ever.
    """
    records: Dict[str, ProfileRecord] = {}
    for app in apps:
        if not force and library.has(app):
            records[app] = library.get(app)
            continue
        record = profile_app_offline(app, scale=scale, max_cycles=max_cycles)
        records[app] = library.put(
            record.config, baseline=record.baseline, meta=record.meta
        )
    return records


def run_job_cold(
    job_data: Dict[str, Any], base_seed: int = DEFAULT_SEED
) -> Dict[str, Any]:
    """The pre-fleet status quo, end to end in the calling process.

    Profile the application, record its benign baseline, boot a
    dedicated machine and run the job -- everything the repro used to
    redo for every single run.  The throughput benchmark executes this
    in one fresh subprocess per job (cold interpreter, cold caches) as
    its 1-worker baseline, and uses the returned scores as the solo
    reference for the fleet's bit-identity check.
    """
    job = FleetJob(**job_data)
    record = profile_app_offline(job.app, scale=job.scale)
    result = run_job_on_fresh_machine(job, record, base_seed=base_seed)
    data = result.to_dict()
    return data
