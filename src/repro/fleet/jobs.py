"""Fleet job execution: the offline phase and the per-clone online phase.

:func:`prepare_offline_phase` runs FACE-CHANGE's offline workflow once
per application -- profile the workload, then run the *clean* workload
under its own view to record the benign-recovery reference (paper
§III-B3) -- and persists both into a :class:`ProfileLibrary`.  Every
fleet run afterwards is pure online phase: :func:`execute_job` takes a
freshly forked clone, loads the library profile (zero re-profiling),
launches the job's workload (optionally malware-infected) with its
deterministic seed, and returns scores + telemetry.

Because clones are bit-identical to freshly booted machines and seeds
are derived deterministically, a job's virtual-cycle score is the same
whether it ran in a fleet worker or alone on a dedicated machine --
``benchmarks/record_fleet_throughput.py`` enforces exactly that.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.apps.base import launch
from repro.apps.catalog import APP_CATALOG
from repro.core.facechange import FaceChange
from repro.core.profiler import Profiler
from repro.core.provenance import DEFAULT_BENIGN_RECOVERIES
from repro.fleet.library import ProfileLibrary, ProfileLibraryError, ProfileRecord
from repro.fleet.spec import DEFAULT_SEED, FleetJob
from repro.guest.config import KVM_PVCLOCK, QEMU_TSC, GuestConfig, resolve_guest
from repro.guest.machine import Machine, boot_machine
from repro.telemetry.export import snapshot as telemetry_snapshot


@dataclass
class JobResult:
    """Outcome of one fleet job on one guest."""

    name: str
    app: str
    ok: bool
    attack: Optional[str] = None
    seed: int = 0
    #: absolute virtual clock at job end (bit-identity score, part 1)
    cycles: int = 0
    #: kernel syscalls executed since boot (bit-identity score, part 2)
    syscalls: int = 0
    #: virtual cycles consumed by the job itself
    job_cycles: int = 0
    #: anomalous recoveries after baseline subtraction (attack evidence)
    evidence: List[str] = field(default_factory=list)
    #: True when the job carried an attack and evidence surfaced
    detected: Optional[bool] = None
    error: str = ""
    wall_seconds: float = 0.0
    #: the guest's full telemetry registry snapshot (merge-ready)
    telemetry: Dict[str, Any] = field(default_factory=dict)

    @property
    def score(self) -> tuple:
        """The pair that must be bit-identical across fleet/solo runs."""
        return (self.cycles, self.syscalls)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "app": self.app,
            "attack": self.attack,
            "ok": self.ok,
            "seed": self.seed,
            "cycles": self.cycles,
            "syscalls": self.syscalls,
            "job_cycles": self.job_cycles,
            "evidence": self.evidence,
            "detected": self.detected,
            "error": self.error,
            "wall_seconds": self.wall_seconds,
        }


def execute_job(
    machine: Machine,
    job: FleetJob,
    record: ProfileRecord,
    base_seed: int = DEFAULT_SEED,
    progress: Optional[Callable[[Machine, FaceChange], None]] = None,
) -> JobResult:
    """Run one fleet job on ``machine`` (a fresh boot or a fork).

    Attaches FACE-CHANGE, loads the library profile, launches the
    (possibly infected) workload with the job's derived seed, runs to
    completion within the job's cycle budget, and reports scores,
    attack evidence and the guest's telemetry snapshot.

    ``progress`` (if given) is invoked between run steps -- the fleet
    runner's heartbeat hook.  It observes the guest (virtual clock,
    telemetry) but must not mutate it; the run loop's cadence and the
    guest's virtual time are identical with or without it.
    """
    assert machine.runtime is not None
    if record.guest_digest and record.guest_digest != machine.build_digest:
        raise ProfileLibraryError(
            f"profile for {job.app!r} is pinned to guest build "
            f"{record.guest_digest[:12]} but the machine was built from "
            f"{machine.config.label()} (build digest "
            f"{machine.build_digest[:12]}); profiles do not transfer "
            "across kernel builds"
        )
    seed = job.effective_seed(base_seed)
    started = time.perf_counter()
    start_cycles = machine.cycles

    fc = FaceChange(machine)
    fc.enable()
    fc.load_view(record.config, comm=job.app)
    # verdict classification uses the app's profiled baseline, so a
    # library-covered recovery counts as benign, not anomalous
    fc.recovery.benign_reference = tuple(
        sorted(set(record.baseline) | set(DEFAULT_BENIGN_RECOVERIES))
    )

    if job.attack is not None:
        from repro.malware import ALL_ATTACKS

        attack = next(a for a in ALL_ATTACKS if a.name == job.attack)
        handle = attack.launch(machine, scale=job.scale, seed=seed)
    else:
        handle = launch(
            machine, job.app, APP_CATALOG[job.app], scale=job.scale, seed=seed
        )
    if progress is None:
        until = lambda: handle.finished  # noqa: E731
    else:
        def until() -> bool:
            progress(machine, fc)
            return handle.finished
    machine.run(
        until=until,
        max_cycles=start_cycles + job.max_cycles,
        step_budget=50_000,
    )

    benign = set(record.baseline) | set(DEFAULT_BENIGN_RECOVERIES)
    events = fc.log.anomalous(benign=tuple(benign))
    evidence = sorted({e.function_name for e in events})
    unknown = any(e.has_unknown_frames for e in fc.log.events)

    result = JobResult(
        name=job.name or job.identity(),
        app=job.app,
        attack=job.attack,
        ok=handle.finished,
        seed=seed,
        cycles=machine.cycles,
        syscalls=machine.runtime.syscalls_executed,
        job_cycles=machine.cycles - start_cycles,
        evidence=evidence,
        detected=(bool(evidence) or unknown) if job.attack else None,
        error="" if handle.finished else "cycle budget exhausted before workload finished",
        wall_seconds=time.perf_counter() - started,
        telemetry=telemetry_snapshot(machine.telemetry, events=True),
    )
    return result


def run_job_on_fresh_machine(
    job: FleetJob,
    record: ProfileRecord,
    base_seed: int = DEFAULT_SEED,
) -> JobResult:
    """Boot a dedicated machine and run ``job`` on it (no forking).

    The solo reference path: the benchmark compares its scores against
    fleet clones' to prove bit-identity.
    """
    machine = boot_machine(config=job.guest)
    return execute_job(machine, job, record, base_seed=base_seed)


def profile_app_offline(
    app: str,
    scale: int = 4,
    max_cycles: int = 40_000_000_000,
    guest: "GuestConfig | str | dict | None" = None,
) -> ProfileRecord:
    """One application's complete offline phase, in memory.

    1. a profiling session (qemu-tsc platform, like the paper's) yields
       the kernel-view configuration;
    2. a *clean* run of the same workload under its new view, on the
       kvm-pvclock runtime platform, records the benign-recovery
       reference (paper §III-B3).

    Both machines are built from ``guest`` (default build when omitted);
    the returned record is pinned to the guest's *build* digest, which
    both platforms share.
    """
    if app not in APP_CATALOG:
        raise KeyError(
            f"unknown application {app!r} "
            f"(available: {', '.join(sorted(APP_CATALOG))})"
        )
    guest_config = resolve_guest(guest)
    machine = boot_machine(config=guest_config.with_platform(QEMU_TSC))
    profiler = Profiler(machine)
    profiler.track(app)
    profiler.install()
    handle = launch(machine, app, APP_CATALOG[app], scale=scale)
    handle.run_to_completion(max_cycles=max_cycles)
    if not handle.finished:
        raise RuntimeError(f"profiling workload for {app!r} did not finish")
    config = profiler.export(app)
    clean = boot_machine(config=guest_config.with_platform(KVM_PVCLOCK))
    fc = FaceChange(clean)
    fc.enable()
    fc.load_view(config, comm=app)
    clean_handle = launch(clean, app, APP_CATALOG[app], scale=scale)
    clean.run(
        until=lambda: clean_handle.finished,
        max_cycles=max_cycles,
        step_budget=50_000,
    )
    baseline = sorted({e.function_name for e in fc.log.events})
    return ProfileRecord(
        config=config,
        baseline=baseline,
        meta={
            "scale": scale,
            "max_cycles": max_cycles,
            "guest": guest_config.label(),
        },
        guest_digest=guest_config.build_digest(),
    )


def prepare_offline_phase(
    library: ProfileLibrary,
    apps: List[str],
    scale: int = 4,
    max_cycles: int = 40_000_000_000,
    force: bool = False,
    guest: "GuestConfig | str | dict | None" = None,
) -> Dict[str, ProfileRecord]:
    """Profile ``apps`` on ``guest`` and persist records (pinned).

    Applications already profiled *on this guest build* are reused
    unless ``force``; the whole point is that this phase runs once per
    (application, kernel build), ever.  Legacy unpinned records are
    reused for any build (with the library's load-time warning).
    """
    guest_config = resolve_guest(guest)
    build = guest_config.build_digest()
    records: Dict[str, ProfileRecord] = {}
    for app in apps:
        if not force:
            if library.digest_of(app, build) is not None:
                records[app] = library.get(app, build)
                continue
            if library.has(app):
                current = library.get(app)
                if not current.guest_digest:
                    # legacy unpinned record: serve as-is
                    records[app] = current
                    continue
                # pinned to a different build: profile this one too
        record = profile_app_offline(
            app, scale=scale, max_cycles=max_cycles, guest=guest_config
        )
        records[app] = library.put(
            record.config,
            baseline=record.baseline,
            meta=record.meta,
            guest_digest=record.guest_digest,
        )
    return records


def run_job_cold(
    job_data: Dict[str, Any], base_seed: int = DEFAULT_SEED
) -> Dict[str, Any]:
    """The pre-fleet status quo, end to end in the calling process.

    Profile the application, record its benign baseline, boot a
    dedicated machine and run the job -- everything the repro used to
    redo for every single run.  The throughput benchmark executes this
    in one fresh subprocess per job (cold interpreter, cold caches) as
    its 1-worker baseline, and uses the returned scores as the solo
    reference for the fleet's bit-identity check.
    """
    job = FleetJob(**job_data)
    record = profile_app_offline(job.app, scale=job.scale, guest=job.guest)
    result = run_job_on_fresh_machine(job, record, base_seed=base_seed)
    data = result.to_dict()
    return data
