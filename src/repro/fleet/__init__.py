"""Fleet subsystem: snapshot/fork guests, profile library, scale-out runner.

FACE-CHANGE's workflow is two-phase: offline per-application profiling,
then online enforcement.  A profile is a property of the *application*
(paper §III), so it can be reused across any number of virtual machines
running the same workload.  This package turns that observation into a
scale-out execution substrate:

* :mod:`repro.fleet.snapshot` -- serialize a booted machine into an
  in-memory :class:`MachineSnapshot` and ``fork()`` copy-on-write
  clones, so a fleet of guests spins up without re-booting;
* :mod:`repro.fleet.library` -- a content-addressed on-disk
  :class:`ProfileLibrary` of per-app kernel-view profiles (checksummed,
  versioned), so one profiling run feeds enforcement in every later run;
* :mod:`repro.fleet.spec` -- the declarative fleet specification:
  (app, workload, malware-injection) jobs with budgets and seeds;
* :mod:`repro.fleet.runner` -- the work-queue scheduler executing jobs
  across a ``multiprocessing`` pool (threaded fallback), with per-guest
  budgets, timeouts and crash isolation;
* :mod:`repro.telemetry.merge` -- registry snapshots merged into one
  fleet-level report (the runner re-exports the result).
"""

from repro.fleet.library import (
    ProfileLibrary,
    ProfileLibraryError,
    ProfileRecord,
)
from repro.fleet.jobs import JobResult, execute_job, prepare_offline_phase
from repro.fleet.runner import FleetReport, FleetRunner, run_fleet
from repro.fleet.snapshot import MachineSnapshot, SnapshotError
from repro.fleet.spec import FleetJob, FleetSpec, FleetSpecError

__all__ = [
    "FleetJob",
    "FleetReport",
    "FleetRunner",
    "FleetSpec",
    "FleetSpecError",
    "JobResult",
    "MachineSnapshot",
    "ProfileLibrary",
    "ProfileLibraryError",
    "ProfileRecord",
    "SnapshotError",
    "execute_job",
    "prepare_offline_phase",
    "run_fleet",
]
