"""Machine snapshot and copy-on-write fork.

``MachineSnapshot.capture`` serializes a *pristine* booted machine --
physical memory frames, EPTs, vCPU register state and the kernel
runtime's object graph -- into an in-memory snapshot.  ``fork()`` then
produces any number of independent clones:

* physical frames are **shared copy-on-write**: every clone's
  :class:`~repro.memory.physmem.PhysicalMemory` is an empty overlay
  over one frozen ``hpfn -> bytes`` base image, and a private frame is
  materialized only when a page is first touched for writing
  (:meth:`PhysicalMemory.frame`), so N clones cost far less than N
  boots' worth of memory;
* everything else (EPT directories, vCPU registers, the kernel
  runtime's tasks/subsystems, telemetry) is structurally cloned with
  internal aliasing preserved, so a clone is indistinguishable from a
  freshly booted machine -- same virtual clock, same frame versions,
  same task table -- and runs **bit-identically** to one.

Pristine means: booted, but no user tasks spawned, no FACE-CHANGE
attached, no views loaded.  User-task drivers are Python generators
(not cloneable), and loaded views pin shared-frame bookkeeping to the
original machine; capture refuses both loudly rather than producing a
subtly broken clone.  The fleet workflow attaches FACE-CHANGE and loads
profiles *per clone*, after forking.
"""

from __future__ import annotations

import copy
from typing import Dict, Optional

from repro.guest.config import GuestConfig
from repro.guest.machine import Machine
from repro.kernel.registry import REGISTRY
from repro.memory.physmem import PhysicalMemory


class SnapshotError(Exception):
    """The machine cannot be captured (or a snapshot cannot fork)."""


def _check_pristine(machine: Machine) -> None:
    if machine.runtime is None:
        raise SnapshotError("machine must be booted before capture")
    offenders = [
        task.comm
        for task in machine.runtime.tasks.values()
        if getattr(task, "drivers", None)
    ]
    if offenders:
        raise SnapshotError(
            "cannot capture a machine with live user tasks (generator "
            f"drivers are not cloneable): {', '.join(sorted(offenders))}"
        )
    if machine.hypervisor._trap_entries:
        raise SnapshotError(
            "cannot capture a machine with address traps registered "
            "(detach FACE-CHANGE first; clones attach their own)"
        )
    if machine.runtime.module_load_listeners:
        raise SnapshotError(
            "cannot capture a machine with module-load listeners attached"
        )
    shared = machine.physmem.shared
    if shared.refs or shared._owners:
        raise SnapshotError(
            "cannot capture a machine with kernel views loaded "
            "(shared-frame store is not empty)"
        )


def _clone_with_cow_physmem(
    machine: Machine, base_frames: Dict[int, bytes], versions: Dict[int, int]
) -> Machine:
    """Deep-copy ``machine`` with its physmem replaced by a CoW overlay.

    The deepcopy memo is pre-seeded so that every reference into the
    source machine's physical memory -- the hypervisor's, each MMU's,
    the kernel image's, plus the *interior* aliases components hold
    (``Mmu._shared_refs`` is ``physmem.shared.refs``,
    ``Vcpu._frame_versions`` is ``physmem._versions``) -- lands on the
    clone's overlay instead of a deep copy of the frames.
    """
    source = machine.physmem
    cow = PhysicalMemory(
        guest_frames=source.guest_frames, base_frames=base_frames
    )
    cow._versions = dict(versions)
    cow._next_hypervisor_frame = source._next_hypervisor_frame
    cow._watched_code = set(source._watched_code)
    cow.code_epoch = source.code_epoch
    memo = {
        id(source): cow,
        id(source._frames): cow._frames,
        id(source._versions): cow._versions,
        id(source._watched_code): cow._watched_code,
        id(source.shared): cow.shared,
        id(source.shared.refs): cow.shared.refs,
        id(source.shared._owners): cow.shared._owners,
        # the semantic registry is an immutable module-level singleton;
        # share it instead of cloning its dispatch tables
        id(REGISTRY): REGISTRY,
    }
    return copy.deepcopy(machine, memo)


class MachineSnapshot:
    """A frozen image of a booted machine, forkable into CoW clones."""

    def __init__(self, template: Machine, base_frames: Dict[int, bytes]) -> None:
        self._template = template
        self._base_frames = base_frames
        self.fork_count = 0
        #: the guest build this snapshot was captured from
        self.config: GuestConfig = template.config
        self.guest_digest: str = template.config.digest()
        self.build_digest: str = template.config.build_digest()

    @classmethod
    def capture(cls, machine: Machine) -> "MachineSnapshot":
        """Freeze ``machine``'s state.  The machine stays usable.

        The snapshot owns a private template clone, so the source
        machine may keep running (or be discarded) without perturbing
        later forks.
        """
        _check_pristine(machine)
        # caches hold direct frame references; dropping them is
        # semantically invisible and keeps them out of the template
        machine.flush_caches()
        base = machine.physmem.freeze_frames()
        versions = dict(machine.physmem._versions)
        template = _clone_with_cow_physmem(machine, base, versions)
        return cls(template, base)

    @property
    def frame_count(self) -> int:
        """Number of frames in the shared base image."""
        return len(self._base_frames)

    def fork(self, expect_digest: Optional[str] = None) -> Machine:
        """Produce an independent clone sharing frames copy-on-write.

        ``expect_digest`` pins the fork to a guest variant: when given
        and it does not match this snapshot's config digest, the fork is
        refused instead of silently running the job on the wrong kernel
        build.
        """
        if expect_digest is not None and expect_digest != self.guest_digest:
            raise SnapshotError(
                "guest variant mismatch: job is pinned to guest digest "
                f"{expect_digest[:12]} but this snapshot was captured from "
                f"{self.config.label()} (digest {self.guest_digest[:12]})"
            )
        template = self._template
        clone = _clone_with_cow_physmem(
            template,
            self._base_frames,
            template.physmem._versions,
        )
        self.fork_count += 1
        return clone
