"""Workload environment and launch helpers for application drivers.

The :class:`Env` wraps the machine facilities a *workload generator*
legitimately controls from outside the guest -- injecting network
traffic at the NIC and keystrokes at the keyboard controller -- plus a
deterministic RNG so every profiling run is reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional

from repro.guest.machine import Machine
from repro.kernel.objects import Task

Driver = Generator[Any, Any, None]
DriverFactory = Callable[[], Driver]
#: An application workload: (env, scale) -> driver factory
Workload = Callable[["Env", int], DriverFactory]


class Env:
    """External-world handle given to application workloads."""

    def __init__(self, machine: Machine, seed: int = 20140623) -> None:
        self.machine = machine
        self.rng = random.Random(seed)

    def now(self) -> int:
        return self.machine.cycles

    def inject_packet(
        self,
        port: int,
        nbytes: int,
        delay: int = 0,
        kind: str = "dgram",
        conn_id: Optional[int] = None,
    ) -> None:
        self.machine.inject_packet(port, nbytes, delay=delay, kind=kind, conn_id=conn_id)

    def inject_keystrokes(self, nchars: int, delay: int = 0) -> None:
        self.machine.inject_keystrokes(nchars, delay=delay)


@dataclass
class WorkloadHandle:
    """A launched application: its task plus completion helpers."""

    task: Task
    machine: Machine

    @property
    def finished(self) -> bool:
        return self.task.finished

    def run_to_completion(self, max_cycles: int = 20_000_000_000) -> None:
        self.machine.run(
            until=lambda: self.task.finished,
            max_cycles=max_cycles,
            step_budget=50_000,
        )


def launch(
    machine: Machine,
    comm: str,
    workload: Workload,
    scale: int = 10,
    env: Optional[Env] = None,
    seed: Optional[int] = None,
) -> WorkloadHandle:
    """Spawn an application workload on a booted machine.

    ``seed`` pins the workload RNG (ignored when an explicit ``env`` is
    supplied); two launches with the same seed on identical machines
    replay bit-identically.
    """
    if env is None:
        env = Env(machine) if seed is None else Env(machine, seed=seed)
    factory = workload(env, scale)
    task = machine.spawn(comm, factory)
    return WorkloadHandle(task=task, machine=machine)
