"""The twelve profiled applications (paper Table I).

Each workload function returns a driver factory; the driver issues the
application's characteristic syscall mix.  Categories follow the paper:

* servers: ``apache``, ``vsftpd``, ``mysqld``, ``sshd``
* interactive/GUI: ``firefox``, ``gvim``, ``totem``, ``eog``
* terminal tools: ``top``, ``bash``, ``tcpdump``, ``gzip``

Workloads self-generate their external stimulus (client connections,
keystrokes) through :class:`~repro.apps.base.Env`, mirroring how the
paper drives profiling with per-application test suites (RUBiS for
mysql, httperf for Apache, simulated user input for interactive apps).
"""

from __future__ import annotations

from typing import Any, Generator, List

from repro.apps.base import DriverFactory, Env
from repro.kernel.objects import Compute, Syscall

Sys = Syscall


def _startup(config_path: str) -> Generator[Any, Any, List[int]]:
    """Common process startup: heap growth, config read, identity."""
    yield Sys("brk", count=4096)
    yield Sys("uname")
    yield Sys("getpid")
    fd = yield Sys("open", path=config_path)
    yield Sys("fstat", fd=fd)
    yield Sys("read", fd=fd, count=1024)
    yield Sys("close", fd=fd)
    return []


# ---------------------------------------------------------------------------
# terminal tools
# ---------------------------------------------------------------------------


def top(env: Env, scale: int) -> DriverFactory:
    """Task manager: procfs statistics + tty output + periodic sleep."""

    def driver():
        yield from _startup("/etc/toprc")
        tty = yield Sys("open", path="/dev/tty1")
        yield Sys("ioctl", fd=tty)
        for _ in range(scale):
            pd = yield Sys("open", path="/proc")
            yield Sys("getdents", fd=pd)
            yield Sys("close", fd=pd)
            for name in ("stat", "meminfo", "loadavg"):
                fd = yield Sys("open", path=f"/proc/{name}")
                yield Sys("read", fd=fd, count=2048)
                yield Sys("close", fd=fd)
            yield Sys("write", fd=tty, count=1800)
            yield Compute(30_000)
            yield Sys("nanosleep", cycles=150_000)

    return driver


def bash(env: Env, scale: int) -> DriverFactory:
    """Shell: keystrokes in, fork/exec pipelines, job control."""

    def child_work(wfd):
        def child():
            yield Sys("dup2", oldfd=wfd, newfd=1)  # stdout -> pipe
            yield from _startup("/etc/profile")
            fd = yield Sys("open", path="/var/tmp/out")
            yield Sys("write", fd=fd, count=512)
            yield Sys("close", fd=fd)
            yield Sys("write", fd=1, count=128)
            yield Compute(20_000)
        return child

    def sigchld_handler():
        yield Sys("getpid")

    def driver():
        yield from _startup("/etc/bash.bashrc")
        tty = yield Sys("open", path="/dev/tty1")
        yield Sys("ioctl", fd=tty)
        yield Sys("dup2", oldfd=tty, newfd=2)  # stderr -> tty
        yield Sys("rt_sigaction", signum=17, handler=sigchld_handler)
        yield Sys("getcwd")
        for i in range(scale):
            env.inject_keystrokes(8, delay=40_000)
            yield Sys("read", fd=tty, count=64)
            yield Sys("stat", path="/usr/bin/cmd")
            rfd, wfd = yield Sys("pipe")
            pid = yield Sys("fork", child=child_work(wfd), comm="cmd")
            yield Sys("close", fd=wfd)
            yield Sys("read", fd=rfd, count=128)
            yield Sys("close", fd=rfd)
            yield Sys("waitpid", pid=pid)
            yield Sys("chdir", path="/home/user")
            yield Sys("write", fd=tty, count=256)

    return driver


def tcpdump(env: Env, scale: int) -> DriverFactory:
    """Packet capture: AF_PACKET tap + tty/file output."""

    def driver():
        yield from _startup("/etc/tcpdump.conf")
        tty = yield Sys("open", path="/dev/tty1")
        sock = yield Sys("socket", family="packet", stype="dgram")
        yield Sys("bind", fd=sock, port=0)
        yield Sys("ioctl", fd=sock)
        cap = yield Sys("open", path="/var/tmp/capture.pcap")
        for i in range(scale * 3):
            env.inject_packet(9999, 400, delay=60_000)
            n = yield Sys("recvfrom", fd=sock, count=4096)
            yield Sys("gettimeofday")
            yield Sys("write", fd=tty, count=200)
            if i % 3 == 0:
                yield Sys("write", fd=cap, count=600)
        yield Sys("close", fd=cap)
        yield Sys("close", fd=sock)

    return driver


def find_pipe(env: Env, scale: int) -> DriverFactory:
    """``find | wc`` pipeline: directory walk + stat storm into a pipe.

    The profiling/observability docs use this app as the worked
    example: its kernel slice is dominated by the vfs walk
    (``sys_open``/``sys_getdents``/``sys_stat``) and the pipe transport
    (``pipe_write`` feeding the consumer's ``pipe_read``), which is
    exactly what the sampling profiler's flame graph should surface.
    """

    def consumer(rfd):
        def child():
            yield Sys("dup2", oldfd=rfd, newfd=0)  # stdin <- pipe
            yield Sys("brk", count=4096)
            for _ in range(scale * 2):
                yield Sys("read", fd=0, count=512)
                yield Compute(8_000)
            yield Sys("write", fd=1, count=64)
        return child

    def driver():
        yield from _startup("/etc/findrc")
        yield Sys("getcwd")
        rfd, wfd = yield Sys("pipe")
        pid = yield Sys("fork", child=consumer(rfd), comm="wc")
        yield Sys("close", fd=rfd)
        for i in range(scale * 2):
            yield Sys("chdir", path=f"/usr/share/dir{i % 4}")
            d = yield Sys("open", path=f"/usr/share/dir{i % 4}")
            yield Sys("fstat", fd=d)
            yield Sys("getdents", fd=d)
            yield Sys("getdents", fd=d)
            yield Sys("close", fd=d)
            for j in range(3):
                yield Sys("stat", path=f"/usr/share/dir{i % 4}/file{j}")
            yield Sys("write", fd=wfd, count=512)
            yield Compute(12_000)
        yield Sys("close", fd=wfd)
        yield Sys("waitpid", pid=pid)

    return driver


def gzip(env: Env, scale: int) -> DriverFactory:
    """Compressor: narrow, file-in/file-out plus CPU burn."""

    def driver():
        yield from _startup("/etc/gzip.conf")
        src = yield Sys("open", path="/data/input.log")
        yield Sys("fstat", fd=src)
        dst = yield Sys("open", path="/data/input.log.gz")
        for _ in range(scale * 4):
            n = yield Sys("read", fd=src, count=8192)
            yield Compute(60_000)
            yield Sys("write", fd=dst, count=4096)
        yield Sys("fsync", fd=dst)
        yield Sys("close", fd=src)
        yield Sys("close", fd=dst)
        yield Sys("unlink", path="/data/input.log")

    return driver


# ---------------------------------------------------------------------------
# servers
# ---------------------------------------------------------------------------


def apache(env: Env, scale: int) -> DriverFactory:
    """Web server: accept/recv, static file serving via sendfile."""

    PORT = 80

    def worker():
        def child():
            yield Sys("brk", count=4096)
            yield Compute(15_000)
        return child

    def driver():
        yield from _startup("/etc/apache2/apache2.conf")
        yield Sys("rt_sigaction", signum=17, handler=None)
        sock = yield Sys("socket", family="inet", stype="stream")
        yield Sys("setsockopt", fd=sock)
        yield Sys("bind", fd=sock, port=PORT)
        yield Sys("listen", fd=sock)
        pid = yield Sys("fork", child=worker(), comm="apache")
        for i in range(scale * 2):
            env.inject_packet(PORT, 0, delay=50_000, kind="syn", conn_id=1000 + i)
            # every few connections the client is slow enough to outlast
            # the poll timeout, so the worker's recv itself blocks
            # (keeps the sk_wait_data path in the profile)
            data_delay = 700_000 if i % 3 == 0 else 90_000
            env.inject_packet(
                PORT, 500, delay=data_delay, kind="data", conn_id=1000 + i
            )
            conn = yield Sys("accept", fd=sock)
            yield Sys("poll", fds=[conn], timeout_cycles=400_000)
            yield Sys("recv", fd=conn, count=4096)
            yield Sys("stat", path="/var/www/index.html")
            fd = yield Sys("open", path="/var/www/index.html")
            yield Sys("fstat", fd=fd)
            yield Sys("sendfile", fd=conn, count=8192)
            yield Sys("writev", fd=conn, count=512)
            yield Sys("gettimeofday")
            yield Sys("close", fd=fd)
            yield Sys("close", fd=conn)
        yield Sys("waitpid", pid=pid)
        yield Sys("close", fd=sock)

    return driver


def vsftpd(env: Env, scale: int) -> DriverFactory:
    """FTP server: accept/recv plus file reads *and* writes (uploads)."""

    PORT = 21

    def driver():
        yield from _startup("/etc/vsftpd.conf")
        yield Sys("rt_sigaction", signum=17, handler=None)
        sock = yield Sys("socket", family="inet", stype="stream")
        yield Sys("setsockopt", fd=sock)
        yield Sys("bind", fd=sock, port=PORT)
        yield Sys("listen", fd=sock)
        yield Sys("alarm", delay=50_000_000)  # session idle timeout
        for i in range(scale * 2):
            env.inject_packet(PORT, 0, delay=60_000, kind="syn", conn_id=2000 + i)
            env.inject_packet(PORT, 200, delay=100_000, kind="data", conn_id=2000 + i)
            conn = yield Sys("accept", fd=sock)
            yield Sys("recv", fd=conn, count=1024)
            if i % 2 == 0:
                # RETR: read a file and send it
                fd = yield Sys("open", path="/srv/ftp/pub/file.bin")
                yield Sys("fstat", fd=fd)
                yield Sys("lseek", fd=fd, offset=0)
                yield Sys("read", fd=fd, count=8192)
                yield Sys("send", fd=conn, count=8192)
                yield Sys("close", fd=fd)
            else:
                # STOR: receive a file and write it
                fd = yield Sys("open", path="/srv/ftp/incoming/upload.tmp")
                yield Sys("write", fd=fd, count=8192)
                yield Sys("fsync", fd=fd)
                yield Sys("close", fd=fd)
                yield Sys("rename", path="/srv/ftp/incoming/upload.tmp")
            yield Sys("send", fd=conn, count=128)
            yield Sys("close", fd=conn)
        yield Sys("close", fd=sock)

    return driver


def mysqld(env: Env, scale: int) -> DriverFactory:
    """Database: threaded TCP request serving over journaled table files."""

    PORT = 3306

    def thread_body():
        def child():
            yield Sys("futex", op="wait", key="mysql-pool")
            yield Compute(10_000)
        return child

    def driver():
        yield from _startup("/etc/mysql/my.cnf")
        yield Sys("brk", count=65536)
        yield Sys("mmap", count=1 << 20)
        sock = yield Sys("socket", family="inet", stype="stream")
        yield Sys("setsockopt", fd=sock)
        yield Sys("bind", fd=sock, port=PORT)
        yield Sys("listen", fd=sock)
        tid = yield Sys("clone", child=thread_body(), comm="mysqld")
        data = yield Sys("open", path="/var/lib/mysql/ibdata1")
        log = yield Sys("open", path="/var/lib/mysql/ib_logfile0")
        epfd = yield Sys("epoll_create")
        yield Sys("epoll_ctl", fd=epfd, target_fd=sock, op="add")
        for i in range(scale * 2):
            env.inject_packet(PORT, 0, delay=70_000, kind="syn", conn_id=3000 + i)
            env.inject_packet(PORT, 300, delay=110_000, kind="data", conn_id=3000 + i)
            yield Sys("epoll_wait", fd=epfd, timeout_cycles=400_000)
            conn = yield Sys("accept", fd=sock)
            yield Sys("recv", fd=conn, count=2048)
            yield Sys("pread", fd=data, count=16384, offset=(i % 16) * 16384)
            yield Compute(40_000)
            if i % 2 == 0:
                yield Sys("pwrite", fd=data, count=16384, offset=(i % 16) * 16384)
                yield Sys("write", fd=log, count=512)
                yield Sys("fsync", fd=log)
            yield Sys("send", fd=conn, count=1024)
            yield Sys("gettimeofday")
            yield Sys("close", fd=conn)
        yield Sys("futex", op="wake", key="mysql-pool")
        yield Sys("close", fd=data)
        yield Sys("close", fd=log)
        yield Sys("close", fd=sock)

    return driver


def sshd(env: Env, scale: int) -> DriverFactory:
    """SSH daemon: accept, crypto randomness, pty traffic, sessions."""

    PORT = 22

    def session():
        def child():
            yield Sys("brk", count=8192)
            pty = yield Sys("open", path="/dev/pts/1")
            yield Sys("write", fd=pty, count=256)
            yield Sys("close", fd=pty)
        return child

    def driver():
        yield from _startup("/etc/ssh/sshd_config")
        yield Sys("rt_sigaction", signum=17, handler=None)
        rnd = yield Sys("open", path="/dev/urandom")
        yield Sys("read", fd=rnd, count=64)
        sock = yield Sys("socket", family="inet", stype="stream")
        yield Sys("setsockopt", fd=sock)
        yield Sys("bind", fd=sock, port=PORT)
        yield Sys("listen", fd=sock)
        for i in range(scale):
            env.inject_packet(PORT, 0, delay=80_000, kind="syn", conn_id=4000 + i)
            env.inject_packet(PORT, 800, delay=130_000, kind="data", conn_id=4000 + i)
            conn = yield Sys("accept", fd=sock)
            yield Sys("read", fd=rnd, count=32)
            yield Compute(50_000)  # key exchange
            yield Sys("recv", fd=conn, count=2048)
            yield Sys("send", fd=conn, count=1024)
            pid = yield Sys("fork", child=session(), comm="sshd")
            pty = yield Sys("open", path="/dev/pts/0")
            yield Sys("select", fds=[conn, pty], timeout_cycles=300_000)
            yield Sys("write", fd=pty, count=512)
            yield Sys("send", fd=conn, count=512)
            yield Sys("waitpid", pid=pid)
            yield Sys("close", fd=pty)
            yield Sys("close", fd=conn)
        yield Sys("close", fd=rnd)
        yield Sys("close", fd=sock)

    return driver


# ---------------------------------------------------------------------------
# interactive / GUI
# ---------------------------------------------------------------------------


def firefox(env: Env, scale: int) -> DriverFactory:
    """Browser: HTTP fetches, disk cache, X11 socket, threads, timers."""

    def worker():
        def child():
            yield Sys("futex", op="wait", key="ff-pool")
            yield Compute(15_000)
        return child

    def driver():
        yield from _startup("/home/user/.mozilla/prefs.js")
        yield Sys("mmap", count=1 << 21)
        yield Sys("rt_sigaction", signum=15, handler=None)
        x11 = yield Sys("socket", family="unix", stype="stream")
        yield Sys("connect", fd=x11, port=6000)
        tid = yield Sys("clone", child=worker(), comm="firefox")
        rfd, wfd = yield Sys("pipe")  # event loop self-pipe
        epfd = yield Sys("epoll_create")
        yield Sys("epoll_ctl", fd=epfd, target_fd=rfd, op="add")
        yield Sys("epoll_ctl", fd=epfd, target_fd=x11, op="add")
        for i in range(scale * 2):
            # DNS lookup: connected-UDP query + response (glibc style)
            dns = yield Sys("socket", family="inet", stype="dgram")
            yield Sys("connect", fd=dns, port=53, conn_id=5900 + i)
            yield Sys("sendto", fd=dns, count=64, port=53)
            env.inject_packet(53, 220, delay=40_000, conn_id=5900 + i)
            yield Sys("recvfrom", fd=dns, count=512)
            yield Sys("close", fd=dns)
            web = yield Sys("socket", family="inet", stype="stream")
            yield Sys("connect", fd=web, port=443, conn_id=5000 + i)
            yield Sys("send", fd=web, count=600)
            env.inject_packet(443, 1400, delay=90_000, kind="data", conn_id=5000 + i)
            yield Sys("epoll_ctl", fd=epfd, target_fd=web, op="add")
            yield Sys("epoll_wait", fd=epfd, timeout_cycles=500_000)
            yield Sys("poll", fds=[web, rfd, x11], timeout_cycles=100_000)
            yield Sys("recv", fd=web, count=16384)
            cache = yield Sys("open", path="/home/user/.cache/mozilla/entry")
            yield Sys("write", fd=cache, count=4096)
            yield Sys("close", fd=cache)
            yield Compute(60_000)  # layout/JS
            yield Sys("send", fd=x11, count=2048)  # render
            yield Sys("gettimeofday")
            yield Sys("writev", fd=web, count=256)
            yield Sys("shutdown", fd=web)
            yield Sys("epoll_ctl", fd=epfd, target_fd=web, op="del")
            yield Sys("close", fd=web)
            if i % 3 == 0:
                yield Sys("mmap", count=1 << 18)
                yield Sys("munmap", count=1 << 18)
            img = yield Sys("open", path="/usr/share/icons/icon.png")
            yield Sys("read", fd=img, count=8192)
            yield Sys("close", fd=img)
        yield Sys("futex", op="wake", key="ff-pool")
        yield Sys("close", fd=x11)

    return driver


def gvim(env: Env, scale: int) -> DriverFactory:
    """GUI editor: X11 socket input, file editing, swap-file writes."""

    def driver():
        yield from _startup("/home/user/.vimrc")
        x11 = yield Sys("socket", family="unix", stype="stream")
        yield Sys("connect", fd=x11, port=6000)
        yield Sys("rt_sigaction", signum=15, handler=None)
        src = yield Sys("open", path="/home/user/code.c")
        yield Sys("fstat", fd=src)
        yield Sys("read", fd=src, count=16384)
        swap = yield Sys("open", path="/home/user/.code.c.swp")
        for i in range(scale * 2):
            yield Sys("send", fd=x11, count=128)  # request events
            yield Sys("select", fds=[x11], timeout_cycles=200_000)
            yield Compute(25_000)  # edit / redraw
            yield Sys("send", fd=x11, count=1024)  # draw
            yield Sys("write", fd=swap, count=4096)
            if i % 4 == 0:
                yield Sys("fsync", fd=swap)
                yield Sys("stat", path="/home/user/code.c")
        yield Sys("write", fd=src, count=16384)
        yield Sys("rename", path="/home/user/.code.c.swp")
        yield Sys("close", fd=swap)
        yield Sys("close", fd=src)
        yield Sys("close", fd=x11)

    return driver


def totem(env: Env, scale: int) -> DriverFactory:
    """Media player: big file reads, mmap, sound device, frame pacing."""

    def driver():
        yield from _startup("/home/user/.config/totem/state")
        x11 = yield Sys("socket", family="unix", stype="stream")
        yield Sys("connect", fd=x11, port=6000)
        media = yield Sys("open", path="/home/user/video.ogv")
        yield Sys("fstat", fd=media)
        yield Sys("mmap", count=1 << 22)
        dsp = yield Sys("open", path="/dev/snd/pcmC0D0p")
        yield Sys("ioctl", fd=dsp)
        yield Sys("setitimer", interval=2_000_000)  # frame-pacing timer
        for i in range(scale * 3):
            yield Sys("read", fd=media, count=65536)
            yield Compute(45_000)  # decode
            yield Sys("write", fd=dsp, count=4096)
            yield Sys("send", fd=x11, count=2048)  # frame
            yield Sys("poll", fds=[x11, dsp], timeout_cycles=100_000)
            yield Sys("gettimeofday")
            yield Sys("nanosleep", cycles=60_000)
        yield Sys("setitimer", interval=0)
        yield Sys("munmap", count=1 << 22)
        yield Sys("close", fd=dsp)
        yield Sys("close", fd=media)
        yield Sys("close", fd=x11)

    return driver


def eog(env: Env, scale: int) -> DriverFactory:
    """Image viewer: like totem minus sound (paper: 86.5% similar)."""

    def driver():
        yield from _startup("/home/user/.config/eog/state")
        x11 = yield Sys("socket", family="unix", stype="stream")
        yield Sys("connect", fd=x11, port=6000)
        for i in range(scale * 2):
            img = yield Sys("open", path=f"/home/user/pics/img{i % 5}.jpg")
            yield Sys("fstat", fd=img)
            yield Sys("mmap", count=1 << 21)
            yield Sys("read", fd=img, count=32768)
            yield Compute(35_000)  # decode
            yield Sys("send", fd=x11, count=4096)  # blit
            yield Sys("poll", fds=[x11], timeout_cycles=150_000)
            yield Sys("gettimeofday")
            yield Sys("munmap", count=1 << 21)
            yield Sys("close", fd=img)
            yield Sys("nanosleep", cycles=80_000)
        yield Sys("close", fd=x11)

    return driver


#: name -> workload function, the paper's Table I roster.
APP_CATALOG = {
    "firefox": firefox,
    "totem": totem,
    "gvim": gvim,
    "apache": apache,
    "vsftpd": vsftpd,
    "top": top,
    "tcpdump": tcpdump,
    "mysqld": mysqld,
    "bash": bash,
    "sshd": sshd,
    "gzip": gzip,
    "eog": eog,
    # beyond Table I: the observability docs' worked example (PR 5)
    "find_pipe": find_pipe,
}


def app_driver(name: str, env: Env, scale: int = 10) -> DriverFactory:
    """Look up an application workload and build its driver factory."""
    return APP_CATALOG[name](env, scale)
