"""The twelve applications of the paper's Table I, as workload drivers.

Each application is a generator-based *driver*: it issues the same mix of
system calls (and pure user-mode computation) through the simulated
kernel that its real counterpart issues through Linux, so its profiled
kernel footprint has the right shape -- ``top`` lives on procfs + tty,
Apache on the TCP accept path + sendfile, gzip on narrow ext4 I/O, and
so on.
"""

from repro.apps.base import Env, WorkloadHandle, launch
from repro.apps.catalog import APP_CATALOG, app_driver

__all__ = ["APP_CATALOG", "Env", "WorkloadHandle", "app_driver", "launch"]
