"""Command-line interface for the FACE-CHANGE reproduction.

Usage::

    python -m repro.cli similarity            # Table I
    python -m repro.cli security              # Table II
    python -m repro.cli unixbench --views 3   # one Figure 6 point
    python -m repro.cli httperf               # Figure 7 sweep
    python -m repro.cli profile top -o top.view.json
    python -m repro.cli profile top --library fleet-lib
    python -m repro.cli trace top             # telemetry event timeline
    python -m repro.cli fleet --apps top gzip --workers 2

Every command returns a non-zero exit code on failure (unknown
application, unreadable profile, failed run) so scripts and CI can gate
on ``repro.cli`` invocations.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional


def _fail(message: str) -> int:
    """Report a command failure on stderr; exit code for the caller."""
    print(f"error: {message}", file=sys.stderr)
    return 2


def _add_guest_flags(parser: argparse.ArgumentParser) -> None:
    """The uniform guest-variant surface shared by the run verbs."""
    parser.add_argument(
        "--guest",
        help="guest build: a named variant (repro.cli guest list) or a "
        "guest config JSON path",
    )
    parser.add_argument(
        "--platform",
        choices=["kvm-pvclock", "qemu-tsc", "kvm", "qemu"],
        help="clocksource platform override (default from the guest config)",
    )
    parser.add_argument(
        "--vcpus", type=int, help="SMP vCPU count override"
    )


def _add_jit_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--no-jit",
        action="store_true",
        help="disable block translation (superblock JIT); guest state "
        "and virtual-cycle scores are bit-identical either way",
    )


def _apply_jit_flag(args: argparse.Namespace) -> None:
    """Export ``--no-jit`` as ``REPRO_JIT=0`` so everything downstream
    -- machine boots in this process *and* forked fleet workers, which
    re-read the environment in ``FaceChange.enable()`` -- agrees."""
    if getattr(args, "no_jit", False):
        os.environ["REPRO_JIT"] = "0"


def _guest_config(args: argparse.Namespace):
    """Resolve --guest/--platform/--vcpus into one validated GuestConfig.

    Raises :class:`repro.guest.config.GuestConfigError` on bad input.
    """
    from dataclasses import replace

    from repro.guest.config import resolve_guest

    guest = resolve_guest(getattr(args, "guest", None))
    vcpus = getattr(args, "vcpus", None)
    if vcpus is not None and vcpus != guest.vcpus:
        guest = replace(guest, vcpus=vcpus, name="")
    platform = getattr(args, "platform", None)
    if platform:
        guest = guest.with_platform(platform)
    return guest


def _unknown_apps(names: List[str]) -> Optional[str]:
    from repro.apps.catalog import APP_CATALOG

    unknown = [name for name in names if name not in APP_CATALOG]
    if unknown:
        return (
            f"unknown application(s): {', '.join(unknown)} "
            f"(choose from: {', '.join(sorted(APP_CATALOG))})"
        )
    return None


def _cmd_similarity(args: argparse.Namespace) -> int:
    from repro.analysis.similarity import SimilarityMatrix, profile_applications

    problem = _unknown_apps(args.apps or [])
    if problem:
        return _fail(problem)
    print(f"profiling {len(args.apps) if args.apps else 12} applications "
          f"(scale {args.scale})...")
    configs = profile_applications(apps=args.apps or None, scale=args.scale)
    matrix = SimilarityMatrix.build(configs)
    print()
    print(matrix.format_table())
    lo_pair, lo = matrix.min_similarity()
    hi_pair, hi = matrix.max_similarity()
    print(f"\nmin {lo*100:.1f}% {lo_pair}   max {hi*100:.1f}% {hi_pair}")
    return 0


def _cmd_security(args: argparse.Namespace) -> int:
    from repro.analysis.detection import evaluate_attack
    from repro.analysis.similarity import profile_applications
    from repro.malware import ALL_ATTACKS

    attacks = [
        a for a in ALL_ATTACKS
        if not args.attack or a.name.lower().startswith(args.attack.lower())
    ]
    if not attacks:
        return _fail(
            f"no malware sample matches {args.attack!r} "
            f"(choose from: {', '.join(sorted(a.name for a in ALL_ATTACKS))})"
        )
    configs = profile_applications(scale=args.scale)
    print(f"{'Name':<14}{'Host':<9}{'FACE-CHANGE':<13}{'Union view':<12}Evidence")
    per_app = union = 0
    for attack in attacks:
        result = evaluate_attack(attack, configs, scale=args.scale)
        per_app += result.detected_per_app
        union += result.detected_union
        fc = "DETECTED" if result.detected_per_app else "missed"
        un = "detected" if result.detected_union else "missed"
        extra = " +UNKNOWN" if result.unknown_frames else ""
        print(f"{result.name:<14}{result.host_app:<9}{fc:<13}{un:<12}"
              f"{len(result.evidence)} fns{extra}")
    print(f"\nFACE-CHANGE: {per_app}/{len(attacks)}   union: {union}/{len(attacks)}")
    return 0


def _cmd_unixbench(args: argparse.Namespace) -> int:
    from repro.analysis.similarity import profile_applications
    from repro.bench.unixbench import run_unixbench

    baseline = run_unixbench(0, label="baseline")
    if args.views > 0:
        configs = profile_applications(scale=args.scale)
        run = run_unixbench(args.views, configs)
        print(f"{'subtest':<32}{'normalized':>12}")
        for name, value in run.normalized(baseline).items():
            print(f"{name:<32}{value:>12.3f}")
        print(f"{'index':<32}{run.normalized_index(baseline):>12.3f}")
    else:
        print(f"{'subtest':<32}{'score':>12}")
        for name, score in baseline.scores.items():
            print(f"{name:<32}{score:>12.2f}")
    return 0


def _cmd_httperf(args: argparse.Namespace) -> int:
    from repro.analysis.similarity import profile_applications
    from repro.bench.httperf import run_httperf_sweep

    config = profile_applications(apps=["apache"], scale=args.scale)["apache"]
    points = run_httperf_sweep(config, connections=args.connections)
    print(f"{'rate':>6}{'baseline':>12}{'face-change':>13}{'ratio':>9}")
    for p in points:
        print(f"{p.rate:>6}{p.baseline_throughput:>12.2f}"
              f"{p.facechange_throughput:>13.2f}{p.ratio:>9.3f}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.guest.config import GuestConfigError

    problem = _unknown_apps([args.app])
    if problem:
        return _fail(problem)
    try:
        guest = _guest_config(args)
    except GuestConfigError as exc:
        return _fail(str(exc))
    if args.library:
        from repro.fleet import ProfileLibrary, prepare_offline_phase

        library = ProfileLibrary(args.library)
        records = prepare_offline_phase(
            library, [args.app], scale=args.scale, force=args.force,
            guest=guest,
        )
        record = records[args.app]
        config = record.config
        print(f"{args.app}: kernel view {config.size / 1024:.0f} KB, "
              f"{len(config.profile)} ranges, "
              f"{len(record.baseline)} benign baseline recoveries")
        pin = (
            f", pinned to guest build {record.guest_digest[:12]}"
            if record.guest_digest
            else ""
        )
        print(f"stored in library {args.library} as "
              f"{record.digest[:12]}...{pin}")
    else:
        from repro.analysis.similarity import profile_applications

        config = profile_applications(apps=[args.app], scale=args.scale)[args.app]
        print(f"{args.app}: kernel view {config.size / 1024:.0f} KB, "
              f"{len(config.profile)} ranges")
    if args.output:
        config.save(args.output)
        print(f"saved to {args.output}")
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    from repro.core.kernel_view import KernelViewConfig

    try:
        config = KernelViewConfig.load(args.path)
    except (OSError, ValueError, KeyError, TypeError) as exc:
        return _fail(f"unreadable view configuration {args.path}: {exc}")
    print(f"app:   {config.app}")
    if config.notes:
        print(f"notes: {config.notes}")
    print(f"size:  {config.size / 1024:.1f} KB in {len(config.profile)} ranges")
    for name, ranges in sorted(config.profile.segments.items()):
        print(f"  {name:<14} {len(ranges):>5} ranges  {ranges.size / 1024:>8.1f} KB")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Quickstart run with tracing on, rendered as an event timeline."""
    from repro.analysis.similarity import profile_applications
    from repro.analysis.timeline import format_trace_report
    from repro.apps.catalog import APP_CATALOG
    from repro.core.facechange import FaceChange
    from repro.guest.config import GuestConfigError
    from repro.guest.machine import boot_machine
    from repro.telemetry import to_json

    problem = _unknown_apps([args.app])
    if problem:
        return _fail(problem)
    try:
        guest = _guest_config(args)
    except GuestConfigError as exc:
        return _fail(str(exc))
    attack = None
    if args.attack:
        from repro.malware import ALL_ATTACKS

        matches = [
            a for a in ALL_ATTACKS
            if a.name.lower().startswith(args.attack.lower())
        ]
        if not matches:
            return _fail(f"no malware sample matches {args.attack!r}")
        attack = matches[0]
        if attack.host_app != args.app:
            return _fail(
                f"{attack.name} infects {attack.host_app!r}; run: "
                f"repro.cli trace {attack.host_app} --attack {attack.name}"
            )
    print(f"profiling {args.app} (scale {args.scale})...")
    config = profile_applications(apps=[args.app], scale=args.scale)[args.app]
    machine = boot_machine(config=guest)
    print(f"guest: {guest.label()} (digest {machine.guest_digest[:12]})")
    if args.journal:
        meta = {"app": args.app, "scale": args.scale}
        if attack is not None:
            meta["attack"] = attack.name
        machine.start_recording(path=args.journal, meta=meta)
    machine.enable_tracing()
    fc = FaceChange(machine)
    fc.enable()
    fc.load_view(config, comm=args.app)
    from repro.apps.base import launch

    failed = False
    if attack is not None:
        print(f"running {args.app} infected with {attack.name} "
              "under its kernel view (tracing on)...")
        handle = attack.launch(machine, scale=args.scale)
        machine.run(
            until=lambda: handle.finished,
            max_cycles=machine.cycles + 60_000_000_000,
            step_budget=50_000,
        )
    else:
        print(f"running {args.app} under its kernel view (tracing on)...")
        handle = launch(
            machine, args.app, APP_CATALOG[args.app], scale=args.scale
        )
        handle.run_to_completion(max_cycles=200_000_000_000)
        failed = not handle.finished
        if failed:
            print("error: workload did not finish within the cycle budget",
                  file=sys.stderr)
    print()
    app_filter = args.app if args.app_only else None
    print(format_trace_report(
        machine.telemetry, fc.log, app=app_filter, limit=args.limit
    ))
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(to_json(machine.telemetry))
        print(f"\nwrote telemetry snapshot to {args.output}")
    if args.journal:
        machine.stop_recording()
        print(f"wrote span journal to {args.journal} "
              f"(render with: repro.cli forensics {args.journal})")
    return 1 if failed else 0


def _run_sampled(
    app: str,
    scale: int,
    interval: int,
    seed: Optional[int],
    probe_symbols: Optional[List[str]] = None,
    probe_comm: Optional[str] = None,
    guest=None,
):
    """Shared harness for ``flame`` and ``probe``: one enforced,
    sampled run of ``app`` under its kernel view.

    Returns ``(machine, fc, sampler, engine, finished)``.
    """
    from repro.analysis.similarity import profile_applications
    from repro.apps.base import launch
    from repro.apps.catalog import APP_CATALOG
    from repro.core.facechange import FaceChange
    from repro.guest.machine import boot_machine
    from repro.obs.profiling.probes import ProbeEngine
    from repro.obs.profiling.sampler import SamplingProfiler

    print(f"profiling {app} (scale {scale})...")
    config = profile_applications(apps=[app], scale=scale)[app]
    machine = boot_machine(config=guest)
    print(f"guest: {machine.config.label()} "
          f"(digest {machine.guest_digest[:12]})")
    fc = FaceChange(machine)
    fc.enable()
    fc.load_view(config, comm=app)
    sampler = SamplingProfiler(
        machine,
        interval=interval,
        view_provider=lambda cpu: fc.switcher.current_index[cpu],
    )
    sampler.install()
    engine = None
    if probe_symbols:
        engine = ProbeEngine(machine)
        predicate = None
        if probe_comm:
            predicate = lambda task: task.comm == probe_comm  # noqa: E731
        for symbol in probe_symbols:
            engine.arm(symbol, predicate)
    print(f"running {app} under its kernel view (sampling every "
          f"{interval} cycles)...")
    handle = launch(
        machine, app, APP_CATALOG[app], scale=scale, seed=seed
    )
    handle.run_to_completion(max_cycles=200_000_000_000)
    sampler.uninstall()
    return machine, fc, sampler, engine, handle.finished


def _cmd_flame(args: argparse.Namespace) -> int:
    """Sample one enforced run and render its flame graph + top table."""
    problem = _unknown_apps([args.app])
    if problem:
        return _fail(problem)
    from repro.guest.config import GuestConfigError

    try:
        guest = _guest_config(args)
    except GuestConfigError as exc:
        return _fail(str(exc))
    machine, _fc, sampler, _engine, finished = _run_sampled(
        args.app, args.scale, args.interval, args.seed, guest=guest
    )
    profile = sampler.profile
    print()
    print(f"{profile.samples} samples "
          f"({len(profile.stacks)} unique stacks)")
    print()
    print(profile.render_flame(width=args.width))
    print()
    print(profile.render_top(limit=args.top))
    if args.output:
        from repro.telemetry import to_json

        with open(args.output, "w") as fh:
            fh.write(to_json(machine.telemetry))
        print(f"\nwrote telemetry snapshot to {args.output}")
    if not finished:
        print("error: workload did not finish within the cycle budget",
              file=sys.stderr)
        return 1
    return 0


def _cmd_probe(args: argparse.Namespace) -> int:
    """Arm kprobe-style probes during one enforced, sampled run."""
    from repro.obs.profiling.probes import ProbeError

    problem = _unknown_apps([args.app])
    if problem:
        return _fail(problem)
    from repro.guest.config import GuestConfigError

    try:
        guest = _guest_config(args)
    except GuestConfigError as exc:
        return _fail(str(exc))
    try:
        machine, _fc, _sampler, engine, finished = _run_sampled(
            args.app,
            args.scale,
            args.interval,
            args.seed,
            probe_symbols=args.funcs,
            probe_comm=args.app if args.app_only else None,
            guest=guest,
        )
    except ProbeError as exc:
        return _fail(str(exc))
    print()
    print(f"{'HITS':>8}  {'FILTERED':>8}  FUNCTION")
    for symbol in args.funcs:
        probe = engine.probes[symbol]
        print(f"{probe.hits:>8}  {probe.filtered:>8}  {probe.symbol}")
    hits = machine.telemetry.labelled.get("probe.hits")
    total = sum(hits.values.values()) if hits is not None else 0
    print(f"\n{total} total probe hit(s) recorded")
    if not finished:
        print("error: workload did not finish within the cycle budget",
              file=sys.stderr)
        return 1
    return 0


def _cmd_forensics(args: argparse.Namespace) -> int:
    """Render the attack/recovery narrative from a flight-recorder file."""
    from repro.obs import render_forensics
    from repro.telemetry import JournalError

    try:
        print(render_forensics(args.path))
    except JournalError as exc:
        return _fail(str(exc))
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    """Run a declarative fleet of snapshot-forked guests."""
    from repro.fleet import (
        FleetSpec,
        FleetSpecError,
        ProfileLibrary,
        ProfileLibraryError,
        prepare_offline_phase,
        run_fleet,
    )
    from repro.fleet.spec import uniform_spec

    try:
        if args.spec:
            spec = FleetSpec.load(args.spec)
        elif args.matrix:
            if not args.apps:
                return _fail("--matrix needs --apps (plus optional "
                             "--attacks / --guests)")
            problem = _unknown_apps(args.apps)
            if problem:
                return _fail(problem)
            spec = FleetSpec.from_dict(
                {
                    "name": "matrix",
                    "scale": args.scale,
                    "workers": args.workers or 2,
                    "matrix": {
                        "apps": args.apps,
                        "attacks": args.attacks or [],
                        "guests": args.guests or ["default"],
                    },
                }
            )
        elif args.apps:
            problem = _unknown_apps(args.apps)
            if problem:
                return _fail(problem)
            spec = uniform_spec(
                args.apps,
                scale=args.scale,
                workers=args.workers or 2,
                repeat=args.repeat,
                guest=args.guests[0] if args.guests else None,
            )
        else:
            return _fail("provide a spec file or --apps (see --help)")
    except FleetSpecError as exc:
        return _fail(str(exc))
    if args.workers:
        spec.workers = args.workers

    # one offline phase per (kernel build, app set): profiles pin to builds
    builds = {}
    for job in spec.jobs:
        config = job.guest_config()
        entry = builds.setdefault(config.build_digest(), (config, set()))
        entry[1].add(job.app)

    library = ProfileLibrary(args.library)
    try:
        if args.no_offline:
            missing = [
                f"{app}@{config.label()}"
                for build, (config, apps) in sorted(builds.items())
                for app in sorted(apps)
                if library.digest_of(app, build) is None
                and not library.has(app)
            ]
            if missing:
                return _fail(
                    f"library {args.library} has no profile for: "
                    f"{', '.join(missing)} (run without --no-offline, or "
                    f"'repro.cli profile <app> --library {args.library}')"
                )
        else:
            for _build, (config, apps) in sorted(builds.items()):
                prepare_offline_phase(
                    library, sorted(apps), scale=args.scale, guest=config
                )
        view = None
        on_message = None
        if args.watch:
            import time as time_mod

            from repro.obs import LiveFleetView

            baselines = {
                job.name: len(library.get(job.app).baseline)
                for job in spec.jobs
                if library.has(job.app)
            }
            view = LiveFleetView(baselines=baselines)
            for job in spec.jobs:
                view.expect(job.name, app=job.app)
            watch_started = time_mod.monotonic()

            def on_message(message):
                now = time_mod.monotonic() - watch_started
                for notice in view.update(message, now=now):
                    print(notice, flush=True)

        report = run_fleet(
            spec,
            library,
            use_processes=False if args.threads else None,
            on_message=on_message,
            heartbeat_interval=args.heartbeat,
            journal_dir=args.journal_dir,
        )
    except ProfileLibraryError as exc:
        return _fail(str(exc))
    if view is not None:
        import time as time_mod

        print()
        print(view.render(now=time_mod.monotonic() - watch_started))
        drifting = view.drifting()
        if drifting:
            print(
                f"profile drift detected: {', '.join(drifting)} "
                "-- re-profile with 'repro.cli profile <app> --library ... --force'"
            )
    if report.journal_paths:
        print(f"wrote {len(report.journal_paths)} job journal(s) to "
              f"{args.journal_dir}")
    print(report.format_summary())
    if args.output:
        with open(args.output, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2)
        print(f"wrote fleet report to {args.output}")
    if report.failed:
        print(f"error: {report.failed} job(s) failed", file=sys.stderr)
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the multi-tenant fleet daemon (see repro.serve)."""
    from repro.fleet import ProfileLibrary
    from repro.guest.config import GuestConfigError, resolve_guest
    from repro.serve import DEFAULT_SOCKET, ServeDaemon, TenantPolicy

    socket_path = args.socket or DEFAULT_SOCKET
    if args.apps:
        problem = _unknown_apps(args.apps)
        if problem:
            return _fail(problem)
    try:
        for ref in args.guests or []:
            resolve_guest(ref)
    except GuestConfigError as exc:
        return _fail(str(exc))
    policy = TenantPolicy(
        max_in_flight=args.tenant_in_flight,
        cycle_budget=args.tenant_budget,
    )
    alert_rules = None
    if args.alert_rules:
        from repro.obs.metrics import MetricsError, load_rules

        try:
            alert_rules = load_rules(args.alert_rules)
        except MetricsError as exc:
            return _fail(str(exc))
    daemon = ServeDaemon(
        ProfileLibrary(args.library),
        socket_path=socket_path,
        min_workers=args.min_workers,
        max_workers=args.max_workers,
        max_queue_depth=args.queue_depth,
        default_policy=policy,
        warm_target=args.warm,
        base_seed=args.seed,
        heartbeat_interval=args.heartbeat,
        auto_profile=args.auto_profile,
        profile_scale=args.scale,
        metrics_interval=(
            args.metrics_interval if args.metrics_interval > 0 else None
        ),
        metrics_addr=args.metrics_addr,
        slo_latency=args.slo_latency,
        alert_rules=alert_rules,
        ops_journal=args.ops_journal,
        obs_dir=args.obs_dir,
        obs_rotate_bytes=args.obs_rotate_bytes,
        obs_rotate_seconds=args.obs_rotate_seconds,
        obs_retain_seconds=args.obs_retain_seconds,
        obs_compact_after=args.obs_compact_after,
        alert_webhook=args.alert_webhook,
    )
    daemon.start(apps=args.apps, guests=args.guests)
    scrape = (
        f", metrics on port {daemon.metrics_port}"
        if daemon.metrics_port is not None
        else ""
    )
    print(
        f"serve: pid {os.getpid()} listening on {socket_path} "
        f"({len(daemon.pool.variants())} warm variant(s), "
        f"workers {args.min_workers}..{args.max_workers}, "
        f"queue depth {args.queue_depth}{scrape})",
        flush=True,
    )
    daemon.serve_forever()
    print("serve: stopped")
    return 0


def _ctl_client(args: argparse.Namespace):
    from repro.serve import DEFAULT_SOCKET, ServeClient

    return ServeClient(args.socket or DEFAULT_SOCKET)


def _print_job_row(job: dict) -> None:
    print(
        f"{job['id']:<10} {job['state']:<10} {job['tenant']:<10} "
        f"{job.get('name', ''):<28} {job.get('app', '')}"
    )


def _cmd_ctl(args: argparse.Namespace) -> int:
    """Control a running serve daemon; exit 2 on client-side failures
    (daemon unreachable, unknown job, rejected submission), 1 when the
    daemon reports a failed job."""
    from repro.serve.client import MetricsDisabled, ServeClientError

    try:
        return _ctl_dispatch(args)
    except MetricsDisabled:
        return _fail(
            "metrics recorder disabled: the daemon was started with "
            "--metrics-interval 0, so there is nothing to scrape; "
            "restart it with a positive interval to use "
            f"'ctl {args.ctl_command}'"
        )
    except ServeClientError as exc:
        return _fail(str(exc))


def _ctl_dispatch(args: argparse.Namespace) -> int:
    client = _ctl_client(args)
    cmd = args.ctl_command
    if cmd == "ping":
        info = client.ping()
        print(
            f"ok: daemon pid {info['pid']} protocol v{info['version']} "
            f"({'accepting' if info.get('accepting') else 'draining'})"
        )
        return 0
    if cmd == "submit":
        response = client.submit(
            args.app,
            scale=args.scale,
            attack=args.attack,
            guest=args.guest,
            tenant=args.tenant,
            priority=args.priority,
            name=args.name or "",
            seed=args.seed,
            trace_id=args.trace_id,
        )
        trace = response.get("trace", "")
        print(
            f"submitted {response['id']} ({response['name']})"
            + (f" trace {trace}" if trace else "")
        )
        if not args.wait:
            return 0
        response = client.result(
            response["id"], wait=True, timeout=args.timeout
        )
        return _print_result(response)
    if cmd == "status":
        if args.id:
            job = client.status(args.id)["job"]
            for key in sorted(job):
                print(f"{key:<16} {job[key]}")
            return 0
        jobs = client.status()["jobs"]
        print(f"{'ID':<10} {'STATE':<10} {'TENANT':<10} {'NAME':<28} APP")
        for job in jobs:
            _print_job_row(job)
        return 0
    if cmd == "result":
        response = client.result(args.id, wait=args.wait, timeout=args.timeout)
        return _print_result(response)
    if cmd == "cancel":
        response = client.cancel(args.id)
        print(f"{args.id}: {response['action']}")
        return 0
    if cmd == "stats":
        stats = client.stats()
        if args.json:
            print(json.dumps(stats, indent=2, sort_keys=True))
        else:
            print(_render_stats_table(stats))
        return 0
    if cmd == "metrics":
        if args.prom:
            print(client.metrics(format="prom"), end="")
        elif args.series:
            print(json.dumps(
                client.metrics(format="series"), indent=2, sort_keys=True
            ))
        else:
            print(json.dumps(
                client.metrics(), indent=2, sort_keys=True
            ))
        return 0
    if cmd == "top":
        return _ctl_top(client, args)
    if cmd == "watch":
        from repro.obs import LiveFleetView

        view = LiveFleetView()
        import time as time_mod

        started = time_mod.monotonic()
        try:
            for event in client.watch():
                now = time_mod.monotonic() - started
                for notice in view.update(event, now=now):
                    print(notice, flush=True)
        except KeyboardInterrupt:
            pass
        print()
        print(view.render(now=time_mod.monotonic() - started))
        return 0
    if cmd == "shutdown":
        summary = client.shutdown(drain=not args.no_drain, timeout=args.timeout)
        states = summary.get("jobs", {})
        drained = "drained" if summary.get("drained") else "NOT fully drained"
        jobs = ", ".join(
            f"{k}={v}" for k, v in sorted(states.items())
        ) or "none"
        print(f"daemon stopped ({drained}; jobs: {jobs})")
        return 0
    return _fail(f"unknown ctl command {args.ctl_command!r}")


def _render_stats_table(stats: dict) -> str:
    """Human-readable ``ctl stats`` (``--json`` keeps the raw dump)."""
    queue = stats.get("queue", {})
    workers = stats.get("workers", {})
    states = queue.get("states", {})
    lines = [
        f"daemon     pid {stats.get('pid', '?')}  "
        f"protocol v{stats.get('version', '?')}  "
        f"up {stats.get('uptime_seconds', 0.0):.0f}s  "
        f"{'accepting' if queue.get('accepting') else 'draining'}",
        f"queue      depth {queue.get('depth', 0)}/"
        f"{queue.get('max_depth', 0)}  running {queue.get('running', 0)}  "
        + (
            "jobs " + ", ".join(
                f"{state}={count}" for state, count in sorted(states.items())
            )
            if states
            else "no jobs yet"
        ),
        f"workers    alive {workers.get('alive', 0)}  "
        f"desired {workers.get('desired', 0)}  "
        f"bounds {workers.get('min', 0)}..{workers.get('max', 0)}",
    ]
    pool = stats.get("pool", {})
    for digest in sorted(pool, key=lambda d: pool[d].get("label", d)):
        entry = pool[digest]
        lines.append(
            f"pool       {entry.get('label', digest):<14} "
            f"warm {entry.get('warm', 0)}/{entry.get('target', 0)}  "
            f"hits {entry.get('hits', 0)}  misses {entry.get('misses', 0)}  "
            f"refills {entry.get('refills', 0)}"
        )
    tenants = queue.get("tenants", {})
    if tenants:
        lines.append("")
        lines.append(
            f"{'tenant':<12} {'infl':>5} {'done':>6} {'fail':>5} "
            f"{'cancel':>6} {'cycles':>14} {'budget-left':>12} {'rejected':>9}"
        )
        for name, tenant in sorted(tenants.items()):
            remaining = tenant.get("remaining_cycles")
            lines.append(
                f"{name:<12} {tenant.get('in_flight', 0):>5} "
                f"{tenant.get('completed', 0):>6} "
                f"{tenant.get('failed', 0):>5} "
                f"{tenant.get('cancelled', 0):>6} "
                f"{tenant.get('charged_cycles', 0):>14} "
                f"{remaining if remaining is not None else '-':>12} "
                f"{sum(tenant.get('rejections', {}).values()):>9}"
            )
    serve = stats.get("serve", {})
    counters = {
        name: value
        for name, value in serve.get("counters", {}).items()
        if value
    }
    if counters:
        lines.append("")
        for name, value in sorted(counters.items()):
            lines.append(f"{name:<40} {value:>12}")
    for name, values in sorted(serve.get("labelled_counters", {}).items()):
        if not values:
            continue
        lines.append(f"{name:<40} {sum(values.values()):>12}")
        for label, count in sorted(values.items(), key=lambda kv: -kv[1]):
            lines.append(f"  {label:<38} {count:>12}")
    lifetime = stats.get("jobs_telemetry", {})
    if lifetime.get("sources"):
        lines.append("")
        lines.append(
            f"lifetime job telemetry: {lifetime['sources']} job(s) merged, "
            f"{len(lifetime.get('counters', {}))} counters"
        )
    return "\n".join(line.rstrip() for line in lines)


def _ctl_top(client, args: argparse.Namespace) -> int:
    """The refreshing terminal dashboard over the ``metrics`` op."""
    from repro.obs import render_service_top

    import time as time_mod

    iterations = 1 if args.once else args.count
    shown = 0
    try:
        while True:
            frame = render_service_top(client.metrics())
            if not args.once:
                # ANSI clear + home keeps the table in place like top(1)
                print("\x1b[2J\x1b[H", end="")
            print(frame, flush=True)
            shown += 1
            if iterations and shown >= iterations:
                return 0
            time_mod.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _print_result(response: dict) -> int:
    job = response["job"]
    result = response.get("result") or {}
    state = job["state"]
    if state == "done":
        line = (
            f"{job['id']} done: {result.get('name', job.get('name', ''))} "
            f"cycles={result.get('cycles')} syscalls={result.get('syscalls')}"
        )
        if result.get("attack"):
            verdict = "DETECTED" if result.get("detected") else "missed"
            line += f" attack={result['attack']} {verdict}"
        print(line)
        return 0
    print(
        f"error: {job['id']} {state}: {job.get('error') or '(no detail)'}",
        file=sys.stderr,
    )
    return 1


def _resolve_guest_ref(ref: str):
    from repro.guest.config import resolve_guest

    return resolve_guest(ref)


def _cmd_guest_list(args: argparse.Namespace) -> int:
    from repro.guest.config import VARIANTS

    print(f"{'NAME':<14} {'DIGEST':<14} {'BUILD':<14} {'PLATFORM':<12} "
          f"{'VCPUS':>5}  MODULES")
    for name in sorted(VARIANTS):
        config = VARIANTS[name]
        print(
            f"{name:<14} {config.digest()[:12]:<14} "
            f"{config.build_digest()[:12]:<14} {config.platform:<12} "
            f"{config.vcpus:>5}  {', '.join(config.modules) or '(none)'}"
        )
    return 0


def _cmd_guest_show(args: argparse.Namespace) -> int:
    from repro.guest.config import GuestConfigError

    try:
        config = _resolve_guest_ref(args.ref)
    except GuestConfigError as exc:
        return _fail(str(exc))
    print(config.describe())
    return 0


def _cmd_guest_digest(args: argparse.Namespace) -> int:
    from repro.guest.config import GuestConfigError

    try:
        config = _resolve_guest_ref(args.ref)
    except GuestConfigError as exc:
        return _fail(str(exc))
    print(config.build_digest() if args.build else config.digest())
    return 0


def _cmd_guest_diff(args: argparse.Namespace) -> int:
    from repro.guest.config import GuestConfigError

    try:
        left = _resolve_guest_ref(args.left)
        right = _resolve_guest_ref(args.right)
    except GuestConfigError as exc:
        return _fail(str(exc))
    rows = left.diff(right)
    if not rows:
        print(f"{left.label()} and {right.label()} are identical "
              f"(digest {left.digest()[:12]})")
        return 0
    print(f"{left.label()} -> {right.label()}:")
    for row in rows:
        print(f"  {row}")
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    """Query the persistent observability archive a serve daemon wrote
    with ``--obs-dir`` (works offline -- no daemon required)."""
    from repro.obs.store import (
        ObsStoreError,
        query_series,
        render_query_prom,
        render_query_table,
        render_trace,
    )

    try:
        if args.obs_command == "query":
            result = query_series(
                args.obs_dir,
                name=args.series,
                label=args.label,
                since=args.since,
                until=args.until,
                resolution=args.resolution,
            )
            if args.format == "json":
                print(json.dumps(result, indent=2, sort_keys=True))
            elif args.format == "prom":
                print(render_query_prom(result), end="")
            else:
                print(render_query_table(result))
            return 0
        if args.obs_command == "trace":
            print(
                render_trace(args.obs_dir, args.trace_id, limit=args.limit)
            )
            return 0
    except ObsStoreError as exc:
        return _fail(str(exc))
    return _fail(f"unknown obs command {args.obs_command!r}")


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import generate_prometheus, generate_report

    try:
        if args.format == "prom":
            if args.sections:
                return _fail("--sections only applies to --format md")
            text = generate_prometheus(scale=args.scale, app=args.app)
        else:
            text = generate_report(
                scale=args.scale,
                sections=args.sections,
                obs_dir=args.obs_dir,
            )
    except ValueError as exc:
        return _fail(str(exc))
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="FACE-CHANGE (DSN 2014) reproduction experiments",
    )
    parser.add_argument(
        "--scale", type=int, default=4, help="workload scale (default 4)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("similarity", help="Table I similarity matrix")
    p.add_argument("apps", nargs="*", help="subset of applications")
    p.set_defaults(fn=_cmd_similarity)

    p = sub.add_parser("security", help="Table II attack evaluation")
    p.add_argument("--attack", help="only attacks whose name starts with this")
    p.set_defaults(fn=_cmd_security)

    p = sub.add_parser("unixbench", help="Figure 6 UnixBench point")
    p.add_argument("--views", type=int, default=1, help="views loaded (0=baseline)")
    p.set_defaults(fn=_cmd_unixbench)

    p = sub.add_parser("httperf", help="Figure 7 httperf sweep")
    p.add_argument("--connections", type=int, default=60)
    p.set_defaults(fn=_cmd_httperf)

    p = sub.add_parser("profile", help="profile one application")
    p.add_argument("app")
    p.add_argument("-o", "--output", help="save the view configuration JSON")
    p.add_argument(
        "--library",
        help="store the profile (plus benign baseline) in this fleet "
        "profile library instead of a bare JSON file",
    )
    p.add_argument(
        "--force",
        action="store_true",
        help="re-profile even if the library already has this app",
    )
    _add_guest_flags(p)
    _add_jit_flag(p)
    p.set_defaults(fn=_cmd_profile)

    p = sub.add_parser(
        "inspect", help="summarize a kernel view configuration file"
    )
    p.add_argument("path")
    p.set_defaults(fn=_cmd_inspect)

    p = sub.add_parser(
        "trace", help="run one app under its view with tracing, print timeline"
    )
    p.add_argument("app", nargs="?", default="top")
    p.add_argument("-o", "--output", help="save the telemetry snapshot JSON")
    p.add_argument(
        "--limit", type=int, default=200, help="max timeline rows (default 200)"
    )
    p.add_argument(
        "--app-only",
        action="store_true",
        help="only show events attributable to the traced application",
    )
    p.add_argument(
        "--journal",
        help="record a forensic span journal (JSONL) to this file",
    )
    p.add_argument(
        "--attack",
        help="infect the run with this Table II malware sample "
        "(the app must be the sample's host)",
    )
    _add_guest_flags(p)
    _add_jit_flag(p)
    p.set_defaults(fn=_cmd_trace)

    p = sub.add_parser(
        "flame",
        help="sample one enforced run, render a text flame graph "
        "and top-N hot-function table",
    )
    p.add_argument("app", nargs="?", default="find_pipe")
    p.add_argument(
        "--interval",
        type=int,
        default=20_000,
        help="sampling period in virtual cycles (default 20000)",
    )
    p.add_argument(
        "--seed", type=int, help="pin the workload RNG for a replayable run"
    )
    p.add_argument(
        "--width", type=int, default=40, help="flame-graph bar width"
    )
    p.add_argument(
        "--top", type=int, default=10, help="rows in the hot-function table"
    )
    p.add_argument("-o", "--output", help="save the telemetry snapshot JSON")
    _add_guest_flags(p)
    _add_jit_flag(p)
    p.set_defaults(fn=_cmd_flame)

    p = sub.add_parser(
        "probe",
        help="arm kprobe-style probes on kernel functions during one "
        "enforced run, report hit counts",
    )
    p.add_argument("funcs", nargs="+", help="kernel function symbol(s)")
    p.add_argument(
        "--app", default="find_pipe", help="application to run (default find_pipe)"
    )
    p.add_argument(
        "--app-only",
        action="store_true",
        help="only count hits while the probed app is current (VMI filter)",
    )
    p.add_argument(
        "--interval",
        type=int,
        default=20_000,
        help="sampling period in virtual cycles (default 20000)",
    )
    p.add_argument(
        "--seed", type=int, help="pin the workload RNG for a replayable run"
    )
    _add_guest_flags(p)
    p.set_defaults(fn=_cmd_probe)

    p = sub.add_parser(
        "forensics",
        help="render the causal attack/recovery narrative from a journal",
    )
    p.add_argument(
        "path",
        help="span journal (repro trace --journal / fleet --journal-dir) "
        "or legacy telemetry snapshot JSON",
    )
    p.set_defaults(fn=_cmd_forensics)

    p = sub.add_parser(
        "fleet", help="run a fleet of snapshot-forked guests"
    )
    p.add_argument(
        "spec", nargs="?", help="fleet spec JSON file (see repro.fleet.spec)"
    )
    p.add_argument(
        "--apps", nargs="+", help="quick spec: one job per app (no spec file)"
    )
    p.add_argument(
        "--repeat", type=int, default=1, help="jobs per app with --apps"
    )
    p.add_argument(
        "--matrix",
        action="store_true",
        help="expand an app x attack x guest-variant cross-product from "
        "--apps / --attacks / --guests (each variant is snapshotted once)",
    )
    p.add_argument(
        "--attacks", nargs="+",
        help="with --matrix: malware samples to inject on their host apps",
    )
    p.add_argument(
        "--guests", nargs="+",
        help="guest variants (names or config JSON paths); with --matrix "
        "every variant runs the whole app x attack grid",
    )
    p.add_argument("--workers", type=int, help="worker count (overrides spec)")
    p.add_argument(
        "--library",
        default=".fleet-library",
        help="profile library directory (default .fleet-library)",
    )
    p.add_argument(
        "--no-offline",
        action="store_true",
        help="fail instead of profiling when the library lacks an app",
    )
    p.add_argument(
        "--threads",
        action="store_true",
        help="use the in-process thread pool instead of worker processes",
    )
    p.add_argument(
        "--watch",
        action="store_true",
        help="stream live per-job heartbeats, liveness and profile-drift "
        "notices while the fleet runs",
    )
    p.add_argument(
        "--journal-dir",
        help="collect each job's span journal into this directory",
    )
    p.add_argument(
        "--heartbeat",
        type=float,
        default=0.5,
        help="worker heartbeat interval in seconds (default 0.5)",
    )
    p.add_argument("-o", "--output", help="write the fleet report JSON")
    _add_jit_flag(p)
    p.set_defaults(fn=_cmd_fleet)

    p = sub.add_parser(
        "serve",
        help="run the multi-tenant fleet daemon (warm snapshot pools, "
        "priority job queue, autoscaling workers; control with ctl)",
    )
    p.add_argument(
        "--socket",
        default=None,
        help="control address: unix socket path or host:port "
        "(default .repro-serve.sock)",
    )
    p.add_argument(
        "--library",
        default=".fleet-library",
        help="profile library directory (default .fleet-library)",
    )
    p.add_argument(
        "--apps", nargs="+",
        help="profile these apps up front (once per kernel build)",
    )
    p.add_argument(
        "--guests", nargs="+",
        help="guest variants to pre-boot warm snapshot pools for "
        "(default: the default variant)",
    )
    p.add_argument(
        "--min-workers", type=int, default=1,
        help="worker pool floor (default 1)",
    )
    p.add_argument(
        "--max-workers", type=int, default=4,
        help="worker pool ceiling (default 4)",
    )
    p.add_argument(
        "--queue-depth", type=int, default=64,
        help="admission cap on queued jobs (default 64)",
    )
    p.add_argument(
        "--warm", type=int, default=2,
        help="pre-forked clones kept warm per variant (default 2)",
    )
    p.add_argument(
        "--tenant-in-flight", type=int,
        help="per-tenant cap on queued+running jobs (default unlimited)",
    )
    p.add_argument(
        "--tenant-budget", type=int,
        help="per-tenant virtual-cycle budget across the daemon's "
        "lifetime (default unlimited)",
    )
    p.add_argument(
        "--auto-profile",
        action="store_true",
        help="profile unknown apps on first submission instead of "
        "rejecting with no-profile",
    )
    p.add_argument(
        "--heartbeat", type=float, default=0.25,
        help="streamed heartbeat interval in seconds (default 0.25)",
    )
    p.add_argument(
        "--seed", type=int, default=20140623,
        help="base seed for derived per-job seeds (default 20140623, "
        "matching repro fleet)",
    )
    p.add_argument(
        "--metrics-interval", type=float, default=1.0,
        help="metrics sampling cadence in seconds; 0 disables the "
        "recorder entirely (default 1.0)",
    )
    p.add_argument(
        "--metrics-addr",
        help="also expose Prometheus text over HTTP at host:port "
        "(port 0 picks a free port)",
    )
    p.add_argument(
        "--slo-latency", type=float,
        help="per-tenant submit->result latency SLO target in seconds",
    )
    p.add_argument(
        "--alert-rules",
        help="JSON file of alert rules (default: the built-in rule set)",
    )
    p.add_argument(
        "--ops-journal",
        help="append alert transitions to this journal file "
        "(readable by repro forensics)",
    )
    p.add_argument(
        "--obs-dir",
        help="persist metrics samples, alert transitions, lifecycle "
        "events and per-request trace journals to this directory "
        "(query later with repro obs)",
    )
    p.add_argument(
        "--obs-rotate-bytes", type=int, default=1 << 20,
        help="rotate archive segments past this size (default 1 MiB)",
    )
    p.add_argument(
        "--obs-rotate-seconds", type=float, default=300.0,
        help="rotate archive segments past this age (default 300)",
    )
    p.add_argument(
        "--obs-retain-seconds", type=float, default=7 * 24 * 3600.0,
        help="delete archive segments older than this (default 7 days)",
    )
    p.add_argument(
        "--obs-compact-after", type=float, default=3600.0,
        help="downsample closed segments older than this to 60s "
        "resolution (default 3600)",
    )
    p.add_argument(
        "--alert-webhook",
        help="POST alert transitions as JSON to this URL (bounded "
        "retry on a background thread; never blocks the daemon)",
    )
    _add_jit_flag(p)
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "ctl", help="control a running serve daemon"
    )
    p.add_argument(
        "--socket",
        default=None,
        help="daemon control address (default .repro-serve.sock)",
    )
    csub = p.add_subparsers(dest="ctl_command", required=True)
    c = csub.add_parser("ping", help="check the daemon is alive")
    c.set_defaults(fn=_cmd_ctl)
    c = csub.add_parser("submit", help="submit one job")
    c.add_argument("app", help="application to run")
    c.add_argument("--attack", help="malware sample to inject (host app)")
    c.add_argument("--guest", help="guest variant name or config JSON path")
    c.add_argument("--tenant", default="default", help="tenant id")
    c.add_argument(
        "--priority", type=int, default=0,
        help="higher runs first (default 0)",
    )
    c.add_argument("--name", help="explicit job name (default auto)")
    c.add_argument("--seed", type=int, help="explicit job seed")
    c.add_argument(
        "--trace-id",
        help="explicit request trace id (default: minted client-side); "
        "follow it later with repro obs trace",
    )
    c.add_argument(
        "--wait", action="store_true",
        help="block until the job finishes and print its result",
    )
    c.add_argument(
        "--timeout", type=float, help="with --wait: give up after this long"
    )
    c.set_defaults(fn=_cmd_ctl)
    c = csub.add_parser("status", help="list jobs, or show one")
    c.add_argument("id", nargs="?", help="job id (omit for the full table)")
    c.set_defaults(fn=_cmd_ctl)
    c = csub.add_parser("result", help="fetch a job's result")
    c.add_argument("id", help="job id")
    c.add_argument(
        "--wait", action="store_true", help="block until the job finishes"
    )
    c.add_argument(
        "--timeout", type=float, help="with --wait: give up after this long"
    )
    c.set_defaults(fn=_cmd_ctl)
    c = csub.add_parser("cancel", help="cancel a queued or running job")
    c.add_argument("id", help="job id")
    c.set_defaults(fn=_cmd_ctl)
    c = csub.add_parser("stats", help="show daemon stats")
    c.add_argument(
        "--json", action="store_true",
        help="raw JSON dump instead of the table",
    )
    c.set_defaults(fn=_cmd_ctl)
    c = csub.add_parser(
        "metrics", help="fetch the daemon's service metrics"
    )
    c.add_argument(
        "--prom", action="store_true",
        help="Prometheus text exposition instead of JSON",
    )
    c.add_argument(
        "--series", action="store_true",
        help="raw ring-buffer time series instead of the summary",
    )
    c.set_defaults(fn=_cmd_ctl)
    c = csub.add_parser(
        "top",
        help="live service dashboard: queue, pools, tenants, SLOs, "
        "alerts (Ctrl-C to stop)",
    )
    c.add_argument(
        "--once", action="store_true",
        help="render a single frame and exit (no screen clearing)",
    )
    c.add_argument(
        "--interval", type=float, default=2.0,
        help="refresh cadence in seconds (default 2.0)",
    )
    c.add_argument(
        "--count", type=int, default=0,
        help="stop after this many frames (default: until Ctrl-C)",
    )
    c.set_defaults(fn=_cmd_ctl)
    c = csub.add_parser(
        "watch",
        help="stream daemon events through the live fleet view "
        "(Ctrl-C to stop)",
    )
    c.set_defaults(fn=_cmd_ctl)
    c = csub.add_parser("shutdown", help="stop the daemon")
    c.add_argument(
        "--no-drain",
        action="store_true",
        help="cancel queued jobs instead of draining them",
    )
    c.add_argument(
        "--timeout", type=float, help="give up waiting after this long"
    )
    c.set_defaults(fn=_cmd_ctl)

    p = sub.add_parser(
        "guest", help="inspect guest build variants (configs and digests)"
    )
    gsub = p.add_subparsers(dest="guest_command", required=True)
    g = gsub.add_parser("list", help="list the named guest variants")
    g.set_defaults(fn=_cmd_guest_list)
    g = gsub.add_parser("show", help="describe one guest config")
    g.add_argument("ref", help="variant name or guest config JSON path")
    g.set_defaults(fn=_cmd_guest_show)
    g = gsub.add_parser("digest", help="print a guest config's digest")
    g.add_argument("ref", help="variant name or guest config JSON path")
    g.add_argument(
        "--build",
        action="store_true",
        help="print the build digest (platform excluded; profiles pin to it)",
    )
    g.set_defaults(fn=_cmd_guest_digest)
    g = gsub.add_parser("diff", help="field-by-field diff of two configs")
    g.add_argument("left", help="variant name or guest config JSON path")
    g.add_argument("right", help="variant name or guest config JSON path")
    g.set_defaults(fn=_cmd_guest_diff)

    p = sub.add_parser(
        "obs",
        help="query a serve daemon's persistent observability archive "
        "(written with serve --obs-dir; works after the daemon stops)",
    )
    osub = p.add_subparsers(dest="obs_command", required=True)
    o = osub.add_parser(
        "query", help="replay archived time series over a time range"
    )
    o.add_argument(
        "--obs-dir", required=True, help="archive directory to read"
    )
    o.add_argument(
        "--series", help="one series name (default: all archived series)"
    )
    o.add_argument("--label", help="narrow to one label (e.g. a tenant)")
    o.add_argument(
        "--since", type=float, help="unix-seconds lower bound (inclusive)"
    )
    o.add_argument(
        "--until", type=float, help="unix-seconds upper bound (inclusive)"
    )
    o.add_argument(
        "--resolution", type=float,
        help="pick the ring closest to this resolution in seconds",
    )
    o.add_argument(
        "--format",
        choices=("table", "json", "prom"),
        default="table",
        help="table (default), json (full export) or prom (text "
        "exposition rebuilt from the archive)",
    )
    o.set_defaults(fn=_cmd_obs)
    o = osub.add_parser(
        "trace",
        help="narrate one request end to end: lifecycle events, alerts "
        "in flight, and the guest span forest",
    )
    o.add_argument("trace_id", help="the trace id echoed by ctl submit")
    o.add_argument(
        "--obs-dir", required=True, help="archive directory to read"
    )
    o.add_argument(
        "--limit", type=int, default=25,
        help="cap on span chains rendered (default 25)",
    )
    o.set_defaults(fn=_cmd_obs)

    p = sub.add_parser(
        "report", help="run the full evaluation, emit a markdown report"
    )
    p.add_argument("-o", "--output", help="write the report to this file")
    p.add_argument(
        "--sections",
        nargs="*",
        help="subset of sections to run (see repro.analysis.report."
        "KNOWN_SECTIONS); unknown names fail with a non-zero exit",
    )
    p.add_argument(
        "--obs-dir",
        help="serve observability archive backing the capacity section "
        "(required for --sections capacity)",
    )
    p.add_argument(
        "--format",
        choices=("md", "prom"),
        default="md",
        help="md: markdown evaluation report (default); prom: run one "
        "enforced workload and emit its telemetry as Prometheus text",
    )
    p.add_argument(
        "--app",
        default="top",
        help="with --format prom: the application to run (default top)",
    )
    p.set_defaults(fn=_cmd_report)

    args = parser.parse_args(argv)
    _apply_jit_flag(args)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
