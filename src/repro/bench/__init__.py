"""Performance benchmark suites (paper Section IV-B).

* :mod:`repro.bench.unixbench` -- a UnixBench-alike whose subtests match
  the paper's Figure 6 categories; scores are operations per virtual
  second, normalized against a FACE-CHANGE-off baseline.
* :mod:`repro.bench.httperf` -- an httperf-alike request-rate sweep
  against the Apache workload, producing Figure 7's throughput ratio.
"""

from repro.bench.unixbench import UNIXBENCH_SUBTESTS, UnixBenchResult, run_unixbench
from repro.bench.httperf import HttperfPoint, run_httperf_sweep

__all__ = [
    "HttperfPoint",
    "UNIXBENCH_SUBTESTS",
    "UnixBenchResult",
    "run_httperf_sweep",
    "run_unixbench",
]
