"""UnixBench-alike system benchmark (paper Figure 6).

Subtests mirror the classic UnixBench index: CPU (Dhrystone/Whetstone),
``execl`` throughput, file copies at three buffer sizes, pipe throughput,
pipe-based context switching, process creation, shell scripts and raw
syscall overhead.  Each subtest reports operations per *virtual* second;
the experiment driver runs the suite with FACE-CHANGE off (baseline) and
then with 1..11 kernel views loaded while their applications are
resident, normalizing every score against the baseline.

The paper's headline results this regenerates:

* whole-system overhead of roughly 5-7% with FACE-CHANGE enabled;
* additional loaded views have trivial impact;
* the only sharply degraded subtest is Pipe-based Context Switching,
  because FACE-CHANGE adds a trap per context switch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.apps.base import Env
from repro.apps.catalog import APP_CATALOG
from repro.core.facechange import FaceChange
from repro.core.kernel_view import KernelViewConfig
from repro.guest.machine import Machine, boot_machine
from repro.kernel.objects import Compute, Syscall
from repro.kernel.runtime import Platform

Sys = Syscall

#: Virtual cycles per benchmark "second" (score denominator).
CYCLES_PER_SECOND = 1_000_000


# ---------------------------------------------------------------------------
# subtest drivers
# ---------------------------------------------------------------------------


def _dhrystone(n: int):
    for _ in range(n):
        yield Compute(120_000)


def _whetstone(n: int):
    for _ in range(n):
        yield Compute(150_000)


def _execl(n: int):
    for i in range(n):
        yield Sys("execve", comm="bench", driver=None)
        yield Sys("getpid")


def _file_copy(bufsize: int):
    def driver(n: int):
        src = yield Sys("open", path="/data/src.bin")
        dst = yield Sys("open", path="/data/dst.bin")
        for _ in range(n):
            yield Sys("read", fd=src, count=bufsize)
            yield Sys("write", fd=dst, count=bufsize)
        yield Sys("close", fd=src)
        yield Sys("close", fd=dst)

    return driver


def _pipe_throughput(n: int):
    rfd, wfd = yield Sys("pipe")
    for _ in range(n):
        yield Sys("write", fd=wfd, count=512)
        yield Sys("read", fd=rfd, count=512)
    yield Sys("close", fd=rfd)
    yield Sys("close", fd=wfd)


def _pipe_context_switching(n: int):
    r1, w1 = yield Sys("pipe")
    r2, w2 = yield Sys("pipe")

    def ponger():
        def child():
            yield Sys("close", fd=w1)
            yield Sys("close", fd=r2)
            while True:
                got = yield Sys("read", fd=r1, count=64)
                if got <= 0:
                    break
                yield Sys("write", fd=w2, count=64)
        return child

    pid = yield Sys("fork", child=ponger(), comm="bench")
    yield Sys("close", fd=r1)
    yield Sys("close", fd=w2)
    for _ in range(n):
        yield Sys("write", fd=w1, count=64)
        yield Sys("read", fd=r2, count=64)
    yield Sys("close", fd=w1)
    yield Sys("waitpid", pid=pid)


def _process_creation(n: int):
    def noop():
        def child():
            yield Sys("getpid")
        return child

    for _ in range(n):
        pid = yield Sys("fork", child=noop(), comm="bench")
        yield Sys("waitpid", pid=pid)


def _shell_scripts(n: int):
    def script():
        def child():
            yield Sys("execve", comm="sh", driver=None)
            fd = yield Sys("open", path="/tmp/script.out")
            yield Sys("write", fd=fd, count=256)
            yield Sys("close", fd=fd)
        return child

    for _ in range(n):
        rfd, wfd = yield Sys("pipe")
        pid = yield Sys("fork", child=script(), comm="sh")
        yield Sys("close", fd=wfd)
        yield Sys("close", fd=rfd)
        yield Sys("waitpid", pid=pid)


def _syscall_overhead(n: int):
    for _ in range(n):
        yield Sys("getpid")
        yield Sys("getuid")


#: (name, driver, iterations) in the order Figure 6 plots them.
UNIXBENCH_SUBTESTS: Sequence = (
    ("Dhrystone 2", _dhrystone, 40),
    ("Whetstone", _whetstone, 32),
    ("Execl Throughput", _execl, 80),
    ("File Copy 1024", _file_copy(1024), 300),
    ("File Copy 256", _file_copy(256), 300),
    ("File Copy 4096", _file_copy(4096), 300),
    ("Pipe Throughput", _pipe_throughput, 500),
    ("Pipe-based Context Switching", _pipe_context_switching, 250),
    ("Process Creation", _process_creation, 60),
    ("Shell Scripts", _shell_scripts, 40),
    ("System Call Overhead", _syscall_overhead, 1000),
)

#: Table I applications loaded as resident views, in the paper's order.
#: gzip is excluded -- footnote 5: it is not long-running enough to stay
#: resident for the whole measurement.
RESIDENT_APPS: Sequence[str] = (
    "firefox",
    "totem",
    "gvim",
    "apache",
    "vsftpd",
    "top",
    "tcpdump",
    "mysqld",
    "bash",
    "sshd",
    "eog",
)


@dataclass
class UnixBenchResult:
    """One suite run: per-subtest scores plus the geometric-mean index."""

    label: str
    views_loaded: int
    scores: Dict[str, float] = field(default_factory=dict)

    @property
    def index(self) -> float:
        product = 1.0
        for score in self.scores.values():
            product *= score
        return product ** (1.0 / max(1, len(self.scores)))

    def normalized(self, baseline: "UnixBenchResult") -> Dict[str, float]:
        return {
            name: score / baseline.scores[name]
            for name, score in self.scores.items()
        }

    def normalized_index(self, baseline: "UnixBenchResult") -> float:
        values = self.normalized(baseline)
        product = 1.0
        for value in values.values():
            product *= value
        return product ** (1.0 / max(1, len(values)))


def _resident_idle(comm: str):
    """A resident application: a burst of its real activity, then idling."""

    def factory(env: Env, scale: int):
        app = APP_CATALOG[comm](env, scale)

        def driver():
            yield from app()
            while True:
                yield Sys("nanosleep", cycles=8_000_000)
                yield Sys("getpid")

        return driver

    return factory


def _run_subtest(
    machine: Machine, driver_fn, iterations: int, rounds: int = 3
) -> float:
    """Run one subtest; return the best ops-per-virtual-second of N rounds.

    Best-of-N filters out bursty interference from resident background
    applications (their wakeups are sparse, FACE-CHANGE's per-context-
    switch cost is not, so the systematic overhead survives the max).
    """
    best = 0.0
    for _ in range(rounds):
        def bench_driver():
            yield from driver_fn(iterations)

        task = machine.spawn("bench", lambda: bench_driver())
        start = machine.cycles
        machine.run(
            until=lambda: task.finished,
            max_cycles=start + 4_000_000_000,
            step_budget=50_000,
        )
        if not task.finished:
            raise RuntimeError("benchmark subtest did not finish")
        elapsed = max(1, machine.cycles - start)
        best = max(best, iterations * CYCLES_PER_SECOND / elapsed)
    return best


def run_unixbench(
    views: int = 0,
    configs: Optional[Dict[str, KernelViewConfig]] = None,
    label: Optional[str] = None,
    seed: Optional[int] = None,
) -> UnixBenchResult:
    """Run the full suite on a fresh machine.

    ``views=0`` runs the FACE-CHANGE-off baseline.  ``views=k`` enables
    FACE-CHANGE, loads the first ``k`` Table I views and keeps their
    applications resident during the measurement (the paper's step 3).
    ``seed`` pins the resident applications' workload RNG for replayable
    runs.
    """
    machine = boot_machine(platform=Platform.KVM)
    resident = []
    if views > 0:
        if configs is None:
            raise ValueError("configs required when loading views")
        fc = FaceChange(machine)
        fc.enable()
        env = Env(machine) if seed is None else Env(machine, seed=seed)
        for comm in RESIDENT_APPS[:views]:
            fc.load_view(configs[comm], comm=comm)
            factory = _resident_idle(comm)(env, 1)
            resident.append(machine.spawn(comm, factory))
        # let the resident applications' activity bursts drain so the
        # measurement sees their steady (mostly idle) state
        machine.run(max_cycles=machine.cycles + 60_000_000, step_budget=50_000)
    result = UnixBenchResult(
        label=label if label is not None else f"{views} views",
        views_loaded=views,
    )
    for name, driver_fn, iterations in UNIXBENCH_SUBTESTS:
        result.scores[name] = _run_subtest(machine, driver_fn, iterations)
    return result
