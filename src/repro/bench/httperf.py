"""httperf-alike I/O benchmark for Apache (paper Figure 7).

Reproduces Section IV-B2: a fixed pool of connections is offered to the
Apache workload at request rates from 5 to 60 requests per second (100
connections total per point, like the paper), once with FACE-CHANGE off
and once with Apache's kernel view enforced.  The reported series is the
ratio of achieved I/O throughput (replies per virtual second) with
FACE-CHANGE on versus off.

The expected shape: ratio ~1.0 while the offered rate is below the
CPU-saturation knee (the paper observes ~55 req/s on its hardware),
degrading beyond it because bursty traffic forces frequent kernel view
switches precisely when the CPU has no headroom left.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.facechange import FaceChange
from repro.core.kernel_view import KernelViewConfig
from repro.guest.machine import boot_machine
from repro.kernel.objects import Compute, Syscall
from repro.kernel.runtime import Platform

Sys = Syscall

#: Virtual cycles per "second" for the request-rate axis.  Calibrated so
#: the serving capacity saturates just above 60 req/s without
#: FACE-CHANGE, putting the FACE-CHANGE knee near the paper's 55 req/s.
CYCLES_PER_SECOND = 14_000_000
APACHE_PORT = 80


#: Apache prefork worker count; workers share the listen socket, so each
#: request burst wakes and schedules several processes (this is what
#: makes view-switch frequency track the traffic rate, the effect the
#: paper blames for the post-knee degradation).
WORKER_COUNT = 4


def _httperf_server(total_connections: int, served: Dict[str, int]):
    """Apache prefork: a master plus workers accepting from one socket."""

    def worker(listen_fd):
        def child():
            while served["n"] < total_connections:
                conn = yield Sys("accept", fd=listen_fd)
                if conn < 0:
                    continue
                yield Sys("recv", fd=conn, count=2048)
                fd = yield Sys("open", path="/var/www/index.html")
                yield Sys("fstat", fd=fd)
                yield Compute(132_000)  # request parsing / response build
                yield Sys("sendfile", fd=conn, count=8192)
                yield Sys("close", fd=fd)
                yield Sys("close", fd=conn)
                served["n"] += 1
        return child

    def driver():
        sock = yield Sys("socket", family="inet", stype="stream")
        yield Sys("setsockopt", fd=sock)
        yield Sys("bind", fd=sock, port=APACHE_PORT)
        yield Sys("listen", fd=sock)
        pids = []
        for _ in range(WORKER_COUNT):
            pid = yield Sys("fork", child=worker(sock), comm="apache")
            pids.append(pid)
        for pid in pids:
            yield Sys("waitpid", pid=pid)
        yield Sys("close", fd=sock)

    return driver


@dataclass
class HttperfPoint:
    """One rate point of the sweep."""

    rate: int  # offered requests per (virtual) second
    baseline_throughput: float
    facechange_throughput: float

    @property
    def ratio(self) -> float:
        if self.baseline_throughput == 0:
            return 0.0
        return self.facechange_throughput / self.baseline_throughput


def _run_rate(
    rate: int,
    connections: int,
    config: Optional[KernelViewConfig],
) -> float:
    """Serve ``connections`` requests offered at ``rate``; return reps/s."""
    machine = boot_machine(platform=Platform.KVM)
    if config is not None:
        fc = FaceChange(machine)
        fc.enable()
        fc.load_view(config, comm="apache")
    interval = CYCLES_PER_SECOND // rate
    served = {"n": 0}
    machine.spawn("apache", _httperf_server(connections, served))
    start = machine.cycles
    for i in range(connections):
        when = (i + 1) * interval
        machine.inject_packet(
            APACHE_PORT, 0, delay=when, kind="syn", conn_id=7000 + i
        )
        machine.inject_packet(
            APACHE_PORT, 400, delay=when + 2_000, kind="data", conn_id=7000 + i
        )
    machine.run(
        until=lambda: served["n"] >= connections,
        max_cycles=start + connections * interval * 50 + 4_000_000_000,
        step_budget=50_000,
    )
    if served["n"] < connections:
        raise RuntimeError(f"apache did not serve all requests at rate {rate}")
    elapsed = max(1, machine.cycles - start)
    return connections * CYCLES_PER_SECOND / elapsed


def run_httperf_sweep(
    config: KernelViewConfig,
    rates: Optional[List[int]] = None,
    connections: int = 100,
) -> List[HttperfPoint]:
    """The full Figure 7 sweep: 5..60 req/s, 100 connections each."""
    if rates is None:
        rates = list(range(5, 61, 5))
    points: List[HttperfPoint] = []
    for rate in rates:
        base = _run_rate(rate, connections, None)
        with_fc = _run_rate(rate, connections, config)
        points.append(
            HttperfPoint(
                rate=rate,
                baseline_throughput=base,
                facechange_throughput=with_fc,
            )
        )
    return points
