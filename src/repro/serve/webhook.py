"""Alert webhook sink: POST alert transitions to an external receiver.

``repro serve --alert-webhook URL`` turns every
:class:`~repro.obs.metrics.AlertTransition` into one JSON POST --
pager/chat-ops integration without taking a dependency: stdlib
``urllib`` only.

Delivery discipline (the part that matters for a daemon):

* :meth:`AlertWebhook.offer` **never blocks** -- transitions land on a
  bounded queue; a slow or dead receiver fills it and further offers
  are dropped (and counted), keeping ``_emit`` and the sampler loop
  unaffected;
* a single background thread delivers with **bounded retry and
  exponential backoff**; a transition that still fails after the last
  attempt is abandoned and counted in ``serve.alerts.webhook_errors``;
* :meth:`stop` drains what it can within its timeout and gives up --
  shutdown is never hostage to a webhook receiver.

Payload schema (one JSON object per POST, ``Content-Type:
application/json``)::

    {"type": "alert", "rule": "...", "label": "...",
     "state": "firing" | "resolved", "value": 0.96, "threshold": 0.9,
     "at": 1731000000.0, "description": "..."}
"""

from __future__ import annotations

import json
import queue as queue_mod
import threading
import time
import urllib.request
from typing import Any, Dict, Optional


class AlertWebhook:
    """Non-blocking, bounded-retry alert delivery (see module docs)."""

    def __init__(
        self,
        url: str,
        telemetry: Optional[Any] = None,
        retries: int = 3,
        backoff: float = 0.25,
        timeout: float = 5.0,
        maxsize: int = 256,
    ) -> None:
        self.url = url
        self.telemetry = telemetry
        self.retries = max(1, retries)
        self.backoff = backoff
        self.timeout = timeout
        self._queue: queue_mod.Queue = queue_mod.Queue(maxsize=maxsize)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.delivered = 0
        self.errors = 0

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._loop, name="serve-alert-webhook", daemon=True
        )
        self._thread.start()

    def offer(self, payload: Dict[str, Any]) -> bool:
        """Enqueue one alert payload; never blocks.  False on overflow
        (the drop is counted as a webhook error)."""
        try:
            self._queue.put_nowait(dict(payload))
            return True
        except queue_mod.Full:
            self._count_error()
            return False

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the delivery thread after a bounded drain attempt."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None

    # -- delivery --------------------------------------------------------------

    def _loop(self) -> None:
        while True:
            try:
                payload = self._queue.get(timeout=0.2)
            except queue_mod.Empty:
                if self._stop.is_set():
                    return
                continue
            self._deliver(payload)

    def _deliver(self, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        for attempt in range(self.retries):
            try:
                request = urllib.request.Request(
                    self.url,
                    data=body,
                    headers={"Content-Type": "application/json"},
                    method="POST",
                )
                with urllib.request.urlopen(
                    request, timeout=self.timeout
                ) as response:
                    response.read()
                self.delivered += 1
                return
            except (OSError, ValueError):
                # URLError/HTTPError are OSError subclasses; ValueError
                # covers malformed URLs
                if attempt + 1 < self.retries and not self._stop.is_set():
                    time.sleep(self.backoff * (2**attempt))
        self._count_error()

    def _count_error(self) -> None:
        self.errors += 1
        if self.telemetry is not None:
            self.telemetry.counter("serve.alerts.webhook_errors").inc()
