"""Serve subsystem: the multi-tenant fleet daemon and its control client.

The batch fleet (:mod:`repro.fleet`) answers "run this spec, give me
the results"; this package answers "keep a fleet warm and run whatever
arrives".  FACE-CHANGE's per-application view enforcement (paper §III)
becomes a service shape: every tenant submission gets its own
view-enforced CoW clone, forked from a warm per-variant snapshot, and
its virtual-cycle score is bit-identical to the same job run via
``repro fleet`` -- the invisibility gate this repo enforces on every
subsystem.

* :mod:`repro.serve.queue` -- priority job queue, admission control,
  per-tenant in-flight caps and virtual-cycle budgets;
* :mod:`repro.serve.pool` -- warm ``MachineSnapshot`` pools keyed by
  ``GuestConfig.digest()`` with background-refilled pre-forked clones;
* :mod:`repro.serve.daemon` -- the daemon: autoscaling worker pool,
  JSON-lines control socket, streamed heartbeats/journal segments,
  lifetime telemetry merge;
* :mod:`repro.serve.client` -- the ``repro ctl`` client;
* :mod:`repro.serve.protocol` -- the wire format.
"""

from repro.serve.client import (
    DaemonUnreachable,
    MetricsDisabled,
    ServeClient,
    ServeClientError,
    SubmissionRejected,
    UnknownJob,
)
from repro.serve.daemon import EventSink, JobAborted, ServeDaemon, ServeError
from repro.serve.pool import WarmPool
from repro.serve.protocol import DEFAULT_SOCKET, mint_trace_id
from repro.serve.queue import (
    AdmissionError,
    JobQueue,
    QueuedJob,
    TenantPolicy,
)
from repro.serve.webhook import AlertWebhook

__all__ = [
    "AdmissionError",
    "AlertWebhook",
    "DEFAULT_SOCKET",
    "DaemonUnreachable",
    "EventSink",
    "JobAborted",
    "JobQueue",
    "MetricsDisabled",
    "QueuedJob",
    "ServeClient",
    "ServeClientError",
    "ServeDaemon",
    "ServeError",
    "SubmissionRejected",
    "TenantPolicy",
    "UnknownJob",
    "WarmPool",
    "mint_trace_id",
]
