"""Wire protocol for the serve daemon: JSON lines over a local socket.

One request = one JSON object on one line; one response = one JSON
object on one line.  The only multi-line exchange is ``watch``, where
the daemon keeps the connection open and streams one event object per
line until the client disconnects or the daemon stops.

Addresses are Unix-domain socket paths by default (the daemon/ctl pair
is a local control plane, like ``docker.sock``); ``host:port`` strings
select TCP for platforms without ``AF_UNIX``.
"""

from __future__ import annotations

import json
import socket
import uuid
from typing import Any, Dict, Optional, Tuple

#: Default daemon control socket, relative to the working directory.
DEFAULT_SOCKET = ".repro-serve.sock"

#: Protocol schema version, checked in ``ping``.
PROTOCOL_VERSION = 1

#: Cap on one request/response line (a journal segment is the largest).
MAX_LINE = 64 * 1024 * 1024


class ProtocolError(Exception):
    """Malformed frame on the control socket."""


def mint_trace_id() -> str:
    """A fresh 32-hex request trace id.

    Minted client-side by :meth:`ServeClient.submit` (or daemon-side at
    admission when a submission arrives without one), so a single id
    links the client call, the daemon's lifecycle events, and the guest
    span forest in the obs archive.
    """
    return uuid.uuid4().hex


def is_tcp_address(address: str) -> bool:
    """``host:port`` means TCP; anything else is a unix socket path."""
    host, sep, port = address.rpartition(":")
    return bool(sep) and bool(host) and port.isdigit()


def _tcp_parts(address: str) -> Tuple[str, int]:
    host, _, port = address.rpartition(":")
    return host, int(port)


def listen(address: str, backlog: int = 16) -> socket.socket:
    """Bind a listening control socket at ``address``."""
    if is_tcp_address(address):
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        server.bind(_tcp_parts(address))
    else:
        if not hasattr(socket, "AF_UNIX"):  # pragma: no cover - windows
            raise ProtocolError(
                f"platform lacks AF_UNIX; use a host:port address "
                f"instead of {address!r}"
            )
        import os

        if os.path.exists(address):
            os.unlink(address)
        server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        server.bind(address)
    server.listen(backlog)
    return server


def connect(address: str, timeout: Optional[float] = 10.0) -> socket.socket:
    """Connect to the daemon at ``address`` (raises ``OSError``)."""
    if is_tcp_address(address):
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        sock.connect(_tcp_parts(address))
    else:
        if not hasattr(socket, "AF_UNIX"):  # pragma: no cover - windows
            raise ProtocolError(
                f"platform lacks AF_UNIX; use a host:port address "
                f"instead of {address!r}"
            )
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        sock.connect(address)
    return sock


def send_message(sock: socket.socket, message: Dict[str, Any]) -> None:
    """Ship one JSON object as one line."""
    data = json.dumps(message, separators=(",", ":"), sort_keys=True)
    sock.sendall(data.encode("utf-8") + b"\n")


def recv_message(reader) -> Optional[Dict[str, Any]]:
    """Read one JSON line from a file-like reader; ``None`` on EOF."""
    line = reader.readline(MAX_LINE)
    if not line:
        return None
    if not line.endswith(b"\n") and len(line) >= MAX_LINE:
        raise ProtocolError(f"frame exceeds {MAX_LINE} bytes")
    try:
        message = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"malformed frame: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(message).__name__}"
        )
    return message
