"""Warm machine pools keyed by guest-config digest.

A batch fleet boots one machine per guest variant, snapshots it, and
forks clones on demand -- the boot is amortized across the run, but
every job still pays a fork on its critical path.  A long-lived daemon
can do better on both counts:

* the **snapshot** for each variant is booted once and kept for the
  daemon's lifetime (``MachineSnapshot`` is immutable; forks are
  bit-identical to fresh boots, PR 3's invariant);
* a small buffer of **pre-forked clones** per variant is kept warm and
  refilled in the background, so a submission usually finds a ready
  machine and its critical path is just the workload.

Warm clones are interchangeable with on-demand forks by construction:
``fork()`` is deterministic, so *which* clone a job lands on cannot
affect guest-visible behaviour.  ``fork(expect_digest=...)`` pinning is
preserved -- a pool can never hand out a clone of the wrong variant.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional

from repro.fleet.snapshot import MachineSnapshot
from repro.guest.config import GuestConfig
from repro.guest.machine import Machine, boot_machine


class WarmPool:
    """Per-variant warm ``MachineSnapshot`` + pre-forked clone buffers."""

    def __init__(
        self,
        warm_target: int = 2,
        telemetry: Optional[Any] = None,
    ) -> None:
        self.warm_target = warm_target
        self.telemetry = telemetry
        self._lock = threading.Lock()
        self._snapshots: Dict[str, MachineSnapshot] = {}
        self._warm: Dict[str, List[Machine]] = {}
        self._hits: Dict[str, int] = {}
        self._misses: Dict[str, int] = {}
        self._refills: Dict[str, int] = {}
        self._stop = threading.Event()
        self._refill_thread: Optional[threading.Thread] = None
        self._refill_wake = threading.Event()

    # -- population ----------------------------------------------------------

    def add_snapshot(self, snapshot: MachineSnapshot) -> str:
        """Adopt an existing snapshot (tests, pre-booted machines)."""
        with self._lock:
            digest = snapshot.guest_digest
            self._snapshots.setdefault(digest, snapshot)
            self._warm.setdefault(digest, [])
            self._refill_wake.set()
            return digest

    def ensure(self, config: GuestConfig) -> str:
        """Boot + snapshot ``config``'s variant if not pooled yet."""
        digest = config.digest()
        with self._lock:
            if digest in self._snapshots:
                return digest
        # boot outside the lock: it is slow and the GIL is enough to
        # keep the dict updates below safe under the lock re-take
        snapshot = boot_machine(config=config).snapshot()
        with self._lock:
            self._snapshots.setdefault(digest, snapshot)
            self._warm.setdefault(digest, [])
            self._refill_wake.set()
        return digest

    def variants(self) -> List[str]:
        with self._lock:
            return sorted(self._snapshots)

    # -- acquisition ---------------------------------------------------------

    def acquire(self, config: GuestConfig) -> Machine:
        """A ready clone of ``config``'s variant (warm hit or live fork)."""
        digest = self.ensure(config)
        with self._lock:
            warm = self._warm[digest]
            if warm:
                clone = warm.pop()
                self._hits[digest] = self._hits.get(digest, 0) + 1
                self._count("serve.pool.hits", digest)
                self._refill_wake.set()
                return clone
            snapshot = self._snapshots[digest]
        self._misses[digest] = self._misses.get(digest, 0) + 1
        self._count("serve.pool.misses", digest)
        return snapshot.fork(expect_digest=digest)

    # -- background refill ----------------------------------------------------

    def refill_once(self) -> bool:
        """Fork one clone for the emptiest under-target variant buffer."""
        with self._lock:
            needy = [
                (len(self._warm[digest]), digest)
                for digest in self._snapshots
                if len(self._warm[digest]) < self.warm_target
            ]
            if not needy:
                return False
            _, digest = min(needy)
            snapshot = self._snapshots[digest]
        clone = snapshot.fork(expect_digest=digest)
        with self._lock:
            # target may have been met concurrently; an extra warm clone
            # is harmless (it just serves the next hit)
            self._warm[digest].append(clone)
            self._refills[digest] = self._refills.get(digest, 0) + 1
            self._count("serve.pool.refills", digest)
        return True

    def prewarm(self) -> None:
        """Fill every buffer to target synchronously (daemon startup)."""
        while self.refill_once():
            pass

    def start_refill_thread(self) -> None:
        if self._refill_thread is not None:
            return
        self._stop.clear()

        def loop() -> None:
            while not self._stop.is_set():
                if not self.refill_once():
                    self._refill_wake.wait(timeout=0.05)
                    self._refill_wake.clear()

        self._refill_thread = threading.Thread(
            target=loop, name="serve-pool-refill", daemon=True
        )
        self._refill_thread.start()

    def stop(self) -> None:
        self._stop.set()
        self._refill_wake.set()
        if self._refill_thread is not None:
            self._refill_thread.join(timeout=5.0)
            self._refill_thread = None

    # -- stats ----------------------------------------------------------------

    def _count(self, counter: str, digest: str) -> None:
        if self.telemetry is not None:
            self.telemetry.labelled_counter(counter).inc(digest[:12])

    def stats(self) -> Dict[str, Dict[str, Any]]:
        with self._lock:
            return {
                digest[:12]: {
                    "label": self._snapshots[digest].config.label(),
                    "warm": len(self._warm[digest]),
                    "target": self.warm_target,
                    "forked": self._snapshots[digest].fork_count,
                    "hits": self._hits.get(digest, 0),
                    "misses": self._misses.get(digest, 0),
                    "refills": self._refills.get(digest, 0),
                }
                for digest in sorted(self._snapshots)
            }
