"""Client for the serve daemon's control socket (``repro ctl``).

Thin and stateless: every call opens one connection, sends one JSON
request line, and reads the response (``watch`` keeps its connection
open and yields streamed events).  Failures surface as typed
exceptions so the CLI can map them to exit codes:

* :class:`DaemonUnreachable` -- no daemon at the socket;
* :class:`UnknownJob` -- the daemon does not know the job id;
* :class:`SubmissionRejected` -- admission control said no (carries
  the rejection ``reason`` code);
* :class:`ServeClientError` -- anything else the daemon refused.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Optional

from repro.serve import protocol


class ServeClientError(Exception):
    """The daemon answered, but refused the request."""

    def __init__(self, message: str, reason: str = "") -> None:
        super().__init__(message)
        self.reason = reason


class DaemonUnreachable(ServeClientError):
    """No daemon is listening at the control socket."""


class UnknownJob(ServeClientError):
    """The daemon has no job with the requested id."""


class SubmissionRejected(ServeClientError):
    """Admission control rejected the submission (see ``reason``)."""


class MetricsDisabled(ServeClientError):
    """The daemon runs without a metrics recorder (interval 0)."""


#: Daemon error reasons produced by admission control / validation.
_REJECTION_REASONS = {
    "queue-full",
    "tenant-in-flight",
    "tenant-budget",
    "shutting-down",
    "no-profile",
    "duplicate-id",
    "bad-request",
}


def _raise_for(response: Dict[str, Any]) -> None:
    reason = response.get("reason", "")
    message = response.get("error", "daemon refused the request")
    if reason == "unknown-job":
        raise UnknownJob(message, reason=reason)
    if reason == "no-metrics":
        raise MetricsDisabled(message, reason=reason)
    if reason in _REJECTION_REASONS:
        raise SubmissionRejected(message, reason=reason)
    raise ServeClientError(message, reason=reason)


class ServeClient:
    """One daemon address, any number of single-shot requests."""

    def __init__(
        self, address: str = protocol.DEFAULT_SOCKET, timeout: float = 30.0
    ) -> None:
        self.address = address
        self.timeout = timeout

    # -- plumbing -------------------------------------------------------------

    def _connect(self, timeout: Optional[float]):
        try:
            return protocol.connect(self.address, timeout=timeout)
        except OSError as exc:
            raise DaemonUnreachable(
                f"no serve daemon reachable at {self.address!r} ({exc}); "
                "start one with 'repro.cli serve'",
                reason="unreachable",
            ) from exc

    def request(
        self,
        op: str,
        transport_timeout: Optional[float] = -1.0,
        **params: Any,
    ) -> Dict[str, Any]:
        """One request/response round trip.  ``transport_timeout`` of
        ``None`` blocks indefinitely (long waits); the default uses the
        client's configured timeout."""
        if transport_timeout == -1.0:
            transport_timeout = self.timeout
        sock = self._connect(transport_timeout)
        try:
            protocol.send_message(sock, {"op": op, **params})
            reader = sock.makefile("rb")
            response = protocol.recv_message(reader)
        except OSError as exc:
            raise DaemonUnreachable(
                f"serve daemon at {self.address!r} dropped the "
                f"connection ({exc})",
                reason="unreachable",
            ) from exc
        finally:
            try:
                sock.close()
            except OSError:
                pass
        if response is None:
            raise DaemonUnreachable(
                f"serve daemon at {self.address!r} closed the connection "
                "without answering",
                reason="unreachable",
            )
        if not response.get("ok"):
            _raise_for(response)
        return response

    # -- operations ------------------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        return self.request("ping", transport_timeout=5.0)

    def submit(
        self,
        app: str,
        scale: int = 2,
        attack: Optional[str] = None,
        guest: Any = None,
        tenant: str = "default",
        priority: int = 0,
        name: str = "",
        seed: Optional[int] = None,
        max_cycles: Optional[int] = None,
        job_timeout: Optional[float] = None,
        trace_id: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Submit one job.  A ``trace_id`` is minted client-side when
        not supplied, carried through the daemon's queue and the guest
        journal, and echoed in the response's ``trace`` field."""
        job: Dict[str, Any] = {"app": app, "scale": scale}
        if attack is not None:
            job["attack"] = attack
        if guest is not None:
            job["guest"] = guest
        if name:
            job["name"] = name
        if seed is not None:
            job["seed"] = seed
        if max_cycles is not None:
            job["max_cycles"] = max_cycles
        if job_timeout is not None:
            job["timeout"] = job_timeout
        return self.request(
            "submit",
            job=job,
            tenant=tenant,
            priority=priority,
            trace=trace_id or protocol.mint_trace_id(),
        )

    def status(self, job_id: Optional[str] = None) -> Dict[str, Any]:
        if job_id is None:
            return self.request("status")
        return self.request("status", id=job_id)

    def result(
        self,
        job_id: str,
        wait: bool = False,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        transport: Optional[float] = self.timeout
        if wait:
            transport = (timeout + 5.0) if timeout else None
        return self.request(
            "result",
            transport_timeout=transport,
            id=job_id,
            wait=wait,
            timeout=timeout,
        )

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self.request("cancel", id=job_id)

    def stats(self) -> Dict[str, Any]:
        return self.request("stats")["stats"]

    def metrics(self, format: str = "json") -> Any:
        """Service metrics: ``json`` (compact dict), ``series`` (full
        ring dump) or ``prom`` (Prometheus text exposition)."""
        response = self.request("metrics", format=format)
        if format == "prom":
            return response["text"]
        return response["metrics"]

    def shutdown(
        self, drain: bool = True, timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        transport = (timeout + 10.0) if timeout else None
        return self.request(
            "shutdown",
            transport_timeout=transport,
            drain=drain,
            timeout=timeout,
        )

    def watch(self, since: int = 0) -> Iterator[Dict[str, Any]]:
        """Yield streamed daemon events until the daemon stops (or the
        consumer breaks out, closing the connection)."""
        sock = self._connect(None)
        try:
            protocol.send_message(sock, {"op": "watch", "since": since})
            reader = sock.makefile("rb")
            header = protocol.recv_message(reader)
            if header is None:
                raise DaemonUnreachable(
                    f"serve daemon at {self.address!r} closed the "
                    "connection without answering",
                    reason="unreachable",
                )
            if not header.get("ok"):
                _raise_for(header)
            while True:
                event = protocol.recv_message(reader)
                if event is None:
                    return
                yield event
        finally:
            try:
                sock.close()
            except OSError:
                pass
