"""The serve daemon: a long-lived, multi-tenant fleet control plane.

``repro serve`` turns the batch fleet into a service.  One daemon
process owns:

* a :class:`~repro.serve.queue.JobQueue` -- priority scheduling with
  admission control and per-tenant virtual-cycle budgets;
* a :class:`~repro.serve.pool.WarmPool` -- per-guest-variant machine
  snapshots booted once, plus pre-forked clones refilled in the
  background, so a submission's critical path is just the workload;
* an **autoscaling worker pool** -- in-process worker threads grown and
  shrunk between configured bounds by queue pressure (the fleet's
  threaded mode already proved thread workers bit-identical);
* a **JSON-lines control socket** (``repro ctl``) -- submit, status,
  result, cancel, stats, watch (streamed heartbeats + journal
  segments), shutdown-with-drain.

Jobs execute through exactly the same :func:`repro.fleet.jobs.execute_job`
path as the batch fleet, on forks pinned by config digest, with seeds
derived from the same ``identity()#index`` naming convention -- so a
daemon-submitted job's virtual-cycle score is bit-identical to the same
job in a ``repro fleet`` batch (``benchmarks/record_serve_throughput.py``
enforces it).

Telemetry: the daemon keeps its own ``serve.*`` registry (submissions,
rejections by reason, pool hits/misses/refills, worker scale events)
and folds every finished job's guest registry into one lifetime merge
via :func:`repro.telemetry.merge.merge_into`.
"""

from __future__ import annotations

import json
import os
import queue as queue_mod
import threading
import time
import traceback
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.fleet.jobs import execute_job, prepare_offline_phase
from repro.fleet.library import ProfileLibrary, ProfileRecord
from repro.fleet.spec import DEFAULT_SEED, FleetJob
from repro.guest.config import GuestConfigError, resolve_guest
from repro.obs.metrics import AlertRule, MetricsRecorder
from repro.obs.store import (
    DEFAULT_COMPACT_AFTER_SECONDS,
    DEFAULT_RETAIN_SECONDS,
    DEFAULT_ROTATE_BYTES,
    DEFAULT_ROTATE_SECONDS,
    ObsStore,
)
from repro.serve import protocol
from repro.serve.pool import WarmPool
from repro.serve.queue import (
    REASON_NO_PROFILE,
    AdmissionError,
    JobQueue,
    QueuedJob,
    TenantPolicy,
)
from repro.serve.webhook import AlertWebhook
from repro.telemetry import Journal, Telemetry
from repro.telemetry.export import snapshot as telemetry_snapshot
from repro.telemetry.merge import empty_merge, merge_into

#: Capacity of each job's in-memory journal between segment drains.
_JOB_JOURNAL_CAPACITY = 4096

#: Events retained for late ``watch`` subscribers.
_EVENT_BACKLOG = 8192

#: Per-subscriber bounded event buffer (slow watchers drop, not block).
_WATCH_BUFFER = 1024


class ServeError(Exception):
    """Daemon-side operational failure (not an admission rejection)."""


class JobAborted(Exception):
    """Raised from the progress hook to stop a running job.

    ``reason`` is ``"cancelled"`` or ``"tenant-budget"``;
    ``consumed_cycles`` is charged against the tenant either way.
    """

    def __init__(self, reason: str, consumed_cycles: int) -> None:
        super().__init__(reason)
        self.reason = reason
        self.consumed_cycles = consumed_cycles


class EventSink:
    """A bounded per-subscriber event buffer.

    ``offer`` never blocks: a consumer that stops reading fills its own
    buffer and starts *dropping its own copies* of events -- the daemon
    and every other watcher are unaffected.  Drops are accounted per
    sink (``take_dropped`` feeds the synthetic ``watch-dropped`` event
    the stream handler sends when the consumer catches up) and in the
    daemon's ``serve.watch.dropped`` counter.
    """

    def __init__(self, maxsize: int = _WATCH_BUFFER) -> None:
        self._queue: queue_mod.Queue = queue_mod.Queue(maxsize=maxsize)
        self._lock = threading.Lock()
        self.dropped_total = 0
        self._dropped_pending = 0

    def offer(self, event: Dict[str, Any]) -> bool:
        """Enqueue without blocking; False (and a drop) when full."""
        try:
            self._queue.put_nowait(event)
            return True
        except queue_mod.Full:
            with self._lock:
                self.dropped_total += 1
                self._dropped_pending += 1
            return False

    # kept as an alias so anything treating the sink as a plain queue
    # (older call sites, tests) still works
    put = offer

    def get(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        return self._queue.get(timeout=timeout)

    def take_dropped(self) -> int:
        """Drops since the last call (consumed for drop-accounting)."""
        with self._lock:
            pending = self._dropped_pending
            self._dropped_pending = 0
            return pending


class ServeDaemon:
    """The long-lived fleet service (see module docstring)."""

    def __init__(
        self,
        library: ProfileLibrary,
        socket_path: Optional[str] = None,
        min_workers: int = 1,
        max_workers: int = 4,
        max_queue_depth: int = 64,
        default_policy: Optional[TenantPolicy] = None,
        policies: Optional[Dict[str, TenantPolicy]] = None,
        warm_target: int = 2,
        base_seed: int = DEFAULT_SEED,
        heartbeat_interval: float = 0.25,
        auto_profile: bool = False,
        profile_scale: int = 4,
        executor: Optional[Callable[[QueuedJob], Any]] = None,
        scale_interval: float = 0.05,
        metrics_interval: Optional[float] = 1.0,
        metrics_addr: Optional[str] = None,
        slo_latency: Optional[float] = None,
        alert_rules: Optional[Iterable[AlertRule]] = None,
        ops_journal: Optional[str] = None,
        watch_buffer: int = _WATCH_BUFFER,
        obs_dir: Optional[str] = None,
        obs_rotate_bytes: int = DEFAULT_ROTATE_BYTES,
        obs_rotate_seconds: float = DEFAULT_ROTATE_SECONDS,
        obs_retain_seconds: float = DEFAULT_RETAIN_SECONDS,
        obs_compact_after: float = DEFAULT_COMPACT_AFTER_SECONDS,
        alert_webhook: Optional[str] = None,
    ) -> None:
        if min_workers < 1:
            raise ValueError(f"min_workers must be >= 1, got {min_workers}")
        if max_workers < min_workers:
            raise ValueError(
                f"max_workers ({max_workers}) < min_workers ({min_workers})"
            )
        self.library = library
        self.socket_path = socket_path
        self.min_workers = min_workers
        self.max_workers = max_workers
        self.base_seed = base_seed
        self.heartbeat_interval = heartbeat_interval
        self.auto_profile = auto_profile
        self.profile_scale = profile_scale
        self.scale_interval = scale_interval
        #: the daemon's own registry: serve.* control-plane counters
        self.telemetry = Telemetry()
        self.queue = JobQueue(
            max_depth=max_queue_depth,
            default_policy=default_policy,
            policies=policies,
            telemetry=self.telemetry,
        )
        self.pool = WarmPool(warm_target=warm_target, telemetry=self.telemetry)
        self._executor = executor or self._execute
        self._records: Dict[Any, ProfileRecord] = {}
        self._records_lock = threading.Lock()
        #: merged guest telemetry across every finished job, ever
        self._lifetime = empty_merge()
        self._lifetime_lock = threading.Lock()
        # event stream
        self._event_lock = threading.Lock()
        self._event_seq = 0
        self._events: List[Dict[str, Any]] = []
        self._subscribers: List[EventSink] = []
        self.watch_buffer = watch_buffer
        # service metrics: recorder, optional HTTP scrape, ops journal
        if metrics_addr is not None and metrics_interval is None:
            metrics_interval = 1.0  # a scrape endpoint implies sampling
        self.metrics: Optional[MetricsRecorder] = None
        if metrics_interval is not None:
            self.metrics = MetricsRecorder(
                interval=metrics_interval,
                rules=alert_rules,
                slo_latency=slo_latency,
            )
        self.metrics_addr = metrics_addr
        self.metrics_port: Optional[int] = None
        self._metrics_server = None
        self._metrics_thread: Optional[threading.Thread] = None
        self._stop_metrics = threading.Event()
        self._metrics_lock = threading.Lock()
        self._ops_journal_path = ops_journal
        self._ops_journal: Optional[Journal] = None
        # persistent observability archive + alert webhook (opened in
        # start() so a constructed-but-never-started daemon touches
        # neither disk nor network)
        self.obs_dir = obs_dir
        self.obs_rotate_bytes = obs_rotate_bytes
        self.obs_rotate_seconds = obs_rotate_seconds
        self.obs_retain_seconds = obs_retain_seconds
        self.obs_compact_after = obs_compact_after
        self._obs_store: Optional[ObsStore] = None
        self.alert_webhook_url = alert_webhook
        self._webhook: Optional[AlertWebhook] = None
        # worker pool
        self._workers: Dict[int, threading.Thread] = {}
        self._workers_lock = threading.Lock()
        self._desired_workers = min_workers
        self._stop_workers = threading.Event()
        self._supervisor: Optional[threading.Thread] = None
        # server
        self._server_socket = None
        self._server_thread: Optional[threading.Thread] = None
        self._conn_threads: List[threading.Thread] = []
        self.started_at: Optional[float] = None
        self._stopping = threading.Event()
        self.stopped = threading.Event()

    # -- lifecycle -----------------------------------------------------------

    def start(
        self,
        apps: Optional[List[str]] = None,
        guests: Optional[List[Any]] = None,
    ) -> None:
        """Bring the daemon up: profiles, warm pools, workers, socket.

        ``apps`` are profiled into the library up front (once per kernel
        build); ``guests`` name the variants whose snapshot + warm-clone
        buffers are booted before the first submission arrives.
        """
        self.started_at = time.time()
        if self.obs_dir is not None:
            from repro.obs.metrics import DEFAULT_CAPACITY, DEFAULT_RESOLUTIONS

            self._obs_store = ObsStore(
                self.obs_dir,
                rotate_bytes=self.obs_rotate_bytes,
                rotate_seconds=self.obs_rotate_seconds,
                retain_seconds=self.obs_retain_seconds,
                compact_after=self.obs_compact_after,
                meta={
                    "role": "serve-obs",
                    "pid": os.getpid(),
                    "interval": (
                        self.metrics.interval
                        if self.metrics is not None
                        else None
                    ),
                    "resolutions": list(DEFAULT_RESOLUTIONS),
                    "capacity": DEFAULT_CAPACITY,
                },
            )
        if self.alert_webhook_url:
            self._webhook = AlertWebhook(
                self.alert_webhook_url, telemetry=self.telemetry
            )
            self._webhook.start()
        configs = [resolve_guest(ref) for ref in (guests or [None])]
        seen = set()
        for config in configs:
            if config.digest() in seen:
                continue
            seen.add(config.digest())
            if apps:
                prepare_offline_phase(
                    self.library, sorted(set(apps)),
                    scale=self.profile_scale, guest=config,
                )
            self.pool.ensure(config)
        self.pool.prewarm()
        self.pool.start_refill_thread()
        self._scale_to(self.min_workers)
        self._supervisor = threading.Thread(
            target=self._supervise, name="serve-supervisor", daemon=True
        )
        self._supervisor.start()
        if self.socket_path is not None:
            self._server_socket = protocol.listen(self.socket_path)
            self._server_thread = threading.Thread(
                target=self._accept_loop, name="serve-accept", daemon=True
            )
            self._server_thread.start()
        if self._ops_journal_path is not None:
            self._ops_journal = Journal(
                path=self._ops_journal_path,
                meta={"role": "serve-ops", "pid": os.getpid()},
            )
        if self.metrics is not None:
            if self.metrics_addr is not None:
                self._start_metrics_http()
            self._metrics_thread = threading.Thread(
                target=self._metrics_loop, name="serve-metrics", daemon=True
            )
            self._metrics_thread.start()
        self._emit(
            {
                "type": "serve-started",
                "pid": os.getpid(),
                "variants": self.pool.variants(),
                "min_workers": self.min_workers,
                "max_workers": self.max_workers,
            }
        )

    def shutdown(
        self, drain: bool = True, timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        """Stop the daemon.  With ``drain``, queued and running jobs all
        finish first (no result is ever lost to a shutdown); without,
        queued jobs are cancelled and only running jobs complete."""
        if self._stopping.is_set():
            self.stopped.wait(timeout=timeout)
            return {"drained": True, "jobs": self.queue.describe()["states"]}
        self._stopping.set()
        self.queue.stop_accepting()
        self._emit({"type": "serve-draining", "drain": drain})
        if not drain:
            for job in self.queue.jobs():
                if job.state == "queued":
                    try:
                        self.queue.cancel(job.id)
                    except (KeyError, ValueError):
                        pass
        drained = self.queue.wait_drained(timeout=timeout)
        if self.metrics is not None:
            # one final sample so alerts that clear on drain (queue
            # saturation, worker stall) resolve before the books close
            self._sample_metrics()
            self._stop_metrics.set()
            if self._metrics_thread is not None:
                self._metrics_thread.join(timeout=5.0)
        if self._metrics_server is not None:
            try:
                self._metrics_server.shutdown()
                self._metrics_server.server_close()
            except OSError:
                pass
            self._metrics_server = None
        self._stop_workers.set()
        self._desired_workers = 0
        with self._workers_lock:
            workers = list(self._workers.values())
        for thread in workers:
            thread.join(timeout=5.0)
        self.pool.stop()
        if self._server_socket is not None:
            try:
                self._server_socket.close()
            except OSError:
                pass
            if (
                self.socket_path
                and not protocol.is_tcp_address(self.socket_path)
                and os.path.exists(self.socket_path)
            ):
                try:
                    os.unlink(self.socket_path)
                except OSError:
                    pass
        summary = {
            "drained": drained,
            "jobs": self.queue.describe()["states"],
        }
        self._emit({"type": "serve-stopped", **summary})
        if self._ops_journal is not None:
            self._ops_journal.close()
        if self._webhook is not None:
            self._webhook.stop()
        if self._obs_store is not None:
            # after the serve-stopped event and the final sample above,
            # so the archive's last records cover the whole lifecycle
            self._obs_store.close()
        self.stopped.set()
        return summary

    def serve_forever(self) -> None:
        """Block until a ``shutdown`` request (or KeyboardInterrupt)."""
        try:
            while not self.stopped.is_set():
                self.stopped.wait(timeout=0.2)
        except KeyboardInterrupt:
            self.shutdown(drain=True)

    # -- event stream ---------------------------------------------------------

    def _emit(self, message: Dict[str, Any]) -> None:
        with self._event_lock:
            self._event_seq += 1
            event = {"seq": self._event_seq, **message}
            self._events.append(event)
            if len(self._events) > _EVENT_BACKLOG:
                del self._events[: len(self._events) - _EVENT_BACKLOG]
            subscribers = list(self._subscribers)
            if (
                self._obs_store is not None
                and message.get("type") != "journal"
            ):
                # archive lifecycle events in seq order (journal
                # segments go to the per-trace files instead -- they
                # can be megabytes); archive failure never breaks the
                # event stream
                try:
                    self._obs_store.append_event(event)
                except OSError:
                    self.telemetry.counter("serve.obs.errors").inc()
        dropped = 0
        for sink in subscribers:
            if not sink.offer(event):
                dropped += 1
        if dropped:
            self.telemetry.counter("serve.watch.dropped").inc(dropped)

    def subscribe(
        self, since: int = 0, maxsize: Optional[int] = None
    ) -> Tuple[EventSink, List[Dict[str, Any]]]:
        """Register a live event sink; returns (sink, backlog)."""
        sink = EventSink(maxsize=maxsize or self.watch_buffer)
        with self._event_lock:
            backlog = [e for e in self._events if e["seq"] > since]
            self._subscribers.append(sink)
        return sink, backlog

    def unsubscribe(self, sink) -> None:
        with self._event_lock:
            if sink in self._subscribers:
                self._subscribers.remove(sink)

    # -- submission ------------------------------------------------------------

    def _build_job(self, params: Dict[str, Any]) -> FleetJob:
        """Validate submission params into a FleetJob (ValueError on bad)."""
        from repro.apps.catalog import APP_CATALOG
        from repro.malware import ALL_ATTACKS

        app = params.get("app")
        if app not in APP_CATALOG:
            raise ValueError(
                f"unknown application {app!r} "
                f"(available: {', '.join(sorted(APP_CATALOG))})"
            )
        attack_name = params.get("attack")
        if attack_name is not None:
            attack = next(
                (a for a in ALL_ATTACKS if a.name == attack_name), None
            )
            if attack is None:
                raise ValueError(
                    f"unknown malware sample {attack_name!r} (available: "
                    f"{', '.join(sorted(a.name for a in ALL_ATTACKS))})"
                )
            if attack.host_app != app:
                raise ValueError(
                    f"{attack_name!r} infects {attack.host_app!r}, not {app!r}"
                )
        guest = None
        if params.get("guest") is not None:
            try:
                guest = resolve_guest(params["guest"])
            except GuestConfigError as exc:
                raise ValueError(f"guest: {exc}") from exc
        kwargs: Dict[str, Any] = {}
        if params.get("max_cycles") is not None:
            kwargs["max_cycles"] = int(params["max_cycles"])
        if params.get("timeout") is not None:
            kwargs["timeout"] = float(params["timeout"])
        return FleetJob(
            app=app,
            scale=int(params.get("scale", 2)),
            attack=attack_name,
            seed=params.get("seed"),
            guest=guest,
            name=str(params.get("name", "")),
            **kwargs,
        )

    def _has_profile(self, app: str, build_digest: str) -> bool:
        if (app, build_digest) in self._records:
            return True
        return (
            self.library.digest_of(app, build_digest) is not None
            or self.library.has(app)
        )

    def submit(
        self,
        params: Dict[str, Any],
        tenant: str = "default",
        priority: int = 0,
        trace_id: str = "",
    ) -> QueuedJob:
        """Admit one job (raises ValueError / AdmissionError).

        ``trace_id`` is normally minted by the client; a submission
        arriving without one gets an id minted here at admission, so
        every job is traceable end-to-end either way.
        """
        job = self._build_job(params)
        trace_id = str(trace_id or protocol.mint_trace_id())
        build = job.guest_config().build_digest()
        try:
            if not self.auto_profile and not self._has_profile(job.app, build):
                self.queue.reject(
                    tenant,
                    REASON_NO_PROFILE,
                    f"library has no profile for {job.app!r} on this kernel "
                    f"build; run 'repro.cli profile {job.app} --library ...' "
                    "or start the daemon with --auto-profile",
                )
            self.queue.assign_name(job)
            queued = self.queue.submit(
                job, tenant=tenant, priority=priority, trace_id=trace_id
            )
        except AdmissionError as exc:
            self._emit(
                {
                    "type": "rejected",
                    "app": job.app,
                    "tenant": tenant,
                    "reason": exc.reason,
                    "error": exc.message,
                    "trace": trace_id,
                }
            )
            raise
        self._emit(
            {
                "type": "queued",
                "id": queued.id,
                "job": job.name,
                "app": job.app,
                "tenant": tenant,
                "priority": priority,
                "trace": trace_id,
            }
        )
        return queued

    # -- worker pool ------------------------------------------------------------

    def _scale_to(self, desired: int) -> None:
        self._desired_workers = desired
        with self._workers_lock:
            alive = {
                wid for wid, t in self._workers.items() if t.is_alive()
            }
            for wid in range(desired):
                if wid not in alive:
                    thread = threading.Thread(
                        target=self._worker_loop,
                        args=(wid,),
                        name=f"serve-worker-{wid}",
                        daemon=True,
                    )
                    self._workers[wid] = thread
                    thread.start()
                    self.telemetry.counter("serve.workers.spawned").inc()

    def _supervise(self) -> None:
        """Autoscale between bounds by queue pressure."""
        while not self._stop_workers.is_set():
            pressure = self.queue.pressure()
            desired = min(self.max_workers, max(self.min_workers, pressure))
            if desired > self._desired_workers:
                self._scale_to(desired)
                self._emit(
                    {
                        "type": "scaled",
                        "workers": desired,
                        "pressure": pressure,
                    }
                )
            elif desired < self._desired_workers:
                # shrink lazily: idle workers with ids past the target
                # retire themselves on their next queue timeout
                self._desired_workers = desired
                self._emit(
                    {
                        "type": "scaled",
                        "workers": desired,
                        "pressure": pressure,
                    }
                )
            self._stop_workers.wait(timeout=self.scale_interval)

    def worker_count(self) -> int:
        with self._workers_lock:
            return sum(1 for t in self._workers.values() if t.is_alive())

    def _worker_loop(self, worker_id: int) -> None:
        while True:
            if self._stop_workers.is_set():
                break
            if worker_id >= self._desired_workers:
                # scaled down: retire only while idle
                with self._workers_lock:
                    self._workers.pop(worker_id, None)
                self.telemetry.counter("serve.workers.retired").inc()
                break
            job = self.queue.next_job(timeout=0.05)
            if job is None:
                continue
            self._run_one(job)

    # -- job execution -----------------------------------------------------------

    def _record_for(self, job: FleetJob) -> ProfileRecord:
        config = job.guest_config()
        key = (job.app, config.build_digest())
        with self._records_lock:
            record = self._records.get(key)
            if record is not None:
                return record
            if not self._has_profile(*key):
                if not self.auto_profile:
                    raise ServeError(
                        f"no profile for {job.app!r} on build "
                        f"{config.build_digest()[:12]}"
                    )
                prepare_offline_phase(
                    self.library, [job.app],
                    scale=self.profile_scale, guest=config,
                )
            record = self.library.get(job.app, config.build_digest())
            self._records[key] = record
            return record

    def _execute(self, qjob: QueuedJob):
        """Default executor: warm clone + the batch fleet's job path."""
        job = qjob.job
        record = self._record_for(job)
        name = job.name or job.identity()
        clone = self.pool.acquire(job.guest_config())
        journal = clone.start_recording(
            capacity=_JOB_JOURNAL_CAPACITY,
            meta={
                "trace": qjob.trace_id,
                "job": qjob.id,
                "name": name,
                "tenant": qjob.tenant,
                "app": job.app,
            },
        )
        trace_writer = None
        if self._obs_store is not None and qjob.trace_id:
            try:
                trace_writer = self._obs_store.job_journal(
                    qjob.trace_id,
                    meta={
                        "trace": qjob.trace_id,
                        "job": qjob.id,
                        "name": name,
                        "tenant": qjob.tenant,
                        "app": job.app,
                    },
                )
            except OSError:
                self.telemetry.counter("serve.obs.errors").inc()
        start_cycles = clone.cycles
        last_beat = [time.monotonic()]

        def ship_segment() -> None:
            records_seg, dropped = journal.drain_segment()
            if not (records_seg or dropped):
                return
            self._emit(
                {
                    "type": "journal",
                    "id": qjob.id,
                    "job": name,
                    "records": records_seg,
                    "dropped": dropped,
                    "trace": qjob.trace_id,
                }
            )
            if trace_writer is not None:
                try:
                    trace_writer.extend(records_seg, dropped)
                except OSError:
                    self.telemetry.counter("serve.obs.errors").inc()

        def beat(machine) -> None:
            tel = machine.telemetry
            recoveries = tel.counters.get("recovery.recoveries")
            verdicts = tel.labelled.get("recovery.verdicts")
            self._emit(
                {
                    "type": "heartbeat",
                    "id": qjob.id,
                    "job": name,
                    "tenant": qjob.tenant,
                    "cycles": machine.cycles,
                    "recoveries": recoveries.value if recoveries else 0,
                    "verdicts": (
                        {str(k): v for k, v in verdicts.values.items()}
                        if verdicts
                        else {}
                    ),
                    "trace": qjob.trace_id,
                }
            )
            ship_segment()

        def progress(machine, fc) -> None:
            consumed = machine.cycles - start_cycles
            if qjob.cancel_requested:
                raise JobAborted("cancelled", consumed)
            remaining = self.queue.remaining_budget(qjob.tenant)
            if remaining is not None and consumed > remaining:
                raise JobAborted("tenant-budget", consumed)
            now = time.monotonic()
            if now - last_beat[0] < self.heartbeat_interval:
                return
            last_beat[0] = now
            beat(machine)

        try:
            result = execute_job(
                clone, job, record,
                base_seed=self.base_seed, progress=progress,
            )
        finally:
            # final journal segment, success or abort
            ship_segment()
            clone.stop_recording()
            if trace_writer is not None:
                try:
                    trace_writer.close()
                except OSError:
                    self.telemetry.counter("serve.obs.errors").inc()
        return result

    def _run_one(self, qjob: QueuedJob) -> None:
        job = qjob.job
        name = job.name or job.identity()
        self._emit(
            {
                "type": "start",
                "id": qjob.id,
                "job": name,
                "app": job.app,
                "tenant": qjob.tenant,
                "trace": qjob.trace_id,
            }
        )
        try:
            result = self._executor(qjob)
        except JobAborted as abort:
            state = "cancelled" if abort.reason == "cancelled" else "failed"
            error = (
                "cancelled while running"
                if abort.reason == "cancelled"
                else "tenant virtual-cycle budget exhausted mid-job"
            )
            self.queue.finish(
                qjob, state, error=error,
                charged_cycles=abort.consumed_cycles,
            )
            self._emit(
                {
                    "type": "cancelled" if state == "cancelled" else "done",
                    "id": qjob.id,
                    "job": name,
                    "tenant": qjob.tenant,
                    "ok": False,
                    "error": error,
                    "trace": qjob.trace_id,
                }
            )
            return
        except Exception as exc:  # noqa: BLE001 - crash isolation boundary
            error = (
                f"{type(exc).__name__}: {exc}\n"
                f"{traceback.format_exc(limit=4)}"
            )
            self.queue.finish(qjob, "failed", error=error)
            self._emit(
                {
                    "type": "done",
                    "id": qjob.id,
                    "job": name,
                    "tenant": qjob.tenant,
                    "ok": False,
                    "error": error.splitlines()[0],
                    "trace": qjob.trace_id,
                }
            )
            return
        data = result.to_dict()
        data["id"] = qjob.id
        data["tenant"] = qjob.tenant
        if result.telemetry:
            with self._lifetime_lock:
                merge_into(self._lifetime, result.telemetry, source=name)
        state = "done" if result.ok else "failed"
        self.queue.finish(
            qjob,
            state,
            result=data,
            error=result.error,
            charged_cycles=result.job_cycles,
        )
        self._emit(
            {
                "type": "done",
                "id": qjob.id,
                "job": name,
                "tenant": qjob.tenant,
                "ok": result.ok,
                "error": result.error,
                "cycles": result.cycles,
                "detected": result.detected,
                "trace": qjob.trace_id,
            }
        )

    # -- queries -----------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        with self._lifetime_lock:
            import copy

            lifetime = copy.deepcopy(self._lifetime)
        return {
            "version": protocol.PROTOCOL_VERSION,
            "pid": os.getpid(),
            "uptime_seconds": (
                time.time() - self.started_at if self.started_at else 0.0
            ),
            "queue": self.queue.describe(),
            "pool": self.pool.stats(),
            "workers": {
                "alive": self.worker_count(),
                "desired": self._desired_workers,
                "min": self.min_workers,
                "max": self.max_workers,
            },
            "serve": telemetry_snapshot(self.telemetry, events=False),
            "jobs_telemetry": lifetime,
        }

    # -- service metrics ----------------------------------------------------------

    def metrics_view(self) -> Dict[str, Any]:
        """One sample tick's raw inputs, all from snapshot paths.

        Queue description, job lifecycle timestamps, pool stats, the
        ``serve.*`` registry and the lifetime job-telemetry merge --
        never a running machine, so sampling cannot perturb
        virtual-cycle scores.
        """
        jobs = [
            {
                "id": j.id,
                "tenant": j.tenant,
                "state": j.state,
                "submitted_at": j.submitted_at,
                "started_at": j.started_at,
                "finished_at": j.finished_at,
            }
            for j in self.queue.jobs()
        ]
        with self._lifetime_lock:
            jobs_counters = dict(self._lifetime["counters"])
            jobs_labelled = {
                name: dict(values)
                for name, values in self._lifetime["labelled_counters"].items()
            }
        return {
            "now": time.time(),
            "queue": self.queue.describe(),
            "jobs": jobs,
            "pool": self.pool.stats(),
            "workers": {
                "alive": self.worker_count(),
                "desired": self._desired_workers,
            },
            # dict() snapshots are atomic under the GIL; iterating the
            # live registry dicts would race with lazy counter creation
            "serve_counters": {
                name: counter.value
                for name, counter in dict(self.telemetry.counters).items()
            },
            "serve_labelled": {
                name: {str(k): v for k, v in dict(counter.values).items()}
                for name, counter in dict(self.telemetry.labelled).items()
            },
            "jobs_counters": jobs_counters,
            "jobs_labelled": jobs_labelled,
        }

    def _sample_metrics(self) -> List[Any]:
        """Take one sample tick and fan out any alert transitions."""
        if self.metrics is None:
            return []
        with self._metrics_lock:
            view = self.metrics_view()
            tap = [] if self._obs_store is not None else None
            transitions = self.metrics.sample(view, tap=tap)
            if self._obs_store is not None and tap:
                try:
                    self._obs_store.append_sample(view["now"], tap)
                except OSError:
                    self.telemetry.counter("serve.obs.errors").inc()
        for transition in transitions:
            self.telemetry.labelled_counter("serve.alerts").inc(
                f"{transition.rule}:{transition.state}"
            )
            self._emit({"type": "alert", **transition.to_dict()})
            if self._ops_journal is not None:
                self._ops_journal.append("alert", **transition.to_dict())
                self._ops_journal.flush()
            if self._obs_store is not None:
                try:
                    self._obs_store.append_alert(transition)
                except OSError:
                    self.telemetry.counter("serve.obs.errors").inc()
            if self._webhook is not None:
                self._webhook.offer(
                    {"type": "alert", **transition.to_dict()}
                )
        return transitions

    def _metrics_loop(self) -> None:
        self._sample_metrics()
        while not self._stop_metrics.wait(timeout=self.metrics.interval):
            self._sample_metrics()

    def metrics_describe(self) -> Dict[str, Any]:
        """The compact JSON the ``metrics`` op and ``ctl top`` consume."""
        if self.metrics is None:
            raise ServeError("metrics recorder is disabled")
        data = self.metrics.describe()
        data["pid"] = os.getpid()
        data["uptime_seconds"] = (
            time.time() - self.started_at if self.started_at else 0.0
        )
        return data

    def metrics_text(self) -> str:
        """The Prometheus scrape body (socket op and HTTP listener)."""
        if self.metrics is None:
            raise ServeError("metrics recorder is disabled")
        import copy

        with self._lifetime_lock:
            jobs_snapshot = {
                "counters": dict(self._lifetime["counters"]),
                "labelled_counters": {
                    name: dict(values)
                    for name, values in self._lifetime[
                        "labelled_counters"
                    ].items()
                },
                "histograms": copy.deepcopy(self._lifetime["histograms"]),
            }
        return self.metrics.to_prometheus(
            serve_snapshot=telemetry_snapshot(self.telemetry, events=False),
            jobs_snapshot=jobs_snapshot,
        )

    def _start_metrics_http(self) -> None:
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

        daemon = self

        class MetricsHandler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - stdlib interface
                if self.path in ("/", "/metrics"):
                    body = daemon.metrics_text().encode("utf-8")
                    ctype = "text/plain; version=0.0.4; charset=utf-8"
                elif self.path == "/metrics.json":
                    body = json.dumps(
                        daemon.metrics_describe(), sort_keys=True
                    ).encode("utf-8")
                    ctype = "application/json"
                else:
                    self.send_error(404, "try /metrics or /metrics.json")
                    return
                self.send_response(200)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args: Any) -> None:
                pass  # scrapes are periodic; don't spam the daemon log

        host, _, port = self.metrics_addr.rpartition(":")
        if not host:
            raise ServeError(
                f"metrics address {self.metrics_addr!r} must be host:port"
            )
        server = ThreadingHTTPServer((host, int(port)), MetricsHandler)
        server.daemon_threads = True
        self._metrics_server = server
        self.metrics_port = server.server_address[1]
        threading.Thread(
            target=server.serve_forever,
            name="serve-metrics-http",
            daemon=True,
        ).start()

    # -- control socket ------------------------------------------------------------

    def _accept_loop(self) -> None:
        server = self._server_socket
        while not self._stopping.is_set():
            try:
                conn, _ = server.accept()
            except OSError:
                break  # socket closed during shutdown
            thread = threading.Thread(
                target=self._handle_connection, args=(conn,), daemon=True
            )
            thread.start()
            self._conn_threads = [
                t for t in self._conn_threads if t.is_alive()
            ] + [thread]

    def _handle_connection(self, conn) -> None:
        try:
            reader = conn.makefile("rb")
            request = protocol.recv_message(reader)
            if request is None:
                return
            self._dispatch_request(conn, reader, request)
        except (OSError, protocol.ProtocolError):
            pass
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def _dispatch_request(self, conn, reader, request: Dict[str, Any]) -> None:
        op = request.get("op")
        try:
            if op == "ping":
                protocol.send_message(
                    conn,
                    {
                        "ok": True,
                        "version": protocol.PROTOCOL_VERSION,
                        "pid": os.getpid(),
                        "accepting": self.queue.accepting,
                    },
                )
            elif op == "submit":
                self._handle_submit(conn, request)
            elif op == "status":
                self._handle_status(conn, request)
            elif op == "result":
                self._handle_result(conn, request)
            elif op == "cancel":
                self._handle_cancel(conn, request)
            elif op == "stats":
                protocol.send_message(conn, {"ok": True, "stats": self.stats()})
            elif op == "metrics":
                self._handle_metrics(conn, request)
            elif op == "watch":
                self._handle_watch(conn, request)
            elif op == "shutdown":
                summary = self.shutdown(
                    drain=bool(request.get("drain", True)),
                    timeout=request.get("timeout"),
                )
                protocol.send_message(conn, {"ok": True, **summary})
            else:
                protocol.send_message(
                    conn,
                    {
                        "ok": False,
                        "reason": "unknown-op",
                        "error": f"unknown op {op!r}",
                    },
                )
        except (OSError, protocol.ProtocolError):
            pass  # client went away mid-response

    def _handle_submit(self, conn, request: Dict[str, Any]) -> None:
        tenant = str(request.get("tenant", "default"))
        priority = int(request.get("priority", 0))
        trace = str(request.get("trace") or "")
        try:
            queued = self.submit(
                request.get("job") or {},
                tenant=tenant,
                priority=priority,
                trace_id=trace,
            )
        except ValueError as exc:
            protocol.send_message(
                conn,
                {"ok": False, "reason": "bad-request", "error": str(exc)},
            )
            return
        except AdmissionError as exc:
            protocol.send_message(
                conn,
                {"ok": False, "reason": exc.reason, "error": exc.message},
            )
            return
        protocol.send_message(
            conn,
            {
                "ok": True,
                "id": queued.id,
                "name": queued.job.name,
                "state": queued.state,
                "trace": queued.trace_id,
            },
        )

    def _handle_status(self, conn, request: Dict[str, Any]) -> None:
        job_id = request.get("id")
        if job_id is None:
            protocol.send_message(
                conn,
                {
                    "ok": True,
                    "jobs": [
                        j.describe()
                        for j in sorted(
                            self.queue.jobs(), key=lambda j: j.id
                        )
                    ],
                },
            )
            return
        job = self.queue.get(str(job_id))
        if job is None:
            protocol.send_message(
                conn,
                {
                    "ok": False,
                    "reason": "unknown-job",
                    "error": f"unknown job id {job_id!r}",
                },
            )
            return
        protocol.send_message(conn, {"ok": True, "job": job.describe()})

    def _handle_result(self, conn, request: Dict[str, Any]) -> None:
        job_id = str(request.get("id", ""))
        wait = bool(request.get("wait", False))
        timeout = request.get("timeout")
        job = self.queue.get(job_id)
        if job is None:
            protocol.send_message(
                conn,
                {
                    "ok": False,
                    "reason": "unknown-job",
                    "error": f"unknown job id {job_id!r}",
                },
            )
            return
        if wait:
            job = self.queue.wait_terminal(
                job_id, timeout=float(timeout) if timeout else None
            )
            if job is None:
                protocol.send_message(
                    conn,
                    {
                        "ok": False,
                        "reason": "timeout",
                        "error": f"job {job_id} not finished within timeout",
                    },
                )
                return
        elif not job.terminal:
            protocol.send_message(
                conn,
                {
                    "ok": False,
                    "reason": "not-finished",
                    "error": f"job {job_id} is {job.state}; "
                    "pass wait to block for the result",
                },
            )
            return
        protocol.send_message(
            conn,
            {
                "ok": True,
                "job": job.describe(),
                "result": job.result,
            },
        )

    def _handle_cancel(self, conn, request: Dict[str, Any]) -> None:
        job_id = str(request.get("id", ""))
        try:
            action = self.queue.cancel(job_id)
        except KeyError:
            protocol.send_message(
                conn,
                {
                    "ok": False,
                    "reason": "unknown-job",
                    "error": f"unknown job id {job_id!r}",
                },
            )
            return
        except ValueError as exc:
            protocol.send_message(
                conn,
                {"ok": False, "reason": "already-terminal", "error": str(exc)},
            )
            return
        if action == "cancelled":
            job = self.queue.get(job_id)
            self._emit(
                {
                    "type": "cancelled",
                    "id": job_id,
                    "job": job.job.name if job else job_id,
                    "tenant": job.tenant if job else "",
                    "ok": False,
                    "error": "cancelled while queued",
                    "trace": job.trace_id if job else "",
                }
            )
        protocol.send_message(conn, {"ok": True, "action": action})

    def _handle_metrics(self, conn, request: Dict[str, Any]) -> None:
        if self.metrics is None:
            protocol.send_message(
                conn,
                {
                    "ok": False,
                    "reason": "no-metrics",
                    "error": "the daemon was started with metrics disabled "
                    "(metrics_interval=None)",
                },
            )
            return
        fmt = str(request.get("format", "json"))
        if fmt == "prom":
            protocol.send_message(
                conn, {"ok": True, "format": "prom", "text": self.metrics_text()}
            )
        elif fmt == "series":
            protocol.send_message(
                conn,
                {
                    "ok": True,
                    "format": "series",
                    "metrics": self.metrics.export_series(),
                },
            )
        else:
            protocol.send_message(
                conn,
                {
                    "ok": True,
                    "format": "json",
                    "metrics": self.metrics_describe(),
                },
            )

    def _handle_watch(self, conn, request: Dict[str, Any]) -> None:
        since = int(request.get("since", 0))
        sink, backlog = self.subscribe(since=since)
        try:
            protocol.send_message(conn, {"ok": True, "streaming": True})
            for event in backlog:
                protocol.send_message(conn, event)
            while not self.stopped.is_set():
                dropped = sink.take_dropped()
                if dropped:
                    # the consumer fell behind its bounded buffer; tell
                    # it exactly how many events it lost
                    protocol.send_message(
                        conn, {"type": "watch-dropped", "dropped": dropped}
                    )
                try:
                    event = sink.get(timeout=0.2)
                except queue_mod.Empty:
                    continue
                protocol.send_message(conn, event)
        finally:
            self.unsubscribe(sink)
