"""Priority job queue with admission control and per-tenant budgets.

The daemon's queue is where multi-tenancy becomes enforceable: every
submission names a *tenant*, and admission control decides -- before
the job ever touches a guest -- whether the fleet has room for it:

* a **global queue-depth cap** bounds total queued work, so one burst
  cannot grow the daemon's memory without bound;
* a **per-tenant in-flight cap** bounds how many jobs a single tenant
  may have queued or running at once, so no tenant starves the rest;
* a **per-tenant virtual-cycle budget** bounds how much guest compute
  a tenant may consume over the daemon's lifetime.  Admission rejects
  a tenant whose budget is spent, and workers abort a running job the
  moment it pushes its tenant past the limit (mid-job exhaustion is a
  first-class outcome, not an accounting leak).

Every rejection is accounted (``serve.rejected`` labelled by reason,
plus per-tenant tallies) so capacity planning has data, not anecdotes.

Scheduling is strict priority (higher first), FIFO within a priority
class.  Cancellation of a queued job is immediate; cancellation of a
running job sets a flag that the worker's progress hook observes at
its next heartbeat check.
"""

from __future__ import annotations

import heapq
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.fleet.spec import FleetJob

#: Terminal job states (no further transitions).
TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})

#: Admission rejection reason codes (the ``serve.rejected`` labels).
REASON_QUEUE_FULL = "queue-full"
REASON_TENANT_IN_FLIGHT = "tenant-in-flight"
REASON_TENANT_BUDGET = "tenant-budget"
REASON_SHUTTING_DOWN = "shutting-down"
REASON_NO_PROFILE = "no-profile"


class AdmissionError(Exception):
    """A submission the daemon refused to queue."""

    def __init__(self, reason: str, message: str) -> None:
        super().__init__(message)
        self.reason = reason
        self.message = message


@dataclass(frozen=True)
class TenantPolicy:
    """Per-tenant admission limits (``None`` = unlimited)."""

    #: cap on jobs queued+running at once for this tenant
    max_in_flight: Optional[int] = None
    #: lifetime virtual-cycle budget for this tenant
    cycle_budget: Optional[int] = None


@dataclass
class QueuedJob:
    """One submission's full lifecycle record inside the daemon."""

    id: str
    tenant: str
    priority: int
    job: FleetJob
    state: str = "queued"  # queued | running | done | failed | cancelled
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    cancel_requested: bool = False
    #: JobResult.to_dict() once terminal (telemetry kept daemon-side)
    result: Optional[Dict[str, Any]] = None
    error: str = ""
    #: request trace id (client-minted or assigned at admission); one
    #: id links the submission, every lifecycle event, and the guest
    #: span forest in the obs archive
    trace_id: str = ""

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def describe(self) -> Dict[str, Any]:
        """The status dict shipped to clients."""
        data: Dict[str, Any] = {
            "id": self.id,
            "name": self.job.name or self.job.identity(),
            "app": self.job.app,
            "attack": self.job.attack,
            "tenant": self.tenant,
            "priority": self.priority,
            "state": self.state,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "trace": self.trace_id,
        }
        if self.cancel_requested and not self.terminal:
            data["cancel_requested"] = True
        if self.error:
            data["error"] = self.error
        return data


@dataclass
class TenantState:
    """Lifetime accounting for one tenant."""

    name: str
    policy: TenantPolicy
    in_flight: int = 0
    submitted: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: int = 0
    #: virtual cycles charged against the budget so far
    charged_cycles: int = 0
    rejections: Dict[str, int] = field(default_factory=dict)

    def remaining_cycles(self) -> Optional[int]:
        if self.policy.cycle_budget is None:
            return None
        return max(0, self.policy.cycle_budget - self.charged_cycles)

    def describe(self) -> Dict[str, Any]:
        return {
            "in_flight": self.in_flight,
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "charged_cycles": self.charged_cycles,
            "cycle_budget": self.policy.cycle_budget,
            "remaining_cycles": self.remaining_cycles(),
            "max_in_flight": self.policy.max_in_flight,
            "rejections": dict(self.rejections),
        }


class JobQueue:
    """Thread-safe priority queue with admission control.

    The queue owns job state transitions; the daemon's workers call
    :meth:`next_job` / :meth:`mark_running` / :meth:`finish`, the API
    layer calls :meth:`submit` / :meth:`cancel` / :meth:`get`.  A single
    condition variable serializes everything -- contention is tiny next
    to the cost of running a guest.
    """

    def __init__(
        self,
        max_depth: int = 64,
        default_policy: Optional[TenantPolicy] = None,
        policies: Optional[Dict[str, TenantPolicy]] = None,
        telemetry: Optional[Any] = None,
    ) -> None:
        self.max_depth = max_depth
        self.default_policy = default_policy or TenantPolicy()
        self.policies = dict(policies or {})
        self.telemetry = telemetry
        self._cond = threading.Condition()
        self._heap: List[tuple] = []  # (-priority, seq, job_id)
        self._seq = 0
        self._jobs: Dict[str, QueuedJob] = {}
        self._tenants: Dict[str, TenantState] = {}
        self._queued = 0
        self._running = 0
        self.accepting = True
        #: auto-assigned job names, per identity (matches FleetSpec)
        self._name_counts: Dict[str, int] = {}

    # -- internal helpers (called under the lock) ---------------------------

    def _tenant(self, name: str) -> TenantState:
        state = self._tenants.get(name)
        if state is None:
            policy = self.policies.get(name, self.default_policy)
            state = self._tenants[name] = TenantState(name=name, policy=policy)
        return state

    def _count(self, counter: str, label: Optional[str] = None) -> None:
        if self.telemetry is None:
            return
        if label is None:
            self.telemetry.counter(counter).inc()
        else:
            self.telemetry.labelled_counter(counter).inc(label)

    def _reject(self, tenant: TenantState, reason: str, message: str) -> None:
        tenant.rejections[reason] = tenant.rejections.get(reason, 0) + 1
        self._count("serve.rejected", reason)
        raise AdmissionError(reason, message)

    # -- submission / admission ---------------------------------------------

    def reject(self, tenant: str, reason: str, message: str) -> None:
        """Account and raise a rejection decided outside the queue
        (e.g. the daemon's missing-profile check)."""
        with self._cond:
            self._reject(self._tenant(tenant), reason, message)

    def assign_name(self, job: FleetJob) -> str:
        """Auto-name an unnamed job exactly like :class:`FleetSpec` does
        (``identity()#index``), so a sequence of daemon submissions and
        the equivalent batch spec derive identical per-job seeds."""
        with self._cond:
            if job.name:
                return job.name
            identity = job.identity()
            index = self._name_counts.get(identity, 0)
            self._name_counts[identity] = index + 1
            job.name = f"{identity}#{index}"
            return job.name

    def submit(
        self,
        job: FleetJob,
        tenant: str = "default",
        priority: int = 0,
        job_id: Optional[str] = None,
        trace_id: str = "",
    ) -> QueuedJob:
        """Admit ``job`` or raise :class:`AdmissionError` (with reason)."""
        with self._cond:
            state = self._tenant(tenant)
            if not self.accepting:
                self._reject(
                    state,
                    REASON_SHUTTING_DOWN,
                    "daemon is shutting down and no longer accepts jobs",
                )
            if self._queued >= self.max_depth:
                self._reject(
                    state,
                    REASON_QUEUE_FULL,
                    f"queue is full ({self._queued}/{self.max_depth} jobs "
                    "queued); retry later or raise --queue-depth",
                )
            cap = state.policy.max_in_flight
            if cap is not None and state.in_flight >= cap:
                self._reject(
                    state,
                    REASON_TENANT_IN_FLIGHT,
                    f"tenant {tenant!r} already has {state.in_flight} job(s) "
                    f"in flight (cap {cap})",
                )
            remaining = state.remaining_cycles()
            if remaining is not None and remaining <= 0:
                self._reject(
                    state,
                    REASON_TENANT_BUDGET,
                    f"tenant {tenant!r} has exhausted its virtual-cycle "
                    f"budget ({state.policy.cycle_budget} cycles)",
                )
            if job_id is None:
                job_id = f"job-{len(self._jobs) + 1:04d}"
            if job_id in self._jobs:
                raise AdmissionError(
                    "duplicate-id", f"job id {job_id!r} already exists"
                )
            queued = QueuedJob(
                id=job_id,
                tenant=tenant,
                priority=priority,
                job=job,
                submitted_at=time.time(),
                trace_id=trace_id,
            )
            self._jobs[job_id] = queued
            self._seq += 1
            heapq.heappush(self._heap, (-priority, self._seq, job_id))
            self._queued += 1
            state.in_flight += 1
            state.submitted += 1
            self._count("serve.submitted", tenant)
            self._cond.notify()
            return queued

    # -- worker side ---------------------------------------------------------

    def next_job(self, timeout: Optional[float] = None) -> Optional[QueuedJob]:
        """Pop the highest-priority queued job, waiting up to ``timeout``.

        Returns ``None`` on timeout (workers use this to re-check their
        shrink flag).  The returned job is transitioned to ``running``.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                job = self._pop_runnable()
                if job is not None:
                    return job
                if deadline is None:
                    self._cond.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._cond.wait(remaining):
                        return self._pop_runnable()

    def _pop_runnable(self) -> Optional[QueuedJob]:
        while self._heap:
            _, _, job_id = heapq.heappop(self._heap)
            job = self._jobs[job_id]
            if job.state != "queued":
                continue  # cancelled while queued; already accounted
            job.state = "running"
            job.started_at = time.time()
            self._queued -= 1
            self._running += 1
            return job
        return None

    def finish(
        self,
        job: QueuedJob,
        state: str,
        result: Optional[Dict[str, Any]] = None,
        error: str = "",
        charged_cycles: int = 0,
    ) -> None:
        """Transition a running job to a terminal state and account it."""
        assert state in TERMINAL_STATES, state
        with self._cond:
            tenant = self._tenant(job.tenant)
            if job.state == "running":
                self._running -= 1
            elif job.state == "queued":
                self._queued -= 1
            job.state = state
            job.finished_at = time.time()
            job.result = result
            job.error = error
            tenant.in_flight -= 1
            tenant.charged_cycles += charged_cycles
            if state == "done":
                tenant.completed += 1
                self._count("serve.completed", job.tenant)
            elif state == "cancelled":
                tenant.cancelled += 1
                self._count("serve.cancelled", job.tenant)
            else:
                tenant.failed += 1
                self._count("serve.failed", job.tenant)
            self._cond.notify_all()

    # -- client side ---------------------------------------------------------

    def get(self, job_id: str) -> Optional[QueuedJob]:
        with self._cond:
            return self._jobs.get(job_id)

    def jobs(self) -> List[QueuedJob]:
        with self._cond:
            return list(self._jobs.values())

    def cancel(self, job_id: str) -> str:
        """Cancel ``job_id``.  Returns the action taken:

        * ``"cancelled"`` -- it was queued and is now terminally
          cancelled (it will never run);
        * ``"cancel-requested"`` -- it is running; the worker's next
          progress check aborts it;
        * raises :class:`KeyError` for unknown ids and
          :class:`ValueError` for already-terminal jobs.
        """
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None:
                raise KeyError(job_id)
            if job.terminal:
                raise ValueError(
                    f"job {job_id} is already {job.state}; nothing to cancel"
                )
            job.cancel_requested = True
            if job.state == "queued":
                # immediate: the heap entry is skipped lazily on pop
                tenant = self._tenant(job.tenant)
                job.state = "cancelled"
                job.finished_at = time.time()
                job.error = "cancelled while queued"
                self._queued -= 1
                tenant.in_flight -= 1
                tenant.cancelled += 1
                self._count("serve.cancelled", job.tenant)
                self._cond.notify_all()
                return "cancelled"
            return "cancel-requested"

    def wait_terminal(
        self, job_id: str, timeout: Optional[float] = None
    ) -> Optional[QueuedJob]:
        """Block until ``job_id`` reaches a terminal state (or timeout)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None:
                raise KeyError(job_id)
            while not job.terminal:
                if deadline is None:
                    self._cond.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._cond.wait(remaining):
                        break
            return job if job.terminal else None

    def wait_drained(self, timeout: Optional[float] = None) -> bool:
        """Block until no job is queued or running.  True when drained."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while self._queued or self._running:
                if deadline is None:
                    self._cond.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._cond.wait(remaining):
                        return False
            return True

    def stop_accepting(self) -> None:
        with self._cond:
            self.accepting = False
            self._cond.notify_all()

    # -- budget plumbing for workers -----------------------------------------

    def remaining_budget(self, tenant: str) -> Optional[int]:
        with self._cond:
            return self._tenant(tenant).remaining_cycles()

    # -- stats ----------------------------------------------------------------

    @property
    def depth(self) -> int:
        with self._cond:
            return self._queued

    @property
    def running(self) -> int:
        with self._cond:
            return self._running

    def pressure(self) -> int:
        """Queued + running: the demand signal the autoscaler tracks."""
        with self._cond:
            return self._queued + self._running

    def describe(self) -> Dict[str, Any]:
        with self._cond:
            states: Dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
            return {
                "depth": self._queued,
                "running": self._running,
                "max_depth": self.max_depth,
                "accepting": self.accepting,
                "states": states,
                "tenants": {
                    name: state.describe()
                    for name, state in sorted(self._tenants.items())
                },
            }
