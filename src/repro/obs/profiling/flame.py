"""Folded-stack encoding and text flame graphs.

The sampler stores backtraces in Brendan Gregg's *folded* form: one
string per unique stack, frames joined root-first with ``;``, mapped to
a sample count (``root;mid;leaf 42``).  Folded stacks are the exchange
format between the sampler, the telemetry snapshot (where they ride in
a labelled counter and merge associatively across fleet workers) and
the renderers here.

Symbol names may themselves contain ``;`` or ``\\`` (nothing in the
kernel catalog stops them), so frames are escaped on encode and
unescaped on decode; ``decode_folded(encode_folded(frames)) == frames``
for arbitrary frame names (property-tested).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

_ESCAPE = {";": "\\;", "\\": "\\\\"}


def escape_frame(name: str) -> str:
    """Escape one frame name for embedding in a folded stack."""
    return name.replace("\\", "\\\\").replace(";", "\\;")


def encode_folded(frames: Sequence[str]) -> str:
    """Join root-first ``frames`` into one folded-stack string."""
    return ";".join(escape_frame(frame) for frame in frames)


def decode_folded(folded: str) -> List[str]:
    """Split a folded-stack string back into its frame names."""
    frames: List[str] = []
    current: List[str] = []
    it = iter(folded)
    for ch in it:
        if ch == "\\":
            nxt = next(it, None)
            if nxt is None:
                current.append("\\")
            else:
                current.append(nxt)
        elif ch == ";":
            frames.append("".join(current))
            current = []
        else:
            current.append(ch)
    frames.append("".join(current))
    if frames == [""]:
        return []
    return frames


class _Node:
    __slots__ = ("name", "count", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.children: Dict[str, "_Node"] = {}


def _build_tree(stacks: Mapping[str, int]) -> _Node:
    root = _Node("all")
    for folded, count in stacks.items():
        root.count += count
        node = root
        for frame in decode_folded(folded):
            child = node.children.get(frame)
            if child is None:
                child = node.children[frame] = _Node(frame)
            node = child
            node.count += count
    return root


def render_flame(
    stacks: Mapping[str, int], width: int = 40, min_count: int = 1
) -> str:
    """Render folded stacks as an indented text flame graph.

    Children are ordered by descending count then name, so output is
    deterministic for a given profile.  ``width`` scales the bar drawn
    next to each frame; frames below ``min_count`` samples are elided.
    """
    root = _build_tree(stacks)
    total = root.count
    if total == 0:
        return "(no samples)"
    lines = [f"all [{total} samples]"]

    def walk(node: _Node, depth: int) -> None:
        ordered = sorted(
            node.children.values(), key=lambda n: (-n.count, n.name)
        )
        for child in ordered:
            if child.count < min_count:
                continue
            bar = "#" * max(1, round(width * child.count / total))
            pct = 100.0 * child.count / total
            lines.append(
                f"{'  ' * (depth + 1)}{child.name} "
                f"[{child.count} | {pct:.1f}%] {bar}"
            )
            walk(child, depth + 1)

    walk(root, 0)
    return "\n".join(lines)


def top_table(
    rows: Iterable[Tuple[str, str, int]], limit: int = 10
) -> str:
    """Render a top-N hot-function table from (symbol, segment, count)."""
    ranked = sorted(rows, key=lambda r: (-r[2], r[0], r[1]))[:limit]
    total = sum(r[2] for r in ranked) or 1
    lines = [f"{'SAMPLES':>8}  {'%TOP':>6}  {'SEGMENT':<14}  FUNCTION"]
    for symbol, segment, count in ranked:
        pct = 100.0 * count / total
        lines.append(f"{count:>8}  {pct:>5.1f}%  {segment:<14}  {symbol}")
    return "\n".join(lines)
