"""Statistical observability: sampling profiler, probes, heat analysis.

Three cooperating, guest-transparent parts (see ``docs/OBSERVABILITY.md``):

* :mod:`repro.obs.profiling.sampler` -- virtual-cycle sampling profiler
  hooked into the vCPU run loop (``repro flame``);
* :mod:`repro.obs.profiling.probes` -- kprobe-style dynamic probes on
  observer address traps (``repro probe``);
* :mod:`repro.obs.profiling.heat` -- sampled hotness joined against the
  profile library's kernel views (``repro report --sections heat``).

All of it obeys the spans contract from PR 4: zero guest cycles
charged, virtual-cycle scores bit-identical on or off.
"""

from repro.obs.profiling.flame import (
    decode_folded,
    encode_folded,
    escape_frame,
    render_flame,
    top_table,
)
from repro.obs.profiling.heat import (
    AppHeat,
    HeatReport,
    HotUnprofiled,
    OverheadAttribution,
    analyze_heat,
    format_heat_report,
)
from repro.obs.profiling.probes import Probe, ProbeEngine, ProbeError
from repro.obs.profiling.sampler import (
    DEFAULT_SAMPLE_INTERVAL,
    SampleProfile,
    SamplingProfiler,
)

__all__ = [
    "AppHeat",
    "DEFAULT_SAMPLE_INTERVAL",
    "HeatReport",
    "HotUnprofiled",
    "OverheadAttribution",
    "Probe",
    "ProbeEngine",
    "ProbeError",
    "SampleProfile",
    "SamplingProfiler",
    "analyze_heat",
    "decode_folded",
    "encode_folded",
    "escape_frame",
    "format_heat_report",
    "render_flame",
    "top_table",
]
