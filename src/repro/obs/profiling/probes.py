"""Kprobe-style dynamic probes on hypervisor address traps.

A probe arms an **observer** address trap on a kernel function's entry
point: every time any vCPU reaches the address, the trap fires, the
probe counts the hit (optionally filtered by a predicate over the
VMI-read current task) and -- when the flight recorder is on -- emits a
zero-duration ``probe`` span that nests into the causal trees of
``repro forensics``.  This is the trap-based, guest-transparent
monitoring of Zhan et al. layered on the machinery FACE-CHANGE already
has.

Determinism contract (why probes keep virtual-cycle scores
bit-identical):

* probes arm only at **function entries** -- an entry is reached
  exclusively through CALL/JMP/RET terminators, so the block boundary
  the trap needs already exists and arming it never re-splits a block
  that executed differently before;
* observer traps charge **zero** exit cycles
  (:meth:`~repro.hypervisor.kvm.AddressTrapStage.exit_cost`) and probe
  handlers never call :meth:`~repro.hypervisor.kvm.Hypervisor.charge`;
* the interrupt-window check re-runs after resume at an unchanged
  cycle count, so delivery timing is identical.

Probes compose with FACE-CHANGE's own ``context_switch`` /
``resume_userspace`` traps through the handler chains of
:class:`~repro.hypervisor.kvm.Hypervisor` -- both consumers can share
an address and be removed in either order (regression-tested).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.hypervisor.vmi import GuestProcessInfo
from repro.kernel.image import SymbolError

HITS_COUNTER = "probe.hits"

#: Predicate over the VMI-read current task; hit counted iff it returns True.
ProbePredicate = Callable[[GuestProcessInfo], bool]


class ProbeError(ValueError):
    """The symbol cannot be probed (unknown, or not a function entry)."""


class Probe:
    """One armed probe: symbol, entry address, hit counter."""

    def __init__(
        self,
        symbol: str,
        address: int,
        predicate: Optional[ProbePredicate] = None,
    ) -> None:
        self.symbol = symbol
        self.address = address
        self.predicate = predicate
        self.hits = 0
        self.filtered = 0


class ProbeEngine:
    """Arms and disarms probes for one machine."""

    def __init__(self, machine) -> None:
        if machine.runtime is None:
            raise ValueError("machine must be booted before probing")
        self.machine = machine
        self.probes: Dict[str, Probe] = {}

    # -- arming --------------------------------------------------------------

    def arm(
        self, symbol: str, predicate: Optional[ProbePredicate] = None
    ) -> Probe:
        """Arm a probe on ``symbol``'s entry point (idempotent per symbol)."""
        existing = self.probes.get(symbol)
        if existing is not None:
            existing.predicate = predicate or existing.predicate
            return existing
        image = self.machine.image
        try:
            address = image.address_of(symbol)
        except SymbolError:
            raise ProbeError(f"unknown kernel symbol {symbol!r}") from None
        resolved = image.symbol_at(address)
        if resolved is None or resolved.address != address:
            raise ProbeError(
                f"{symbol!r} does not resolve to a function entry"
            )
        probe = Probe(symbol, address, predicate)

        def handler(vcpu, exit_, probe=probe):
            self._on_hit(probe, vcpu)

        probe._handler = handler
        self.machine.hypervisor.register_address_trap(
            address, handler, observer=True
        )
        self.probes[symbol] = probe
        return probe

    def disarm(self, symbol: str) -> None:
        probe = self.probes.pop(symbol, None)
        if probe is None:
            return
        self.machine.hypervisor.unregister_address_trap(
            probe.address, handler=probe._handler
        )

    def disarm_all(self) -> None:
        for symbol in list(self.probes):
            self.disarm(symbol)

    # -- the hit path --------------------------------------------------------

    def _on_hit(self, probe: Probe, vcpu) -> None:
        if probe.predicate is not None:
            introspector = self.machine.introspector
            task = (
                introspector.read_current_process(vcpu.cpu_id)
                if introspector is not None
                else GuestProcessInfo(pid=0, comm="?")
            )
            if not probe.predicate(task):
                probe.filtered += 1
                return
        probe.hits += 1
        telemetry = self.machine.telemetry
        telemetry.labelled_counter(HITS_COUNTER).inc(probe.symbol)
        if telemetry.tracing:
            telemetry.emit(
                "probe",
                cycles=vcpu.cycles,
                cpu=vcpu.cpu_id,
                symbol=probe.symbol,
                rip=probe.address,
            )
        if telemetry.recording and telemetry.spans.journal is not None:
            span = telemetry.spans.open(
                "probe",
                cpu=vcpu.cpu_id,
                cycles=vcpu.cycles,
                symbol=probe.symbol,
                hits=probe.hits,
            )
            telemetry.spans.close(span, cycles=vcpu.cycles)
