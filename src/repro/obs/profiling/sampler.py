"""Virtual-cycle sampling profiler (hypervisor-side, guest-transparent).

The profiler installs a :data:`~repro.hypervisor.vcpu.CycleSampler`
callback on every vCPU.  The run loop invokes it at block boundaries
once the virtual clock crosses the due mark; the callback captures EIP
plus an ebp frame-chain backtrace (the same walk recovery's
``BACK_TRACE`` performs, §III-B3), resolves addresses against the
kernel catalog and the VMI-parsed module list, and accumulates folded
stacks per ``(comm, view, cpu)``.

Determinism contract: sampling *reads* vCPU state and guest memory and
charges **zero** cycles -- virtual-cycle scores are bit-identical with
the sampler on or off (``benchmarks/record_profiling_overhead.py``
gates this).  Due cycles are aligned to the interval grid
(``((cycles // interval) + 1) * interval``), so two runs of the same
deterministic workload sample at identical virtual instants and the
profile itself is reproducible.

Fleet transport: every sample is mirrored into telemetry labelled
counters (``profile.stacks``, ``profile.functions``) and the
``profile.samples`` counter, so :func:`repro.telemetry.merge.merge_snapshots`
aggregates per-worker profiles with no special cases, and
:meth:`SampleProfile.from_snapshot` rebuilds a profile from any solo or
fleet-merged snapshot.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.rangelist import BASE_KERNEL
from repro.memory.layout import is_kernel_address
from repro.memory.mmu import TranslationError
from repro.obs.profiling.flame import encode_folded, render_flame, top_table

#: Default sampling period in virtual cycles.
DEFAULT_SAMPLE_INTERVAL = 20_000

#: Cap on ebp-chain depth, mirroring recovery's MAX_BACKTRACE_DEPTH.
MAX_SAMPLE_DEPTH = 64

#: View index reported when no view provider is wired (full kernel).
NO_VIEW = -1

STACKS_COUNTER = "profile.stacks"
FUNCTIONS_COUNTER = "profile.functions"
SAMPLES_COUNTER = "profile.samples"

#: Label field separator (symbols are identifier-like; '\t' never occurs).
SEP = "\t"

#: Length of the guest-digest prefix carried in sample labels.
GUEST_PREFIX_LEN = 12


def split_stack_label(label: str) -> Tuple[str, str, str, str, str]:
    """``(guest, comm, view, cpu, folded)`` from a stacks label.

    New labels carry a leading guest-digest field; legacy labels (four
    fields) parse with ``guest == ""``.  Field counts are unambiguous
    because ``SEP`` never occurs inside a field.
    """
    parts = label.split(SEP)
    if len(parts) >= 5:
        return parts[0], parts[1], parts[2], parts[3], SEP.join(parts[4:])
    comm, view, cpu, folded = parts
    return "", comm, view, cpu, folded


def split_function_key(key: str) -> Tuple[str, str, str, str, str, str]:
    """``(guest, comm, segment, rel_start, rel_end, symbol)`` from a key."""
    parts = key.split(SEP)
    if len(parts) >= 6:
        return parts[0], parts[1], parts[2], parts[3], parts[4], parts[5]
    comm, segment, rel_start, rel_end, symbol = parts
    return "", comm, segment, rel_start, rel_end, symbol


class SampleProfile:
    """Accumulated samples, keyed the way the telemetry snapshot keys them.

    ``stacks`` maps ``guest\\tcomm\\tview\\tcpu\\tfolded`` to a sample
    count; ``functions`` maps
    ``guest\\tcomm\\tsegment\\trel_start\\trel_end\\tsymbol`` to the
    number of samples whose *leaf* frame fell inside that function while
    that application was current.  ``guest`` is the 12-hex guest-config
    digest prefix of the kernel variant the sample came from (legacy
    labels omit it), so merging fleet snapshots never folds samples from
    different kernel variants into one row.
    Both are plain count maps, so :meth:`merge` is associative and
    commutative -- merging per-worker profiles in any grouping equals
    one profile of the concatenated samples (property-tested).
    """

    def __init__(self) -> None:
        self.samples = 0
        self.stacks: Dict[str, int] = {}
        self.functions: Dict[str, int] = {}

    # -- accumulation --------------------------------------------------------

    def add_sample(
        self,
        comm: str,
        view: int,
        cpu: int,
        frames: List[str],
        function_key: Optional[str] = None,
        count: int = 1,
        guest: str = "",
    ) -> None:
        """Record one sample: root-first ``frames`` under (comm, view, cpu).

        ``guest`` (a guest-digest prefix) keys the sample to its kernel
        variant; omitted, the label takes the legacy unlabelled form.
        """
        label = f"{comm}{SEP}{view}{SEP}{cpu}{SEP}{encode_folded(frames)}"
        if guest:
            label = f"{guest}{SEP}{label}"
        self.stacks[label] = self.stacks.get(label, 0) + count
        if function_key is not None:
            self.functions[function_key] = (
                self.functions.get(function_key, 0) + count
            )
        self.samples += count

    def merge(self, other: "SampleProfile") -> "SampleProfile":
        """Fold ``other`` into this profile (in place; returns self)."""
        self.samples += other.samples
        for label, count in other.stacks.items():
            self.stacks[label] = self.stacks.get(label, 0) + count
        for key, count in other.functions.items():
            self.functions[key] = self.functions.get(key, 0) + count
        return self

    @classmethod
    def merged(cls, profiles: Iterable["SampleProfile"]) -> "SampleProfile":
        out = cls()
        for profile in profiles:
            out.merge(profile)
        return out

    # -- snapshot round-trip -------------------------------------------------

    @classmethod
    def from_snapshot(cls, snapshot: Dict) -> "SampleProfile":
        """Rebuild a profile from a telemetry snapshot (solo or merged)."""
        out = cls()
        labelled = snapshot.get("labelled_counters", {})
        out.stacks = dict(labelled.get(STACKS_COUNTER, {}))
        out.functions = dict(labelled.get(FUNCTIONS_COUNTER, {}))
        out.samples = snapshot.get("counters", {}).get(SAMPLES_COUNTER, 0)
        return out

    # -- views over the data -------------------------------------------------

    def folded(
        self,
        comm: Optional[str] = None,
        view: Optional[int] = None,
        guest: Optional[str] = None,
    ) -> Dict[str, int]:
        """Aggregate folded stacks, optionally filtered by comm/view/guest."""
        out: Dict[str, int] = {}
        for label, count in self.stacks.items():
            l_guest, l_comm, l_view, _cpu, folded = split_stack_label(label)
            if comm is not None and l_comm != comm:
                continue
            if view is not None and l_view != str(view):
                continue
            if guest is not None and l_guest != guest:
                continue
            out[folded] = out.get(folded, 0) + count
        return out

    def function_rows(
        self, comm: Optional[str] = None, guest: Optional[str] = None
    ) -> List[Tuple[str, str, int, int, int]]:
        """(symbol, segment, count, rel_start, rel_end), hottest first.

        Aggregates over applications unless ``comm`` filters to one, and
        over guest variants unless ``guest`` filters to one -- pass it
        when the profile mixes kernel variants, since segment-relative
        ranges are only comparable within one build.
        """
        merged: Dict[Tuple[str, str, int, int], int] = {}
        for key, count in self.functions.items():
            l_guest, l_comm, segment, rel_start, rel_end, symbol = (
                split_function_key(key)
            )
            if comm is not None and l_comm != comm:
                continue
            if guest is not None and l_guest != guest:
                continue
            mkey = (symbol, segment, int(rel_start), int(rel_end))
            merged[mkey] = merged.get(mkey, 0) + count
        rows = [
            (symbol, segment, count, rel_start, rel_end)
            for (symbol, segment, rel_start, rel_end), count in merged.items()
        ]
        rows.sort(key=lambda r: (-r[2], r[0]))
        return rows

    def comms(self) -> List[str]:
        return sorted(
            {split_stack_label(label)[1] for label in self.stacks}
        )

    def guests(self) -> List[str]:
        """Guest-digest prefixes present in the profile ("" = legacy)."""
        return sorted(
            {split_stack_label(label)[0] for label in self.stacks}
        )

    # -- rendering -----------------------------------------------------------

    def render_flame(
        self, comm: Optional[str] = None, width: int = 40
    ) -> str:
        return render_flame(self.folded(comm=comm), width=width)

    def render_top(self, limit: int = 10) -> str:
        rows = [(sym, seg, count) for sym, seg, count, _, _ in
                self.function_rows()]
        return top_table(rows, limit=limit)


class SamplingProfiler:
    """Drives the vCPU sampler hooks for one machine.

    Parameters
    ----------
    machine:
        A booted machine.
    interval:
        Sampling period in virtual cycles.
    view_provider:
        Optional ``cpu -> view index`` callable (wired to FACE-CHANGE's
        switcher when attached); defaults to :data:`NO_VIEW`.
    """

    def __init__(
        self,
        machine,
        interval: int = DEFAULT_SAMPLE_INTERVAL,
        view_provider=None,
    ) -> None:
        if machine.runtime is None:
            raise ValueError("machine must be booted before profiling")
        if interval <= 0:
            raise ValueError("sampling interval must be positive")
        self.machine = machine
        self.interval = interval
        self.view_provider = view_provider
        #: guest-config digest prefix stamped on every sample label
        self.guest = machine.guest_digest[:GUEST_PREFIX_LEN]
        self.profile = SampleProfile()
        self._module_ranges: List[Tuple[int, int, str]] = []
        self._installed = False
        self._refresh_module_ranges(None)

    # -- lifecycle -----------------------------------------------------------

    def install(self) -> None:
        """Attach the sampler callback to every vCPU."""
        if self._installed:
            return
        for vcpu in self.machine.hypervisor.vcpus:
            vcpu.cycle_sampler = self._on_sample
            vcpu._sample_due = self._next_due(vcpu.cycles)
        self.machine.runtime.module_load_listeners.append(
            self._refresh_module_ranges
        )
        self._installed = True

    def uninstall(self) -> None:
        if not self._installed:
            return
        for vcpu in self.machine.hypervisor.vcpus:
            if vcpu.cycle_sampler is self._on_sample:
                vcpu.cycle_sampler = None
        listeners = self.machine.runtime.module_load_listeners
        if self._refresh_module_ranges in listeners:
            listeners.remove(self._refresh_module_ranges)
        self._installed = False

    # -- classification ------------------------------------------------------

    def _refresh_module_ranges(self, _name: Optional[str]) -> None:
        """Re-read the guest module list (VMI) after a module (un)load."""
        introspector = self.machine.introspector
        if introspector is None:
            return
        self._module_ranges = [
            (mod.base, mod.base + mod.size, mod.name)
            for mod in introspector.read_module_list()
        ]

    def _classify(self, addr: int) -> Tuple[str, int]:
        """Absolute kernel address -> (segment, segment-relative offset)."""
        for begin, end, name in self._module_ranges:
            if begin <= addr < end:
                return name, addr - begin
        return BASE_KERNEL, addr

    def _frame_name(self, addr: int) -> str:
        symbol = self.machine.image.symbol_at(addr)
        if symbol is None:
            return "UNKNOWN"
        if symbol.module is not None:
            module = self.machine.image.modules.get(symbol.module)
            if module is not None and module.hidden:
                return "UNKNOWN"
        return symbol.name

    def _function_key(self, addr: int, comm: str) -> Optional[str]:
        symbol = self.machine.image.symbol_at(addr)
        if symbol is None:
            return None
        segment, rel = self._classify(symbol.address)
        return (
            f"{self.guest}{SEP}{comm}{SEP}{segment}{SEP}{rel}{SEP}"
            f"{rel + symbol.size}{SEP}{self._frame_name(addr)}"
        )

    # -- the hook ------------------------------------------------------------

    def _next_due(self, cycles: int) -> int:
        return ((cycles // self.interval) + 1) * self.interval

    def _backtrace(self, vcpu) -> List[str]:
        """Leaf-to-root ebp walk; read-only, same shape as BACK_TRACE."""
        frames: List[str] = []
        iter_rbp = vcpu.ebp
        for _ in range(MAX_SAMPLE_DEPTH):
            if iter_rbp == 0 or not is_kernel_address(iter_rbp):
                break
            try:
                words = vcpu.mmu.read(iter_rbp, 8)
            except TranslationError:
                break
            prev_rbp = int.from_bytes(words[0:4], "little")
            prev_rip = int.from_bytes(words[4:8], "little")
            if prev_rip == 0 or not is_kernel_address(prev_rip):
                break
            frames.append(self._frame_name(prev_rip))
            iter_rbp = prev_rbp
        return frames

    def _on_sample(self, vcpu) -> int:
        eip = vcpu.eip
        if is_kernel_address(eip):
            leaf = self._frame_name(eip)
            frames = [leaf] + self._backtrace(vcpu)
            frames.reverse()  # folded stacks are root-first
            cpu = vcpu.cpu_id
            introspector = self.machine.introspector
            comm = (
                introspector.read_current_process(cpu).comm
                if introspector is not None
                else "?"
            )
            view = (
                self.view_provider(cpu)
                if self.view_provider is not None
                else NO_VIEW
            )
            key = self._function_key(eip, comm)
            self.profile.add_sample(
                comm, view, cpu, frames, key, guest=self.guest
            )
            telemetry = self.machine.telemetry
            telemetry.counter(SAMPLES_COUNTER).inc()
            stack_label = (
                f"{self.guest}{SEP}{comm}{SEP}{view}{SEP}{cpu}{SEP}"
                f"{encode_folded(frames)}"
            )
            telemetry.labelled_counter(STACKS_COUNTER).inc(stack_label)
            if key is not None:
                telemetry.labelled_counter(FUNCTIONS_COUNTER).inc(key)
        return self._next_due(vcpu.cycles)
