"""Kernel-view heat analysis: join sampled hotness against profiles.

FACE-CHANGE's security argument rests on views matching what each
application actually executes (§III-A).  Heat analysis checks that
claim statistically by joining a :class:`SampleProfile` (what the
sampler observed) against the per-app :class:`KernelProfile` ranges
(what the offline phase put in the view):

* **hot-but-unprofiled** functions -- sampled under an app but absent
  from its profile: every future call is a #UD recovery waiting to
  happen (future recovery risk);
* **profiled-but-never-sampled** bytes -- view regions no sample ever
  landed in (view bloat / attack surface kept mapped for nothing);
* **overhead attribution** -- virtual cycles charged inside the
  enforcement paths (EPT world switches, trap exits, #UD recoveries)
  versus the samples observed doing guest work.

The input is a telemetry *snapshot* dict, so the same analysis runs on
a solo machine or on a fleet result merged by
:func:`repro.telemetry.merge.merge_snapshots` -- merged heat equals
solo heat for the same seeds (integration-tested).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.rangelist import RangeList
from repro.obs.profiling.sampler import SampleProfile


@dataclass
class HotUnprofiled:
    """A function observed hot under an app but missing from its view."""

    comm: str
    symbol: str
    segment: str
    rel_start: int
    rel_end: int
    samples: int
    #: guest-config digest prefix of the kernel variant sampled ("" = legacy)
    guest: str = ""


@dataclass
class AppHeat:
    """Per-application join of samples vs. profiled ranges."""

    comm: str
    samples: int
    profiled_bytes: int
    sampled_bytes: int
    covered_bytes: int  # profiled ∩ sampled
    hot_unprofiled: List[HotUnprofiled] = field(default_factory=list)
    #: guest-config digest prefix the rows were computed against
    guest: str = ""

    @property
    def bloat_bytes(self) -> int:
        """Profiled bytes no sample ever landed in."""
        return self.profiled_bytes - self.covered_bytes

    @property
    def bloat_ratio(self) -> float:
        if self.profiled_bytes == 0:
            return 0.0
        return self.bloat_bytes / self.profiled_bytes


@dataclass
class OverheadAttribution:
    """Enforcement cycles vs. observed guest work, from snapshot metrics."""

    switch_cycles: int
    trap_exit_cycles: int
    recovery_cycles: int
    switches: int
    recoveries: int
    samples: int

    @property
    def enforcement_cycles(self) -> int:
        return self.switch_cycles + self.trap_exit_cycles + self.recovery_cycles


@dataclass
class HeatReport:
    apps: Dict[str, AppHeat]
    overhead: OverheadAttribution

    @property
    def hot_unprofiled(self) -> List[HotUnprofiled]:
        out: List[HotUnprofiled] = []
        for heat in self.apps.values():
            out.extend(heat.hot_unprofiled)
        out.sort(key=lambda h: (-h.samples, h.comm, h.symbol))
        return out


def _histogram_total(snapshot: Dict, name: str) -> int:
    return snapshot.get("histograms", {}).get(name, {}).get("total", 0)


def _counter(snapshot: Dict, name: str) -> int:
    return snapshot.get("counters", {}).get(name, 0)


def analyze_heat(
    snapshot: Dict,
    configs: Dict[str, "KernelViewConfig"],  # noqa: F821 - lazy type
    profile: Optional[SampleProfile] = None,
    guest: Optional[str] = None,
) -> HeatReport:
    """Join a telemetry snapshot's samples against per-app view configs.

    ``configs`` maps application comm to the offline-phase
    :class:`~repro.core.kernel_view.KernelViewConfig` (the profile
    library's entries).  ``profile`` defaults to the one embedded in
    the snapshot's labelled counters.

    ``guest`` (a guest-digest prefix) restricts the join to samples
    from that kernel variant; required when the snapshot merges several
    variants, since view ranges only make sense against the build they
    were profiled on.  When omitted and the profile holds exactly one
    variant, rows are labelled with it automatically.
    """
    if profile is None:
        profile = SampleProfile.from_snapshot(snapshot)
    sampled_guests = profile.guests()
    if guest is None and len(sampled_guests) > 1:
        raise ValueError(
            "snapshot mixes samples from several guest variants "
            f"({', '.join(g or 'unlabelled' for g in sampled_guests)}); "
            "pass guest=<digest prefix> to pick one"
        )
    row_filter = guest
    label = guest if guest is not None else (
        sampled_guests[0] if sampled_guests else ""
    )
    apps: Dict[str, AppHeat] = {}
    for comm, config in sorted(configs.items()):
        kernel_profile = config.profile
        rows = profile.function_rows(comm=comm, guest=row_filter)
        # sampled function ranges per segment
        sampled: Dict[str, RangeList] = {}
        samples = 0
        for _symbol, segment, count, rel_start, rel_end in rows:
            sampled.setdefault(segment, RangeList()).add(rel_start, rel_end)
            samples += count
        profiled_bytes = kernel_profile.size
        sampled_bytes = sum(r.size for r in sampled.values())
        covered = 0
        for segment, ranges in sampled.items():
            profiled = kernel_profile.segments.get(segment)
            if profiled is not None:
                covered += profiled.intersect(ranges).size
        heat = AppHeat(
            comm=comm,
            samples=samples,
            profiled_bytes=profiled_bytes,
            sampled_bytes=sampled_bytes,
            covered_bytes=covered,
            guest=label,
        )
        for symbol, segment, count, rel_start, rel_end in rows:
            profiled = kernel_profile.segments.get(segment)
            overlap_size = (
                profiled.intersect(RangeList([(rel_start, rel_end)])).size
                if profiled is not None
                else 0
            )
            if overlap_size == 0:
                heat.hot_unprofiled.append(
                    HotUnprofiled(
                        comm=comm,
                        symbol=symbol,
                        segment=segment,
                        rel_start=rel_start,
                        rel_end=rel_end,
                        samples=count,
                        guest=label,
                    )
                )
        heat.hot_unprofiled.sort(key=lambda h: (-h.samples, h.symbol))
        apps[comm] = heat
    overhead = OverheadAttribution(
        switch_cycles=_histogram_total(snapshot, "switch.ept_cycles"),
        trap_exit_cycles=_histogram_total(
            snapshot, "hv.exit_cycles.address_trap"
        ),
        recovery_cycles=_histogram_total(
            snapshot, "hv.exit_cycles.invalid_opcode"
        ),
        switches=_counter(snapshot, "switch.switches"),
        recoveries=_counter(snapshot, "recovery.recoveries"),
        samples=profile.samples,
    )
    return HeatReport(apps=apps, overhead=overhead)


def format_heat_report(report: HeatReport, limit: int = 10) -> str:
    """Render a heat report as the text block ``repro report`` embeds."""
    lines: List[str] = []
    labelled = any(heat.guest for heat in report.apps.values())
    guest_head = f" {'GUEST':<12}" if labelled else ""
    lines.append(
        f"{'APP':<14} {'SAMPLES':>8} {'PROFILED':>9} {'COVERED':>8} "
        f"{'BLOAT':>7} {'BLOAT%':>7} {'HOT-UNPROF':>10}{guest_head}"
    )
    for comm, heat in sorted(report.apps.items()):
        guest_cell = f" {heat.guest:<12}" if labelled else ""
        lines.append(
            f"{comm:<14} {heat.samples:>8} {heat.profiled_bytes:>9} "
            f"{heat.covered_bytes:>8} {heat.bloat_bytes:>7} "
            f"{100 * heat.bloat_ratio:>6.1f}% "
            f"{len(heat.hot_unprofiled):>10}{guest_cell}"
        )
    hot = report.hot_unprofiled[:limit]
    if hot:
        lines.append("")
        lines.append("hot-but-unprofiled (future recovery risk):")
        for entry in hot:
            lines.append(
                f"  {entry.comm:<14} {entry.symbol:<28} "
                f"{entry.segment:<14} {entry.samples:>6} samples"
            )
    ov = report.overhead
    lines.append("")
    lines.append("overhead attribution (virtual cycles):")
    lines.append(
        f"  ept switches     : {ov.switch_cycles:>12} "
        f"({ov.switches} switches)"
    )
    lines.append(f"  trap exits       : {ov.trap_exit_cycles:>12}")
    lines.append(
        f"  recovery (#UD)   : {ov.recovery_cycles:>12} "
        f"({ov.recoveries} recoveries)"
    )
    lines.append(f"  enforcement total: {ov.enforcement_cycles:>12}")
    lines.append(f"  samples observed : {ov.samples:>12}")
    return "\n".join(lines)
