"""Forensic narratives from flight-recorder journals (``repro forensics``).

The paper's evaluation (Section IV) is a forensic reading of causal
chains: a ``#UD`` exit leads to a backtrace, a provenance verdict, and
either a benign recovery or a captured attack.  With a span journal
those chains are real trees (parent links recorded at runtime, see
:mod:`repro.telemetry.spans`); this module renders them as the
narrative the paper presents in Figures 4/5.

Legacy ``repro trace -o`` snapshots (flat trace rings, no journal) are
still accepted: they fall back to the ``(cycles, rip)`` correlation
heuristic from :mod:`repro.analysis.timeline`, clearly labelled as such.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.telemetry.journal import (
    JournalData,
    JournalError,
    SpanNode,
    build_span_trees,
    load_journal,
)

#: Verdicts in severity order (worst first) for the summary line.
_VERDICT_ORDER = ("captured-attack", "anomalous", "benign")


def attack_trees(trees: List[SpanNode]) -> List[SpanNode]:
    """Root spans whose chain contains a captured-attack verdict."""
    return [
        tree
        for tree in trees
        if any(
            node.attrs.get("verdict") == "captured-attack"
            for node in tree.find("provenance")
        )
    ]


def narrate_tree(node: SpanNode, indent: int = 0) -> List[str]:
    """Render one span (and its subtree) as narrative lines."""
    pad = "  " * indent
    attrs = node.attrs
    rec = node.record
    kind = node.kind
    if kind == "vmexit":
        line = (
            f"{pad}vmexit {attrs.get('reason', '?')} at rip "
            f"{attrs.get('rip', 0):#x} "
            f"[cpu{rec.get('cpu', 0)} cycles {rec.get('start', 0)}"
            f"..{rec.get('end', 0)}]"
        )
        if rec.get("status") != "ok":
            line += f"  ({rec.get('status')})"
    elif kind == "backtrace":
        line = (
            f"{pad}backtrace: {attrs.get('depth', 0)} frames, "
            f"{attrs.get('unknown', 0)} UNKNOWN, "
            f"{attrs.get('instant', 0)} instant recoveries"
        )
    elif kind == "provenance":
        line = (
            f"{pad}provenance: verdict={attrs.get('verdict', '?')} "
            f"pid={attrs.get('pid')} comm={attrs.get('comm')} "
            f"view={attrs.get('view_app')}"
        )
        if attrs.get("in_interrupt"):
            line += " (interrupt context)"
        if attrs.get("unknown_frames"):
            line += " (UNKNOWN frames: hidden code)"
    elif kind == "recovery":
        status = rec.get("status", "ok")
        if status == "ok":
            line = (
                f"{pad}recovery: filled {attrs.get('recovered', '?')} "
                f"({attrs.get('bytes', 0)} bytes) at rip "
                f"{attrs.get('rip', 0):#x}"
            )
        else:
            line = (
                f"{pad}recovery: UNHANDLED at rip {attrs.get('rip', 0):#x} "
                "(guest would crash)"
            )
    elif kind == "view_switch":
        line = (
            f"{pad}view switch: {attrs.get('from_view')} -> "
            f"{attrs.get('to_view')} (kernel[{attrs.get('app')}], "
            f"{attrs.get('cost', 0)} cycles)"
        )
    else:
        detail = " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
        line = f"{pad}{kind}: {detail}".rstrip(": ")
    lines = [line]
    for event in node.events:
        fields = event.get("fields", {})
        detail = " ".join(f"{k}={v}" for k, v in sorted(fields.items()))
        lines.append(f"{pad}  . {event.get('kind', '?')} {detail}".rstrip())
    for child in node.children:
        lines.extend(narrate_tree(child, indent + 1))
    return lines


def _verdict_counts(trees: List[SpanNode]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for tree in trees:
        for node in tree.find("provenance"):
            verdict = node.attrs.get("verdict", "?")
            counts[verdict] = counts.get(verdict, 0) + 1
    return counts


def render_journal_narrative(
    data: JournalData, limit: int = 50, all_exits: bool = False
) -> str:
    """The full ``repro forensics`` rendering for one journal.

    By default only *eventful* chains are narrated -- exits whose
    subtree contains a recovery, view switch or provenance verdict
    (plain traps would drown them out); ``all_exits`` keeps everything.
    """
    trees = build_span_trees(data.records)
    eventful = [
        tree
        for tree in trees
        if all_exits
        or tree.kind != "vmexit"
        or tree.children
        or tree.events
    ]
    verdicts = _verdict_counts(trees)
    attacks = attack_trees(trees)
    sections: List[str] = []

    header = [
        f"journal: {len(data.records)} records, "
        f"{len(trees)} causal chains ({len(eventful)} eventful), "
        f"{data.dropped} dropped"
        + ("" if data.complete else " [no footer: run did not close cleanly]")
    ]
    if data.meta:
        header.append(
            "meta: " + " ".join(f"{k}={v}" for k, v in sorted(data.meta.items()))
        )
    if verdicts:
        header.append(
            "verdicts: "
            + " ".join(
                f"{name}={verdicts[name]}"
                for name in _VERDICT_ORDER
                if name in verdicts
            )
        )
    sections.append("\n".join(header))

    incidents = [r for r in data.records if r.get("t") == "alert"]
    if incidents:
        # the serve daemon's ops journal interleaves alert-rule
        # transitions with the flight recorder; narrate them as
        # operational incidents alongside the attack chains
        lines = [f"== operational incidents ({len(incidents)} transitions) =="]
        for record in incidents:
            label = f" ({record['label']})" if record.get("label") else ""
            value = record.get("value")
            detail = (
                f" value={value:g} threshold={record.get('threshold')}"
                if isinstance(value, (int, float))
                else ""
            )
            lines.append(
                f"  {record.get('state', '?').upper():<9} "
                f"{record.get('rule', '?')}{label}{detail}"
            )
            if record.get("state") == "firing" and record.get("description"):
                lines.append(f"            {record['description']}")
        sections.append("\n".join(lines))

    if attacks:
        lines = [f"== captured attacks ({len(attacks)} chains) =="]
        for tree in attacks:
            lines.extend(narrate_tree(tree))
            lines.append("")
        sections.append("\n".join(lines).rstrip())

    shown = [tree for tree in eventful if tree not in attacks][:limit]
    omitted = len(eventful) - len(attacks) - len(shown)
    lines = ["== causal chains =="]
    if not shown and not attacks:
        lines.append("(no eventful chains recorded)")
    for tree in shown:
        lines.extend(narrate_tree(tree))
        lines.append("")
    if omitted > 0:
        lines.append(f"... ({omitted} further chains omitted)")
    sections.append("\n".join(lines).rstrip())

    return "\n\n".join(sections)


def render_legacy_snapshot(snap: Dict[str, Any]) -> str:
    """Fallback for pre-journal ``repro trace -o`` snapshot files.

    No parent links exist in a flat trace dump, so recoveries are
    listed from the ring with an explicit disclaimer: grouping is the
    ``(cycles, rip)`` heuristic, not recorded causality.
    """
    trace = snap.get("trace", {})
    events = trace.get("events", [])
    recoveries = [e for e in events if e.get("kind") == "recovery"]
    lines = [
        "legacy snapshot: no span journal -- correlating by (cycles, rip); "
        "parent links unavailable",
        f"trace: {len(events)} events, {trace.get('dropped', 0)} dropped",
    ]
    if not recoveries:
        lines.append("(no recovery events in trace)")
        return "\n".join(lines)
    lines.append(f"== recoveries ({len(recoveries)}) ==")
    for event in recoveries:
        lines.append(
            f"[{event.get('cycles', 0):>12}] rip={event.get('rip', 0):#x} "
            f"recovered={event.get('recovered', '?')} "
            f"pid={event.get('pid')} comm={event.get('comm')} "
            f"view={event.get('view_app')}"
        )
    return "\n".join(lines)


def render_forensics(path: Union[str, Path]) -> str:
    """Auto-detect journal vs legacy snapshot and render the narrative."""
    path = Path(path)
    try:
        first = ""
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                if line.strip():
                    first = line.strip()
                    break
    except OSError as exc:
        raise JournalError(f"unreadable file {path}: {exc}") from exc
    try:
        probe = json.loads(first) if first else None
    except ValueError:
        probe = None
    if isinstance(probe, dict) and probe.get("t") == "header":
        return render_journal_narrative(load_journal(path))
    try:
        snap = json.loads(path.read_text(encoding="utf-8"))
    except ValueError as exc:
        raise JournalError(
            f"{path} is neither a span journal nor a telemetry snapshot: {exc}"
        ) from exc
    if not isinstance(snap, dict):
        raise JournalError(f"{path}: unexpected JSON payload")
    return render_legacy_snapshot(snap)
