"""Service-level time-series metrics, per-tenant SLOs, and alert rules.

The serve daemon (PR 8) exposes point-in-time ``stats()`` snapshots;
this module adds the continuous layer a production VMI deployment
actually operates on:

* :class:`RingSeries` / :class:`SeriesBank` -- fixed-size ring windows
  at 1s/10s/60s resolutions with rate/delta reduction over any lookback;
* :class:`QuantileWindow` -- streaming p50/p95/p99 over a bounded
  observation window (per-tenant queue-wait and submit->result latency);
* :class:`MetricsRecorder` -- samples a daemon-provided *view* (queue
  description, pool stats, ``serve.*`` counters, the lifetime job
  telemetry merge) on a wall-clock cadence.  Every input is a
  snapshot/merge path: the recorder never touches a running guest, so
  virtual-cycle scores are bit-identical with metrics on or off
  (``benchmarks/record_metrics_overhead.py`` gates it);
* :class:`AlertRule` / :class:`AlertEngine` -- declarative threshold /
  rate / delta rules evaluated each sample tick, firing and resolving
  as transitions the daemon turns into ``alert`` events,
  ``serve.alerts{rule:state}`` counters and ops-journal records.

The exposition side (Prometheus text) shares
:func:`repro.telemetry.export.format_prometheus` with
``repro report --format prom``.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.telemetry.export import format_prometheus, prometheus_name

#: Default ring resolutions in seconds (finest first).
DEFAULT_RESOLUTIONS: Tuple[float, ...] = (1.0, 10.0, 60.0)

#: Default points retained per ring (120 x 1s / 10s / 60s windows).
DEFAULT_CAPACITY = 120

#: Default bounded window for streaming quantiles.
DEFAULT_QUANTILE_WINDOW = 512

#: Quantiles reported for latency/queue-wait series.
QUANTILES: Tuple[float, ...] = (0.5, 0.95, 0.99)

_COMPARATORS: Dict[str, Callable[[float, float], bool]] = {
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    "==": lambda a, b: a == b,
}


class MetricsError(Exception):
    """Bad rule definition or malformed rules file."""


# ---------------------------------------------------------------------------
# time series primitives
# ---------------------------------------------------------------------------


class RingSeries:
    """A fixed-size ring of ``(timestamp, value)`` points.

    One ring holds one resolution: points closer together than
    ``resolution`` seconds are coalesced by the writer
    (:class:`MultiResolutionSeries`), and the ring keeps the most
    recent ``capacity`` of them, counting evictions in ``evicted``.
    """

    __slots__ = ("resolution", "capacity", "_points", "evicted")

    def __init__(
        self, resolution: float = 1.0, capacity: int = DEFAULT_CAPACITY
    ) -> None:
        if capacity < 2:
            raise ValueError(f"capacity must be >= 2, got {capacity}")
        self.resolution = resolution
        self.capacity = capacity
        self._points: deque = deque(maxlen=capacity)
        self.evicted = 0

    def __len__(self) -> int:
        return len(self._points)

    def append(self, t: float, value: float) -> None:
        if self._points and t < self._points[-1][0]:
            t = self._points[-1][0]  # clock went backwards: clamp
        if len(self._points) == self.capacity:
            self.evicted += 1
        self._points.append((t, value))

    def replace_last(self, t: float, value: float) -> None:
        """Overwrite the newest point (sub-resolution refresh).

        Keeps ``latest`` current when samples arrive faster than this
        ring's resolution, without consuming a slot per sample.
        """
        if not self._points:
            self.append(t, value)
            return
        if len(self._points) >= 2 and t < self._points[-2][0]:
            t = self._points[-2][0]
        self._points[-1] = (t, value)

    @property
    def latest(self) -> Optional[float]:
        return self._points[-1][1] if self._points else None

    @property
    def latest_time(self) -> Optional[float]:
        return self._points[-1][0] if self._points else None

    def points(self) -> List[Tuple[float, float]]:
        return list(self._points)

    def window(
        self, seconds: float, now: Optional[float] = None
    ) -> List[Tuple[float, float]]:
        """Points within the trailing ``seconds`` (inclusive)."""
        if not self._points:
            return []
        if now is None:
            now = self._points[-1][0]
        cutoff = now - seconds
        return [(t, v) for t, v in self._points if t >= cutoff]

    def _reference(
        self, seconds: float, now: float
    ) -> Optional[Tuple[float, float]]:
        """Newest point at or before ``now - seconds``.

        ``None`` means the ring does not yet span the lookback: rate and
        delta refuse to extrapolate from a partial window, so rules built
        on them cannot fire during warmup.
        """
        cutoff = now - seconds
        ref = None
        for t, v in self._points:
            if t <= cutoff:
                ref = (t, v)
            else:
                break
        return ref

    def delta(
        self, seconds: float, now: Optional[float] = None
    ) -> Optional[float]:
        """Change in value over the trailing window (None until covered)."""
        if len(self._points) < 2:
            return None
        if now is None:
            now = self._points[-1][0]
        ref = self._reference(seconds, now)
        if ref is None:
            return None
        return self._points[-1][1] - ref[1]

    def rate(
        self, seconds: float, now: Optional[float] = None
    ) -> Optional[float]:
        """Per-second rate of change over the trailing window."""
        if len(self._points) < 2:
            return None
        if now is None:
            now = self._points[-1][0]
        ref = self._reference(seconds, now)
        if ref is None:
            return None
        elapsed = self._points[-1][0] - ref[0]
        if elapsed <= 0:
            return None
        return (self._points[-1][1] - ref[1]) / elapsed

    def export(self) -> Dict[str, Any]:
        return {
            "resolution": self.resolution,
            "capacity": self.capacity,
            "evicted": self.evicted,
            "points": [[round(t, 3), v] for t, v in self._points],
        }


class MultiResolutionSeries:
    """One logical series fanned out over several ring resolutions.

    A ring commits a new point once ``resolution`` seconds passed since
    the last committed one -- so 120 points cover 2 minutes, 20 minutes
    and 2 hours respectively with the default 1s/10s/60s ladder.
    Samples arriving faster than a ring's resolution *refresh* its
    newest point in place, so ``latest`` always reflects the most
    recent sample even when the recorder ticks sub-second.
    """

    __slots__ = ("rings", "_anchors")

    def __init__(
        self,
        resolutions: Iterable[float] = DEFAULT_RESOLUTIONS,
        capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        ladder = sorted(set(float(r) for r in resolutions))
        if not ladder:
            raise ValueError("at least one resolution required")
        self.rings: Dict[float, RingSeries] = {
            r: RingSeries(resolution=r, capacity=capacity) for r in ladder
        }
        self._anchors: Dict[float, Optional[float]] = {
            r: None for r in ladder
        }

    def append(self, t: float, value: float) -> None:
        for resolution, ring in self.rings.items():
            anchor = self._anchors[resolution]
            if anchor is None or t - anchor >= resolution - 1e-9:
                ring.append(t, value)
                self._anchors[resolution] = t
            else:
                ring.replace_last(t, value)

    def ring(self, resolution: Optional[float] = None) -> RingSeries:
        """The ring at ``resolution`` (finest when omitted)."""
        if resolution is None:
            return self.rings[min(self.rings)]
        best = min(
            self.rings, key=lambda r: (abs(r - resolution), r)
        )
        return self.rings[best]

    @property
    def latest(self) -> Optional[float]:
        return self.ring().latest

    @property
    def latest_time(self) -> Optional[float]:
        return self.ring().latest_time

    def export(self) -> Dict[str, Any]:
        return {str(r): ring.export() for r, ring in self.rings.items()}


class SeriesBank:
    """All recorded series, keyed ``name`` then ``label``.

    Scalar series use the empty label.  ``label_key`` names the
    dimension for exposition (``tenant``, ``variant``, ``reason``, ...)
    and is fixed the first time a name is observed.
    """

    def __init__(
        self,
        resolutions: Iterable[float] = DEFAULT_RESOLUTIONS,
        capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        self.resolutions = tuple(resolutions)
        self.capacity = capacity
        self._series: Dict[str, Dict[str, MultiResolutionSeries]] = {}
        self._label_keys: Dict[str, str] = {}
        #: when set (a list), every observation is also appended as
        #: ``(name, label, label_key, t, value)`` -- the persistence tap
        #: the obs store archives, placed *before* ring coalescing so a
        #: replay runs the exact code path and reproduces the rings
        #: bit-equal (see :mod:`repro.obs.store`)
        self._tap: Optional[list] = None

    def observe(
        self,
        name: str,
        t: float,
        value: float,
        label: str = "",
        label_key: str = "label",
    ) -> None:
        family = self._series.setdefault(name, {})
        self._label_keys.setdefault(name, label_key)
        series = family.get(label)
        if series is None:
            series = family[label] = MultiResolutionSeries(
                resolutions=self.resolutions, capacity=self.capacity
            )
        if self._tap is not None:
            self._tap.append((name, label, label_key, t, float(value)))
        series.append(t, float(value))

    def family(self, name: str) -> Dict[str, MultiResolutionSeries]:
        return self._series.get(name, {})

    def get(
        self, name: str, label: str = ""
    ) -> Optional[MultiResolutionSeries]:
        return self._series.get(name, {}).get(label)

    def label_key(self, name: str) -> str:
        return self._label_keys.get(name, "label")

    def names(self) -> List[str]:
        return sorted(self._series)

    def latest(self, name: str, label: str = "") -> Optional[float]:
        series = self.get(name, label)
        return series.latest if series is not None else None

    def export(self) -> Dict[str, Any]:
        return {
            name: {
                "label_key": self.label_key(name),
                "series": {
                    label: series.export()
                    for label, series in sorted(family.items())
                },
            }
            for name, family in sorted(self._series.items())
        }

    def prometheus_lines(self, prefix: str = "repro") -> List[str]:
        """Every series' latest value as a Prometheus gauge."""
        lines: List[str] = []
        for name, family in sorted(self._series.items()):
            metric = f"{prefix}_{prometheus_name(name)}"
            lines.append(f"# TYPE {metric} gauge")
            key = self.label_key(name)
            for label, series in sorted(family.items()):
                value = series.latest
                if value is None:
                    continue
                if label:
                    escaped = label.replace("\\", "\\\\").replace('"', '\\"')
                    lines.append(f'{metric}{{{key}="{escaped}"}} {value:g}')
                else:
                    lines.append(f"{metric} {value:g}")
        return lines


class QuantileWindow:
    """Bounded sliding window with exact quantiles over its contents.

    The window is small (hundreds of points), so sorting a copy per
    query is cheaper and more predictable than a sketch -- and exact.
    """

    __slots__ = ("_window", "count", "total")

    def __init__(self, window: int = DEFAULT_QUANTILE_WINDOW) -> None:
        self._window: deque = deque(maxlen=window)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self._window.append(float(value))
        self.count += 1
        self.total += float(value)

    def quantile(self, q: float) -> Optional[float]:
        if not self._window:
            return None
        ordered = sorted(self._window)
        idx = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[int(idx)]

    def describe(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "mean": (self.total / self.count) if self.count else None,
            **{
                f"p{int(q * 100)}": self.quantile(q) for q in QUANTILES
            },
        }


# ---------------------------------------------------------------------------
# alert rules
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AlertCondition:
    """One comparison against a series.

    ``mode`` selects the reduction: ``value`` (latest sample, must be
    fresher than ``window``), ``delta`` (change over the trailing
    ``window``) or ``rate`` (per-second change).  ``label`` pins the
    condition to one label; ``None`` evaluates every label in the
    family independently.
    """

    metric: str
    op: str
    threshold: float
    mode: str = "value"
    window: float = 10.0
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if self.op not in _COMPARATORS:
            raise MetricsError(
                f"unknown comparator {self.op!r} "
                f"(use one of {', '.join(sorted(_COMPARATORS))})"
            )
        if self.mode not in ("value", "delta", "rate"):
            raise MetricsError(
                f"unknown mode {self.mode!r} (use value, delta or rate)"
            )

    def evaluate(
        self, bank: SeriesBank, label: str, now: float
    ) -> Optional[float]:
        """The reduced value for ``label``, or None when unevaluable."""
        series = bank.get(self.metric, self.label if self.label is not None else label)
        if series is None:
            return None
        ring = series.ring()
        if self.mode == "value":
            latest_t = ring.latest_time
            if latest_t is None or now - latest_t > max(self.window, 5.0):
                return None  # stale: a dead sampler must not keep firing
            return ring.latest
        if self.mode == "delta":
            return ring.delta(self.window, now)
        return ring.rate(self.window, now)

    def breached(self, value: Optional[float]) -> bool:
        if value is None:
            return False
        return _COMPARATORS[self.op](value, self.threshold)

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "metric": self.metric,
            "op": self.op,
            "threshold": self.threshold,
            "mode": self.mode,
            "window": self.window,
        }
        if self.label is not None:
            data["label"] = self.label
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "AlertCondition":
        try:
            return cls(
                metric=str(data["metric"]),
                op=str(data.get("op", ">=")),
                threshold=float(data["threshold"]),
                mode=str(data.get("mode", "value")),
                window=float(data.get("window", 10.0)),
                label=(
                    str(data["label"]) if data.get("label") is not None
                    else None
                ),
            )
        except KeyError as exc:
            raise MetricsError(
                f"alert condition missing required field {exc.args[0]!r}"
            ) from exc


@dataclass(frozen=True)
class AlertRule:
    """A named condition with a debounce and an optional guard.

    The rule *fires* after ``for_samples`` consecutive breaching ticks
    and *resolves* on the first non-breaching one.  ``guard`` (when
    set) must also hold for a tick to count as breaching -- e.g.
    worker-stall only means anything while jobs are actually queued.
    """

    name: str
    condition: AlertCondition
    for_samples: int = 2
    guard: Optional[AlertCondition] = None
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise MetricsError("alert rule needs a name")
        if self.for_samples < 1:
            raise MetricsError(
                f"rule {self.name!r}: for_samples must be >= 1"
            )

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "name": self.name,
            "for_samples": self.for_samples,
            **self.condition.to_dict(),
        }
        if self.guard is not None:
            data["guard"] = self.guard.to_dict()
        if self.description:
            data["description"] = self.description
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "AlertRule":
        guard = None
        if data.get("guard") is not None:
            guard = AlertCondition.from_dict(data["guard"])
        return cls(
            name=str(data.get("name", "")),
            condition=AlertCondition.from_dict(data),
            for_samples=int(data.get("for_samples", 2)),
            guard=guard,
            description=str(data.get("description", "")),
        )


def load_rules(path: str) -> List[AlertRule]:
    """Parse a JSON file holding a list of rule dicts."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise MetricsError(f"unreadable alert rules {path}: {exc}") from exc
    if not isinstance(data, list):
        raise MetricsError(
            f"alert rules {path}: expected a JSON list of rule objects"
        )
    rules = [AlertRule.from_dict(item) for item in data]
    names = [r.name for r in rules]
    dupes = {n for n in names if names.count(n) > 1}
    if dupes:
        raise MetricsError(
            f"alert rules {path}: duplicate rule name(s) "
            f"{', '.join(sorted(dupes))}"
        )
    return rules


def default_rules() -> List[AlertRule]:
    """The built-in operational rule catalog (see docs/SERVICE.md)."""
    return [
        AlertRule(
            name="queue-saturation",
            condition=AlertCondition(
                metric="serve.queue.utilization", op=">=", threshold=0.8
            ),
            for_samples=2,
            description="queued jobs at >=80% of the admission cap",
        ),
        AlertRule(
            name="pool-hit-collapse",
            condition=AlertCondition(
                metric="serve.pool.hit_ratio", op="<", threshold=0.5
            ),
            for_samples=3,
            description="warm pool serving <50% of acquisitions "
            "(refill falling behind)",
        ),
        AlertRule(
            name="tenant-budget-imminent",
            condition=AlertCondition(
                metric="serve.tenant.budget_remaining_ratio",
                op="<",
                threshold=0.1,
            ),
            for_samples=1,
            description="a tenant has <10% of its virtual-cycle "
            "budget left",
        ),
        AlertRule(
            name="worker-stall",
            condition=AlertCondition(
                metric="serve.jobs.finished",
                op="<=",
                threshold=0.0,
                mode="delta",
                window=30.0,
            ),
            guard=AlertCondition(
                metric="serve.queue.depth", op=">", threshold=0.0
            ),
            for_samples=5,
            description="jobs are queued but none finished over the "
            "trailing 30s",
        ),
        AlertRule(
            name="drift-recurrence",
            condition=AlertCondition(
                metric="jobs.recovery.verdicts",
                op=">",
                threshold=0.0,
                mode="delta",
                window=60.0,
                label="anomalous",
            ),
            for_samples=1,
            description="anomalous recovery verdicts recurring across "
            "jobs: profiles are drifting fleet-wide",
        ),
    ]


@dataclass
class AlertTransition:
    """One fire/resolve edge the engine hands back to the daemon."""

    rule: str
    label: str
    state: str  # firing | resolved
    value: Optional[float]
    threshold: float
    at: float
    description: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "label": self.label,
            "state": self.state,
            "value": self.value,
            "threshold": self.threshold,
            "at": self.at,
            "description": self.description,
        }


@dataclass
class _AlertState:
    streak: int = 0
    firing: bool = False
    since: Optional[float] = None
    last_value: Optional[float] = None


class AlertEngine:
    """Evaluates a rule set against a bank, tracking per-label state."""

    def __init__(self, rules: Optional[Iterable[AlertRule]] = None) -> None:
        self.rules: List[AlertRule] = list(
            default_rules() if rules is None else rules
        )
        self._states: Dict[Tuple[str, str], _AlertState] = {}

    def _labels_for(self, rule: AlertRule, bank: SeriesBank) -> List[str]:
        if rule.condition.label is not None:
            return [rule.condition.label]
        family = bank.family(rule.condition.metric)
        return sorted(family) if family else []

    def evaluate(self, bank: SeriesBank, now: float) -> List[AlertTransition]:
        transitions: List[AlertTransition] = []
        for rule in self.rules:
            for label in self._labels_for(rule, bank):
                state = self._states.setdefault(
                    (rule.name, label), _AlertState()
                )
                value = rule.condition.evaluate(bank, label, now)
                breach = rule.condition.breached(value)
                if breach and rule.guard is not None:
                    guard_value = rule.guard.evaluate(bank, label, now)
                    breach = rule.guard.breached(guard_value)
                state.last_value = value
                if breach:
                    state.streak += 1
                    if not state.firing and state.streak >= rule.for_samples:
                        state.firing = True
                        state.since = now
                        transitions.append(
                            AlertTransition(
                                rule=rule.name,
                                label=label,
                                state="firing",
                                value=value,
                                threshold=rule.condition.threshold,
                                at=now,
                                description=rule.description,
                            )
                        )
                else:
                    state.streak = 0
                    if state.firing:
                        state.firing = False
                        state.since = None
                        transitions.append(
                            AlertTransition(
                                rule=rule.name,
                                label=label,
                                state="resolved",
                                value=value,
                                threshold=rule.condition.threshold,
                                at=now,
                                description=rule.description,
                            )
                        )
        return transitions

    def active(self) -> List[Dict[str, Any]]:
        """Currently-firing alerts, oldest first."""
        rows = []
        for (rule, label), state in self._states.items():
            if state.firing:
                rows.append(
                    {
                        "rule": rule,
                        "label": label,
                        "since": state.since,
                        "value": state.last_value,
                    }
                )
        rows.sort(key=lambda r: (r["since"] or 0.0, r["rule"]))
        return rows


# ---------------------------------------------------------------------------
# the recorder
# ---------------------------------------------------------------------------


@dataclass
class _TenantTrack:
    queue_wait: QuantileWindow = field(default_factory=QuantileWindow)
    latency: QuantileWindow = field(default_factory=QuantileWindow)
    slo_met: int = 0
    slo_missed: int = 0


class MetricsRecorder:
    """Folds daemon sample views into series, quantiles and alerts.

    The daemon builds one *view* dict per tick
    (:meth:`repro.serve.daemon.ServeDaemon.metrics_view`) from
    snapshot-only paths -- queue description, job timestamps, pool
    stats, the ``serve.*`` registry, the lifetime job-telemetry merge --
    and hands it to :meth:`sample`.  Nothing here can observe a guest
    mid-slice, which is what keeps virtual-cycle scores bit-identical
    with the recorder on.

    All public methods are safe to call from any thread.
    """

    def __init__(
        self,
        interval: float = 1.0,
        resolutions: Iterable[float] = DEFAULT_RESOLUTIONS,
        capacity: int = DEFAULT_CAPACITY,
        rules: Optional[Iterable[AlertRule]] = None,
        slo_latency: Optional[float] = None,
        quantile_window: int = DEFAULT_QUANTILE_WINDOW,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        self.interval = interval
        self.slo_latency = slo_latency
        self.quantile_window = quantile_window
        self.bank = SeriesBank(resolutions=resolutions, capacity=capacity)
        self.engine = AlertEngine(rules=rules)
        self.samples = 0
        self.first_sample_at: Optional[float] = None
        self.last_sample_at: Optional[float] = None
        self.alert_history: List[AlertTransition] = []
        self._tenants: Dict[str, _TenantTrack] = {}
        self._seen_started: set = set()
        self._seen_finished: set = set()
        self._lock = threading.Lock()

    # -- sampling -------------------------------------------------------------

    def sample(
        self, view: Dict[str, Any], tap: Optional[list] = None
    ) -> List[AlertTransition]:
        """Fold one daemon view in; returns new alert transitions.

        With ``tap`` (a list), every observation this tick makes is
        also appended to it as ``(name, label, label_key, t, value)``
        -- the raw stream the obs store persists for bit-equal replay.
        """
        with self._lock:
            now = float(view.get("now", time.time()))
            if self.first_sample_at is None:
                self.first_sample_at = now
            if tap is not None:
                self.bank._tap = tap
            try:
                self._sample_queue(view, now)
                self._sample_pool(view, now)
                self._sample_counters(view, now)
                self._sample_jobs(view, now)
            finally:
                self.bank._tap = None
            transitions = self.engine.evaluate(self.bank, now)
            self.alert_history.extend(transitions)
            self.samples += 1
            self.last_sample_at = now
            return transitions

    def _sample_queue(self, view: Dict[str, Any], now: float) -> None:
        queue = view.get("queue") or {}
        depth = float(queue.get("depth", 0))
        running = float(queue.get("running", 0))
        max_depth = float(queue.get("max_depth", 0) or 0)
        self.bank.observe("serve.queue.depth", now, depth)
        self.bank.observe("serve.queue.running", now, running)
        if max_depth > 0:
            self.bank.observe(
                "serve.queue.utilization", now, depth / max_depth
            )
        workers = view.get("workers") or {}
        alive = float(workers.get("alive", 0))
        self.bank.observe("serve.workers.alive", now, alive)
        self.bank.observe(
            "serve.workers.desired", now, float(workers.get("desired", 0))
        )
        if alive > 0:
            self.bank.observe(
                "serve.workers.utilization", now, min(1.0, running / alive)
            )
        for tenant, state in (queue.get("tenants") or {}).items():
            self.bank.observe(
                "serve.tenant.in_flight", now,
                float(state.get("in_flight", 0)),
                label=tenant, label_key="tenant",
            )
            self.bank.observe(
                "serve.tenant.charged_cycles", now,
                float(state.get("charged_cycles", 0)),
                label=tenant, label_key="tenant",
            )
            self.bank.observe(
                "serve.tenant.rejected", now,
                float(sum((state.get("rejections") or {}).values())),
                label=tenant, label_key="tenant",
            )
            budget = state.get("cycle_budget")
            if budget:
                remaining = state.get("remaining_cycles") or 0
                self.bank.observe(
                    "serve.tenant.budget_remaining_ratio", now,
                    remaining / budget,
                    label=tenant, label_key="tenant",
                )

    def _sample_pool(self, view: Dict[str, Any], now: float) -> None:
        pool = view.get("pool") or {}
        hits_total = 0.0
        misses_total = 0.0
        for digest, stats in pool.items():
            label = stats.get("label") or digest
            self.bank.observe(
                "serve.pool.warm", now, float(stats.get("warm", 0)),
                label=label, label_key="variant",
            )
            hits_total += float(stats.get("hits", 0))
            misses_total += float(stats.get("misses", 0))
        self.bank.observe("serve.pool.hits", now, hits_total)
        self.bank.observe("serve.pool.misses", now, misses_total)
        # hit ratio over the trailing 10s, only while there is traffic:
        # an idle pool is not a collapsed one
        hits = self.bank.get("serve.pool.hits")
        misses = self.bank.get("serve.pool.misses")
        if hits is not None and misses is not None:
            dh = hits.ring().delta(10.0, now)
            dm = misses.ring().delta(10.0, now)
            if dh is not None and dm is not None and (dh + dm) > 0:
                self.bank.observe(
                    "serve.pool.hit_ratio", now, dh / (dh + dm)
                )

    def _observe_counter(
        self, name: str, now: float, value: float, label: str, key: str
    ) -> None:
        """Observe a labelled counter, backfilling new labels with zero.

        A label absent from a cumulative counter family *is* zero, so
        when one first appears mid-stream (e.g. the first ``anomalous``
        recovery verdict), seed its series with a zero point at the
        recorder's first sample time -- otherwise delta/rate rules like
        drift-recurrence could never fire on a newborn label before it
        had spanned their whole lookback window.
        """
        if (
            self.bank.get(name, label) is None
            and self.first_sample_at is not None
            and self.first_sample_at < now
        ):
            self.bank.observe(
                name, self.first_sample_at, 0.0, label=label, label_key=key
            )
        self.bank.observe(name, now, value, label=label, label_key=key)

    def _sample_counters(self, view: Dict[str, Any], now: float) -> None:
        for name, value in (view.get("serve_counters") or {}).items():
            self.bank.observe(name, now, float(value))
        finished = 0.0
        for name, values in (view.get("serve_labelled") or {}).items():
            total = float(sum(values.values()))
            self.bank.observe(name, now, total)
            key = "reason" if name == "serve.rejected" else "tenant"
            for label, value in values.items():
                self._observe_counter(
                    f"{name}.by", now, float(value), str(label), key
                )
            if name in ("serve.completed", "serve.failed", "serve.cancelled"):
                finished += total
        self.bank.observe("serve.jobs.finished", now, finished)
        for name, value in (view.get("jobs_counters") or {}).items():
            self.bank.observe(f"jobs.{name}", now, float(value))
        for name, values in (view.get("jobs_labelled") or {}).items():
            for label, value in values.items():
                self._observe_counter(
                    f"jobs.{name}", now, float(value), str(label), "label"
                )

    def _sample_jobs(self, view: Dict[str, Any], now: float) -> None:
        """Derive per-tenant queue-wait / latency from job timestamps."""
        for job in view.get("jobs") or []:
            job_id = job.get("id")
            tenant = str(job.get("tenant", "default"))
            track = self._tenants.get(tenant)
            if track is None:
                track = self._tenants[tenant] = _TenantTrack(
                    queue_wait=QuantileWindow(self.quantile_window),
                    latency=QuantileWindow(self.quantile_window),
                )
            started = job.get("started_at")
            submitted = job.get("submitted_at") or 0.0
            if started is not None and job_id not in self._seen_started:
                self._seen_started.add(job_id)
                track.queue_wait.observe(max(0.0, started - submitted))
            finished = job.get("finished_at")
            if finished is not None and job_id not in self._seen_finished:
                self._seen_finished.add(job_id)
                if job.get("state") == "done":
                    latency = max(0.0, finished - submitted)
                    track.latency.observe(latency)
                    if self.slo_latency is not None:
                        if latency <= self.slo_latency:
                            track.slo_met += 1
                        else:
                            track.slo_missed += 1
        for tenant, track in self._tenants.items():
            for q in QUANTILES:
                value = track.latency.quantile(q)
                if value is not None:
                    self.bank.observe(
                        f"serve.tenant.latency_p{int(q * 100)}", now, value,
                        label=tenant, label_key="tenant",
                    )
                value = track.queue_wait.quantile(q)
                if value is not None:
                    self.bank.observe(
                        f"serve.tenant.queue_wait_p{int(q * 100)}", now,
                        value, label=tenant, label_key="tenant",
                    )

    # -- exposition -----------------------------------------------------------

    def describe(self) -> Dict[str, Any]:
        """The compact latest-state dict (``metrics`` op, ``ctl top``)."""
        with self._lock:
            bank = self.bank
            tenants: Dict[str, Any] = {}
            for tenant, track in sorted(self._tenants.items()):
                compliance = None
                if track.slo_met + track.slo_missed:
                    compliance = track.slo_met / (
                        track.slo_met + track.slo_missed
                    )
                tenants[tenant] = {
                    "in_flight": bank.latest(
                        "serve.tenant.in_flight", tenant
                    ),
                    "charged_cycles": bank.latest(
                        "serve.tenant.charged_cycles", tenant
                    ),
                    "budget_remaining_ratio": bank.latest(
                        "serve.tenant.budget_remaining_ratio", tenant
                    ),
                    "rejected": bank.latest("serve.tenant.rejected", tenant),
                    "queue_wait": track.queue_wait.describe(),
                    "latency": track.latency.describe(),
                    "slo": {
                        "target_seconds": self.slo_latency,
                        "met": track.slo_met,
                        "missed": track.slo_missed,
                        "compliance": compliance,
                    },
                }
            pool: Dict[str, Any] = {}
            for label, series in bank.family("serve.pool.warm").items():
                pool[label] = {"warm": series.latest}
            finished = bank.get("serve.jobs.finished")
            throughput_per_min = None
            if finished is not None:
                rate = finished.ring().rate(60.0)
                if rate is not None:
                    throughput_per_min = rate * 60.0
            return {
                "samples": self.samples,
                "interval": self.interval,
                "last_sample_at": self.last_sample_at,
                "queue": {
                    "depth": bank.latest("serve.queue.depth"),
                    "running": bank.latest("serve.queue.running"),
                    "utilization": bank.latest("serve.queue.utilization"),
                },
                "workers": {
                    "alive": bank.latest("serve.workers.alive"),
                    "desired": bank.latest("serve.workers.desired"),
                    "utilization": bank.latest("serve.workers.utilization"),
                },
                "pool": {
                    "hit_ratio": bank.latest("serve.pool.hit_ratio"),
                    "variants": pool,
                },
                "throughput": {
                    "finished_total": bank.latest("serve.jobs.finished"),
                    "finished_per_min": throughput_per_min,
                },
                "tenants": tenants,
                "alerts": {
                    "active": self.engine.active(),
                    "transitions": len(self.alert_history),
                },
            }

    def export_series(self) -> Dict[str, Any]:
        """Full ring dump (``metrics`` op with ``format=series``)."""
        with self._lock:
            return {
                "samples": self.samples,
                "interval": self.interval,
                "series": self.bank.export(),
            }

    def prometheus_lines(self, prefix: str = "repro") -> List[str]:
        """Gauge exposition for every series plus alert states."""
        with self._lock:
            lines = self.bank.prometheus_lines(prefix=prefix)
            metric = f"{prefix}_serve_alert_state"
            lines.append(f"# TYPE {metric} gauge")
            active = {
                (row["rule"], row["label"]) for row in self.engine.active()
            }
            for rule in self.engine.rules:
                labels = {
                    label
                    for (name, label) in self.engine._states
                    if name == rule.name
                } or {""}
                for label in sorted(labels):
                    value = 1 if (rule.name, label) in active else 0
                    if label:
                        escaped = label.replace("\\", "\\\\").replace(
                            '"', '\\"'
                        )
                        lines.append(
                            f'{metric}{{rule="{rule.name}",'
                            f'label="{escaped}"}} {value}'
                        )
                    else:
                        lines.append(
                            f'{metric}{{rule="{rule.name}"}} {value}'
                        )
            return lines

    def to_prometheus(
        self,
        serve_snapshot: Optional[Dict[str, Any]] = None,
        jobs_snapshot: Optional[Dict[str, Any]] = None,
        prefix: str = "repro",
    ) -> str:
        """Full scrape body: registry counters + series gauges."""
        parts: List[str] = []
        if serve_snapshot is not None:
            parts.append(
                format_prometheus(serve_snapshot, prefix=prefix).rstrip("\n")
            )
        if jobs_snapshot is not None:
            parts.append(
                format_prometheus(
                    jobs_snapshot, prefix=f"{prefix}_jobs"
                ).rstrip("\n")
            )
        parts.extend(self.prometheus_lines(prefix=prefix))
        return "\n".join(p for p in parts if p) + "\n"
