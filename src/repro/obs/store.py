"""Persistent observability archive for the serve daemon (``--obs-dir``).

The metrics recorder (PR 9) answers "what is happening": ring-buffer
series, streaming quantiles, an alert engine -- all of it in memory,
all of it gone when the daemon exits.  This module is the durable half:
an append-only, schema-versioned, **segmented** on-disk archive the
daemon flushes every sample tick, alert transition and lifecycle event
into, plus per-request guest journals keyed by trace id.

Layout under ``--obs-dir``::

    segments/seg-000001.jsonl    one JSONL segment per rotation window
    traces/<trace_id>.jsonl      one guest journal per traced request

Each segment starts with a ``header`` record (store schema, segment
index, creation time, recorder config) and -- on clean rotation or
shutdown -- ends with a ``footer``.  Body records are:

* ``sample`` -- one recorder tick's raw observations, as
  ``[name, label, label_key, t, value]`` tuples tapped from
  :meth:`repro.obs.metrics.SeriesBank.observe` **before** any ring
  coalescing.  Replaying them through a fresh bank runs the exact code
  the live recorder ran, so the reconstructed
  :class:`~repro.obs.metrics.MultiResolutionSeries` export is
  bit-equal to a live scrape (``benchmarks/record_obsstore_overhead.py``
  gates this).
* ``alert`` -- one :class:`~repro.obs.metrics.AlertTransition` edge.
* ``event`` -- one daemon lifecycle event (queued / start / heartbeat /
  done / cancelled / rejected / scaled / serve-*), stamped with the
  store clock so ``repro obs trace`` can narrate wall-clock deltas.

Durability rules:

* **writers** flush every record and rotate segments by size and age;
  a crash can lose at most the partially-written last line;
* **readers** tolerate a torn tail: a segment whose final line is
  truncated or unparseable yields every record before the tear and
  counts the segment as torn -- never an exception;
* **compaction** downsamples segments older than ``compact_after`` to
  60 s resolution.  For every series window the 60 s ring would have
  committed, the window-opening point and the final refresher survive
  -- exactly the append/``replace_last`` pair the live ring executed --
  so the reconstructed 60 s ring stays bit-equal even through
  compaction (the property suite proves it);
* **retention** deletes whole segments older than ``retain_seconds``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.obs.metrics import (
    DEFAULT_CAPACITY,
    DEFAULT_RESOLUTIONS,
    AlertTransition,
    SeriesBank,
)
from repro.telemetry.journal import JOURNAL_SCHEMA, build_span_trees

#: Bump only when the meaning of existing store fields changes.
STORE_SCHEMA = 1

#: Segment rotation thresholds (size OR age, whichever trips first).
DEFAULT_ROTATE_BYTES = 1 << 20
DEFAULT_ROTATE_SECONDS = 300.0

#: Segments older than this are deleted outright.
DEFAULT_RETAIN_SECONDS = 7 * 24 * 3600.0

#: Segments older than this are downsampled to 60 s resolution.
DEFAULT_COMPACT_AFTER_SECONDS = 3600.0

#: Compaction target: the coarsest default ring's resolution.
COMPACT_RESOLUTION = 60.0

#: Tolerance mirroring ``MultiResolutionSeries.append``'s commit test.
_COMMIT_EPSILON = 1e-9

_SEGMENT_PREFIX = "seg-"
_SEGMENT_SUFFIX = ".jsonl"


class ObsStoreError(Exception):
    """Archive directory problems (never raised for torn tails)."""


def _dumps(record: Dict[str, Any]) -> str:
    return json.dumps(record, separators=(",", ":"), sort_keys=True)


def _segment_index(path: Path) -> Optional[int]:
    name = path.name
    if not (
        name.startswith(_SEGMENT_PREFIX) and name.endswith(_SEGMENT_SUFFIX)
    ):
        return None
    digits = name[len(_SEGMENT_PREFIX) : -len(_SEGMENT_SUFFIX)]
    return int(digits) if digits.isdigit() else None


# ---------------------------------------------------------------------------
# writer
# ---------------------------------------------------------------------------


class TraceJournalWriter:
    """One traced request's guest journal (``traces/<trace_id>.jsonl``).

    Receives the raw records the worker drains from the job's bounded
    in-memory journal and writes them verbatim (they keep their
    original monotonic ``seq``), under a standard journal header so a
    cleanly-closed file also satisfies the strict
    :func:`repro.telemetry.journal.parse_journal`; a crash mid-job
    leaves a torn tail the tolerant reader recovers from.
    """

    def __init__(self, path: Path, meta: Dict[str, Any]) -> None:
        self.path = path
        self._fh = open(path, "w", encoding="utf-8")
        self._fh.write(
            _dumps({"t": "header", "schema": JOURNAL_SCHEMA, "meta": meta})
            + "\n"
        )
        self._fh.flush()
        self._last_seq = 0
        self._dropped = 0
        self.closed = False

    def extend(self, records: Sequence[Dict[str, Any]], dropped: int) -> None:
        if self.closed:
            return
        for record in records:
            self._fh.write(_dumps(record) + "\n")
            seq = record.get("seq")
            if isinstance(seq, int):
                self._last_seq = max(self._last_seq, seq)
        self._dropped += int(dropped)
        if records or dropped:
            self._fh.flush()

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self._fh.write(
            _dumps(
                {
                    "t": "footer",
                    "records": self._last_seq,
                    "dropped": self._dropped,
                }
            )
            + "\n"
        )
        self._fh.close()


class ObsStore:
    """The daemon-side archive writer (thread-safe).

    ``clock`` is injectable for deterministic rotation / retention
    tests; the daemon uses wall time, matching the recorder's sample
    timestamps.
    """

    def __init__(
        self,
        root: Union[str, Path],
        rotate_bytes: int = DEFAULT_ROTATE_BYTES,
        rotate_seconds: float = DEFAULT_ROTATE_SECONDS,
        retain_seconds: float = DEFAULT_RETAIN_SECONDS,
        compact_after: float = DEFAULT_COMPACT_AFTER_SECONDS,
        meta: Optional[Dict[str, Any]] = None,
        clock=time.time,
    ) -> None:
        if rotate_bytes < 1024:
            raise ObsStoreError(
                f"rotate_bytes must be >= 1024, got {rotate_bytes}"
            )
        self.root = Path(root)
        self.rotate_bytes = rotate_bytes
        self.rotate_seconds = rotate_seconds
        self.retain_seconds = retain_seconds
        self.compact_after = compact_after
        self.meta = dict(meta or {})
        self._clock = clock
        self._lock = threading.RLock()
        self.segments_dir = self.root / "segments"
        self.traces_dir = self.root / "traces"
        self.segments_dir.mkdir(parents=True, exist_ok=True)
        self.traces_dir.mkdir(parents=True, exist_ok=True)
        # restart-safe: continue numbering after the highest existing
        # segment (the previous daemon's open segment keeps its torn
        # tail; readers tolerate it)
        existing = [
            idx
            for idx in (
                _segment_index(p) for p in self.segments_dir.iterdir()
            )
            if idx is not None
        ]
        self._index = max(existing, default=0)
        self._fh = None
        self._opened_at: Optional[float] = None
        self._bytes = 0
        self._seq = 0
        self.closed = False
        self._open_segment(self._clock())

    # -- segment lifecycle ----------------------------------------------------

    def _segment_path(self, index: int) -> Path:
        return self.segments_dir / f"{_SEGMENT_PREFIX}{index:06d}{_SEGMENT_SUFFIX}"

    def _open_segment(self, now: float) -> None:
        self._index += 1
        self._fh = open(self._segment_path(self._index), "w", encoding="utf-8")
        self._opened_at = now
        self._seq = 0
        header = {
            "t": "header",
            "store": "repro-obs",
            "schema": STORE_SCHEMA,
            "segment": self._index,
            "created": now,
            "meta": self.meta,
        }
        line = _dumps(header) + "\n"
        self._fh.write(line)
        self._fh.flush()
        self._bytes = len(line)

    def _close_segment(self) -> None:
        if self._fh is None:
            return
        self._fh.write(_dumps({"t": "footer", "records": self._seq}) + "\n")
        self._fh.close()
        self._fh = None

    def _append(self, record: Dict[str, Any]) -> None:
        with self._lock:
            if self.closed:
                return
            now = self._clock()
            if self._bytes >= self.rotate_bytes or (
                self._opened_at is not None
                and now - self._opened_at >= self.rotate_seconds
            ):
                self.rotate(now)
            self._seq += 1
            record["seq"] = self._seq
            line = _dumps(record) + "\n"
            self._fh.write(line)
            self._fh.flush()
            self._bytes += len(line)

    def rotate(self, now: Optional[float] = None) -> None:
        """Close the open segment, run maintenance, open a fresh one."""
        with self._lock:
            if self.closed:
                return
            if now is None:
                now = self._clock()
            self._close_segment()
            self.maintain(now)
            self._open_segment(now)

    def close(self) -> None:
        with self._lock:
            if self.closed:
                return
            self._close_segment()
            self.closed = True

    # -- appends ---------------------------------------------------------------

    def append_sample(
        self, now: float, points: Sequence[Tuple[str, str, str, float, float]]
    ) -> None:
        """Archive one recorder tick's tapped observations."""
        self._append(
            {
                "t": "sample",
                "now": now,
                "points": [list(point) for point in points],
            }
        )

    def append_alert(self, transition: Any) -> None:
        data = (
            transition.to_dict()
            if hasattr(transition, "to_dict")
            else dict(transition)
        )
        self._append({"t": "alert", **data})

    def append_event(self, event: Dict[str, Any]) -> None:
        self._append({"t": "event", "at": self._clock(), "event": dict(event)})

    def job_journal(
        self, trace_id: str, meta: Dict[str, Any]
    ) -> Optional[TraceJournalWriter]:
        """Open the per-request guest journal for ``trace_id``."""
        if not trace_id:
            return None
        safe = "".join(
            c if c.isalnum() or c in "-_." else "_" for c in str(trace_id)
        )
        return TraceJournalWriter(self.traces_dir / f"{safe}.jsonl", meta)

    # -- maintenance -----------------------------------------------------------

    def _closed_segments(self) -> List[Tuple[int, Path]]:
        rows = []
        for path in self.segments_dir.iterdir():
            index = _segment_index(path)
            if index is not None and index != self._index:
                rows.append((index, path))
        rows.sort()
        return rows

    @staticmethod
    def _segment_created(path: Path) -> Optional[float]:
        try:
            with open(path, encoding="utf-8") as fh:
                header = json.loads(fh.readline())
            if isinstance(header, dict) and header.get("t") == "header":
                return float(header.get("created", 0.0))
        except (OSError, ValueError, TypeError):
            pass
        return None

    def maintain(self, now: Optional[float] = None) -> Dict[str, int]:
        """Retention + compaction over closed segments.

        Runs automatically on rotation; callable explicitly (tests, the
        CLI).  Returns ``{"deleted": n, "compacted": n}``.
        """
        with self._lock:
            if now is None:
                now = self._clock()
            deleted = 0
            survivors: List[Tuple[int, Path]] = []
            for index, path in self._closed_segments():
                created = self._segment_created(path)
                if (
                    created is not None
                    and now - created >= self.retain_seconds
                ):
                    try:
                        path.unlink()
                        deleted += 1
                        continue
                    except OSError:
                        pass
                survivors.append((index, path))
            compacted = self._compact_segments(
                [
                    path
                    for _, path in survivors
                    if (created := self._segment_created(path)) is not None
                    and now - created >= self.compact_after
                ]
            )
            return {"deleted": deleted, "compacted": compacted}

    def compact_all(self) -> int:
        """Force-compact every closed segment (tests, explicit GC)."""
        with self._lock:
            return self._compact_segments(
                [path for _, path in self._closed_segments()]
            )

    def _compact_segments(self, paths: List[Path]) -> int:
        """Downsample ``paths`` (oldest-first) to 60 s resolution.

        Window state carries across segments so the surviving points
        are exactly the 60 s ring's append/replace pairs; already-
        compacted segments replay into the window state but are not
        rewritten (compaction is idempotent).
        """
        if not paths:
            return 0
        # anchors must be seeded from the very start of the archive, so
        # replay every closed segment older than the batch as context
        eligible = set(paths)
        anchors: Dict[Tuple[str, str], float] = {}
        refresher_slot: Dict[Tuple[str, str], Optional[int]] = {}
        compacted = 0
        for index, path in self._closed_segments():
            header, records, _footer, _torn = _read_segment(path)
            if header is None:
                continue
            already = bool(header.get("compacted"))
            rewrite = path in eligible and not already
            kept: List[List[Any]] = []
            out_records: List[Dict[str, Any]] = []
            last_now = header.get("created", 0.0)
            for record in records:
                kind = record.get("t")
                if kind != "sample":
                    out_records.append(record)
                    continue
                last_now = record.get("now", last_now)
                for point in record.get("points") or []:
                    name, label, label_key, t, value = point
                    family = (str(name), str(label))
                    anchor = anchors.get(family)
                    if (
                        anchor is None
                        or t - anchor >= COMPACT_RESOLUTION - _COMMIT_EPSILON
                    ):
                        anchors[family] = t
                        refresher_slot[family] = None
                        if rewrite:
                            kept.append(list(point))
                    else:
                        slot = refresher_slot.get(family)
                        if rewrite:
                            if slot is None:
                                refresher_slot[family] = len(kept)
                                kept.append(list(point))
                            else:
                                kept[slot] = list(point)
            if not rewrite:
                # context segment: refresher slots point into a list we
                # are not writing; invalidate them so the next rewritten
                # segment appends fresh refreshers instead
                refresher_slot = {k: None for k in refresher_slot}
                continue
            tmp = path.with_suffix(".tmp")
            with open(tmp, "w", encoding="utf-8") as fh:
                new_header = dict(header)
                new_header["compacted"] = True
                new_header["resolution"] = COMPACT_RESOLUTION
                fh.write(_dumps(new_header) + "\n")
                seq = 0
                if kept:
                    seq += 1
                    fh.write(
                        _dumps(
                            {
                                "t": "sample",
                                "seq": seq,
                                "now": last_now,
                                "points": kept,
                            }
                        )
                        + "\n"
                    )
                for record in out_records:
                    seq += 1
                    record = dict(record)
                    record["seq"] = seq
                    fh.write(_dumps(record) + "\n")
                fh.write(_dumps({"t": "footer", "records": seq}) + "\n")
            os.replace(tmp, path)
            refresher_slot = {k: None for k in refresher_slot}
            compacted += 1
        return compacted


# ---------------------------------------------------------------------------
# tolerant reader
# ---------------------------------------------------------------------------


def _read_lines_tolerant(
    path: Path,
) -> Tuple[List[Dict[str, Any]], bool]:
    """Parse JSONL records, stopping (not raising) at a torn tail."""
    records: List[Dict[str, Any]] = []
    torn = False
    try:
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                if not line.endswith("\n"):
                    torn = True  # partial final write: the tear
                    break
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    torn = True
                    break
                if not isinstance(record, dict) or "t" not in record:
                    torn = True
                    break
                records.append(record)
    except OSError:
        return [], True
    return records, torn


def _read_segment(
    path: Path,
) -> Tuple[
    Optional[Dict[str, Any]],
    List[Dict[str, Any]],
    Optional[Dict[str, Any]],
    bool,
]:
    """One segment -> (header, body records, footer, torn)."""
    records, torn = _read_lines_tolerant(path)
    header: Optional[Dict[str, Any]] = None
    footer: Optional[Dict[str, Any]] = None
    body: List[Dict[str, Any]] = []
    for record in records:
        kind = record.get("t")
        if header is None:
            if kind != "header":
                return None, [], None, True
            header = record
        elif kind == "footer":
            footer = record
            break
        else:
            body.append(record)
    return header, body, footer, torn


@dataclass
class ArchiveData:
    """Everything a reader recovered from an ``--obs-dir``."""

    root: Path
    headers: List[Dict[str, Any]] = field(default_factory=list)
    samples: List[Dict[str, Any]] = field(default_factory=list)
    alerts: List[Dict[str, Any]] = field(default_factory=list)
    events: List[Dict[str, Any]] = field(default_factory=list)
    segments: int = 0
    torn_segments: int = 0

    @property
    def meta(self) -> Dict[str, Any]:
        """Recorder config from the newest segment header."""
        return dict(self.headers[-1].get("meta") or {}) if self.headers else {}

    def sample_count(self) -> int:
        return len(self.samples)

    def span(self) -> Tuple[Optional[float], Optional[float]]:
        """(oldest, newest) sample timestamps in the archive."""
        times = [s.get("now") for s in self.samples if s.get("now") is not None]
        if not times:
            return None, None
        return min(times), max(times)


def read_archive(
    root: Union[str, Path],
    since: Optional[float] = None,
    until: Optional[float] = None,
) -> ArchiveData:
    """Read every segment under ``root`` (crash-safe; never raises for
    torn tails).  ``since``/``until`` filter records by timestamp."""
    root = Path(root)
    segments_dir = root / "segments"
    if not segments_dir.is_dir():
        raise ObsStoreError(
            f"{root} is not an observability archive (no segments/ dir)"
        )
    data = ArchiveData(root=root)

    def wanted(t: Optional[float]) -> bool:
        if t is None:
            return True
        if since is not None and t < since:
            return False
        if until is not None and t > until:
            return False
        return True

    paths = sorted(
        (idx, p)
        for p in segments_dir.iterdir()
        if (idx := _segment_index(p)) is not None
    )
    for _, path in paths:
        header, body, _footer, torn = _read_segment(path)
        data.segments += 1
        if torn:
            data.torn_segments += 1
        if header is None:
            continue
        data.headers.append(header)
        for record in body:
            kind = record.get("t")
            if kind == "sample":
                if wanted(record.get("now")):
                    if since is None and until is None:
                        data.samples.append(record)
                    else:
                        filtered = dict(record)
                        filtered["points"] = [
                            p
                            for p in record.get("points") or []
                            if wanted(p[3])
                        ]
                        data.samples.append(filtered)
            elif kind == "alert":
                if wanted(record.get("at")):
                    data.alerts.append(record)
            elif kind == "event":
                if wanted(record.get("at")):
                    data.events.append(record)
    return data


# ---------------------------------------------------------------------------
# reconstruction
# ---------------------------------------------------------------------------


def rebuild_bank(
    archive: ArchiveData,
    resolutions: Optional[Iterable[float]] = None,
    capacity: Optional[int] = None,
) -> SeriesBank:
    """Replay archived observations through a fresh bank.

    Runs :meth:`SeriesBank.observe` on the exact ``(name, label,
    label_key, t, value)`` stream the live bank saw, in order -- the
    same coalescing, anchors and eviction accounting execute again, so
    the result is bit-equal to the live bank over the archived range.
    """
    meta = archive.meta
    if resolutions is None:
        resolutions = meta.get("resolutions") or DEFAULT_RESOLUTIONS
    if capacity is None:
        capacity = int(meta.get("capacity") or DEFAULT_CAPACITY)
    bank = SeriesBank(resolutions=resolutions, capacity=capacity)
    for record in archive.samples:
        for name, label, label_key, t, value in record.get("points") or []:
            bank.observe(
                str(name), t, value, label=str(label), label_key=str(label_key)
            )
    return bank


def rebuild_export(archive: ArchiveData) -> Dict[str, Any]:
    """The archive's equivalent of ``MetricsRecorder.export_series()``."""
    meta = archive.meta
    return {
        "samples": archive.sample_count(),
        "interval": meta.get("interval"),
        "series": rebuild_bank(archive).export(),
    }


_ALERT_FIELDS = (
    "rule",
    "label",
    "state",
    "value",
    "threshold",
    "at",
    "description",
)


def rebuild_alerts(archive: ArchiveData) -> List[AlertTransition]:
    """Archived alert records back as transitions, oldest first."""
    transitions = []
    for record in archive.alerts:
        transitions.append(
            AlertTransition(
                rule=str(record.get("rule", "")),
                label=str(record.get("label", "")),
                state=str(record.get("state", "")),
                value=record.get("value"),
                threshold=float(record.get("threshold", 0.0)),
                at=float(record.get("at", 0.0)),
                description=str(record.get("description", "")),
            )
        )
    return transitions


# ---------------------------------------------------------------------------
# queries
# ---------------------------------------------------------------------------


def query_series(
    root: Union[str, Path],
    name: Optional[str] = None,
    label: Optional[str] = None,
    since: Optional[float] = None,
    until: Optional[float] = None,
    resolution: Optional[float] = None,
) -> Dict[str, Any]:
    """Series over a time range (the ``repro obs query`` engine).

    Replays the (optionally time-filtered) archive and returns the
    export dict narrowed to ``name`` / ``label`` / ``resolution``.
    """
    archive = read_archive(root, since=since, until=until)
    bank = rebuild_bank(archive)
    export = bank.export()
    if name is not None:
        if name not in export:
            known = ", ".join(sorted(export)) or "(archive is empty)"
            raise ObsStoreError(
                f"no series named {name!r} in the archive; known: {known}"
            )
        export = {name: export[name]}
    if label is not None:
        narrowed = {}
        for series_name, family in export.items():
            series = family["series"]
            if label in series:
                narrowed[series_name] = {
                    "label_key": family["label_key"],
                    "series": {label: series[label]},
                }
        export = narrowed
    if resolution is not None:
        key = None
        for series_name, family in export.items():
            for lbl, rings in family["series"].items():
                if key is None:
                    key = min(
                        rings,
                        key=lambda r: (abs(float(r) - resolution), float(r)),
                    )
                family["series"][lbl] = {key: rings[key]} if key in rings else {}
    oldest, newest = archive.span()
    return {
        "archive": {
            "segments": archive.segments,
            "torn_segments": archive.torn_segments,
            "samples": archive.sample_count(),
            "oldest": oldest,
            "newest": newest,
        },
        "series": export,
    }


def render_query_table(result: Dict[str, Any]) -> str:
    """Human-readable ``obs query`` output."""
    lines: List[str] = []
    info = result.get("archive") or {}
    lines.append(
        "archive: {} segment(s), {} sample tick(s){}".format(
            info.get("segments", 0),
            info.get("samples", 0),
            (
                f", {info['torn_segments']} torn"
                if info.get("torn_segments")
                else ""
            ),
        )
    )
    oldest, newest = info.get("oldest"), info.get("newest")
    if oldest is not None and newest is not None:
        lines.append(
            f"window:  {_format_ts(oldest)} .. {_format_ts(newest)} "
            f"({newest - oldest:.1f}s)"
        )
    series = result.get("series") or {}
    if not series:
        lines.append("(no series matched)")
        return "\n".join(lines) + "\n"
    lines.append("")
    header = (
        f"{'series':<40} {'label':<16} {'res':>5} {'points':>6} "
        f"{'latest':>14}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for name, family in sorted(series.items()):
        for label, rings in sorted(family["series"].items()):
            for res, ring in sorted(rings.items(), key=lambda kv: float(kv[0])):
                points = ring.get("points") or []
                latest = points[-1][1] if points else None
                lines.append(
                    f"{name:<40} {label or '-':<16} {float(res):>5g} "
                    f"{len(points):>6} "
                    f"{latest if latest is not None else '-':>14}"
                )
    return "\n".join(lines) + "\n"


def render_query_prom(result: Dict[str, Any], prefix: str = "repro") -> str:
    """Latest archived values as Prometheus gauges."""
    from repro.telemetry.export import prometheus_name

    lines: List[str] = []
    for name, family in sorted((result.get("series") or {}).items()):
        metric = f"{prefix}_{prometheus_name(name)}"
        lines.append(f"# TYPE {metric} gauge")
        key = family.get("label_key", "label")
        for label, rings in sorted(family["series"].items()):
            finest = min(rings, key=float, default=None)
            if finest is None:
                continue
            points = rings[finest].get("points") or []
            if not points:
                continue
            value = points[-1][1]
            if label:
                escaped = label.replace("\\", "\\\\").replace('"', '\\"')
                lines.append(f'{metric}{{{key}="{escaped}"}} {value:g}')
            else:
                lines.append(f"{metric} {value:g}")
    return "\n".join(lines) + "\n"


def _format_ts(t: float) -> str:
    return time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(t))


# ---------------------------------------------------------------------------
# trace narration
# ---------------------------------------------------------------------------


def read_trace_journal(
    root: Union[str, Path], trace_id: str
) -> Tuple[Dict[str, Any], List[Dict[str, Any]], bool]:
    """The per-request guest journal, torn-tail tolerant.

    Returns ``(meta, records, torn)``; empty when no journal exists
    (e.g. the request was rejected before a worker picked it up).
    """
    safe = "".join(
        c if c.isalnum() or c in "-_." else "_" for c in str(trace_id)
    )
    path = Path(root) / "traces" / f"{safe}.jsonl"
    if not path.exists():
        return {}, [], False
    records, torn = _read_lines_tolerant(path)
    meta: Dict[str, Any] = {}
    body: List[Dict[str, Any]] = []
    for record in records:
        kind = record.get("t")
        if kind == "header":
            meta = dict(record.get("meta") or {})
        elif kind == "footer":
            break
        else:
            body.append(record)
    return meta, body, torn


#: Lifecycle event types narrated in order, with a one-word verb each.
_LIFECYCLE_VERBS = {
    "queued": "queued",
    "start": "started",
    "heartbeat": "heartbeat",
    "journal": "journal",
    "done": "finished",
    "cancelled": "cancelled",
    "rejected": "rejected",
}


def render_trace(
    root: Union[str, Path],
    trace_id: str,
    limit: int = 25,
) -> str:
    """Narrate one traced request end-to-end (``repro obs trace``).

    Joins three sources on the trace id: the archived lifecycle events
    (client submit -> queue admission -> worker start -> result), alert
    transitions that fired while the request was in flight, and the
    per-request guest journal's span forest.
    """
    from repro.obs.forensics import narrate_tree

    archive = read_archive(root)
    events = [
        record
        for record in archive.events
        if (record.get("event") or {}).get("trace") == trace_id
    ]
    meta, records, torn = read_trace_journal(root, trace_id)
    if not events and not records:
        raise ObsStoreError(
            f"trace {trace_id!r} not found in archive {root} "
            "(no lifecycle events or guest journal)"
        )
    lines: List[str] = [f"trace {trace_id}"]
    if meta:
        detail = ", ".join(
            f"{key}={meta[key]}"
            for key in ("job", "name", "tenant", "app")
            if meta.get(key)
        )
        if detail:
            lines.append(f"  {detail}")
    lines.append("")
    lines.append("== request lifecycle ==")
    t0 = events[0].get("at") if events else None
    t_last = t0
    for record in events:
        event = record.get("event") or {}
        at = record.get("at")
        t_last = at if at is not None else t_last
        etype = str(event.get("type", "?"))
        verb = _LIFECYCLE_VERBS.get(etype, etype)
        delta = (
            f"+{at - t0:7.3f}s" if at is not None and t0 is not None
            else " " * 10
        )
        detail = _event_detail(etype, event)
        lines.append(f"  {delta} {verb:<9} {detail}")
    if not events:
        lines.append("  (no lifecycle events archived for this trace)")
    alert_lines = _overlapping_alerts(archive, t0, t_last)
    if alert_lines:
        lines.append("")
        lines.append("== alerts while in flight ==")
        lines.extend(alert_lines)
    lines.append("")
    spans = [r for r in records if r.get("t") == "span"]
    trees = build_span_trees(records)
    suffix = " [TORN TAIL: journal truncated mid-write]" if torn else ""
    lines.append(
        f"== guest span forest ({len(trees)} chain(s), "
        f"{len(spans)} span(s), {len(records)} record(s)){suffix} =="
    )
    if not trees:
        lines.append("  (no guest journal recorded for this trace)")
    shown = 0
    for tree in trees:
        if shown >= limit:
            lines.append(
                f"  ... {len(trees) - shown} more chain(s) "
                f"(raise --limit to see them)"
            )
            break
        subtree = narrate_tree(tree, indent=1)
        if len(subtree) <= 1 and shown >= 5:
            continue  # skip bare vmexit leaves once context is set
        lines.extend(subtree)
        shown += 1
    return "\n".join(lines) + "\n"


def _event_detail(etype: str, event: Dict[str, Any]) -> str:
    parts: List[str] = []
    for key in (
        "id",
        "job",
        "app",
        "tenant",
        "priority",
        "cycles",
        "recoveries",
        "records",
        "dropped",
        "ok",
        "detected",
        "reason",
    ):
        if key in event and event[key] not in (None, "", {}):
            parts.append(f"{key}={event[key]}")
    if event.get("error"):
        parts.append(f"error={str(event['error']).splitlines()[0]!r}")
    return " ".join(parts)


def _overlapping_alerts(
    archive: ArchiveData,
    t0: Optional[float],
    t1: Optional[float],
) -> List[str]:
    if t0 is None or t1 is None:
        return []
    lines = []
    for record in archive.alerts:
        at = record.get("at")
        if at is None or not (t0 - 1.0 <= at <= t1 + 1.0):
            continue
        label = f" [{record['label']}]" if record.get("label") else ""
        lines.append(
            f"  {record.get('state', '?'):<8} {record.get('rule', '?')}"
            f"{label} value={record.get('value')} "
            f"threshold={record.get('threshold')}"
        )
    return lines


# ---------------------------------------------------------------------------
# capacity analysis
# ---------------------------------------------------------------------------


def _ring_points(
    bank: SeriesBank,
    name: str,
    label: str = "",
    resolution: Optional[float] = None,
) -> List[Tuple[float, float]]:
    series = bank.get(name, label)
    return series.ring(resolution).points() if series is not None else []


def _linear_slope(points: List[Tuple[float, float]]) -> Optional[float]:
    """Least-squares slope (value per second) over ``points``."""
    if len(points) < 2:
        return None
    n = float(len(points))
    mean_t = sum(t for t, _ in points) / n
    mean_v = sum(v for _, v in points) / n
    denom = sum((t - mean_t) ** 2 for t, _ in points)
    if denom <= 0:
        return None
    return sum((t - mean_t) * (v - mean_v) for t, v in points) / denom


def capacity_report(
    root: Union[str, Path], window: float = 600.0
) -> Dict[str, Any]:
    """Post-hoc capacity analysis over the archive's trailing window.

    Per-tenant demand vs. budget, queue-wait trends, pool-hit
    trajectory, and projected queue saturation from a least-squares
    fit of the utilization series -- the questions PR 9 left open
    because the in-memory rings died with the daemon.
    """
    archive = read_archive(root)
    bank = rebuild_bank(archive)
    oldest, newest = archive.span()
    report: Dict[str, Any] = {
        "archive": {
            "segments": archive.segments,
            "torn_segments": archive.torn_segments,
            "samples": archive.sample_count(),
            "oldest": oldest,
            "newest": newest,
            "window_seconds": window,
        },
        "tenants": {},
        "queue": {},
        "pool": {},
        "alerts": {},
    }
    if newest is None:
        return report
    cutoff = newest - window

    def trailing(name: str, label: str = "") -> List[Tuple[float, float]]:
        return [
            (t, v)
            for t, v in _ring_points(bank, name, label)
            if t >= cutoff
        ]

    # queue: depth / utilization trend and projected saturation
    util = trailing("serve.queue.utilization")
    depth = trailing("serve.queue.depth")
    slope = _linear_slope(util)
    saturation_eta = None
    if slope is not None and slope > 0 and util:
        latest = util[-1][1]
        if latest < 1.0:
            saturation_eta = (1.0 - latest) / slope
    report["queue"] = {
        "depth_latest": depth[-1][1] if depth else None,
        "utilization_latest": util[-1][1] if util else None,
        "utilization_slope_per_s": slope,
        "projected_saturation_seconds": saturation_eta,
    }
    # pool: hit-ratio trajectory
    hits = trailing("serve.pool.hit_ratio")
    report["pool"] = {
        "hit_ratio_first": hits[0][1] if hits else None,
        "hit_ratio_latest": hits[-1][1] if hits else None,
        "hit_ratio_mean": (
            sum(v for _, v in hits) / len(hits) if hits else None
        ),
    }
    # tenants: demand vs budget, queue-wait trend
    charged = bank.family("serve.tenant.charged_cycles")
    for tenant in sorted(charged):
        points = trailing("serve.tenant.charged_cycles", tenant)
        demand = (
            points[-1][1] - points[0][1] if len(points) >= 2 else 0.0
        )
        budget = _ring_points(
            bank, "serve.tenant.budget_remaining_ratio", tenant
        )
        wait = trailing("serve.tenant.queue_wait_p95", tenant)
        budget_ratio = budget[-1][1] if budget else None
        exhaustion_eta = None
        if budget_ratio is not None and demand > 0 and points:
            span_s = points[-1][0] - points[0][0]
            if span_s > 0 and budget_ratio > 0:
                charged_latest = points[-1][1]
                if charged_latest > 0 and (1 - budget_ratio) > 0:
                    total_budget = charged_latest / (1 - budget_ratio)
                    remaining = total_budget * budget_ratio
                    exhaustion_eta = remaining / (demand / span_s)
        report["tenants"][tenant] = {
            "charged_cycles_latest": points[-1][1] if points else None,
            "demand_cycles_window": demand,
            "budget_remaining_ratio": budget_ratio,
            "projected_budget_exhaustion_seconds": exhaustion_eta,
            "queue_wait_p95_first": wait[0][1] if wait else None,
            "queue_wait_p95_latest": wait[-1][1] if wait else None,
            "queue_wait_p95_slope_per_s": _linear_slope(wait),
        }
    # alerts: transition counts by rule
    by_rule: Dict[str, int] = {}
    for record in archive.alerts:
        rule = str(record.get("rule", "?"))
        by_rule[rule] = by_rule.get(rule, 0) + 1
    report["alerts"] = by_rule
    return report
