"""Observability: forensic narratives and live fleet monitoring.

Two consumers of the flight recorder (:mod:`repro.telemetry.journal`):

* :mod:`repro.obs.forensics` -- rebuild causal span trees from a
  journal and render the attack/recovery narrative (``repro forensics``);
* :mod:`repro.obs.live` -- aggregate streamed worker heartbeats and
  journal segments into a live per-job view with profile-drift
  detection (``repro fleet --watch``).

Service-level observability for the serve daemon -- ring-buffer time
series, per-tenant SLO quantiles, Prometheus exposition and the
alert-rule engine -- lives in :mod:`repro.obs.metrics` (``repro ctl
top``, ``repro serve --metrics-addr``).  Statistical observability
(sampling profiler, probes, heat analysis) lives in the
:mod:`repro.obs.profiling` subpackage.
"""

from repro.obs.forensics import (
    attack_trees,
    narrate_tree,
    render_forensics,
    render_journal_narrative,
    render_legacy_snapshot,
)
from repro.obs.live import JobStatus, LiveFleetView, render_service_top
from repro.obs.metrics import (
    AlertCondition,
    AlertEngine,
    AlertRule,
    MetricsRecorder,
    QuantileWindow,
    RingSeries,
    SeriesBank,
    default_rules,
    load_rules,
)

__all__ = [
    "AlertCondition",
    "AlertEngine",
    "AlertRule",
    "JobStatus",
    "LiveFleetView",
    "MetricsRecorder",
    "QuantileWindow",
    "RingSeries",
    "SeriesBank",
    "attack_trees",
    "default_rules",
    "load_rules",
    "narrate_tree",
    "render_forensics",
    "render_journal_narrative",
    "render_legacy_snapshot",
    "render_service_top",
]
