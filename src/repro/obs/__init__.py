"""Observability: forensic narratives and live fleet monitoring.

Two consumers of the flight recorder (:mod:`repro.telemetry.journal`):

* :mod:`repro.obs.forensics` -- rebuild causal span trees from a
  journal and render the attack/recovery narrative (``repro forensics``);
* :mod:`repro.obs.live` -- aggregate streamed worker heartbeats and
  journal segments into a live per-job view with profile-drift
  detection (``repro fleet --watch``).

Service-level observability for the serve daemon -- ring-buffer time
series, per-tenant SLO quantiles, Prometheus exposition and the
alert-rule engine -- lives in :mod:`repro.obs.metrics` (``repro ctl
top``, ``repro serve --metrics-addr``).  The persistent on-disk
archive of those metrics, plus per-request trace journals and the
``repro obs`` query/trace commands, lives in :mod:`repro.obs.store`
(``repro serve --obs-dir``).  Statistical observability (sampling
profiler, probes, heat analysis) lives in the
:mod:`repro.obs.profiling` subpackage.
"""

from repro.obs.forensics import (
    attack_trees,
    narrate_tree,
    render_forensics,
    render_journal_narrative,
    render_legacy_snapshot,
)
from repro.obs.live import JobStatus, LiveFleetView, render_service_top
from repro.obs.metrics import (
    AlertCondition,
    AlertEngine,
    AlertRule,
    MetricsRecorder,
    QuantileWindow,
    RingSeries,
    SeriesBank,
    default_rules,
    load_rules,
)
from repro.obs.store import (
    ArchiveData,
    ObsStore,
    ObsStoreError,
    capacity_report,
    query_series,
    read_archive,
    read_trace_journal,
    rebuild_alerts,
    rebuild_bank,
    rebuild_export,
    render_trace,
)

__all__ = [
    "AlertCondition",
    "AlertEngine",
    "AlertRule",
    "ArchiveData",
    "JobStatus",
    "LiveFleetView",
    "MetricsRecorder",
    "ObsStore",
    "ObsStoreError",
    "QuantileWindow",
    "RingSeries",
    "SeriesBank",
    "attack_trees",
    "capacity_report",
    "default_rules",
    "load_rules",
    "narrate_tree",
    "query_series",
    "read_archive",
    "read_trace_journal",
    "rebuild_alerts",
    "rebuild_bank",
    "rebuild_export",
    "render_forensics",
    "render_journal_narrative",
    "render_legacy_snapshot",
    "render_service_top",
    "render_trace",
]
