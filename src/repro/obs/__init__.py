"""Observability: forensic narratives and live fleet monitoring.

Two consumers of the flight recorder (:mod:`repro.telemetry.journal`):

* :mod:`repro.obs.forensics` -- rebuild causal span trees from a
  journal and render the attack/recovery narrative (``repro forensics``);
* :mod:`repro.obs.live` -- aggregate streamed worker heartbeats and
  journal segments into a live per-job view with profile-drift
  detection (``repro fleet --watch``).

Statistical observability (sampling profiler, probes, heat analysis)
lives in the :mod:`repro.obs.profiling` subpackage.
"""

from repro.obs.forensics import (
    attack_trees,
    narrate_tree,
    render_forensics,
    render_journal_narrative,
    render_legacy_snapshot,
)
from repro.obs.live import JobStatus, LiveFleetView

__all__ = [
    "JobStatus",
    "LiveFleetView",
    "attack_trees",
    "narrate_tree",
    "render_forensics",
    "render_journal_narrative",
    "render_legacy_snapshot",
]
