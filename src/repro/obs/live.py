"""Live fleet observability: heartbeats, liveness, profile-drift detection.

Fleet workers stream small status messages to the parent while their
jobs run (see :mod:`repro.fleet.runner`); this module folds them into a
per-job view that can answer, *before the pool drains*: which jobs are
alive, which have stalled, and which are drifting away from their
profiled baseline.

Drift is the paper's re-profiling trigger (§III-B3): a job whose
workload exercises kernel code its stored profile never covered keeps
hitting view holes, so its recovery count grows past the benign
baseline recorded during the offline phase.  Captured-attack
recoveries are excluded from the drift metric -- an actual attack must
not masquerade as a stale profile.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass
class JobStatus:
    """Everything the parent knows about one fleet job, live."""

    name: str
    app: str = ""
    state: str = "pending"  # pending | running | done | failed | cancelled
    started: Optional[float] = None
    last_seen: Optional[float] = None
    cycles: int = 0
    recoveries: int = 0
    verdicts: Dict[str, int] = field(default_factory=dict)
    journal_records: int = 0
    journal_dropped: int = 0
    drifting: bool = False
    note: str = ""
    trace: str = ""

    @property
    def non_attack_recoveries(self) -> int:
        """Recoveries that count toward drift (attacks excluded)."""
        return max(0, self.recoveries - self.verdicts.get("captured-attack", 0))


class LiveFleetView:
    """Aggregates streamed worker messages into a live fleet picture.

    ``baselines`` maps job name -> size of the app's profiled
    benign-recovery baseline; a job whose non-attack recovery count
    exceeds ``drift_factor * baseline + drift_margin`` is flagged as
    drifting (once).  ``stall_after`` seconds without a heartbeat marks
    a running job stalled in :meth:`render`.
    """

    def __init__(
        self,
        baselines: Optional[Dict[str, int]] = None,
        drift_factor: float = 2.0,
        drift_margin: int = 3,
        stall_after: float = 10.0,
    ) -> None:
        self.baselines = dict(baselines or {})
        self.drift_factor = drift_factor
        self.drift_margin = drift_margin
        self.stall_after = stall_after
        self.jobs: Dict[str, JobStatus] = {}
        self.notices: List[str] = []
        #: daemon admission rejections folded by reason code
        self.rejections: Dict[str, int] = {}
        #: events the daemon dropped because this consumer fell behind
        self.watch_dropped = 0
        #: currently-firing daemon alerts by rule name
        self.alerts: Dict[str, str] = {}

    def expect(self, name: str, app: str = "") -> JobStatus:
        """Pre-register a job so render() shows it as pending."""
        status = self.jobs.get(name)
        if status is None:
            status = self.jobs[name] = JobStatus(name=name, app=app)
        elif app and not status.app:
            status.app = app
        return status

    # -- message intake --------------------------------------------------------

    def update(self, message: Dict[str, Any], now: float = 0.0) -> List[str]:
        """Fold one worker (or serve-daemon) message in; returns new
        notice lines.  Batch fleet workers emit ``start`` / ``heartbeat``
        / ``journal`` / ``done``; the serve daemon additionally streams
        ``queued`` / ``cancelled`` / ``rejected`` and ``serve-*``
        lifecycle events, all folded here so ``repro ctl watch`` and
        ``repro fleet --watch`` share one live view."""
        kind = message.get("type")
        if kind == "rejected":
            # no job was created; tally the reason and surface the
            # admission decision
            reason = message.get("reason", "?")
            self.rejections[reason] = self.rejections.get(reason, 0) + 1
            notice = (
                f"[fleet] submission rejected "
                f"({reason}): "
                f"{message.get('error', '')}".rstrip()
            )
            self.notices.append(notice)
            return [notice]
        if kind == "watch-dropped":
            dropped = int(message.get("dropped", 0))
            self.watch_dropped += dropped
            notice = (
                f"[serve] watch stream dropped {dropped} event(s) "
                "(consumer fell behind)"
            )
            self.notices.append(notice)
            return [notice]
        if kind == "alert":
            rule = message.get("rule", "?")
            state = message.get("state", "?")
            if state == "firing":
                self.alerts[rule] = message.get("label", "")
                notice = f"[serve] ALERT firing: {rule}"
                if message.get("label"):
                    notice += f" ({message['label']})"
                if message.get("description"):
                    notice += f" -- {message['description']}"
            else:
                self.alerts.pop(rule, None)
                notice = f"[serve] alert resolved: {rule}"
            self.notices.append(notice)
            return [notice]
        if kind in ("serve-started", "serve-draining", "serve-stopped"):
            notice = f"[serve] {kind.split('-', 1)[1]}"
            if kind == "serve-started" and message.get("variants"):
                notice += f" ({len(message['variants'])} warm variant(s))"
            self.notices.append(notice)
            return [notice]
        if kind == "scaled":
            notice = (
                f"[serve] scaled workers to {message.get('workers', '?')} "
                f"(pressure {message.get('pressure', '?')})"
            )
            self.notices.append(notice)
            return [notice]
        name = message.get("job", "?")
        status = self.expect(name, app=message.get("app", ""))
        notices: List[str] = []
        status.last_seen = now
        if message.get("trace") and not status.trace:
            status.trace = str(message["trace"])
        if kind == "queued":
            notices.append(f"[fleet] {name}: queued")
        elif kind == "cancelled":
            status.state = "cancelled"
            status.note = message.get("error", "")
            notices.append(f"[fleet] {name}: CANCELLED")
        elif kind == "start":
            status.state = "running"
            status.started = now
            notices.append(f"[fleet] {name}: started")
        elif kind == "heartbeat":
            if status.state == "pending":
                status.state = "running"
            status.cycles = message.get("cycles", status.cycles)
            status.recoveries = message.get("recoveries", status.recoveries)
            status.verdicts = dict(message.get("verdicts", status.verdicts))
            notices.extend(self._check_drift(status))
        elif kind == "journal":
            status.journal_records += len(message.get("records", []))
            status.journal_dropped += message.get("dropped", 0)
        elif kind == "done":
            status.cycles = message.get("cycles", status.cycles)
            status.recoveries = message.get("recoveries", status.recoveries)
            status.verdicts = dict(message.get("verdicts", status.verdicts))
            notices.extend(self._check_drift(status))
            if message.get("ok", True):
                status.state = "done"
                notices.append(f"[fleet] {name}: done")
            else:
                status.state = "failed"
                status.note = message.get("error", "")
                first = status.note.splitlines()[0] if status.note else ""
                notices.append(f"[fleet] {name}: FAILED {first}".rstrip())
        self.notices.extend(notices)
        return notices

    def _check_drift(self, status: JobStatus) -> List[str]:
        if status.drifting:
            return []
        baseline = self.baselines.get(status.name)
        if baseline is None:
            return []
        threshold = self.drift_factor * baseline + self.drift_margin
        observed = status.non_attack_recoveries
        if observed <= threshold:
            return []
        status.drifting = True
        return [
            f"[fleet] {status.name}: PROFILE DRIFT -- {observed} recoveries "
            f"vs baseline of {baseline} (threshold {threshold:.0f}); "
            f"re-profile {status.app or 'the application'}"
        ]

    # -- queries ----------------------------------------------------------------

    def drifting(self) -> List[str]:
        return sorted(name for name, s in self.jobs.items() if s.drifting)

    def stalled(self, now: float) -> List[str]:
        return sorted(
            name
            for name, s in self.jobs.items()
            if s.state == "running"
            and s.last_seen is not None
            and now - s.last_seen > self.stall_after
        )

    def render(self, now: float = 0.0) -> str:
        """One status line per job, fleet table style."""
        stalled = set(self.stalled(now))
        lines = [
            f"{'job':<24} {'state':<8} {'beat':>6} {'cycles':>14} "
            f"{'recov':>6} {'jrnl':>6}  flags"
        ]
        for name in sorted(self.jobs):
            s = self.jobs[name]
            age = (
                f"{now - s.last_seen:.1f}s"
                if s.last_seen is not None
                else "-"
            )
            flags = []
            if s.drifting:
                flags.append("DRIFT")
            if name in stalled:
                flags.append("STALLED")
            if s.journal_dropped:
                flags.append(f"dropped={s.journal_dropped}")
            lines.append(
                f"{name:<24} {s.state:<8} {age:>6} {s.cycles:>14} "
                f"{s.recoveries:>6} {s.journal_records:>6}  "
                + ",".join(flags)
            )
        footer = []
        if self.rejections:
            tallies = ", ".join(
                f"{reason}={count}"
                for reason, count in sorted(self.rejections.items())
            )
            footer.append(f"rejected: {tallies}")
        if self.alerts:
            footer.append(
                "alerts firing: " + ", ".join(sorted(self.alerts))
            )
        if self.watch_dropped:
            footer.append(f"watch events dropped: {self.watch_dropped}")
        if footer:
            lines.append("")
            lines.extend(footer)
        return "\n".join(line.rstrip() for line in lines)


def _fmt(value: Any, pattern: str = "{:.2f}", missing: str = "-") -> str:
    if value is None:
        return missing
    try:
        return pattern.format(value)
    except (ValueError, TypeError):
        return str(value)


def render_service_top(metrics: Dict[str, Any]) -> str:
    """One ``repro ctl top`` frame from a ``metrics`` op response.

    Pure formatting over the compact dict produced by
    :meth:`repro.obs.metrics.MetricsRecorder.describe` (plus the
    daemon's pid/uptime) -- no client or daemon state, so it is
    testable with a literal dict.
    """
    queue = metrics.get("queue") or {}
    workers = metrics.get("workers") or {}
    pool = metrics.get("pool") or {}
    throughput = metrics.get("throughput") or {}
    lines = [
        f"repro serve  pid {metrics.get('pid', '?')}  "
        f"up {_fmt(metrics.get('uptime_seconds'), '{:.0f}')}s  "
        f"samples {metrics.get('samples', 0)} "
        f"@ {_fmt(metrics.get('interval'), '{:g}')}s",
        f"queue   depth {_fmt(queue.get('depth'), '{:.0f}')}  "
        f"running {_fmt(queue.get('running'), '{:.0f}')}  "
        f"utilization {_fmt(queue.get('utilization'), '{:.0%}')}",
        f"workers alive {_fmt(workers.get('alive'), '{:.0f}')}"
        f"/{_fmt(workers.get('desired'), '{:.0f}')} desired  "
        f"utilization {_fmt(workers.get('utilization'), '{:.0%}')}",
        f"pool    hit ratio {_fmt(pool.get('hit_ratio'), '{:.0%}')}  "
        + "  ".join(
            f"{label}: {_fmt(stats.get('warm'), '{:.0f}')} warm"
            for label, stats in sorted(
                (pool.get("variants") or {}).items()
            )
        ),
        f"jobs    finished {_fmt(throughput.get('finished_total'), '{:.0f}')}"
        f"  rate {_fmt(throughput.get('finished_per_min'), '{:.1f}')}/min",
        "",
        f"{'tenant':<12} {'infl':>5} {'cycles':>12} {'wait-p95':>9} "
        f"{'lat-p50':>8} {'lat-p95':>8} {'lat-p99':>8} {'slo':>6} "
        f"{'budget':>7} {'rej':>5}",
    ]
    for tenant, row in sorted((metrics.get("tenants") or {}).items()):
        slo = row.get("slo") or {}
        lines.append(
            f"{tenant:<12} "
            f"{_fmt(row.get('in_flight'), '{:.0f}'):>5} "
            f"{_fmt(row.get('charged_cycles'), '{:.0f}'):>12} "
            f"{_fmt((row.get('queue_wait') or {}).get('p95')):>9} "
            f"{_fmt((row.get('latency') or {}).get('p50')):>8} "
            f"{_fmt((row.get('latency') or {}).get('p95')):>8} "
            f"{_fmt((row.get('latency') or {}).get('p99')):>8} "
            f"{_fmt(slo.get('compliance'), '{:.0%}'):>6} "
            f"{_fmt(row.get('budget_remaining_ratio'), '{:.0%}'):>7} "
            f"{_fmt(row.get('rejected'), '{:.0f}'):>5}"
        )
    alerts = (metrics.get("alerts") or {}).get("active") or []
    lines.append("")
    if alerts:
        lines.append("alerts:")
        for alert in alerts:
            label = f" ({alert['label']})" if alert.get("label") else ""
            lines.append(
                f"  FIRING {alert.get('rule', '?')}{label}  "
                f"value {_fmt(alert.get('value'), '{:g}')}"
            )
    else:
        lines.append("alerts: none firing")
    return "\n".join(line.rstrip() for line in lines)
