"""Declarative guest build configuration (the variant-matrix surface).

FACE-CHANGE's per-app kernel views are only meaningful relative to a
concrete kernel build.  :class:`GuestConfig` makes that build an
explicit, validated, JSON-round-trippable value instead of hard-coded
module-level constants: the module subset loaded from the kernel
catalog, the scheduler/timer variant, the SMP vCPU count and the
platform (``qemu-tsc`` profiling clocksource vs ``kvm-pvclock``
runtime clocksource, paper §III-B3).

Two content digests identify a config:

* :meth:`GuestConfig.digest` -- SHA-256 over the full canonical config,
  platform included.  This is the *machine* identity: snapshots carry
  it and refuse to fork jobs pinned to a different variant, and the
  sampling profiler labels folded stacks with it so fleet merges never
  fold samples from different kernel variants together.
* :meth:`GuestConfig.build_digest` -- the same digest with the platform
  field excluded.  This is the *kernel build* identity: the paper's
  workflow deliberately profiles under QEMU and enforces under KVM on
  the same build, so profile-library records pin to the build digest
  (same vmlinux, different clocksource).

The default config reproduces the historical hard-coded build
bit-identically (``benchmarks/record_matrix.py`` gates the image bytes
and virtual-cycle scores against pre-refactor values).

Validation is catalog-aware: module names must exist in
:data:`repro.kernel.catalog.MODULES`, and the subset must be closed
under inter-module link dependencies, which are *derived* from the
catalog itself by walking each module function's call/jump targets
(ext4 calls into jbd2, so ``modules=["ext4"]`` alone is rejected).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple, Union

from repro.isa.assembler import Call, Cond, Jump, Stmt, While
from repro.kernel.catalog import BASE_FUNCTIONS, MODULES
from repro.kernel.runtime import TIMER_PERIOD_CYCLES, TIMESLICE_TICKS, Platform

#: Canonical platform names (the clocksource split the paper studies).
KVM_PVCLOCK = "kvm-pvclock"
QEMU_TSC = "qemu-tsc"

#: Accepted spellings -> canonical platform name.
PLATFORM_ALIASES: Dict[str, str] = {
    KVM_PVCLOCK: KVM_PVCLOCK,
    QEMU_TSC: QEMU_TSC,
    Platform.KVM: KVM_PVCLOCK,
    Platform.QEMU: QEMU_TSC,
}

#: Canonical platform name -> the runtime's Platform constant.
_RUNTIME_PLATFORM: Dict[str, str] = {
    KVM_PVCLOCK: Platform.KVM,
    QEMU_TSC: Platform.QEMU,
}

#: Catalog load order (jbd2 before ext4: link-order constraint).
CATALOG_LOAD_ORDER: Tuple[str, ...] = tuple(MODULES)

#: Upper bound on vCPUs (the interleaved-slice scheduler is O(cpus)).
MAX_VCPUS = 16

_CONFIG_KEYS = {
    "name",
    "modules",
    "platform",
    "vcpus",
    "timer_period",
    "timeslice_ticks",
}
#: Fields that define the kernel build (everything but the platform).
_BUILD_FIELDS = ("modules", "vcpus", "timer_period", "timeslice_ticks")


class GuestConfigError(ValueError):
    """Invalid guest configuration.

    ``field`` names the offending config field and ``message`` carries
    the bare explanation, so callers embedding a config (the fleet
    spec) can re-prefix errors with their own path context
    (``jobs[3].guest.modules: unknown module 'jbd3'``).
    """

    def __init__(self, field: str, message: str) -> None:
        super().__init__(f"{field}: {message}" if field else message)
        self.field = field
        self.message = message


def _call_targets(stmts: Iterable[Stmt]) -> Iterator[str]:
    """Every direct call/jump target in a statement tree."""
    for stmt in stmts:
        if isinstance(stmt, (Call, Jump)):
            yield stmt.target
        elif isinstance(stmt, (Cond, While)):
            yield from _call_targets(stmt.body)


_MODULE_DEPENDENCIES: Optional[Dict[str, FrozenSet[str]]] = None


def module_dependencies() -> Dict[str, FrozenSet[str]]:
    """Inter-module link dependencies, derived from the catalog.

    A module depends on another when any of its functions calls (or
    jumps to) a symbol that the other module defines.  Calls into the
    base kernel are always satisfied and impose no dependency.
    """
    global _MODULE_DEPENDENCIES
    if _MODULE_DEPENDENCIES is None:
        owner: Dict[str, str] = {}
        for name, functions in MODULES.items():
            for body in functions:
                owner[body.name] = name
        deps: Dict[str, FrozenSet[str]] = {}
        for name, functions in MODULES.items():
            needed = set()
            for body in functions:
                for target in _call_targets(body.stmts):
                    target_module = owner.get(target)
                    if target_module is not None and target_module != name:
                        needed.add(target_module)
            deps[name] = frozenset(needed)
        _MODULE_DEPENDENCIES = deps
    return _MODULE_DEPENDENCIES


@dataclass(frozen=True)
class GuestConfig:
    """One guest build: module subset, sched/timer variant, SMP, platform.

    Instances are immutable and validated on construction.  ``name`` is
    a human label (set for the named :data:`VARIANTS`); it is excluded
    from both digests, so renaming a variant never re-keys profiles or
    snapshots.
    """

    modules: Tuple[str, ...] = CATALOG_LOAD_ORDER
    platform: str = KVM_PVCLOCK
    vcpus: int = 1
    #: periodic tick interval in simulated cycles (scheduler timer)
    timer_period: int = TIMER_PERIOD_CYCLES
    #: ticks before the round-robin scheduler preempts a task
    timeslice_ticks: int = TIMESLICE_TICKS
    name: str = ""

    def __post_init__(self) -> None:
        canonical_platform = PLATFORM_ALIASES.get(self.platform)
        if canonical_platform is None:
            raise GuestConfigError(
                "platform",
                f"unknown platform {self.platform!r} "
                f"(choose from: {KVM_PVCLOCK}, {QEMU_TSC})",
            )
        object.__setattr__(self, "platform", canonical_platform)
        if not isinstance(self.vcpus, int) or self.vcpus < 1:
            raise GuestConfigError(
                "vcpus", f"vcpus must be a positive integer, got {self.vcpus!r}"
            )
        if self.vcpus > MAX_VCPUS:
            raise GuestConfigError(
                "vcpus", f"vcpus must be <= {MAX_VCPUS}, got {self.vcpus}"
            )
        if not isinstance(self.timer_period, int) or self.timer_period <= 0:
            raise GuestConfigError(
                "timer_period",
                f"timer_period must be a positive integer, "
                f"got {self.timer_period!r}",
            )
        if not isinstance(self.timeslice_ticks, int) or self.timeslice_ticks <= 0:
            raise GuestConfigError(
                "timeslice_ticks",
                f"timeslice_ticks must be a positive integer, "
                f"got {self.timeslice_ticks!r}",
            )
        object.__setattr__(
            self, "modules", self._validated_modules(self.modules)
        )

    @staticmethod
    def _validated_modules(modules: Iterable[str]) -> Tuple[str, ...]:
        requested = list(modules)
        for module in requested:
            if module not in MODULES:
                raise GuestConfigError(
                    "modules",
                    f"unknown module {module!r} "
                    f"(catalog: {', '.join(CATALOG_LOAD_ORDER)})",
                )
        if len(set(requested)) != len(requested):
            dupes = sorted(
                {m for m in requested if requested.count(m) > 1}
            )
            raise GuestConfigError(
                "modules", f"duplicate module(s): {', '.join(dupes)}"
            )
        selected = set(requested)
        deps = module_dependencies()
        for module in sorted(selected):
            missing = deps[module] - selected
            if missing:
                raise GuestConfigError(
                    "modules",
                    f"module {module!r} requires {', '.join(sorted(missing))} "
                    "(link dependency closure against the kernel catalog)",
                )
        # normalize to catalog load order: link order is a build
        # property, not a config degree of freedom
        return tuple(m for m in CATALOG_LOAD_ORDER if m in selected)

    # -- derived views --------------------------------------------------------

    def runtime_platform(self) -> str:
        """The :class:`repro.kernel.runtime.Platform` constant to boot with."""
        return _RUNTIME_PLATFORM[self.platform]

    def base_functions(self):
        """The base kernel text (always the full catalog base)."""
        return BASE_FUNCTIONS

    def module_functions(self):
        """``(name, functions)`` pairs for the selected modules, load order."""
        return [(name, MODULES[name]) for name in self.modules]

    def with_platform(self, platform: str) -> "GuestConfig":
        """Same build, different clocksource (profiling vs runtime)."""
        return replace(self, platform=platform)

    def label(self) -> str:
        """Human handle: the variant name, or the short digest."""
        return self.name or self.digest()[:12]

    # -- canonical form / digests ---------------------------------------------

    def canonical_dict(self) -> Dict[str, object]:
        """The digestible identity (excludes the human ``name`` label)."""
        return {
            "modules": list(self.modules),
            "platform": self.platform,
            "vcpus": self.vcpus,
            "timer_period": self.timer_period,
            "timeslice_ticks": self.timeslice_ticks,
        }

    def digest(self) -> str:
        """SHA-256 over the full canonical config (machine identity)."""
        blob = json.dumps(
            self.canonical_dict(), sort_keys=True, separators=(",", ":")
        ).encode()
        return hashlib.sha256(blob).hexdigest()

    def build_digest(self) -> str:
        """SHA-256 over the kernel build only (platform excluded).

        Profiles pin to this: the paper profiles under ``qemu-tsc`` and
        enforces under ``kvm-pvclock`` on the *same* kernel build.
        """
        payload = {
            key: value
            for key, value in self.canonical_dict().items()
            if key != "platform"
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
        return hashlib.sha256(blob).hexdigest()

    # -- JSON round trip ------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        data = dict(self.canonical_dict())
        if self.name:
            data["name"] = self.name
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "GuestConfig":
        if not isinstance(data, dict):
            raise GuestConfigError(
                "", f"guest config must be an object, got {type(data).__name__}"
            )
        unknown = set(data) - _CONFIG_KEYS
        if unknown:
            raise GuestConfigError(
                sorted(unknown)[0],
                f"unknown guest config key(s): {', '.join(sorted(unknown))} "
                f"(known: {', '.join(sorted(_CONFIG_KEYS))})",
            )
        kwargs: Dict[str, object] = {}
        if "modules" in data:
            raw = data["modules"]
            if not isinstance(raw, (list, tuple)) or not all(
                isinstance(m, str) for m in raw
            ):
                raise GuestConfigError(
                    "modules", f"modules must be a list of names, got {raw!r}"
                )
            kwargs["modules"] = tuple(raw)
        for key in ("platform", "name"):
            if key in data:
                kwargs[key] = data[key]
        for key in ("vcpus", "timer_period", "timeslice_ticks"):
            if key in data:
                value = data[key]
                if isinstance(value, bool) or not isinstance(value, int):
                    raise GuestConfigError(
                        key, f"{key} must be an integer, got {value!r}"
                    )
                kwargs[key] = value
        return cls(**kwargs)  # type: ignore[arg-type]

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "GuestConfig":
        path = Path(path)
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            raise GuestConfigError(
                "", f"unreadable guest config {path}: {exc}"
            ) from exc
        return cls.from_dict(data)

    # -- presentation ---------------------------------------------------------

    def describe(self) -> str:
        lines = [
            f"name:            {self.name or '(unnamed)'}",
            f"digest:          {self.digest()}",
            f"build digest:    {self.build_digest()}",
            f"platform:        {self.platform}",
            f"vcpus:           {self.vcpus}",
            f"timer period:    {self.timer_period} cycles",
            f"timeslice:       {self.timeslice_ticks} ticks",
            f"modules:         {', '.join(self.modules) or '(none)'}",
        ]
        return "\n".join(lines)

    def diff(self, other: "GuestConfig") -> List[str]:
        """Field-by-field differences, ``field: self -> other`` rows."""
        rows: List[str] = []
        mine, theirs = self.canonical_dict(), other.canonical_dict()
        for key in sorted(mine):
            if mine[key] != theirs[key]:
                rows.append(f"{key}: {mine[key]!r} -> {theirs[key]!r}")
        return rows


#: The historical hard-coded build: every module, uniprocessor, KVM.
DEFAULT_GUEST_CONFIG = GuestConfig(name="default")

#: Named variants exposed by ``repro guest list`` and fleet matrix specs.
VARIANTS: Dict[str, GuestConfig] = {
    "default": DEFAULT_GUEST_CONFIG,
    "qemu-tsc": GuestConfig(platform=QEMU_TSC, name="qemu-tsc"),
    "smp2-pvclock": GuestConfig(vcpus=2, name="smp2-pvclock"),
    "no-net": GuestConfig(modules=("jbd2", "ext4"), name="no-net"),
    "smp2-nonet": GuestConfig(
        vcpus=2, modules=("jbd2", "ext4"), name="smp2-nonet"
    ),
    "fast-timer": GuestConfig(
        timer_period=50_000, timeslice_ticks=8, name="fast-timer"
    ),
}


def resolve_guest(
    ref: Union[None, str, Dict[str, object], GuestConfig],
) -> GuestConfig:
    """Coerce any guest reference into a validated :class:`GuestConfig`.

    ``None`` -> the default build; a string -> a named variant from
    :data:`VARIANTS` or a path to a JSON config file; a dict -> inline
    config; a config -> itself.
    """
    if ref is None:
        return DEFAULT_GUEST_CONFIG
    if isinstance(ref, GuestConfig):
        return ref
    if isinstance(ref, dict):
        return GuestConfig.from_dict(ref)
    if isinstance(ref, str):
        if ref in VARIANTS:
            return VARIANTS[ref]
        path = Path(ref)
        if path.exists():
            return GuestConfig.load(path)
        raise GuestConfigError(
            "",
            f"unknown guest variant {ref!r} "
            f"(named variants: {', '.join(sorted(VARIANTS))}; "
            "or pass a JSON config file path)",
        )
    raise GuestConfigError(
        "", f"cannot interpret guest reference {ref!r}"
    )


__all__ = [
    "CATALOG_LOAD_ORDER",
    "DEFAULT_GUEST_CONFIG",
    "GuestConfig",
    "GuestConfigError",
    "KVM_PVCLOCK",
    "MAX_VCPUS",
    "PLATFORM_ALIASES",
    "QEMU_TSC",
    "VARIANTS",
    "module_dependencies",
    "resolve_guest",
]
