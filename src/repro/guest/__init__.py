"""Whole-guest assembly: boot a simulated VM ready to run workloads."""

from repro.guest.config import (
    DEFAULT_GUEST_CONFIG,
    VARIANTS,
    GuestConfig,
    GuestConfigError,
    resolve_guest,
)
from repro.guest.machine import Machine, boot_machine

__all__ = [
    "DEFAULT_GUEST_CONFIG",
    "GuestConfig",
    "GuestConfigError",
    "Machine",
    "VARIANTS",
    "boot_machine",
    "resolve_guest",
]
