"""Whole-guest assembly: boot a simulated VM ready to run workloads."""

from repro.guest.machine import Machine, boot_machine

__all__ = ["Machine", "boot_machine"]
