"""Machine builder: physical memory + EPT + VCPU + kernel image + runtime.

``boot_machine()`` produces a fully wired guest: the synthetic kernel is
assembled into guest memory, the configured boot modules are loaded, the
kernel page table covers text/data/stacks/module space, the idle task is
running, and the hypervisor exit loop is connected.  From there,
``spawn()`` adds user processes and ``run()`` advances the world.

Which kernel gets built is governed by a :class:`repro.guest.config.
GuestConfig` (module subset, scheduler/timer variant, vCPU count,
platform); the default config reproduces the historical hard-coded build
bit-identically.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Any, Callable, Generator, List, Optional, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.fleet.snapshot import MachineSnapshot

from repro.guest.config import GuestConfig, resolve_guest
from repro.hypervisor.jit import env_jit_enabled
from repro.hypervisor.kvm import Hypervisor
from repro.hypervisor.vcpu import Vcpu
from repro.hypervisor.vmi import Introspector
from repro.isa.assembler import Assembler, NameRegistry
from repro.kernel.image import KernelImage
from repro.kernel.objects import Packet, Task
from repro.kernel.runtime import KernelRuntime
from repro.memory.ept import ExtendedPageTable
from repro.memory.layout import (
    KERNEL_BASE,
    KERNEL_STACK_BASE,
    KERNEL_TEXT_BASE,
    MODULE_SPACE_BASE,
    PAGE_SIZE,
)
from repro.memory.mmu import Mmu
from repro.memory.paging import GuestPageTable
from repro.memory.physmem import PhysicalMemory
from repro.telemetry import Journal, Telemetry

#: Guest-physical frame backing the shared user-mode stub page.
_USER_STUB_GPA = 0x00090000
#: The user stub: a few filler instructions, ``int 0x80``, jump back.
_USER_STUB = bytes(
    [0x90, 0x90, 0x90, 0x90, 0x90, 0x90, 0xCD, 0x80, 0xE9]
) + (-13 & 0xFFFFFFFF).to_bytes(4, "little")

_KERNEL_TEXT_MAP = 0x00400000  # 4 MiB of text mapping
_KERNEL_DATA_BASE = 0xC1000000
_KERNEL_DATA_MAP = 0x00040000  # 256 KiB of introspectable data
_KERNEL_STACK_MAP = 0x00800000  # 8 MiB of kernel stacks
_MODULE_SPACE_MAP = 0x00400000  # 4 MiB of module heap


class Machine:
    """A booted guest VM plus its hypervisor.

    ``vcpu_count > 1`` boots an SMP guest (the paper's §V-C future work):
    each vCPU owns its own EPT, so FACE-CHANGE performs *per-vCPU* kernel
    view switching.

    The guest build comes from ``config`` (a :class:`GuestConfig`, a
    named variant string, an inline dict, or ``None`` for the default
    build).  ``platform`` and ``vcpu_count`` remain as overrides layered
    on top of the config, so existing callers keep working.
    """

    def __init__(
        self,
        platform: Optional[str] = None,
        vcpu_count: Optional[int] = None,
        config: Union[None, str, dict, GuestConfig] = None,
        jit: Optional[bool] = None,
    ) -> None:
        guest = resolve_guest(config)
        overrides: dict = {}
        if vcpu_count is not None and vcpu_count != guest.vcpus:
            overrides["vcpus"] = max(1, vcpu_count)
        if overrides:
            guest = replace(guest, name="", **overrides)
        if platform is not None and guest.runtime_platform() != platform:
            guest = guest.with_platform(platform)
        self.config = guest
        self.platform = guest.runtime_platform()
        self.vcpu_count = guest.vcpus
        self.physmem = PhysicalMemory()
        self.hypervisor = Hypervisor(self.physmem)
        self.epts: List[ExtendedPageTable] = [
            ExtendedPageTable() for _ in range(self.vcpu_count)
        ]
        self.names = NameRegistry()
        self.assembler = Assembler(self.names)
        self.image = KernelImage(self.physmem, self.assembler)
        self.kernel_page_table = GuestPageTable()
        self.runtime: Optional[KernelRuntime] = None
        self.vcpus: List[Vcpu] = []
        self.introspector: Optional[Introspector] = None
        self.jit_enabled = env_jit_enabled() if jit is None else bool(jit)

    @property
    def ept(self) -> ExtendedPageTable:
        """CPU 0's EPT (the only one on a uniprocessor guest)."""
        return self.epts[0]

    @property
    def guest_digest(self) -> str:
        """Full config digest (machine identity, platform included)."""
        return self.config.digest()

    @property
    def build_digest(self) -> str:
        """Kernel-build digest (platform excluded; profiles pin to this)."""
        return self.config.build_digest()

    @property
    def telemetry(self) -> Telemetry:
        """The machine-wide telemetry registry (owned by the hypervisor)."""
        return self.hypervisor.telemetry

    def enable_tracing(self) -> None:
        """Start recording structured trace events (see ``repro.telemetry``)."""
        self.telemetry.enable_tracing()

    def disable_tracing(self) -> None:
        self.telemetry.disable_tracing()

    def start_recording(
        self,
        path=None,
        capacity=None,
        keep=None,
        meta=None,
    ) -> "Journal":
        """Attach a forensic flight recorder (and enable tracing).

        With ``path``, spans and trace events stream to a JSONL journal
        file; without, they accumulate in memory (``capacity``-bounded
        with drop accounting) for segment streaming -- see
        :mod:`repro.telemetry.journal`.  Recording charges zero guest
        cycles either way.
        """
        journal = Journal(path=path, capacity=capacity, keep=keep, meta=meta)
        self.telemetry.attach_journal(journal)
        if meta and meta.get("trace"):
            # bind the request trace id for the recording window: root
            # spans get a ``trace`` attribute linking the guest span
            # forest to the daemon-side submission (attrs only; cycle
            # accounting is untouched)
            self.telemetry.spans.trace_id = str(meta["trace"])
        self.telemetry.enable_tracing()
        return journal

    def stop_recording(self) -> Optional["Journal"]:
        """Detach and close the flight recorder; returns it (if any)."""
        journal = self.telemetry.detach_journal()
        self.telemetry.spans.trace_id = None
        if journal is not None:
            journal.close()
        return journal

    @property
    def vcpu(self) -> Optional[Vcpu]:
        return self.vcpus[0] if self.vcpus else None

    def set_jit(self, enabled: bool) -> None:
        """Toggle block translation on every vCPU (see ``hypervisor.jit``).

        Safe at any point: disabling drops the translation caches, and
        re-enabling rebuilds them lazily from the hotness counters.
        Guest-visible state is bit-identical either way.
        """
        self.jit_enabled = bool(enabled)
        for vcpu in self.vcpus:
            vcpu.set_jit(self.jit_enabled)

    # -- boot -----------------------------------------------------------------

    def boot(self) -> "Machine":
        self.image.build_base(self.config.base_functions())
        for name, functions in self.config.module_functions():
            self.image.load_module(name, functions)
        self._map_kernel_regions()
        self._install_user_stub()
        self.runtime = KernelRuntime(
            self.image,
            self.names,
            self.kernel_page_table,
            platform=self.platform,
            num_cpus=self.vcpu_count,
            timer_period=self.config.timer_period,
            timeslice_ticks=self.config.timeslice_ticks,
        )
        self.hypervisor.set_idle_handler(self.runtime.on_idle)
        for cpu_id in range(self.vcpu_count):
            mmu = Mmu(self.physmem, self.epts[cpu_id])
            vcpu = Vcpu(cpu_id, mmu, self.runtime)
            self.vcpus.append(vcpu)
            self.hypervisor.attach_vcpu(vcpu, self.epts[cpu_id])
            self.runtime.attach_vcpu(vcpu)
            vcpu.set_jit(self.jit_enabled)
        self.runtime.set_active_vcpu(self.vcpus[0])
        self.introspector = Introspector(self.vcpus[0].mmu)
        return self

    def _map_linear(self, gva_start: int, length: int) -> None:
        for offset in range(0, length, PAGE_SIZE):
            gva = gva_start + offset
            self.kernel_page_table.map_page(gva, gva - KERNEL_BASE)

    def _map_kernel_regions(self) -> None:
        self._map_linear(KERNEL_TEXT_BASE, _KERNEL_TEXT_MAP)
        self._map_linear(_KERNEL_DATA_BASE, _KERNEL_DATA_MAP)
        self._map_linear(KERNEL_STACK_BASE, _KERNEL_STACK_MAP)
        self._map_linear(MODULE_SPACE_BASE, _MODULE_SPACE_MAP)

    def _install_user_stub(self) -> None:
        self.physmem.write(_USER_STUB_GPA, _USER_STUB)

    # -- snapshot / fork -------------------------------------------------------

    def flush_caches(self) -> None:
        """Drop every host-side cache holding direct frame references.

        Semantically invisible (they are caches); required before the
        machine's frames are re-based under a copy-on-write snapshot.
        """
        for vcpu in self.vcpus:
            vcpu.invalidate_translation_caches()
        self.hypervisor.decode_cache.flush()

    def snapshot(self) -> "MachineSnapshot":
        """Capture this booted machine for copy-on-write forking.

        Convenience wrapper over
        :meth:`repro.fleet.snapshot.MachineSnapshot.capture`; the machine
        must be pristine (booted, no user tasks, no FACE-CHANGE attached).
        """
        from repro.fleet.snapshot import MachineSnapshot

        return MachineSnapshot.capture(self)

    # -- conveniences ------------------------------------------------------------

    @property
    def cycles(self) -> int:
        assert self.vcpu is not None
        return self.vcpu.cycles

    def spawn(
        self,
        comm: str,
        driver_factory: Callable[[], Generator[Any, Any, None]],
        cpu: Optional[int] = None,
    ) -> Task:
        assert self.runtime is not None
        return self.runtime.create_task(comm, driver_factory, cpu=cpu)

    def inject_packet(
        self,
        port: int,
        nbytes: int,
        delay: int = 0,
        kind: str = "dgram",
        conn_id: Optional[int] = None,
    ) -> None:
        """Queue an inbound packet ``delay`` cycles from now."""
        assert self.runtime is not None
        packet = Packet(
            port=port,
            nbytes=nbytes,
            arrival_cycles=self.cycles + delay,
            kind=kind,
        )
        if conn_id is not None:
            packet.conn_id = conn_id  # type: ignore[attr-defined]
        self.runtime.net.inject(packet)
        self.runtime.refresh_next_event()

    def inject_keystrokes(self, nchars: int, delay: int = 0) -> None:
        assert self.runtime is not None
        self.runtime.tty.inject_keystrokes(self.cycles + delay, nchars)
        self.runtime.refresh_next_event()

    # -- execution ------------------------------------------------------------------

    def run(
        self,
        max_cycles: Optional[int] = None,
        until: Optional[Callable[[], bool]] = None,
        step_budget: int = 200_000,
        max_steps: int = 100_000,
    ) -> None:
        """Run the guest until ``until()`` or the cycle bound is reached.

        On an SMP guest the vCPUs execute in interleaved time slices
        (round-robin, ``step_budget`` instructions each).
        """
        assert self.vcpus and self.runtime is not None
        budget = max(1000, step_budget // self.vcpu_count)
        for _ in range(max_steps):
            if until is not None and until():
                return
            if max_cycles is not None and self.vcpus[0].cycles >= max_cycles:
                return
            for vcpu in self.vcpus:
                self.runtime.set_active_vcpu(vcpu)
                self.hypervisor.run(vcpu, budget=budget)
            self.runtime.set_active_vcpu(self.vcpus[0])
        raise RuntimeError("machine run exceeded max_steps")

    def run_until_finished(self, tasks, max_cycles: int = 500_000_000) -> None:
        """Run until every task in ``tasks`` has exited."""
        self.run(
            max_cycles=max_cycles,
            until=lambda: all(t.finished for t in tasks),
        )


def boot_machine(
    platform: Optional[str] = None,
    vcpu_count: Optional[int] = None,
    config: Union[None, str, dict, GuestConfig] = None,
    jit: Optional[bool] = None,
) -> Machine:
    """Build and boot a guest VM from a guest config (optionally SMP)."""
    return Machine(
        platform=platform, vcpu_count=vcpu_count, config=config, jit=jit
    ).boot()
