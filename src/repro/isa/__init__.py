"""Miniature x86-subset instruction set used by the simulated guest.

The FACE-CHANGE mechanisms operate on raw bytes: kernel views are built by
filling pages with the two-byte ``UD2`` opcode (``0f 0b``), function
boundaries are found by scanning for the prologue signature ``55 89 e5``
(``push ebp; mov ebp, esp``), and the lazy/instant recovery distinction
hinges on whether a return address is even (lands on ``0f 0b`` -> traps) or
odd (lands on ``0b 0f`` -> silently misdecodes as an ``or`` instruction).
This package therefore defines a byte-accurate, variable-length encoding
that preserves all of those properties.

Modules
-------
``opcodes``
    Opcode constants, the :class:`~repro.isa.opcodes.Instr` decoded form and
    instruction-length metadata.
``assembler``
    A tiny statement IR (:class:`~repro.isa.assembler.Work`,
    :class:`~repro.isa.assembler.Call`, ...) and the assembler that lowers a
    kernel function body into bytes plus relocations.
``decoder``
    The byte decoder used by the virtual CPU's fetch stage and by the
    basic-block cache.
"""

from repro.isa.opcodes import (
    Instr,
    Op,
    PROLOGUE_SIGNATURE,
    UD2_BYTES,
)
from repro.isa.assembler import (
    Act,
    AssembledFunction,
    Assembler,
    Call,
    Cond,
    CtxSwitch,
    Dispatch,
    FunctionBody,
    Halt,
    Iret,
    Jump,
    Relocation,
    Ret,
    While,
    Work,
)
from repro.isa.decoder import DecodeError, decode

__all__ = [
    "Act",
    "AssembledFunction",
    "Assembler",
    "Call",
    "Cond",
    "CtxSwitch",
    "DecodeError",
    "Dispatch",
    "FunctionBody",
    "Halt",
    "Instr",
    "Iret",
    "Jump",
    "Op",
    "PROLOGUE_SIGNATURE",
    "Relocation",
    "Ret",
    "UD2_BYTES",
    "While",
    "Work",
    "decode",
]
