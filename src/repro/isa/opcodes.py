"""Opcode constants and decoded-instruction representation.

The encoding is a faithful subset of 32-bit x86 for every byte sequence
that FACE-CHANGE inspects (prologues, ``UD2``, call/ret), plus a small
number of pseudo-instructions (``PRED``/``ACT``/``DISPATCH``/``CTXSW``)
that stand in for data-dependent control flow which, on real hardware,
would be driven by register and memory contents.  Pseudo-instructions
carry a 32-bit identifier resolved at run time by the guest kernel's
semantic layer (see :mod:`repro.kernel.registry`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class Op(enum.Enum):
    """Decoded operation kinds."""

    FILL = "fill"  # any side-effect-free filler (nop, inc, xor, ...)
    PUSH_EBP = "push_ebp"
    MOV_EBP_ESP = "mov_ebp_esp"
    PUSH_IMM = "push_imm"
    PRED = "pred"  # cmp eax, imm32 -- evaluates predicate imm32 into ZF
    JZ = "jz"  # 0f 84 rel32
    JMP = "jmp"  # e9 rel32
    CALL = "call"  # e8 rel32
    DISPATCH = "dispatch"  # ff 14 85 imm32 -- indirect call via slot table
    ACT = "act"  # 0f ae imm32 -- semantic action hook
    LEAVE = "leave"
    RET = "ret"
    INT = "int"  # cd imm8
    IRET = "iret"
    UD2 = "ud2"  # 0f 0b -- raises #UD
    INVALID = "invalid"  # undecodable byte -- raises #UD
    OR_MIS = "or_mis"  # 0b /r -- the silent misdecode of a split UD2
    HLT = "hlt"
    CLI = "cli"
    STI = "sti"
    CTXSW = "ctxsw"  # f5 -- architectural context-switch point


# --- encoding bytes -------------------------------------------------------

UD2_BYTES = b"\x0f\x0b"
#: ``push ebp; mov ebp, esp`` -- the function-header signature FACE-CHANGE
#: searches for when widening a basic block to its containing function.
PROLOGUE_SIGNATURE = b"\x55\x89\xe5"

OP_NOP = 0x90
OP_INC_EAX = 0x40
OP_XOR_EAX = 0x31  # 31 c0
OP_ADD_EAX_IMM8 = 0x83  # 83 c0 ib
OP_MOV_MEM = 0x89  # 89 e5 => mov ebp,esp ; 89 44 24 ib => filler store
OP_PUSH_EBP = 0x55
OP_PUSH_IMM32 = 0x68
OP_PRED = 0x3D  # cmp eax, imm32
OP_TWO_BYTE = 0x0F
OP_JZ32_SECOND = 0x84
OP_ACT_SECOND = 0xAE
OP_UD2_SECOND = 0x0B
OP_JMP32 = 0xE9
OP_CALL32 = 0xE8
OP_FF = 0xFF  # ff 14 85 imm32 => call *table(,eax,4)
OP_LEAVE = 0xC9
OP_RET = 0xC3
OP_INT = 0xCD
OP_IRET = 0xCF
OP_OR = 0x0B  # 0b /r -- two-byte "or r32, r/m32" (register forms only)
OP_HLT = 0xF4
OP_CLI = 0xFA
OP_STI = 0xFB
OP_CTXSW = 0xF5

#: One-byte filler opcodes usable inside ``Work`` padding.
FILLER_1 = (OP_NOP, OP_INC_EAX)
#: (first byte, total length) for multi-byte fillers.
FILLER_2 = (OP_XOR_EAX, 0xC0)  # xor eax, eax
FILLER_3 = (OP_ADD_EAX_IMM8, 0xC0)  # add eax, imm8
FILLER_4 = (OP_MOV_MEM, 0x44, 0x24)  # mov [esp+ib], eax

INT_SYSCALL_VECTOR = 0x80


@dataclass(frozen=True)
class Instr:
    """A decoded instruction.

    Attributes
    ----------
    op:
        The decoded operation kind.
    length:
        Encoded length in bytes; the CPU advances ``eip`` by this much.
    operand:
        ``rel32`` displacement for branches/calls, the 32-bit identifier
        for pseudo-instructions, the vector for ``INT``, or ``None``.
    """

    op: Op
    length: int
    operand: Optional[int] = None

    def __str__(self) -> str:
        if self.operand is None:
            return self.op.value
        return f"{self.op.value} {self.operand:#x}"


def signed32(value: int) -> int:
    """Interpret ``value`` (0..2**32) as a signed 32-bit integer."""
    value &= 0xFFFFFFFF
    return value - 0x100000000 if value >= 0x80000000 else value


def unsigned32(value: int) -> int:
    """Truncate ``value`` to an unsigned 32-bit integer."""
    return value & 0xFFFFFFFF
