"""Byte decoder for the simulated CPU's fetch stage.

Decoding is deliberately tolerant of garbage: when a kernel view leaves a
region filled with ``UD2`` (``0f 0b``) the even-aligned fetches decode to
:attr:`~repro.isa.opcodes.Op.UD2` (which raises ``#UD`` and traps to the
hypervisor), while an *odd* return address lands on ``0b 0f`` which decodes
to the two-byte ``or`` instruction and executes silently -- exactly the
hazard the paper's *instant recovery* exists to prevent (Figure 3).
"""

from __future__ import annotations

import struct

from repro.isa.opcodes import (
    FILLER_1,
    Instr,
    Op,
    OP_ACT_SECOND,
    OP_ADD_EAX_IMM8,
    OP_CALL32,
    OP_CLI,
    OP_CTXSW,
    OP_FF,
    OP_HLT,
    OP_INT,
    OP_IRET,
    OP_JMP32,
    OP_JZ32_SECOND,
    OP_LEAVE,
    OP_MOV_MEM,
    OP_OR,
    OP_PRED,
    OP_PUSH_EBP,
    OP_PUSH_IMM32,
    OP_RET,
    OP_STI,
    OP_TWO_BYTE,
    OP_UD2_SECOND,
    OP_XOR_EAX,
    signed32,
)


class DecodeError(Exception):
    """Raised when fewer bytes are available than the instruction needs."""


def _u32(data: bytes, offset: int) -> int:
    if offset + 4 > len(data):
        raise DecodeError("truncated 32-bit operand")
    return struct.unpack_from("<I", data, offset)[0]


def decode(data: bytes, offset: int = 0) -> Instr:
    """Decode one instruction from ``data`` starting at ``offset``.

    Returns an :class:`~repro.isa.opcodes.Instr`.  Undecodable first bytes
    yield ``Op.INVALID`` with length 1 (the CPU raises ``#UD`` without
    advancing, like real hardware).
    """
    if offset >= len(data):
        raise DecodeError("decode past end of buffer")
    b0 = data[offset]

    if b0 in FILLER_1:
        return Instr(Op.FILL, 1)
    if b0 == OP_PUSH_EBP:
        return Instr(Op.PUSH_EBP, 1)
    if b0 == OP_XOR_EAX:
        if offset + 1 < len(data) and data[offset + 1] == 0xC0:
            return Instr(Op.FILL, 2)
        return Instr(Op.INVALID, 1)
    if b0 == OP_ADD_EAX_IMM8:
        if offset + 1 < len(data) and data[offset + 1] == 0xC0:
            return Instr(Op.FILL, 3)
        return Instr(Op.INVALID, 1)
    if b0 == OP_MOV_MEM:
        if offset + 1 >= len(data):
            return Instr(Op.INVALID, 1)
        b1 = data[offset + 1]
        if b1 == 0xE5:
            return Instr(Op.MOV_EBP_ESP, 2)
        if b1 == 0x44 and offset + 2 < len(data) and data[offset + 2] == 0x24:
            return Instr(Op.FILL, 4)
        return Instr(Op.INVALID, 1)
    if b0 == OP_PUSH_IMM32:
        return Instr(Op.PUSH_IMM, 5, _u32(data, offset + 1))
    if b0 == OP_PRED:
        return Instr(Op.PRED, 5, _u32(data, offset + 1))
    if b0 == OP_TWO_BYTE:
        if offset + 1 >= len(data):
            return Instr(Op.INVALID, 1)
        b1 = data[offset + 1]
        if b1 == OP_UD2_SECOND:
            return Instr(Op.UD2, 2)
        if b1 == OP_JZ32_SECOND:
            return Instr(Op.JZ, 6, signed32(_u32(data, offset + 2)))
        if b1 == OP_ACT_SECOND:
            return Instr(Op.ACT, 6, _u32(data, offset + 2))
        return Instr(Op.INVALID, 1)
    if b0 == OP_JMP32:
        return Instr(Op.JMP, 5, signed32(_u32(data, offset + 1)))
    if b0 == OP_CALL32:
        return Instr(Op.CALL, 5, signed32(_u32(data, offset + 1)))
    if b0 == OP_FF:
        if (
            offset + 2 < len(data)
            and data[offset + 1] == 0x14
            and data[offset + 2] == 0x85
        ):
            return Instr(Op.DISPATCH, 7, _u32(data, offset + 3))
        return Instr(Op.INVALID, 1)
    if b0 == OP_LEAVE:
        return Instr(Op.LEAVE, 1)
    if b0 == OP_RET:
        return Instr(Op.RET, 1)
    if b0 == OP_INT:
        if offset + 1 >= len(data):
            return Instr(Op.INVALID, 1)
        return Instr(Op.INT, 2, data[offset + 1])
    if b0 == OP_IRET:
        return Instr(Op.IRET, 1)
    if b0 == OP_OR:
        # "or r32, r/m32" with a register/indirect modrm: two bytes, no
        # displacement.  This is how a processor misreads a split UD2
        # stream starting at an odd offset ("0b 0f 0b 0f ...").
        if offset + 1 >= len(data):
            return Instr(Op.INVALID, 1)
        return Instr(Op.OR_MIS, 2)
    if b0 == OP_HLT:
        return Instr(Op.HLT, 1)
    if b0 == OP_CLI:
        return Instr(Op.CLI, 1)
    if b0 == OP_STI:
        return Instr(Op.STI, 1)
    if b0 == OP_CTXSW:
        return Instr(Op.CTXSW, 1)
    return Instr(Op.INVALID, 1)
