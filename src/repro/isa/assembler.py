"""Statement IR and assembler for synthetic kernel functions.

Kernel functions in the simulated guest are written in a tiny statement IR
(:class:`Work`, :class:`Call`, :class:`Cond`, ...) and lowered to real
bytes.  The lowering produces standard frames::

    55                      push ebp
    89 e5                   mov ebp, esp
    ...body...
    c9                      leave
    c3                      ret

so that the hypervisor-side stack walker (``BACK_TRACE`` in the paper's
Algorithm 1) can follow the ``ebp`` chain, and so that FACE-CHANGE's
function-boundary search finds the ``55 89 e5`` header signature.

Filler bytes inside :class:`Work` are chosen deterministically from the
function's name, mixing 1/2/3/4-byte instructions, which naturally places
call sites and return addresses at both even and odd addresses -- a
property the lazy/instant recovery logic depends on.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.isa.opcodes import (
    FILLER_2,
    FILLER_3,
    FILLER_4,
    OP_ACT_SECOND,
    OP_CLI,
    OP_CTXSW,
    OP_HLT,
    OP_INC_EAX,
    OP_IRET,
    OP_JMP32,
    OP_LEAVE,
    OP_NOP,
    OP_PRED,
    OP_RET,
    OP_STI,
    OP_TWO_BYTE,
    PROLOGUE_SIGNATURE,
)

# --- statement IR ---------------------------------------------------------


@dataclass(frozen=True)
class Work:
    """``nbytes`` of side-effect-free filler (simulated computation)."""

    nbytes: int


@dataclass(frozen=True)
class Call:
    """Direct ``call`` to another kernel function by symbol name."""

    target: str


@dataclass(frozen=True)
class Jump:
    """Direct ``jmp`` to another symbol (tail call / detour)."""

    target: str


@dataclass(frozen=True)
class Dispatch:
    """Indirect call through a named dispatch slot.

    The slot's target is resolved at run time by the kernel's semantic
    layer (e.g. the syscall table, a VFS file_operations table, or the
    clocksource read hook).
    """

    slot: str


@dataclass(frozen=True)
class Act:
    """Invoke a named semantic action (side effects on kernel state)."""

    action: str


@dataclass(frozen=True)
class Cond:
    """Execute ``body`` only when the named predicate is true."""

    pred: str
    body: Tuple["Stmt", ...]

    def __init__(self, pred: str, body: Sequence["Stmt"]):
        object.__setattr__(self, "pred", pred)
        object.__setattr__(self, "body", tuple(body))


@dataclass(frozen=True)
class While:
    """Repeat ``body`` while the named predicate is true."""

    pred: str
    body: Tuple["Stmt", ...]

    def __init__(self, pred: str, body: Sequence["Stmt"]):
        object.__setattr__(self, "pred", pred)
        object.__setattr__(self, "body", tuple(body))


@dataclass(frozen=True)
class Ret:
    """Explicit early return (frames also return implicitly at the end)."""


@dataclass(frozen=True)
class Iret:
    """Return from interrupt/syscall to the interrupted context."""


@dataclass(frozen=True)
class Halt:
    """Idle instruction (used by the idle task)."""


@dataclass(frozen=True)
class CtxSwitch:
    """Architectural context-switch point inside ``context_switch``."""


@dataclass(frozen=True)
class Cli:
    """Disable interrupt delivery."""


@dataclass(frozen=True)
class Sti:
    """Enable interrupt delivery."""


Stmt = Union[
    Work, Call, Jump, Dispatch, Act, Cond, While, Ret, Iret, Halt, CtxSwitch, Cli, Sti
]


@dataclass(frozen=True)
class FunctionBody:
    """A kernel function before layout: name, frame flag and statements."""

    name: str
    stmts: Tuple[Stmt, ...]
    frame: bool = True

    def __init__(self, name: str, stmts: Sequence[Stmt], frame: bool = True):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "stmts", tuple(stmts))
        object.__setattr__(self, "frame", frame)


# --- relocations and output -----------------------------------------------


@dataclass(frozen=True)
class Relocation:
    """A 32-bit field at ``offset`` needing the rel32 to symbol ``target``.

    ``kind`` is ``"call"`` or ``"jmp"``; both are pc-relative with the
    displacement measured from the end of the instruction.
    """

    offset: int
    target: str
    kind: str
    #: offset of the first byte of the instruction (for rel computation)
    insn_end: int = 0


@dataclass
class AssembledFunction:
    """Assembly output: raw bytes plus symbol relocations."""

    name: str
    data: bytearray
    relocations: List[Relocation] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.data)


class NameRegistry:
    """Assigns stable 32-bit identifiers to predicate/action/slot names."""

    def __init__(self) -> None:
        self._preds: Dict[str, int] = {}
        self._acts: Dict[str, int] = {}
        self._slots: Dict[str, int] = {}
        self._pred_names: List[str] = []
        self._act_names: List[str] = []
        self._slot_names: List[str] = []

    @staticmethod
    def _intern(name: str, table: Dict[str, int], names: List[str]) -> int:
        ident = table.get(name)
        if ident is None:
            ident = len(names)
            table[name] = ident
            names.append(name)
        return ident

    def pred_id(self, name: str) -> int:
        return self._intern(name, self._preds, self._pred_names)

    def act_id(self, name: str) -> int:
        return self._intern(name, self._acts, self._act_names)

    def slot_id(self, name: str) -> int:
        return self._intern(name, self._slots, self._slot_names)

    def pred_name(self, ident: int) -> str:
        return self._pred_names[ident]

    def act_name(self, ident: int) -> str:
        return self._act_names[ident]

    def slot_name(self, ident: int) -> str:
        return self._slot_names[ident]


class _FillerStream:
    """Deterministic stream of filler instructions seeded by a name."""

    _CHOICES = (1, 1, 2, 3, 3, 4, 1, 3)

    def __init__(self, seed: str) -> None:
        digest = hashlib.sha256(seed.encode("utf-8")).digest()
        self._state = int.from_bytes(digest[:8], "little")

    def _next(self) -> int:
        # xorshift64*
        x = self._state
        x ^= (x >> 12) & 0xFFFFFFFFFFFFFFFF
        x ^= (x << 25) & 0xFFFFFFFFFFFFFFFF
        x ^= (x >> 27) & 0xFFFFFFFFFFFFFFFF
        self._state = x & 0xFFFFFFFFFFFFFFFF
        return (x * 0x2545F4914F6CDD1D) & 0xFFFFFFFFFFFFFFFF

    def emit(self, nbytes: int, out: bytearray) -> None:
        """Append exactly ``nbytes`` of filler instructions to ``out``."""
        remaining = nbytes
        while remaining > 0:
            length = self._CHOICES[self._next() % len(self._CHOICES)]
            if length > remaining:
                length = 1
            if length == 1:
                out.append(OP_NOP if self._next() & 1 else OP_INC_EAX)
            elif length == 2:
                out.extend(FILLER_2)
            elif length == 3:
                out.extend(FILLER_3)
                out.append(self._next() & 0xFF)
            else:
                out.extend(FILLER_4)
                out.append(self._next() & 0x7F)
            remaining -= length


#: Memoized lowering results, shared across machines.  Lowering is pure
#: given the (frozen, hashable) body *except* for the name-registry ids
#: baked into the bytes, so each entry records the interns it performed
#: as ``(kind, name, id)`` triples; a hit replays them into the current
#: registry and is only usable when every id matches.  The bodies the
#: benchmarks assemble are identical for every booted machine, so this
#: turns the per-boot O(kernel bytes) lowering into one dict hit.
_ASSEMBLY_CACHE: Dict[
    "FunctionBody",
    Tuple[bytes, Tuple[Relocation, ...], Tuple[Tuple[str, str, int], ...]],
] = {}


class Assembler:
    """Lowers :class:`FunctionBody` objects to bytes.

    Symbol references (``Call``/``Jump`` targets) are left as relocations
    for the image layout pass; predicate/action/slot names are interned
    into 32-bit identifiers via the shared :class:`NameRegistry`.
    """

    def __init__(self, names: Optional[NameRegistry] = None) -> None:
        self.names = names if names is not None else NameRegistry()
        self._intern_log: Optional[List[Tuple[str, str, int]]] = None

    def assemble(self, body: FunctionBody) -> AssembledFunction:
        cached = _ASSEMBLY_CACHE.get(body)
        if cached is not None:
            data, relocs, interns = cached
            if all(
                self._intern_id(kind, name) == ident
                for kind, name, ident in interns
            ):
                return AssembledFunction(body.name, bytearray(data), list(relocs))
            # a differently-populated registry assigned other ids for
            # this body's names: the cached bytes are wrong here, re-lower
        self._intern_log = []
        out = bytearray()
        relocs = []
        filler = _FillerStream(body.name)
        if body.frame:
            out.extend(PROLOGUE_SIGNATURE)
        self._lower_block(body.stmts, out, relocs, filler)
        if body.frame:
            out.append(OP_LEAVE)
            out.append(OP_RET)
        _ASSEMBLY_CACHE[body] = (bytes(out), tuple(relocs), tuple(self._intern_log))
        self._intern_log = None
        return AssembledFunction(body.name, out, relocs)

    # -- lowering helpers ---------------------------------------------------

    def _intern_id(self, kind: str, name: str) -> int:
        if kind == "pred":
            ident = self.names.pred_id(name)
        elif kind == "act":
            ident = self.names.act_id(name)
        else:
            ident = self.names.slot_id(name)
        log = self._intern_log
        if log is not None:
            log.append((kind, name, ident))
        return ident

    def _lower_block(
        self,
        stmts: Sequence[Stmt],
        out: bytearray,
        relocs: List[Relocation],
        filler: _FillerStream,
    ) -> None:
        for stmt in stmts:
            self._lower_stmt(stmt, out, relocs, filler)

    def _lower_stmt(
        self,
        stmt: Stmt,
        out: bytearray,
        relocs: List[Relocation],
        filler: _FillerStream,
    ) -> None:
        if isinstance(stmt, Work):
            filler.emit(stmt.nbytes, out)
        elif isinstance(stmt, Call):
            insn_start = len(out)
            out.append(0xE8)
            out.extend(b"\x00\x00\x00\x00")
            relocs.append(
                Relocation(insn_start + 1, stmt.target, "call", insn_start + 5)
            )
        elif isinstance(stmt, Jump):
            insn_start = len(out)
            out.append(OP_JMP32)
            out.extend(b"\x00\x00\x00\x00")
            relocs.append(
                Relocation(insn_start + 1, stmt.target, "jmp", insn_start + 5)
            )
        elif isinstance(stmt, Dispatch):
            out.extend(b"\xff\x14\x85")
            out.extend(struct.pack("<I", self._intern_id("slot", stmt.slot)))
        elif isinstance(stmt, Act):
            out.append(OP_TWO_BYTE)
            out.append(OP_ACT_SECOND)
            out.extend(struct.pack("<I", self._intern_id("act", stmt.action)))
        elif isinstance(stmt, Cond):
            self._lower_cond(stmt, out, relocs, filler)
        elif isinstance(stmt, While):
            self._lower_while(stmt, out, relocs, filler)
        elif isinstance(stmt, Ret):
            out.append(OP_LEAVE)
            out.append(OP_RET)
        elif isinstance(stmt, Iret):
            out.append(OP_IRET)
        elif isinstance(stmt, Halt):
            out.append(OP_HLT)
        elif isinstance(stmt, CtxSwitch):
            out.append(OP_CTXSW)
        elif isinstance(stmt, Cli):
            out.append(OP_CLI)
        elif isinstance(stmt, Sti):
            out.append(OP_STI)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown statement {stmt!r}")

    def _lower_cond(
        self,
        stmt: Cond,
        out: bytearray,
        relocs: List[Relocation],
        filler: _FillerStream,
    ) -> None:
        out.append(OP_PRED)
        out.extend(struct.pack("<I", self._intern_id("pred", stmt.pred)))
        jz_at = len(out)
        out.extend(b"\x0f\x84\x00\x00\x00\x00")
        body_start = len(out)
        self._lower_block(stmt.body, out, relocs, filler)
        rel = len(out) - body_start
        struct.pack_into("<i", out, jz_at + 2, rel)

    def _lower_while(
        self,
        stmt: While,
        out: bytearray,
        relocs: List[Relocation],
        filler: _FillerStream,
    ) -> None:
        top = len(out)
        out.append(OP_PRED)
        out.extend(struct.pack("<I", self._intern_id("pred", stmt.pred)))
        jz_at = len(out)
        out.extend(b"\x0f\x84\x00\x00\x00\x00")
        body_start = len(out)
        self._lower_block(stmt.body, out, relocs, filler)
        jmp_at = len(out)
        out.append(OP_JMP32)
        out.extend(struct.pack("<i", top - (jmp_at + 5)))
        exit_at = len(out)
        struct.pack_into("<i", out, jz_at + 2, exit_at - body_start)
