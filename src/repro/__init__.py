"""FACE-CHANGE (DSN 2014) reproduction.

A simulated-virtualization reproduction of "FACE-CHANGE:
Application-Driven Dynamic Kernel View Switching in a Virtual Machine"
(Gu, Saltaformaggio, Zhang, Xu).  See DESIGN.md for the system inventory
and EXPERIMENTS.md for the paper-vs-measured record.
"""

from repro.guest import Machine, boot_machine

__version__ = "1.0.0"

__all__ = ["Machine", "boot_machine", "__version__"]
