"""Legacy setup shim: enables `pip install -e .` on offline hosts
without the `wheel` package (falls back to setup.py develop)."""

from setuptools import setup

setup()
