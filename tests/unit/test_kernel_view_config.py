"""Kernel view configuration file tests (save/load, union views)."""

from repro.core.kernel_view import KernelViewConfig, union_view
from repro.core.rangelist import BASE_KERNEL, KernelProfile


def make_config(app, ranges):
    profile = KernelProfile()
    for segment, begin, end in ranges:
        profile.add(segment, begin, end)
    return KernelViewConfig(app=app, profile=profile)


def test_size_matches_profile():
    config = make_config("top", [(BASE_KERNEL, 0, 128), ("ext4", 0, 64)])
    assert config.size == 192


def test_save_load_roundtrip(tmp_path):
    config = make_config("apache", [(BASE_KERNEL, 0x100, 0x400), ("e1000", 0, 80)])
    config.notes = "profiled with httperf"
    path = tmp_path / "apache.view.json"
    config.save(path)
    back = KernelViewConfig.load(path)
    assert back.app == "apache"
    assert back.notes == "profiled with httperf"
    assert back.profile.to_dict() == config.profile.to_dict()


def test_union_view_covers_all():
    a = make_config("a", [(BASE_KERNEL, 0, 100)])
    b = make_config("b", [(BASE_KERNEL, 50, 200), ("ext4", 0, 10)])
    union = union_view([a, b])
    assert union.app == "union"
    assert union.profile.segments[BASE_KERNEL].size == 200
    assert union.profile.segments["ext4"].size == 10
    # inputs unchanged
    assert a.profile.size == 100


def test_union_of_nothing_is_empty():
    union = union_view([])
    assert union.size == 0


def test_profiled_configs_serialize(tmp_path, app_configs):
    """Real profiled configs survive a disk roundtrip bit-exactly."""
    config = app_configs["top"]
    path = tmp_path / "top.json"
    config.save(path)
    back = KernelViewConfig.load(path)
    assert back.size == config.size
    assert back.profile.to_dict() == config.profile.to_dict()
