"""The legacy (cycles, rip) correlation heuristic: ties and interleaving.

``correlate_recoveries`` predates the span journal and survives as the
fallback for flat telemetry snapshots.  These tests pin its documented
tie-breaking rule: when several provenance-log entries share one
``(cycles, rip)`` key, the latest log entry wins and every trace event
with that key maps to it.
"""

from repro.analysis.timeline import correlate_recoveries
from repro.core.provenance import RecoveryEvent, RecoveryLog
from repro.telemetry import Telemetry


def _entry(cycles, rip, comm="top", pid=1):
    return RecoveryEvent(
        cycles=cycles,
        rip=rip,
        recovered="<vfs_read+0x0>",
        function_start=rip,
        function_end=rip + 0x100,
        pid=pid,
        comm=comm,
        view_app=comm,
    )


def _emit_recovery(tel, cycles, rip, cpu=0, comm="top"):
    tel.emit("recovery", cycles=cycles, cpu=cpu, rip=rip, comm=comm)


def test_duplicate_keys_latest_log_entry_wins():
    tel = Telemetry()
    tel.enable_tracing()
    log = RecoveryLog()
    first = _entry(1000, 0xC0100000, pid=1)
    second = _entry(1000, 0xC0100000, pid=2)  # same (cycles, rip) key
    log.append(first)
    log.append(second)
    _emit_recovery(tel, 1000, 0xC0100000)
    _emit_recovery(tel, 1000, 0xC0100000)

    pairs = correlate_recoveries(tel, log)
    assert len(pairs) == 2
    # documented rule: the later append owns the key; both events map to it
    assert all(entry is second for _, entry in pairs)


def test_multi_vcpu_interleaving_correlates_by_key_not_order():
    tel = Telemetry()
    tel.enable_tracing()
    log = RecoveryLog()
    # cpu1's recovery lands in the log *before* cpu0's, but the trace
    # ring saw cpu0's event first -- the join must go by key, not order
    cpu1 = _entry(2000, 0xC0200000, comm="gzip")
    cpu0 = _entry(1500, 0xC0100000, comm="top")
    log.append(cpu1)
    log.append(cpu0)
    _emit_recovery(tel, 1500, 0xC0100000, cpu=0, comm="top")
    _emit_recovery(tel, 2000, 0xC0200000, cpu=1, comm="gzip")

    pairs = correlate_recoveries(tel, log)
    assert len(pairs) == 2
    by_cpu = {event.cpu: entry for event, entry in pairs}
    assert by_cpu[0] is cpu0
    assert by_cpu[1] is cpu1


def test_same_cycles_different_rips_stay_distinct():
    tel = Telemetry()
    tel.enable_tracing()
    log = RecoveryLog()
    a = _entry(3000, 0xC0100000)
    b = _entry(3000, 0xC0200000)  # same virtual cycle, different hole
    log.append(a)
    log.append(b)
    _emit_recovery(tel, 3000, 0xC0200000, cpu=1)
    _emit_recovery(tel, 3000, 0xC0100000, cpu=0)

    pairs = correlate_recoveries(tel, log)
    by_rip = {event.get("rip"): entry for event, entry in pairs}
    assert by_rip[0xC0100000] is a
    assert by_rip[0xC0200000] is b


def test_unmatched_event_surfaces_as_none():
    tel = Telemetry()
    tel.enable_tracing()
    log = RecoveryLog()  # cleared / wrapped: no entries at all
    _emit_recovery(tel, 4000, 0xC0100000)
    pairs = correlate_recoveries(tel, log)
    assert pairs == [(tel.events("recovery")[0], None)]
