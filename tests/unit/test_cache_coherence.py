"""Cache-coherence edge cases for the PR's caching layer.

Three invariants the selective-invalidation / CoW machinery must hold:

* a view switch invalidates stale kernel-code translations on *every*
  vCPU sharing the EPT range, while cached translations for untouched
  ranges (user pages, kernel stacks) survive;
* a CoW materialization redirects every installed EPT to a freshly
  versioned frame, so no vCPU keeps executing stale decoded blocks;
* ``free()`` of a view returns only private frames -- the canonical UD2
  frame and adopted originals another view references stay allocated.
"""

from repro.core.kernel_view import KernelViewConfig
from repro.core.rangelist import BASE_KERNEL, KernelProfile
from repro.core.view_manager import ViewBuilder, gva_to_gpa
from repro.isa.opcodes import UD2_BYTES
from repro.memory.ept import ExtendedPageTable
from repro.memory.layout import KERNEL_STACK_BASE, PAGE_SIZE
from repro.memory.mmu import Mmu
from repro.memory.paging import GuestPageTable
from repro.memory.physmem import PhysicalMemory


def build_view(machine, ranges, app="test", index=0):
    profile = KernelProfile()
    for segment, begin, end in ranges:
        profile.add(segment, begin, end)
    config = KernelViewConfig(app=app, profile=profile)
    return ViewBuilder(machine).build(index, config)


class TestSelectiveInvalidation:
    def test_switch_invalidates_code_on_all_vcpus_keeps_other_ranges(self):
        """Remapping the kernel-code range drops only code translations."""
        physmem = PhysicalMemory()
        ept = ExtendedPageTable()
        pt = GuestPageTable()
        code_gva, code_gpa = 0xC0100000, 0x100000
        stack_gva = KERNEL_STACK_BASE
        stack_gpa = 0x8000000
        # a user page whose gpfn lives outside the kernel-code level-2
        # table (gpfns sharing the code page's table are invalidated
        # together -- that is the chosen epoch granularity)
        user_gva, user_gpa = 0x08048000, 0x500000
        for gva, gpa in (
            (code_gva, code_gpa), (stack_gva, stack_gpa), (user_gva, user_gpa)
        ):
            pt.map_page(gva, gpa)
        # two vCPUs sharing one EPT (the paper's same-app SMP case)
        mmus = [Mmu(physmem, ept) for _ in range(2)]
        for mmu in mmus:
            mmu.set_cr3(pt)
            assert mmu.translate(code_gva) == code_gpa
            mmu.translate(stack_gva)
            mmu.translate(user_gva)
        hits_before = [mmu._tlb_hits.value for mmu in mmus]
        # the view switch: re-point the kernel-code entry
        shadow = physmem.allocate_frames(1)[0]
        ept.map_frame(code_gpa >> 12, shadow)
        for i, mmu in enumerate(mmus):
            # stale code translation dropped on BOTH vCPUs
            assert mmu.translate(code_gva) == shadow << 12
            # stack and user translations survived (cache hits)
            mmu.translate(stack_gva)
            mmu.translate(user_gva)
            assert mmu._tlb_hits.value == hits_before[i] + 2

    def test_noop_remap_preserves_all_translations(self):
        """Re-installing the same frame must not invalidate anything."""
        physmem = PhysicalMemory()
        ept = ExtendedPageTable()
        pt = GuestPageTable()
        pt.map_page(0x1000, 0x5000)
        mmu = Mmu(physmem, ept)
        mmu.set_cr3(pt)
        ept.map_frame(0x5, 0x99)
        assert mmu.translate(0x1000) == 0x99000
        epoch = ept.epoch_cell(0x5)[0]
        ept.map_frame(0x5, 0x99)  # same-view skip / delta install no-op
        assert ept.epoch_cell(0x5)[0] == epoch
        hits = mmu._tlb_hits.value
        assert mmu.translate(0x1000) == 0x99000
        assert mmu._tlb_hits.value == hits + 1


class TestCowMaterialization:
    def test_materialization_redirects_installed_epts_fresh_version(
        self, machine
    ):
        image = machine.image
        start, end = image.function_range("vfs_read")
        view = build_view(machine, [])
        other = build_view(machine, [], app="other", index=1)
        ept = machine.ept
        view.install(ept)
        gpfn = gva_to_gpa(start) >> 12
        canonical = view.frames[gpfn]
        assert ept.translate_frame(gpfn) == canonical
        epoch = ept.epoch_cell(gpfn)[0]
        # recover a partial function into the shared page
        view.copy_original(start + 8, start + 12)
        private = view.frames[gpfn]
        assert private != canonical
        # the installed EPT was re-pointed and the covering epoch bumped,
        # so every vCPU re-translates instead of executing stale blocks
        assert ept.translate_frame(gpfn) == private
        assert ept.epoch_cell(gpfn)[0] > epoch
        # the private frame's bytes were written through physmem, giving
        # it a non-zero version (fresh hpfn + fresh version => no decode
        # cache key can alias a previously executed block)
        assert machine.physmem.version(private) > 0
        # the other view still shares the untouched canonical frame
        assert other.frames[gpfn] == canonical
        assert bytes(machine.physmem.frame(canonical)) == UD2_BYTES * (
            PAGE_SIZE // 2
        )

    def test_write_to_shared_original_snapshots_sharing_views(self, machine):
        """A rootkit patching resident kernel text must not leak into
        views that adopted the original frame (build-time content wins)."""
        image = machine.image
        # profile the whole base kernel: interior pages load whole and
        # adopt the original guest frames instead of copying
        view = build_view(
            machine, [(BASE_KERNEL, image.text_start, image.text_end)]
        )
        adopted = [
            gpfn for gpfn, hpfn in view.frames.items() if hpfn == gpfn
        ]
        assert adopted, "whole-page loads should adopt original frames"
        gpfn = adopted[0]
        before = bytes(machine.physmem.frame(gpfn))
        machine.physmem.write(gpfn << 12, b"\xcc\xcc\xcc\xcc")
        # the view broke out a private snapshot of the pre-write bytes
        assert view.frames[gpfn] != gpfn
        assert bytes(machine.physmem.frame(view.frames[gpfn])) == before
        assert machine.physmem.frame(gpfn)[:4] == b"\xcc\xcc\xcc\xcc"


class TestSharedFrameLifetime:
    def test_free_keeps_frames_other_views_reference(self, machine):
        view = build_view(machine, [])
        other = build_view(machine, [], app="other", index=1)
        canonical = machine.physmem.shared.canonical_ud2_frame(UD2_BYTES)
        assert canonical in set(view.frames.values())
        refs = machine.physmem.shared.refcount(canonical)
        view.free()
        # the canonical frame lost exactly this view's references and is
        # still alive and all-UD2 for the surviving view
        assert machine.physmem.shared.refcount(canonical) < refs
        assert machine.physmem.shared.refcount(canonical) > 0
        gpfn = next(iter(other.frames))
        assert other.frames[gpfn] == canonical
        assert bytes(machine.physmem.frame(canonical)) == UD2_BYTES * (
            PAGE_SIZE // 2
        )

    def test_free_never_releases_original_guest_frames(self, machine):
        image = machine.image
        view = build_view(
            machine, [(BASE_KERNEL, image.text_start, image.text_end)]
        )
        adopted = [
            gpfn for gpfn, hpfn in view.frames.items() if hpfn == gpfn
        ]
        assert adopted
        original = bytes(machine.physmem.frame(adopted[0]))
        view.free()
        # the guest's own code page is untouched by the unload
        assert bytes(machine.physmem.frame(adopted[0])) == original
