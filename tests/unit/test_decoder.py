"""Decoder unit tests: every opcode, garbage bytes, the UD2 split."""

import pytest

from repro.isa.decoder import DecodeError, decode
from repro.isa.opcodes import Op, PROLOGUE_SIGNATURE, UD2_BYTES


def test_nop_decodes_as_fill():
    assert decode(b"\x90") == decode(b"\x90")
    instr = decode(b"\x90")
    assert instr.op is Op.FILL
    assert instr.length == 1


def test_inc_eax_is_one_byte_fill():
    instr = decode(b"\x40")
    assert instr.op is Op.FILL and instr.length == 1


def test_xor_eax_is_two_byte_fill():
    instr = decode(b"\x31\xc0")
    assert instr.op is Op.FILL and instr.length == 2


def test_add_imm8_is_three_byte_fill():
    instr = decode(b"\x83\xc0\x7f")
    assert instr.op is Op.FILL and instr.length == 3


def test_mov_store_is_four_byte_fill():
    instr = decode(b"\x89\x44\x24\x18")
    assert instr.op is Op.FILL and instr.length == 4


def test_prologue_bytes():
    assert PROLOGUE_SIGNATURE == b"\x55\x89\xe5"
    push = decode(PROLOGUE_SIGNATURE, 0)
    assert push.op is Op.PUSH_EBP and push.length == 1
    mov = decode(PROLOGUE_SIGNATURE, 1)
    assert mov.op is Op.MOV_EBP_ESP and mov.length == 2


def test_ud2_decodes_and_traps_shape():
    assert UD2_BYTES == b"\x0f\x0b"
    instr = decode(UD2_BYTES)
    assert instr.op is Op.UD2 and instr.length == 2


def test_split_ud2_decodes_as_silent_or():
    """The paper's Figure 3 hazard: an odd return address reads 0b 0f."""
    instr = decode(b"\x0b\x0f")
    assert instr.op is Op.OR_MIS
    assert instr.length == 2


def test_ud2_fill_stream_alternates():
    stream = UD2_BYTES * 8
    even = decode(stream, 0)
    odd = decode(stream, 1)
    assert even.op is Op.UD2
    assert odd.op is Op.OR_MIS


def test_call_rel32():
    instr = decode(b"\xe8\xfc\xff\xff\xff")
    assert instr.op is Op.CALL
    assert instr.length == 5
    assert instr.operand == -4


def test_jmp_rel32_positive():
    instr = decode(b"\xe9\x10\x00\x00\x00")
    assert instr.op is Op.JMP and instr.operand == 0x10


def test_jz_near():
    instr = decode(b"\x0f\x84\x08\x00\x00\x00")
    assert instr.op is Op.JZ and instr.length == 6 and instr.operand == 8


def test_pred_cmp_imm32():
    instr = decode(b"\x3d\x2a\x00\x00\x00")
    assert instr.op is Op.PRED and instr.length == 5 and instr.operand == 42


def test_act_encoding():
    instr = decode(b"\x0f\xae\x07\x00\x00\x00")
    assert instr.op is Op.ACT and instr.length == 6 and instr.operand == 7


def test_dispatch_encoding():
    instr = decode(b"\xff\x14\x85\x03\x00\x00\x00")
    assert instr.op is Op.DISPATCH and instr.length == 7 and instr.operand == 3


def test_ret_leave_iret():
    assert decode(b"\xc3").op is Op.RET
    assert decode(b"\xc9").op is Op.LEAVE
    assert decode(b"\xcf").op is Op.IRET


def test_int_vector():
    instr = decode(b"\xcd\x80")
    assert instr.op is Op.INT and instr.operand == 0x80 and instr.length == 2


def test_push_imm32():
    instr = decode(b"\x68\x01\x02\x03\x04")
    assert instr.op is Op.PUSH_IMM and instr.operand == 0x04030201


def test_control_flags():
    assert decode(b"\xfa").op is Op.CLI
    assert decode(b"\xfb").op is Op.STI
    assert decode(b"\xf4").op is Op.HLT
    assert decode(b"\xf5").op is Op.CTXSW


@pytest.mark.parametrize("byte", [0x00, 0x01, 0xFE, 0xD9, 0x66, 0xAA])
def test_unknown_bytes_are_invalid(byte):
    instr = decode(bytes([byte, 0x90]))
    assert instr.op is Op.INVALID
    assert instr.length == 1


def test_truncated_two_byte_prefix_is_invalid():
    assert decode(b"\x0f").op is Op.INVALID


def test_truncated_imm32_raises():
    with pytest.raises(DecodeError):
        decode(b"\xe8\x01\x02")


def test_decode_past_end_raises():
    with pytest.raises(DecodeError):
        decode(b"", 0)


def test_unknown_0f_second_byte_is_invalid():
    assert decode(b"\x0f\x77").op is Op.INVALID
