"""RecoveryEngine backtrace unit tests on hand-built stack frames."""

import pytest

from repro.core.kernel_view import KernelViewConfig
from repro.core.provenance import RecoveryLog
from repro.core.rangelist import KernelProfile
from repro.core.recovery import MAX_BACKTRACE_DEPTH, RecoveryEngine, SPLIT_UD2
from repro.core.view_manager import ViewBuilder
from repro.guest.machine import boot_machine
from repro.memory.layout import KERNEL_STACK_BASE


@pytest.fixture()
def world():
    machine = boot_machine()
    engine = RecoveryEngine(machine, RecoveryLog())
    view = ViewBuilder(machine).build(0, KernelViewConfig("t", KernelProfile()))
    vcpu = machine.vcpu
    vcpu.mmu.set_cr3(machine.kernel_page_table)
    return machine, engine, view, vcpu


def build_stack(machine, frames):
    """Write an ebp chain: [(return_address, ...)] newest-first.

    Returns the ebp the walker should start from.
    """
    mmu = machine.vcpu.mmu
    base = KERNEL_STACK_BASE + 0x10000
    # lay frames from the bottom (oldest) upwards
    addrs = []
    cursor = base + 0x800
    prev_ebp = 0
    for ret in reversed(frames):
        frame_at = cursor
        mmu.write_u32(frame_at, prev_ebp)  # saved ebp
        mmu.write_u32(frame_at + 4, ret)  # return address
        prev_ebp = frame_at
        cursor -= 0x40
        addrs.append(frame_at)
    return prev_ebp


def test_backtrace_symbolizes_chain(world):
    machine, engine, view, vcpu = world
    image = machine.image
    rets = [
        image.address_of("do_sys_poll") + 8,
        image.address_of("sys_poll") + 8,
        image.address_of("syscall_call") + 7,
    ]
    vcpu.ebp = build_stack(machine, rets)
    frames, instant = engine.back_trace(vcpu, view)
    symbols = [f.symbol for f in frames]
    assert "do_sys_poll" in symbols[0]
    assert "sys_poll" in symbols[1]
    assert "syscall_call" in symbols[2]


def test_backtrace_stops_at_sentinel(world):
    machine, engine, view, vcpu = world
    rets = [machine.image.address_of("vfs_read") + 4]
    vcpu.ebp = build_stack(machine, rets)
    frames, _ = engine.back_trace(vcpu, view)
    assert len(frames) == 1


def test_backtrace_stops_on_non_kernel_rip(world):
    machine, engine, view, vcpu = world
    mmu = vcpu.mmu
    frame_at = KERNEL_STACK_BASE + 0x12000
    mmu.write_u32(frame_at, 0)
    mmu.write_u32(frame_at + 4, 0x08048000)  # user-space address
    vcpu.ebp = frame_at
    frames, _ = engine.back_trace(vcpu, view)
    assert frames == []


def test_backtrace_depth_bounded(world):
    """A self-referential ebp chain cannot loop the walker forever."""
    machine, engine, view, vcpu = world
    mmu = vcpu.mmu
    frame_at = KERNEL_STACK_BASE + 0x13000
    mmu.write_u32(frame_at, frame_at)  # ebp points at itself
    mmu.write_u32(frame_at + 4, machine.image.address_of("schedule") + 4)
    vcpu.ebp = frame_at
    frames, _ = engine.back_trace(vcpu, view)
    assert len(frames) == MAX_BACKTRACE_DEPTH


def test_instant_recovery_on_split_ud2_target(world):
    """A return address reading 0b 0f inside the view is recovered."""
    machine, engine, view, vcpu = world
    view.install(machine.ept)
    try:
        start, _end = machine.image.function_range("vfs_write")
        odd_ret = start + 9  # odd offset into the UD2-filled function
        assert odd_ret % 2 == 1
        assert vcpu.mmu.read(odd_ret, 2) == SPLIT_UD2
        vcpu.ebp = build_stack(machine, [odd_ret])
        frames, instant = engine.back_trace(vcpu, view)
        assert len(frames) == 1
        assert any("vfs_write" in name for name in instant)
        # the function is now real code in the view
        assert vcpu.mmu.read(start, 3) == b"\x55\x89\xe5"
    finally:
        view.uninstall(machine.ept)


def test_instant_recovery_respects_disable_flag(world):
    machine, engine, view, vcpu = world
    engine.instant_recovery_enabled = False
    view.install(machine.ept)
    try:
        start, _ = machine.image.function_range("vfs_write")
        vcpu.ebp = build_stack(machine, [start + 9])
        _frames, instant = engine.back_trace(vcpu, view)
        assert instant == []
    finally:
        view.uninstall(machine.ept)
